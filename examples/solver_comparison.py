#!/usr/bin/env python
"""Ablation: FISTA vs ADMM vs OMP on identical AoA problems.

The paper solves its ℓ1 programs with CVX's second-order cone solvers;
this repository ships three interchangeable solvers.  This example runs
all of them on the same joint (AoA, ToA) measurement and compares
accuracy, sparsity and wall-clock — including OMP's model-order
sensitivity, the weakness §III-A credits ROArray with avoiding.

Run:  python examples/solver_comparison.py
"""

import time

import numpy as np

from repro.channel import (
    CsiSynthesizer,
    ImpairmentModel,
    UniformLinearArray,
    intel5300_layout,
    random_profile,
)
from repro.core.grids import AngleGrid, DelayGrid
from repro.core.joint import coefficients_to_joint_power
from repro.core.steering import SteeringCache, vectorize_csi_matrix
from repro.optim import solve_lasso_admm, solve_lasso_fista, solve_omp
from repro.optim.tuning import residual_kappa
from repro.spectral.spectrum import JointSpectrum


def spectrum_from(x, cache):
    power = coefficients_to_joint_power(
        x, cache.angle_grid.n_points, cache.delay_grid.n_points
    )
    return JointSpectrum(cache.angle_grid.angles_deg, cache.delay_grid.toas_s, power)


def main() -> None:
    rng = np.random.default_rng(5)
    array = UniformLinearArray()
    layout = intel5300_layout()
    cache = SteeringCache(array, layout, AngleGrid(n_points=61), DelayGrid(n_points=25))

    true_aoa = 150.0
    profile = random_profile(rng, n_paths=4, direct_aoa_deg=true_aoa)
    synthesizer = CsiSynthesizer(
        array, layout, ImpairmentModel(detection_delay_range_s=0.0, sfo_std_s=0.0), seed=0
    )
    trace = synthesizer.packets(profile, n_packets=1, snr_db=5.0, rng=rng)
    y = vectorize_csi_matrix(trace.packet(0))

    dictionary = cache.joint_dictionary
    kappa = residual_kappa(dictionary, y, fraction=0.15)

    print(f"Joint dictionary: {dictionary.shape}, true AoA {true_aoa}°, SNR 5 dB\n")
    print(f"{'solver':<22} {'AoA err':>8} {'paths':>6} {'time':>9}")

    runs = {
        "FISTA (kappa auto)": lambda: solve_lasso_fista(
            dictionary, y, kappa, max_iterations=250, lipschitz=cache.joint_lipschitz
        ),
        "ADMM (kappa auto)": lambda: solve_lasso_admm(dictionary, y, kappa, max_iterations=250),
        "OMP (K=4, true)": lambda: solve_omp(dictionary, y, sparsity=4),
        "OMP (K=10, over)": lambda: solve_omp(dictionary, y, sparsity=10),
        "OMP (K=2, under)": lambda: solve_omp(dictionary, y, sparsity=2),
    }
    for name, run in runs.items():
        start = time.perf_counter()
        result = run()
        elapsed = time.perf_counter() - start
        spectrum = spectrum_from(result.x, cache)
        error = spectrum.angle_marginal().closest_peak_error(
            true_aoa, max_peaks=6, min_relative_height=0.2
        )
        print(
            f"{name:<22} {error:7.1f}° {result.sparsity(rtol=0.2):6d} {elapsed * 1e3:7.1f} ms"
        )

    print(
        "\nNote how OMP's quality swings with the assumed model order K, "
        "while the ℓ1 solvers need no K at all."
    )


if __name__ == "__main__":
    main()
