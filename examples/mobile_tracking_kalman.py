#!/usr/bin/env python
"""Tracking a walking client: raw per-burst fixes vs Kalman smoothing.

Combines three layers of the library:

* :mod:`repro.channel.mobility` walks a client through the classroom
  (random-waypoint model),
* ROArray produces an independent fix from a short packet burst at
  every trajectory sample,
* :mod:`repro.core.tracking` smooths the fix stream with a
  constant-velocity Kalman filter and gates outliers.

Run:  python examples/mobile_tracking_kalman.py
"""

import numpy as np

from repro.channel import CsiSynthesizer, ImpairmentModel, UniformLinearArray, intel5300_layout
from repro.channel.geometry import Scene
from repro.channel.mobility import RandomWaypointModel
from repro.core import RoArrayEstimator
from repro.core.localization import ApObservation, localize_weighted_aoa
from repro.core.tracking import KalmanTracker
from repro.experiments import classroom_access_points, classroom_room


def main() -> None:
    rng = np.random.default_rng(21)
    room = classroom_room()
    access_points = classroom_access_points(5, room)
    array = UniformLinearArray()
    layout = intel5300_layout()
    estimator = RoArrayEstimator()
    synthesizers = [
        CsiSynthesizer(array, layout, ImpairmentModel(), seed=i) for i in range(5)
    ]
    tracker = KalmanTracker(measurement_noise_m=1.0, process_noise=1.2)

    trajectory = RandomWaypointModel(room).generate(
        rng, duration_s=12.0, sample_interval_s=0.5, start=(4.0, 4.0)
    )

    # Low-SNR localization occasionally misidentifies the direct path and
    # produces a fix several meters off (see the Fig. 6c CDF tail).  We
    # force two such events so the run always demonstrates the gate.
    outlier_steps = {8, 17}

    print(" t(s)   truth          raw fix        err   tracked        err  gated")
    raw_errors, tracked_errors = [], []
    for step, sample in enumerate(trajectory):
        scene = Scene(room=room, access_points=access_points, client=sample.position)
        observations = []
        for i in range(len(access_points)):
            # A harsh link: low SNR and an obstructed LoS, the regime
            # where raw fixes occasionally jump and gating pays off.
            profile = scene.multipath_profile(i, layout.wavelength).with_direct_attenuation(7.0)
            trace = synthesizers[i].packets(profile, n_packets=2, snr_db=0.0, rng=rng)
            analysis = estimator.analyze(trace)
            observations.append(
                ApObservation(access_points[i], analysis.direct.aoa_deg, trace.rssi_dbm)
            )
        fix = localize_weighted_aoa(observations, room, resolution_m=0.1)
        fix_position = fix.position
        if step in outlier_steps:
            fix_position = (
                float(rng.uniform(0.5, room.width - 0.5)),
                float(rng.uniform(0.5, room.depth - 0.5)),
            )
        state = tracker.update(sample.time_s, fix_position)

        truth = np.array(sample.position)
        raw_error = float(np.linalg.norm(np.array(fix_position) - truth))
        tracked_error = float(np.linalg.norm(np.array(state.position) - truth))
        raw_errors.append(raw_error)
        tracked_errors.append(tracked_error)
        print(
            f"{sample.time_s:5.1f}  ({truth[0]:5.2f},{truth[1]:5.2f})  "
            f"({fix_position[0]:5.2f},{fix_position[1]:5.2f}) {raw_error:5.2f}  "
            f"({state.position[0]:5.2f},{state.position[1]:5.2f}) {tracked_error:5.2f}  "
            f"{'' if state.accepted else 'REJECTED'}"
        )

    print(
        f"\nmedian error: raw {np.median(raw_errors):.2f} m, "
        f"tracked {np.median(tracked_errors):.2f} m"
    )
    print(
        f"worst error:  raw {np.max(raw_errors):.2f} m, "
        f"tracked {np.max(tracked_errors):.2f} m  "
        "(the gate absorbs the spurious fixes)"
    )


if __name__ == "__main__":
    main()
