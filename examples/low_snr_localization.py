#!/usr/bin/env python
"""The paper's headline scenario: localization at low SNR with blocked LoS.

Builds the 18 m × 12 m classroom testbed with 6 wall-mounted APs,
places a client, obstructs the direct paths (the physical cause of low
SNR), and compares ROArray against SpotFi and ArrayTrack on the *same*
CSI traces — the setting of paper Fig. 6c, where ROArray's median error
(0.91 m) beats SpotFi (2.61 m) and ArrayTrack (3.52 m).

Run:  python examples/low_snr_localization.py  [n_locations]
"""

import sys

import numpy as np

from repro.baselines import ArrayTrackEstimator, SpotFiEstimator
from repro.core import RoArrayEstimator
from repro.experiments import run_snr_band_experiment, summarize_systems


def main() -> None:
    n_locations = int(sys.argv[1]) if len(sys.argv) > 1 else 5

    systems = [RoArrayEstimator(), SpotFiEstimator(), ArrayTrackEstimator()]
    print(
        f"Running the low-SNR band (≤ 2 dB, blocked LoS) on {n_locations} "
        "random classroom locations, 10 packets per AP, 6 APs...\n"
    )
    result = run_snr_band_experiment(
        "low", n_locations=n_locations, n_packets=10, n_aps=6, seed=42, systems=systems
    )

    print("Localization error:")
    print(summarize_systems({s.name: result.cdf(s.name) for s in systems}))

    print("\nDirect-path AoA error (degrees):")
    print(
        summarize_systems(
            {s.name: result.cdf(s.name, kind="direct_aoa") for s in systems}, unit="deg"
        )
    )

    ro = result.cdf("ROArray").median
    sf = result.cdf("SpotFi").median
    print(
        f"\nROArray vs SpotFi at low SNR: {ro:.2f} m vs {sf:.2f} m "
        f"({sf / max(ro, 1e-9):.1f}× better) — the robustness sparse recovery buys."
    )


if __name__ == "__main__":
    main()
