#!/usr/bin/env python
"""Autocalibrating an AP's per-antenna phase offsets (paper §III-D).

Every channel retune leaves each RF chain with an unknown constant
phase; uncorrected, AoA estimation is scrambled.  This example:

1. boots an AP with random phase offsets,
2. records a short calibration transmission from a surveyed bearing,
3. recovers the offsets by searching for the sharpest ROArray spectrum
   (and, for contrast, with Phaser's MUSIC-based objective),
4. shows the AoA estimate before/after correction.

Run:  python examples/phase_calibration.py
"""

import numpy as np

from repro.channel import (
    CsiSynthesizer,
    ImpairmentModel,
    UniformLinearArray,
    intel5300_layout,
    random_profile,
)
from repro.core import RoArrayEstimator, calibrate_phase_offsets
from repro.core.calibration import apply_phase_calibration
from repro.channel.trace import CsiTrace


def direct_aoa_error(estimator, trace, truth):
    return abs(estimator.estimate_direct_path(trace).aoa_deg - truth)


def main() -> None:
    rng = np.random.default_rng(3)
    array = UniformLinearArray()
    layout = intel5300_layout()

    # An AP that booted with unknown per-antenna phase offsets.
    impairments = ImpairmentModel(phase_offset_std_rad=1.0)
    synthesizer = CsiSynthesizer(array, layout, impairments, seed=99)
    print(f"True hidden offsets (rad): {np.round(synthesizer.phase_offsets, 2)}")

    # Calibration transmission from a known bearing (70°), good SNR.
    reference = random_profile(rng, n_paths=2, direct_aoa_deg=70.0, reflection_power_db=-9.0)
    calibration = synthesizer.packets(reference, n_packets=5, snr_db=20.0, rng=rng)

    for scheme in ("roarray", "music"):
        offsets = calibrate_phase_offsets(
            calibration.csi, array, estimator=scheme, known_aoa_deg=70.0
        )
        residual = np.abs(np.angle(np.exp(1j * (offsets - synthesizer.phase_offsets))))
        print(
            f"{scheme:>8} calibration: estimated {np.round(offsets, 2)} "
            f"(residual {np.round(residual, 2)} rad)"
        )
        if scheme == "roarray":
            recovered = offsets

    # A test transmission from a different, unknown bearing (120°).
    estimator = RoArrayEstimator()
    test_profile = random_profile(rng, n_paths=3, direct_aoa_deg=120.0)
    test = synthesizer.packets(test_profile, n_packets=5, snr_db=12.0, rng=rng)
    corrected = CsiTrace(
        csi=apply_phase_calibration(test.csi, recovered),
        snr_db=test.snr_db,
        rssi_dbm=test.rssi_dbm,
    )

    print(f"\nAoA error on a 120° test link:")
    print(f"  uncalibrated: {direct_aoa_error(estimator, test, 120.0):6.1f}°")
    print(f"  calibrated:   {direct_aoa_error(estimator, corrected, 120.0):6.1f}°")


if __name__ == "__main__":
    main()
