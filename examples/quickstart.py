#!/usr/bin/env python
"""Quickstart: estimate a direct path from one WiFi packet.

The minimal end-to-end ROArray flow:

1. Model the receiver hardware (3-antenna half-wavelength ULA, Intel
   5300 subcarrier layout).
2. Synthesize one packet of CSI for a 4-path indoor channel whose
   direct path arrives from 150°.
3. Run joint (AoA, ToA) sparse recovery and pick the smallest-ToA peak.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro.channel import (
    CsiSynthesizer,
    ImpairmentModel,
    UniformLinearArray,
    intel5300_layout,
    random_profile,
)
from repro.core import RoArrayEstimator
from repro.experiments.reporting.text import format_spectrum_ascii


def main() -> None:
    rng = np.random.default_rng(7)

    # --- the channel: 4 dominant paths, LoS at 150°, 30 ns -----------------
    profile = random_profile(rng, n_paths=4, direct_aoa_deg=150.0, direct_toa_s=30e-9)
    print("Ground-truth paths:")
    for path in profile.paths:
        tag = "direct" if path.is_direct else "reflection"
        print(
            f"  {tag:<10} AoA {path.aoa_deg:6.1f}°  ToA {path.toa_s * 1e9:6.1f} ns  "
            f"|gain| {abs(path.gain):.2f}"
        )

    # --- the receiver: one commodity AP ------------------------------------
    array = UniformLinearArray()          # 3 antennas, λ/2 spacing
    layout = intel5300_layout()           # 30 subcarriers, fδ = 1.25 MHz
    synthesizer = CsiSynthesizer(array, layout, ImpairmentModel(), seed=0)

    # --- one packet at 10 dB SNR -------------------------------------------
    trace = synthesizer.packets(profile, n_packets=1, snr_db=10.0, rng=rng)
    print(f"\nCSI matrix shape (antennas × subcarriers): {trace.packet(0).shape}")

    # --- ROArray: joint sparse recovery + smallest-ToA rule ----------------
    estimator = RoArrayEstimator()
    estimate = estimator.estimate_direct_path(trace)
    print(
        f"\nEstimated direct path: AoA {estimate.aoa_deg:.1f}° "
        f"(truth 150.0°), ToA {estimate.toa_s * 1e9:.0f} ns "
        f"(includes packet detection delay), {estimate.n_paths} paths resolved"
    )

    spectrum = estimator.aoa_spectrum(trace)
    print("\nAoA spectrum (angle marginal of the joint spectrum):")
    print(format_spectrum_ascii(spectrum))


if __name__ == "__main__":
    main()
