#!/usr/bin/env python
"""Tracking a moving client from single packets.

The paper motivates single-packet operation with frame aggregation
(§I): modern WiFi wraps many frames into one transmission, so a
localization fix often gets exactly *one* CSI measurement.  SpotFi
needs dozens of packets to cluster and ArrayTrack needs motion, but
ROArray's joint sparse recovery works per packet.

This example walks a client along a path through the classroom and
produces one position fix per step from a single packet per AP.

Run:  python examples/single_packet_tracking.py
"""

import numpy as np

from repro.channel import CsiSynthesizer, ImpairmentModel, UniformLinearArray, intel5300_layout
from repro.channel.geometry import Scene
from repro.core import RoArrayEstimator
from repro.core.localization import ApObservation, localize_weighted_aoa
from repro.experiments import classroom_access_points, classroom_room


def main() -> None:
    rng = np.random.default_rng(11)
    room = classroom_room()
    access_points = classroom_access_points(6, room)
    array = UniformLinearArray()
    layout = intel5300_layout()
    estimator = RoArrayEstimator()
    synthesizers = [
        CsiSynthesizer(array, layout, ImpairmentModel(), seed=i) for i in range(6)
    ]

    # A straight walk across the room, one fix every 1.5 m.
    waypoints = [(3.0 + 1.5 * step, 3.0 + 0.5 * step) for step in range(8)]

    print("step   true (x, y)      estimate (x, y)    error")
    errors = []
    for step, client in enumerate(waypoints):
        scene = Scene(room=room, access_points=access_points, client=client)
        observations = []
        for i in range(len(access_points)):
            profile = scene.multipath_profile(i, layout.wavelength)
            trace = synthesizers[i].packets(profile, n_packets=1, snr_db=12.0, rng=rng)
            analysis = estimator.analyze(trace)
            observations.append(
                ApObservation(access_points[i], analysis.direct.aoa_deg, trace.rssi_dbm)
            )
        fix = localize_weighted_aoa(observations, room, resolution_m=0.1)
        error = fix.error_to(client)
        errors.append(error)
        print(
            f"{step:4d}   ({client[0]:5.2f}, {client[1]:5.2f})   "
            f"({fix.position[0]:5.2f}, {fix.position[1]:5.2f})   {error:5.2f} m"
        )

    print(f"\nmedian single-packet tracking error: {np.median(errors):.2f} m")


if __name__ == "__main__":
    main()
