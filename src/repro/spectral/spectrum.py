"""Spectrum containers: the objects the paper's figures plot.

An :class:`AngleSpectrum` is the polar curve of paper Figs. 2–3; a
:class:`JointSpectrum` is the 2-D (ToA, AoA) heat map of paper Fig. 4.
Both normalize power to [0, 1] like the paper's plots ("the power in
the y-axis is normalized for all scenarios", Fig. 2 caption) and expose
peak extraction through the shared detectors.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.exceptions import ConfigurationError
from repro.spectral.peaks import find_peaks_1d, find_peaks_2d


@dataclass(frozen=True)
class SpectrumPeak:
    """One extracted path estimate."""

    aoa_deg: float
    power: float
    toa_s: float = float("nan")

    @property
    def has_toa(self) -> bool:
        return not np.isnan(self.toa_s)


@dataclass
class AngleSpectrum:
    """A 1-D AoA spectrum sampled on an angle grid."""

    angles_deg: np.ndarray
    power: np.ndarray

    def __post_init__(self) -> None:
        self.angles_deg = np.asarray(self.angles_deg, dtype=float)
        self.power = np.asarray(self.power, dtype=float)
        if self.angles_deg.shape != self.power.shape or self.angles_deg.ndim != 1:
            raise ConfigurationError(
                f"angle grid {self.angles_deg.shape} and power {self.power.shape} must be equal 1-D shapes"
            )
        if np.any(self.power < 0):
            raise ConfigurationError("spectrum power must be non-negative")

    def normalized(self) -> "AngleSpectrum":
        """Peak-normalized copy (paper figures plot power in [0, 1])."""
        peak = self.power.max(initial=0.0)
        if peak == 0:
            return AngleSpectrum(self.angles_deg.copy(), self.power.copy())
        return AngleSpectrum(self.angles_deg.copy(), self.power / peak)

    def peaks(self, *, max_peaks: int | None = None, min_relative_height: float = 0.05) -> list[SpectrumPeak]:
        indices = find_peaks_1d(
            self.power, max_peaks=max_peaks, min_relative_height=min_relative_height
        )
        return [SpectrumPeak(aoa_deg=float(self.angles_deg[i]), power=float(self.power[i])) for i in indices]

    def strongest_aoa(self) -> float:
        """Angle of the global maximum."""
        return float(self.angles_deg[int(np.argmax(self.power))])

    def closest_peak_error(self, true_aoa_deg: float, **peak_kwargs) -> float:
        """|true − closest peak| in degrees — the paper's Fig. 7 metric.

        The paper measures AoA accuracy as "the difference between the
        ground truth direct-path AoA and the closest peaks in the
        spectrum" (§IV-C).  Falls back to the global maximum when no
        peak clears the height floor.
        """
        peaks = self.peaks(**peak_kwargs)
        if not peaks:
            return abs(self.strongest_aoa() - true_aoa_deg)
        return min(abs(p.aoa_deg - true_aoa_deg) for p in peaks)

    def sharpness(self) -> float:
        """Inverse participation ratio of the normalized spectrum.

        1/N for a flat spectrum, → 1 for a single-bin spike; the Fig. 2
        experiment uses it to quantify "the sharpness of beam".
        """
        total = self.power.sum()
        if total == 0:
            return 0.0
        p = self.power / total
        return float(np.sum(p**2))

    def to_dict(self) -> dict:
        """JSON-ready view (round-trips through :meth:`from_dict`)."""
        return {"angles_deg": self.angles_deg.tolist(), "power": self.power.tolist()}

    @classmethod
    def from_dict(cls, payload: dict) -> "AngleSpectrum":
        return cls(
            angles_deg=np.asarray(payload["angles_deg"], dtype=float),
            power=np.asarray(payload["power"], dtype=float),
        )


@dataclass
class JointSpectrum:
    """A 2-D (AoA × ToA) spectrum sampled on a rectangular grid.

    ``power[i, j]`` corresponds to ``angles_deg[i]`` and ``toas_s[j]``.
    """

    angles_deg: np.ndarray
    toas_s: np.ndarray
    power: np.ndarray

    def __post_init__(self) -> None:
        self.angles_deg = np.asarray(self.angles_deg, dtype=float)
        self.toas_s = np.asarray(self.toas_s, dtype=float)
        self.power = np.asarray(self.power, dtype=float)
        expected = (self.angles_deg.size, self.toas_s.size)
        if self.power.shape != expected:
            raise ConfigurationError(
                f"power shape {self.power.shape} does not match grids {expected}"
            )
        if np.any(self.power < 0):
            raise ConfigurationError("spectrum power must be non-negative")

    def normalized(self) -> "JointSpectrum":
        peak = self.power.max(initial=0.0)
        if peak == 0:
            return JointSpectrum(self.angles_deg.copy(), self.toas_s.copy(), self.power.copy())
        return JointSpectrum(self.angles_deg.copy(), self.toas_s.copy(), self.power / peak)

    def peaks(self, *, max_peaks: int | None = None, min_relative_height: float = 0.05) -> list[SpectrumPeak]:
        cells = find_peaks_2d(
            self.power, max_peaks=max_peaks, min_relative_height=min_relative_height
        )
        return [
            SpectrumPeak(
                aoa_deg=float(self.angles_deg[r]),
                toa_s=float(self.toas_s[c]),
                power=float(self.power[r, c]),
            )
            for r, c in cells
        ]

    def angle_marginal(self) -> AngleSpectrum:
        """Collapse the ToA axis (max over delays) into an AoA spectrum."""
        return AngleSpectrum(self.angles_deg.copy(), self.power.max(axis=1))

    def direct_path_peak(
        self, *, max_peaks: int = 10, min_relative_height: float = 0.1
    ) -> SpectrumPeak:
        """The smallest-ToA peak — ROArray's direct-path rule (paper §III-B)."""
        peaks = self.peaks(max_peaks=max_peaks, min_relative_height=min_relative_height)
        if not peaks:
            r, c = np.unravel_index(int(np.argmax(self.power)), self.power.shape)
            return SpectrumPeak(
                aoa_deg=float(self.angles_deg[r]),
                toa_s=float(self.toas_s[c]),
                power=float(self.power[r, c]),
            )
        return min(peaks, key=lambda p: p.toa_s)

    def to_dict(self) -> dict:
        """JSON-ready view (round-trips through :meth:`from_dict`)."""
        return {
            "angles_deg": self.angles_deg.tolist(),
            "toas_s": self.toas_s.tolist(),
            "power": self.power.tolist(),
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "JointSpectrum":
        return cls(
            angles_deg=np.asarray(payload["angles_deg"], dtype=float),
            toas_s=np.asarray(payload["toas_s"], dtype=float),
            power=np.asarray(payload["power"], dtype=float),
        )
