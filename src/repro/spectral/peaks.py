"""Local-maximum peak detection on 1-D and 2-D sampled spectra."""

from __future__ import annotations

import numpy as np

from repro.exceptions import ConfigurationError


def find_peaks_1d(
    values: np.ndarray,
    *,
    max_peaks: int | None = None,
    min_relative_height: float = 0.05,
) -> list[int]:
    """Indices of local maxima, strongest first.

    A sample is a peak when it is at least as large as both neighbors
    (array ends count as peaks when they dominate their single
    neighbor) and reaches ``min_relative_height`` × the global maximum.
    """
    values = np.asarray(values, dtype=float)
    if values.ndim != 1:
        raise ConfigurationError(f"find_peaks_1d expects 1-D input, got ndim={values.ndim}")
    n = values.size
    if n == 0:
        return []
    if n == 1:
        return [0] if values[0] > 0 else []

    peak = values.max()
    if peak <= 0:
        return []
    floor = min_relative_height * peak

    candidates: list[int] = []
    for i in range(n):
        left = values[i - 1] if i > 0 else -np.inf
        right = values[i + 1] if i < n - 1 else -np.inf
        if values[i] >= floor and values[i] >= left and values[i] >= right:
            # Skip plateau duplicates: only the first sample of a flat run counts.
            if i > 0 and values[i] == values[i - 1] and (i - 1) in candidates:
                continue
            candidates.append(i)

    candidates.sort(key=lambda i: values[i], reverse=True)
    if max_peaks is not None:
        candidates = candidates[:max_peaks]
    return candidates


def find_peaks_2d(
    values: np.ndarray,
    *,
    max_peaks: int | None = None,
    min_relative_height: float = 0.05,
) -> list[tuple[int, int]]:
    """(row, col) indices of 2-D local maxima, strongest first.

    A cell is a peak when it dominates its 8-neighborhood (edges use the
    available neighbors) and reaches ``min_relative_height`` × the
    global maximum.
    """
    values = np.asarray(values, dtype=float)
    if values.ndim != 2:
        raise ConfigurationError(f"find_peaks_2d expects 2-D input, got ndim={values.ndim}")
    if values.size == 0:
        return []
    peak = values.max()
    if peak <= 0:
        return []
    floor = min_relative_height * peak

    padded = np.full((values.shape[0] + 2, values.shape[1] + 2), -np.inf)
    padded[1:-1, 1:-1] = values
    center = padded[1:-1, 1:-1]
    is_peak = center >= floor
    for dr in (-1, 0, 1):
        for dc in (-1, 0, 1):
            if dr == 0 and dc == 0:
                continue
            neighbor = padded[1 + dr : padded.shape[0] - 1 + dr, 1 + dc : padded.shape[1] - 1 + dc]
            is_peak &= center >= neighbor

    rows, cols = np.nonzero(is_peak)
    order = np.argsort(values[rows, cols])[::-1]
    results = [(int(rows[i]), int(cols[i])) for i in order]

    # Deduplicate plateau runs: keep one representative per connected flat peak.
    deduped: list[tuple[int, int]] = []
    for r, c in results:
        if any(abs(r - r2) <= 1 and abs(c - c2) <= 1 and values[r, c] == values[r2, c2] for r2, c2 in deduped):
            continue
        deduped.append((r, c))

    if max_peaks is not None:
        deduped = deduped[:max_peaks]
    return deduped
