"""Shared spectrum containers and peak finding.

Every estimator in this package — MUSIC, SpotFi, ArrayTrack and ROArray
itself — ultimately produces either a 1-D AoA spectrum or a 2-D
(AoA, ToA) spectrum and reads off its peaks.  This subpackage holds the
common containers (:class:`AngleSpectrum`, :class:`JointSpectrum`) and
the peak detectors so the systems are compared on identical
post-processing.
"""

from repro.spectral.peaks import find_peaks_1d, find_peaks_2d
from repro.spectral.spectrum import AngleSpectrum, JointSpectrum, SpectrumPeak

__all__ = [
    "AngleSpectrum",
    "JointSpectrum",
    "SpectrumPeak",
    "find_peaks_1d",
    "find_peaks_2d",
]
