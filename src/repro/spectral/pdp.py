"""Power-delay-profile (PDP) analysis from CSI.

A classic ToA-domain view of the channel (cf. Splicer, Xie et al. [10]
in the paper's bibliography): the inverse DFT of the CSI across
subcarriers is the channel impulse response; its squared magnitude, the
PDP, shows where the energy arrives in delay.  On 30 reported
subcarriers the native resolution is 1/(L·fδ) ≈ 27 ns — far coarser
than the sparse joint estimator, which is the quantitative argument for
the paper's approach; the zero-padded PDP here is still useful for
visualization, sanity checks, and the delay-spread statistics the
channel model is validated against.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.channel.ofdm import SubcarrierLayout
from repro.exceptions import ConfigurationError


@dataclass
class PowerDelayProfile:
    """Sampled PDP: power vs delay over one unambiguous range."""

    delays_s: np.ndarray
    power: np.ndarray

    def __post_init__(self) -> None:
        self.delays_s = np.asarray(self.delays_s, dtype=float)
        self.power = np.asarray(self.power, dtype=float)
        if self.delays_s.shape != self.power.shape or self.delays_s.ndim != 1:
            raise ConfigurationError("delays and power must be equal-length 1-D arrays")
        if np.any(self.power < 0):
            raise ConfigurationError("PDP power must be non-negative")

    @property
    def total_power(self) -> float:
        return float(self.power.sum())

    def normalized(self) -> "PowerDelayProfile":
        peak = self.power.max(initial=0.0)
        if peak == 0:
            return PowerDelayProfile(self.delays_s.copy(), self.power.copy())
        return PowerDelayProfile(self.delays_s.copy(), self.power / peak)

    def mean_delay(self) -> float:
        """First moment of the PDP (seconds)."""
        total = self.total_power
        if total == 0:
            return 0.0
        return float(np.sum(self.delays_s * self.power) / total)

    def rms_delay_spread(self) -> float:
        """Second central moment — the standard channel-dispersion figure."""
        total = self.total_power
        if total == 0:
            return 0.0
        mean = self.mean_delay()
        variance = float(np.sum((self.delays_s - mean) ** 2 * self.power) / total)
        return float(np.sqrt(max(variance, 0.0)))

    def strongest_delay(self) -> float:
        return float(self.delays_s[int(np.argmax(self.power))])


def power_delay_profile(
    csi_matrix: np.ndarray,
    layout: SubcarrierLayout,
    *,
    oversample: int = 8,
) -> PowerDelayProfile:
    """PDP of one packet via zero-padded IDFT across subcarriers.

    Parameters
    ----------
    csi_matrix:
        CSI of shape ``(M, L)``; antenna PDPs are averaged (the delay
        structure is common, the noise is not).
    oversample:
        Zero-padding factor for a smoother delay axis (interpolation
        only — resolution stays 1/(L·fδ)).
    """
    csi_matrix = np.asarray(csi_matrix, dtype=complex)
    if csi_matrix.ndim != 2:
        raise ConfigurationError(f"csi must be 2-D (antennas × subcarriers), got {csi_matrix.shape}")
    if csi_matrix.shape[1] != layout.n_subcarriers:
        raise ConfigurationError(
            f"csi has {csi_matrix.shape[1]} subcarriers, layout expects {layout.n_subcarriers}"
        )
    if oversample < 1:
        raise ConfigurationError(f"oversample must be >= 1, got {oversample}")

    n_bins = layout.n_subcarriers * oversample
    impulse = np.fft.ifft(csi_matrix, n=n_bins, axis=1)
    power = np.mean(np.abs(impulse) ** 2, axis=0)
    delays = np.arange(n_bins) / (n_bins * layout.spacing)
    return PowerDelayProfile(delays_s=delays, power=power)


def delay_resolution(layout: SubcarrierLayout) -> float:
    """Native PDP delay resolution, 1/(L·fδ) — ≈26.7 ns for the Intel 5300."""
    return 1.0 / (layout.n_subcarriers * layout.spacing)
