"""SpotFi (Kotaru et al., SIGCOMM 2015) — re-implemented for comparison.

SpotFi is the strongest MUSIC-based comparison point in the paper
(40 cm median at high SNR).  Its per-AP chain:

1. **Sanitization** — remove the linear phase slope across subcarriers
   (packet detection delay / STO) by least squares, so ToA becomes
   comparable across packets.
2. **Smoothed CSI matrix** — rearrange one packet's 3×30 CSI into a
   30×32 matrix whose columns are shifted (antenna, subcarrier)
   subarray snapshots; this restores covariance rank under coherent
   multipath while *increasing* the effective aperture beyond 3
   antennas.
3. **Joint 2-D MUSIC** — noise-subspace spectrum over an (AoA, ToA)
   grid with the model order fixed at K = 5 (the sensitivity the paper
   §III-B calls out).
4. **Clustering + likelihood** — peaks from all packets are clustered
   in (AoA, ToA) space and each cluster is scored: big clusters with
   small ToA spread, early mean ToA and high power are likely the
   direct path.

The implementation keeps SpotFi's structure and parameters; only the
likelihood weights (unpublished, learned offline in the original) are
re-derived constants, documented on :class:`SpotFiConfig`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.baselines.music import forward_backward_average, music_joint_spectrum
from repro.channel.array import UniformLinearArray
from repro.channel.ofdm import SubcarrierLayout, intel5300_layout
from repro.channel.trace import CsiTrace
from repro.core.direct_path import ApAnalysis, DirectPathEstimate
from repro.core.grids import AngleGrid, DelayGrid
from repro.exceptions import ConfigurationError, SolverError
from repro.spectral.spectrum import AngleSpectrum, JointSpectrum, SpectrumPeak


def sanitize_csi_phase(csi_matrix: np.ndarray) -> np.ndarray:
    """Remove the common linear phase slope across subcarriers.

    Fits one slope shared by all antennas (the detection delay is common
    to the RF chains) to the unwrapped per-antenna phases and subtracts
    it.  This removes the packet detection delay *and* part of the true
    ToA — which is why SpotFi's ToAs are only useful relatively, and why
    its direct-path logic leans on clustering rather than raw delay.
    """
    csi_matrix = np.asarray(csi_matrix, dtype=complex)
    if csi_matrix.ndim != 2:
        raise SolverError(f"csi must be 2-D (antennas × subcarriers), got {csi_matrix.shape}")
    n_subcarriers = csi_matrix.shape[1]
    index = np.arange(n_subcarriers, dtype=float)

    phases = np.unwrap(np.angle(csi_matrix), axis=1)
    # Least-squares common slope: average the per-antenna slopes.
    centered_index = index - index.mean()
    denom = float(np.sum(centered_index**2))
    slopes = (phases - phases.mean(axis=1, keepdims=True)) @ centered_index / denom
    common_slope = float(slopes.mean())
    return csi_matrix * np.exp(-1j * common_slope * index)[None, :]


def smoothed_csi_matrix(
    csi_matrix: np.ndarray, *, antenna_window: int = 2, subcarrier_window: int = 15
) -> np.ndarray:
    """SpotFi's smoothed CSI matrix.

    Rows enumerate the (antenna, subcarrier) cells of one subarray
    window, antenna-major (subcarrier fastest); columns enumerate all
    window placements.  For the paper's 3×30 CSI with the default 2×15
    window this yields the classic 30 × 32 matrix.
    """
    csi_matrix = np.asarray(csi_matrix, dtype=complex)
    m, length = csi_matrix.shape
    if not 1 <= antenna_window <= m:
        raise ConfigurationError(f"antenna_window must be in [1, {m}], got {antenna_window}")
    if not 1 <= subcarrier_window <= length:
        raise ConfigurationError(
            f"subcarrier_window must be in [1, {length}], got {subcarrier_window}"
        )
    antenna_starts = m - antenna_window + 1
    subcarrier_starts = length - subcarrier_window + 1

    rows = antenna_window * subcarrier_window
    columns = antenna_starts * subcarrier_starts
    smoothed = np.empty((rows, columns), dtype=complex)
    column = 0
    for a in range(antenna_starts):
        for b in range(subcarrier_starts):
            window = csi_matrix[a : a + antenna_window, b : b + subcarrier_window]
            smoothed[:, column] = window.reshape(-1)
            column += 1
    return smoothed


def subarray_joint_steering(
    array: UniformLinearArray,
    layout: SubcarrierLayout,
    angle_grid: AngleGrid,
    delay_grid: DelayGrid,
    *,
    antenna_window: int = 2,
    subcarrier_window: int = 15,
) -> np.ndarray:
    """Joint steering dictionary matching :func:`smoothed_csi_matrix` rows.

    Rows are antenna-major (Λ^i·Γ^j at row i·L' + j); columns are
    delay-major to match :func:`repro.baselines.music.music_joint_spectrum`.
    """
    spatial = array.phase_factor(angle_grid.angles_deg)[None, :] ** np.arange(antenna_window)[:, None]
    temporal = (
        layout.delay_phase_factor(delay_grid.toas_s)[None, :]
        ** np.arange(subcarrier_window)[:, None]
    )
    angle_major = np.kron(spatial, temporal)  # column p·Nτ + q ↔ (θ_p, τ_q)
    n_angles, n_toas = angle_grid.n_points, delay_grid.n_points
    reorder = np.arange(n_angles * n_toas).reshape(n_angles, n_toas).T.reshape(-1)
    return angle_major[:, reorder]


@dataclass(frozen=True)
class SpotFiConfig:
    """SpotFi parameters.

    ``model_order`` is fixed at 5 as in the original (paper footnote 8).
    The clustering tolerances and likelihood weights stand in for the
    unpublished learned weights; they were tuned once on synthetic
    scenes and kept fixed across every experiment in this repository.
    """

    angle_grid: AngleGrid = field(default_factory=lambda: AngleGrid(n_points=91))
    delay_grid: DelayGrid = field(default_factory=lambda: DelayGrid(n_points=50))
    model_order: int = 5
    antenna_window: int = 2
    subcarrier_window: int = 15
    peaks_per_packet: int = 8
    peak_floor: float = 0.1
    cluster_aoa_tolerance_deg: float = 10.0
    cluster_toa_tolerance_s: float = 80e-9
    weight_size: float = 1.0
    weight_toa_mean: float = 1.0
    weight_toa_std: float = 0.5
    weight_power: float = 0.3


@dataclass
class PathCluster:
    """A cluster of per-packet (AoA, ToA) peaks hypothesized as one path."""

    aoas_deg: list[float] = field(default_factory=list)
    toas_s: list[float] = field(default_factory=list)
    powers: list[float] = field(default_factory=list)

    def add(self, peak: SpectrumPeak) -> None:
        self.aoas_deg.append(peak.aoa_deg)
        self.toas_s.append(peak.toa_s)
        self.powers.append(peak.power)

    @property
    def size(self) -> int:
        return len(self.aoas_deg)

    @property
    def mean_aoa_deg(self) -> float:
        return float(np.mean(self.aoas_deg))

    @property
    def mean_toa_s(self) -> float:
        return float(np.mean(self.toas_s))

    @property
    def std_toa_s(self) -> float:
        return float(np.std(self.toas_s))

    @property
    def mean_power(self) -> float:
        return float(np.mean(self.powers))


class SpotFiEstimator:
    """SpotFi's per-AP direct-path estimation chain."""

    name = "SpotFi"

    def __init__(
        self,
        array: UniformLinearArray | None = None,
        layout: SubcarrierLayout | None = None,
        config: SpotFiConfig | None = None,
    ) -> None:
        self.array = array or UniformLinearArray()
        self.layout = layout or intel5300_layout()
        self.config = config or SpotFiConfig()
        self._steering = subarray_joint_steering(
            self.array,
            self.layout,
            self.config.angle_grid,
            self.config.delay_grid,
            antenna_window=self.config.antenna_window,
            subcarrier_window=self.config.subcarrier_window,
        )

    # -- spectra -----------------------------------------------------------

    def packet_spectrum(self, csi_matrix: np.ndarray) -> JointSpectrum:
        """Sanitize → smooth → joint 2-D MUSIC for one packet."""
        sanitized = sanitize_csi_phase(csi_matrix)
        smoothed = smoothed_csi_matrix(
            sanitized,
            antenna_window=self.config.antenna_window,
            subcarrier_window=self.config.subcarrier_window,
        )
        covariance = forward_backward_average(smoothed @ smoothed.conj().T / smoothed.shape[1])
        return music_joint_spectrum(
            covariance,
            self._steering,
            self.config.angle_grid.angles_deg,
            self.config.delay_grid.toas_s,
            n_sources=self.config.model_order,
        )

    def aoa_spectrum(self, trace: CsiTrace) -> AngleSpectrum:
        """Average angle marginal across packets (paper Fig. 2 plots)."""
        accumulated = None
        for p in range(trace.n_packets):
            marginal = self.packet_spectrum(trace.packet(p)).angle_marginal().normalized()
            accumulated = marginal.power if accumulated is None else accumulated + marginal.power
        assert accumulated is not None
        return AngleSpectrum(self.config.angle_grid.angles_deg, accumulated / trace.n_packets)

    # -- clustering / direct path -------------------------------------------

    def collect_peaks(self, trace: CsiTrace) -> list[SpectrumPeak]:
        peaks: list[SpectrumPeak] = []
        for p in range(trace.n_packets):
            spectrum = self.packet_spectrum(trace.packet(p))
            peaks.extend(
                spectrum.peaks(
                    max_peaks=self.config.peaks_per_packet,
                    min_relative_height=self.config.peak_floor,
                )
            )
        return peaks

    def cluster_peaks(self, peaks: list[SpectrumPeak]) -> list[PathCluster]:
        """Greedy leader clustering in (AoA, ToA), strongest peaks first."""
        clusters: list[PathCluster] = []
        for peak in sorted(peaks, key=lambda p: p.power, reverse=True):
            for cluster in clusters:
                if (
                    abs(peak.aoa_deg - cluster.mean_aoa_deg) <= self.config.cluster_aoa_tolerance_deg
                    and abs(peak.toa_s - cluster.mean_toa_s) <= self.config.cluster_toa_tolerance_s
                ):
                    cluster.add(peak)
                    break
            else:
                fresh = PathCluster()
                fresh.add(peak)
                clusters.append(fresh)
        return clusters

    def cluster_likelihood(self, cluster: PathCluster, clusters: list[PathCluster]) -> float:
        """SpotFi's direct-path likelihood, higher = more likely LoS."""
        total_points = sum(c.size for c in clusters)
        toa_scale = self.config.delay_grid.stop_s - self.config.delay_grid.start_s
        max_power = max(c.mean_power for c in clusters)
        size_term = cluster.size / total_points
        toa_mean_term = (cluster.mean_toa_s - self.config.delay_grid.start_s) / toa_scale
        toa_std_term = cluster.std_toa_s / toa_scale
        power_term = cluster.mean_power / max_power if max_power > 0 else 0.0
        return (
            self.config.weight_size * size_term
            - self.config.weight_toa_mean * toa_mean_term
            - self.config.weight_toa_std * toa_std_term
            + self.config.weight_power * power_term
        )

    def analyze(self, trace: CsiTrace) -> ApAnalysis:
        """Peaks from every packet → clusters → max-likelihood cluster."""
        peaks = self.collect_peaks(trace)
        if not peaks:
            # Degenerate spectrum: fall back to the strongest cell of packet 0.
            spectrum = self.packet_spectrum(trace.packet(0))
            best = spectrum.direct_path_peak()
            direct = DirectPathEstimate(best.aoa_deg, best.toa_s, best.power, n_paths=1)
            return ApAnalysis(direct=direct, candidate_aoas_deg=(best.aoa_deg,))
        clusters = self.cluster_peaks(peaks)
        best = max(clusters, key=lambda c: self.cluster_likelihood(c, clusters))
        direct = DirectPathEstimate(
            aoa_deg=best.mean_aoa_deg,
            toa_s=best.mean_toa_s,
            power=best.mean_power,
            n_paths=len(clusters),
        )
        return ApAnalysis(
            direct=direct,
            candidate_aoas_deg=tuple(cluster.mean_aoa_deg for cluster in clusters),
        )

    def estimate_direct_path(self, trace: CsiTrace) -> DirectPathEstimate:
        """Direct-path estimate only (see :meth:`analyze` for the full result)."""
        return self.analyze(trace).direct
