"""Model-order (source count) estimation for subspace methods.

MUSIC needs the number of sources ``K`` to split signal from noise
subspace; the paper's §III-B pins SpotFi's weakness on a *fixed* K = 5
(footnote 8).  This module implements the standard information-theoretic
estimators — Akaike (AIC) and Minimum Description Length (MDL; Wax &
Kailath) — from the covariance eigenvalues, so the baselines can be run
with estimated instead of fixed model order, and the ablation can
quantify what that buys (and where it fails at low SNR, which is the
paper's deeper point: even a *correct* K does not fix a noisy subspace
split).
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import SolverError


def _criterion_terms(eigenvalues: np.ndarray, n_snapshots: int, k: int) -> tuple[float, float]:
    """Log-likelihood term and free-parameter count for order ``k``."""
    m = eigenvalues.size
    tail = eigenvalues[k:]
    geometric = float(np.exp(np.mean(np.log(tail))))
    arithmetic = float(np.mean(tail))
    if arithmetic <= 0:
        raise SolverError("covariance has non-positive noise eigenvalues")
    log_likelihood = n_snapshots * (m - k) * np.log(arithmetic / geometric)
    free_parameters = k * (2 * m - k)
    return log_likelihood, float(free_parameters)


def estimate_model_order(
    covariance: np.ndarray,
    n_snapshots: int,
    *,
    criterion: str = "mdl",
    max_order: int | None = None,
) -> int:
    """Estimate the source count from covariance eigenvalues.

    Parameters
    ----------
    covariance:
        Hermitian sample covariance (M × M).
    n_snapshots:
        Number of snapshots the covariance was averaged over (enters
        the likelihood weighting).
    criterion:
        ``"mdl"`` (consistent; Wax–Kailath) or ``"aic"`` (tends to
        overestimate at high SNR but reacts faster with few snapshots).
    max_order:
        Cap on the returned order (≤ M − 1).

    Returns
    -------
    int
        Estimated K in ``[0, max_order]``.
    """
    covariance = np.asarray(covariance)
    if covariance.ndim != 2 or covariance.shape[0] != covariance.shape[1]:
        raise SolverError(f"covariance must be square, got {covariance.shape}")
    if n_snapshots < 1:
        raise SolverError(f"n_snapshots must be >= 1, got {n_snapshots}")
    if criterion not in ("mdl", "aic"):
        raise SolverError(f"criterion must be 'mdl' or 'aic', got {criterion!r}")

    m = covariance.shape[0]
    limit = m - 1 if max_order is None else min(max_order, m - 1)
    eigenvalues = np.linalg.eigvalsh(covariance)[::-1]  # descending
    eigenvalues = np.maximum(eigenvalues, 1e-18 * max(eigenvalues[0], 1e-300))

    best_order, best_score = 0, np.inf
    for k in range(0, limit + 1):
        log_likelihood, free_parameters = _criterion_terms(eigenvalues, n_snapshots, k)
        if criterion == "aic":
            score = log_likelihood + free_parameters
        else:
            score = log_likelihood + 0.5 * free_parameters * np.log(n_snapshots)
        if score < best_score:
            best_score, best_order = score, k
    return best_order


def estimate_model_order_from_snapshots(
    snapshots: np.ndarray, *, criterion: str = "mdl", max_order: int | None = None
) -> int:
    """Convenience wrapper: covariance + order estimate from raw snapshots."""
    snapshots = np.asarray(snapshots)
    if snapshots.ndim != 2:
        raise SolverError(f"snapshots must be 2-D, got shape {snapshots.shape}")
    n = snapshots.shape[1]
    covariance = snapshots @ snapshots.conj().T / n
    return estimate_model_order(covariance, n, criterion=criterion, max_order=max_order)
