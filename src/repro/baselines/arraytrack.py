"""ArrayTrack (Xiong & Jamieson, NSDI 2013) — re-implemented for comparison.

ArrayTrack runs *spatial-only* MUSIC per packet (subcarriers are used
as snapshots but their delay structure is not modeled), then combines
packets by multiplying normalized spectra ("spectra synthesis"), which
suppresses peaks that move between packets.  Its aperture is therefore
bounded by the physical antenna count — the paper's explanation for its
weaker accuracy (§IV-B) — and without client/AP motion it must fall
back to picking the strongest synthesized peak as the direct path.

The original runs on 6–8 antenna SDR arrays; per the paper's §IV-A we
restrict it to the same 3-antenna commodity setup as everyone else.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.baselines.music import music_angle_spectrum
from repro.channel.array import UniformLinearArray
from repro.channel.trace import CsiTrace
from repro.core.direct_path import ApAnalysis, DirectPathEstimate
from repro.core.grids import AngleGrid
from repro.core.steering import angle_steering_dictionary
from repro.exceptions import ConfigurationError
from repro.spectral.spectrum import AngleSpectrum


@dataclass(frozen=True)
class ArrayTrackConfig:
    """ArrayTrack parameters.

    ``model_order`` defaults to M − 1 = 2, the maximum a 3-antenna MUSIC
    can resolve — the aperture ceiling the paper contrasts with the
    subcarrier-stacked systems.
    """

    angle_grid: AngleGrid = field(default_factory=lambda: AngleGrid(n_points=181))
    model_order: int = 2
    peak_floor: float = 0.1
    max_peaks: int = 4
    spectrum_floor: float = 1e-6

    def __post_init__(self) -> None:
        if self.model_order < 1:
            raise ConfigurationError(f"model_order must be >= 1, got {self.model_order}")


class ArrayTrackEstimator:
    """ArrayTrack's per-AP AoA estimation chain."""

    name = "ArrayTrack"

    def __init__(
        self,
        array: UniformLinearArray | None = None,
        config: ArrayTrackConfig | None = None,
    ) -> None:
        self.array = array or UniformLinearArray()
        self.config = config or ArrayTrackConfig()
        if self.config.model_order >= self.array.n_antennas:
            raise ConfigurationError(
                f"MUSIC model order {self.config.model_order} needs fewer sources than "
                f"antennas ({self.array.n_antennas})"
            )
        self._steering = angle_steering_dictionary(self.array, self.config.angle_grid)

    def packet_spectrum(self, csi_matrix: np.ndarray) -> AngleSpectrum:
        """Spatial MUSIC for one packet, subcarriers as snapshots."""
        return music_angle_spectrum(
            np.asarray(csi_matrix, dtype=complex),
            self._steering,
            self.config.angle_grid.angles_deg,
            n_sources=self.config.model_order,
        )

    def aoa_spectrum(self, trace: CsiTrace) -> AngleSpectrum:
        """Multi-packet spectra synthesis: geometric mean of packet spectra.

        Multiplying normalized spectra (in log domain, for numerical
        stability) keeps only peaks present in *every* packet — the
        ArrayTrack noise-rejection mechanism.
        """
        log_accumulated = np.zeros(self.config.angle_grid.n_points)
        for p in range(trace.n_packets):
            normalized = self.packet_spectrum(trace.packet(p)).normalized()
            log_accumulated += np.log(np.maximum(normalized.power, self.config.spectrum_floor))
        synthesized = np.exp(log_accumulated / trace.n_packets)
        return AngleSpectrum(self.config.angle_grid.angles_deg, synthesized)

    def analyze(self, trace: CsiTrace) -> ApAnalysis:
        """Strongest synthesized peak (no motion → no stability selection).

        ToA is reported as NaN: spatial-only MUSIC has no delay model,
        which is precisely why ArrayTrack cannot use ROArray's
        smallest-ToA rule.
        """
        spectrum = self.aoa_spectrum(trace)
        peaks = spectrum.peaks(
            max_peaks=self.config.max_peaks, min_relative_height=self.config.peak_floor
        )
        if peaks:
            best = max(peaks, key=lambda p: p.power)
            direct = DirectPathEstimate(
                aoa_deg=best.aoa_deg, toa_s=float("nan"), power=best.power, n_paths=len(peaks)
            )
            return ApAnalysis(
                direct=direct, candidate_aoas_deg=tuple(p.aoa_deg for p in peaks)
            )
        direct = DirectPathEstimate(
            aoa_deg=spectrum.strongest_aoa(),
            toa_s=float("nan"),
            power=float(spectrum.power.max(initial=0.0)),
            n_paths=1,
        )
        return ApAnalysis(direct=direct, candidate_aoas_deg=(direct.aoa_deg,))

    def estimate_direct_path(self, trace: CsiTrace) -> DirectPathEstimate:
        """Direct-path estimate only (see :meth:`analyze` for the full result)."""
        return self.analyze(trace).direct
