"""MUSIC (MUltiple SIgnal Classification) and covariance conditioning.

MUSIC (Schmidt [14]) eigendecomposes the snapshot covariance, splits
signal from noise subspace using a model order ``K``, and scores each
candidate steering vector by how orthogonal it is to the noise
subspace:

    P(θ) = 1 / ‖E_nᴴ s(θ)‖²

Indoor multipath is *coherent* (all paths carry the same symbol), which
rank-collapses the covariance; the standard fixes implemented here are
forward–backward averaging and spatial smoothing over subarrays.  The
paper's §II motivates ROArray with exactly the failure mode these tools
cannot fix: when the SNR is low the signal/noise subspace split itself
becomes unreliable.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import SolverError
from repro.spectral.spectrum import AngleSpectrum, JointSpectrum


def sample_covariance(snapshots: np.ndarray) -> np.ndarray:
    """``R = Y Yᴴ / N`` for a snapshot matrix ``Y`` of shape (M, N)."""
    snapshots = np.asarray(snapshots)
    if snapshots.ndim != 2:
        raise SolverError(f"snapshots must be 2-D (sensors × snapshots), got ndim={snapshots.ndim}")
    n = snapshots.shape[1]
    if n == 0:
        raise SolverError("need at least one snapshot")
    return snapshots @ snapshots.conj().T / n


def forward_backward_average(covariance: np.ndarray) -> np.ndarray:
    """Forward–backward averaging: ``(R + J R* J) / 2``.

    ``J`` is the exchange (flip) matrix.  Decorrelates pairs of coherent
    sources on a ULA at no aperture cost.
    """
    covariance = np.asarray(covariance)
    if covariance.ndim != 2 or covariance.shape[0] != covariance.shape[1]:
        raise SolverError(f"covariance must be square, got shape {covariance.shape}")
    flipped = covariance[::-1, ::-1].conj()
    return 0.5 * (covariance + flipped)


def spatial_smoothing(snapshots: np.ndarray, subarray_size: int) -> np.ndarray:
    """Average subarray covariances over a sliding window (ULA smoothing).

    Returns a ``subarray_size × subarray_size`` covariance whose rank is
    restored up to the number of subarrays, at the cost of shrinking the
    effective aperture — the trade ArrayTrack-class systems must make to
    handle coherent multipath with few antennas.
    """
    snapshots = np.asarray(snapshots)
    m = snapshots.shape[0]
    if not 2 <= subarray_size <= m:
        raise SolverError(f"subarray_size must be in [2, {m}], got {subarray_size}")
    n_subarrays = m - subarray_size + 1
    accumulated = np.zeros((subarray_size, subarray_size), dtype=complex)
    for start in range(n_subarrays):
        block = snapshots[start : start + subarray_size]
        accumulated += sample_covariance(block)
    return accumulated / n_subarrays


def noise_subspace(covariance: np.ndarray, n_sources: int) -> np.ndarray:
    """Eigenvectors spanning the noise subspace (columns).

    ``n_sources`` is the assumed model order ``K``; MUSIC's accuracy
    hinges on it (paper §III-B notes SpotFi fixes K = 5 and suffers
    when the true K differs).
    """
    covariance = np.asarray(covariance)
    m = covariance.shape[0]
    if not 1 <= n_sources < m:
        raise SolverError(f"n_sources must be in [1, {m - 1}], got {n_sources}")
    eigenvalues, eigenvectors = np.linalg.eigh(covariance)
    # eigh returns ascending order: the smallest M−K eigenpairs are noise.
    return eigenvectors[:, : m - n_sources]


def music_pseudospectrum(noise_basis: np.ndarray, steering: np.ndarray) -> np.ndarray:
    """``P = 1/‖E_nᴴ s‖²`` for each steering column."""
    projections = noise_basis.conj().T @ steering
    denominator = np.sum(np.abs(projections) ** 2, axis=0)
    floor = 1e-12 * max(float(denominator.max(initial=0.0)), 1e-300)
    return 1.0 / np.maximum(denominator, floor)


def music_angle_spectrum(
    snapshots: np.ndarray,
    steering: np.ndarray,
    angles_deg: np.ndarray,
    *,
    n_sources: int,
    forward_backward: bool = True,
) -> AngleSpectrum:
    """1-D spatial MUSIC from an (M × N) snapshot matrix.

    Parameters
    ----------
    steering:
        Candidate steering matrix of shape ``(M, len(angles_deg))`` —
        build it with :meth:`repro.channel.array.UniformLinearArray.steering_matrix`.
    """
    covariance = sample_covariance(snapshots)
    if forward_backward:
        covariance = forward_backward_average(covariance)
    basis = noise_subspace(covariance, n_sources)
    return AngleSpectrum(angles_deg, music_pseudospectrum(basis, steering))


def music_joint_spectrum(
    covariance: np.ndarray,
    steering: np.ndarray,
    angles_deg: np.ndarray,
    toas_s: np.ndarray,
    *,
    n_sources: int,
) -> JointSpectrum:
    """2-D (AoA, ToA) MUSIC from a pre-smoothed covariance.

    ``steering`` has one column per (angle, delay) pair, delay-major
    (column ``j·Nθ + i`` ↔ angle ``i``, delay ``j``), matching
    :func:`repro.core.steering.joint_steering_dictionary`.
    """
    basis = noise_subspace(covariance, n_sources)
    power = music_pseudospectrum(basis, steering)
    n_angles, n_toas = angles_deg.size, toas_s.size
    if power.size != n_angles * n_toas:
        raise SolverError(
            f"steering has {power.size} columns, expected {n_angles}×{n_toas}"
        )
    grid = power.reshape(n_toas, n_angles).T  # delay-major columns → (angle, delay)
    return JointSpectrum(angles_deg, toas_s, grid)
