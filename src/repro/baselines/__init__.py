"""Re-implementations of the systems the paper compares against.

* :mod:`repro.baselines.music` — the MUSIC subspace estimator
  (Schmidt [14]) plus the covariance conditioning tricks (forward–
  backward averaging, spatial smoothing) all MUSIC-based WiFi systems
  rely on.
* :mod:`repro.baselines.spotfi` — SpotFi (Kotaru et al., SIGCOMM'15):
  CSI sanitization, smoothed-CSI joint (AoA, ToA) MUSIC, and
  cluster-likelihood direct-path identification.
* :mod:`repro.baselines.arraytrack` — ArrayTrack (Xiong & Jamieson,
  NSDI'13): per-packet spatial MUSIC with multi-packet spectra
  synthesis, restricted to the paper's 3-antenna setup for fairness
  (paper §IV-A).
"""

from repro.baselines.arraytrack import ArrayTrackEstimator
from repro.baselines.music import (
    forward_backward_average,
    music_angle_spectrum,
    music_joint_spectrum,
    sample_covariance,
    spatial_smoothing,
)
from repro.baselines.spotfi import SpotFiEstimator, sanitize_csi_phase

__all__ = [
    "ArrayTrackEstimator",
    "SpotFiEstimator",
    "forward_backward_average",
    "music_angle_spectrum",
    "music_joint_spectrum",
    "sample_covariance",
    "sanitize_csi_phase",
    "spatial_smoothing",
]
