"""Per-client state: sliding CSI windows, AoA observations, track.

One :class:`ClientSession` exists per client the service has seen.  It
holds, per AP, a sliding window of vectorized CSI packets (the MMV
snapshot matrix the joint solve consumes — the streaming analogue of
the offline pipeline's multi-packet fusion), the freshest direct-path
AoA estimate each AP produced, and the client's Kalman track.

Sessions are pure state — no solving happens here.  The service turns
windows into :class:`~repro.serve.batcher.SolveRequest`s and writes
estimates back via :meth:`ClientSession.record_estimate`.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

import numpy as np

from repro.core.tracking import KalmanTracker
from repro.exceptions import ConfigurationError
from repro.serve.codec import decode_array, decode_time, encode_array, encode_time


@dataclass(frozen=True)
class ApEstimate:
    """One AP's freshest direct-path estimate for a client."""

    ap: str
    time_s: float
    aoa_deg: float
    rssi_dbm: float
    enqueued_at: float


class ClientSession:
    """Sliding windows, per-AP estimates and the track for one client."""

    def __init__(
        self,
        client: str,
        *,
        window_packets: int = 4,
        window_s: float = 2.0,
        tracker: KalmanTracker | None = None,
    ) -> None:
        if window_packets < 1:
            raise ConfigurationError(f"window_packets must be >= 1, got {window_packets}")
        if window_s <= 0:
            raise ConfigurationError(f"window_s must be positive, got {window_s}")
        self.client = client
        self.window_packets = window_packets
        self.window_s = window_s
        self.tracker = tracker if tracker is not None else KalmanTracker()
        #: Per-AP deque of (time_s, vectorized CSI) pairs, oldest first.
        self._windows: dict[str, deque[tuple[float, np.ndarray]]] = {}
        #: Per-AP freshest estimate, written back after each solve.
        self.estimates: dict[str, ApEstimate] = {}
        #: Newest packet time seen across all APs.
        self.latest_time_s = float("-inf")
        #: Packet time of the last emitted fix; a new fix requires the
        #: clock to have advanced (keeps the tracker's dt positive).
        self.last_fix_time_s = float("-inf")

    def add_packet(self, ap: str, time_s: float, y: np.ndarray) -> None:
        """Append one vectorized packet to the AP's window and evict."""
        window = self._windows.setdefault(ap, deque())
        window.append((float(time_s), np.asarray(y)))
        while len(window) > self.window_packets:
            window.popleft()
        horizon = window[-1][0] - self.window_s
        while window and window[0][0] < horizon:
            window.popleft()
        if time_s > self.latest_time_s:
            self.latest_time_s = float(time_s)

    def snapshots(self, ap: str) -> np.ndarray:
        """The AP's current window as an ``(m, p)`` snapshot matrix."""
        window = self._windows.get(ap)
        if not window:
            raise ConfigurationError(f"client {self.client!r} has no packets from {ap!r}")
        return np.stack([y for _, y in window], axis=1)

    def window_len(self, ap: str) -> int:
        return len(self._windows.get(ap, ()))

    def record_estimate(
        self, ap: str, time_s: float, aoa_deg: float, rssi_dbm: float, enqueued_at: float
    ) -> None:
        self.estimates[ap] = ApEstimate(
            ap=ap, time_s=time_s, aoa_deg=aoa_deg, rssi_dbm=rssi_dbm, enqueued_at=enqueued_at
        )

    def fresh_estimates(self, *, max_age_s: float) -> dict[str, ApEstimate]:
        """Estimates still within ``max_age_s`` of the session clock."""
        horizon = self.latest_time_s - max_age_s
        return {ap: est for ap, est in self.estimates.items() if est.time_s >= horizon}

    @property
    def fix_due(self) -> bool:
        """True when new data arrived since the last emitted fix."""
        return self.latest_time_s > self.last_fix_time_s

    # -- snapshot support ----------------------------------------------------

    def state_dict(self) -> dict:
        """Everything mutable, losslessly, for the service snapshot."""
        return {
            "client": self.client,
            "window_packets": self.window_packets,
            "window_s": self.window_s,
            "windows": {
                ap: [[time_s, encode_array(y)] for time_s, y in window]
                for ap, window in self._windows.items()
            },
            "estimates": {
                ap: {
                    "time_s": est.time_s,
                    "aoa_deg": est.aoa_deg,
                    "rssi_dbm": est.rssi_dbm,
                    "enqueued_at": est.enqueued_at,
                }
                for ap, est in self.estimates.items()
            },
            "latest_time_s": encode_time(self.latest_time_s),
            "last_fix_time_s": encode_time(self.last_fix_time_s),
            "tracker": self.tracker.state_dict(),
        }

    @classmethod
    def from_state_dict(cls, payload: dict) -> "ClientSession":
        session = cls(
            str(payload["client"]),
            window_packets=int(payload["window_packets"]),
            window_s=float(payload["window_s"]),
            tracker=KalmanTracker.from_state_dict(payload["tracker"]),
        )
        for ap, window in payload["windows"].items():
            session._windows[ap] = deque(
                (float(time_s), decode_array(y)) for time_s, y in window
            )
        for ap, est in payload["estimates"].items():
            session.estimates[ap] = ApEstimate(
                ap=ap,
                time_s=float(est["time_s"]),
                aoa_deg=float(est["aoa_deg"]),
                rssi_dbm=float(est["rssi_dbm"]),
                enqueued_at=float(est["enqueued_at"]),
            )
        session.latest_time_s = decode_time(payload["latest_time_s"])
        session.last_fix_time_s = decode_time(payload["last_fix_time_s"])
        return session
