"""Adaptive backpressure: a deterministic degradation ladder.

The micro-batcher's pending set is the service's only queue; before
this module existed its only overload response was the binary
``queue_full`` reject at 100% occupancy.  The controller adds graded
responses at configurable watermarks, trading accuracy and freshness
for throughput *before* the cliff:

=====  ==================  ============================================
level  trigger             degradation
=====  ==================  ============================================
0      below watermarks    none — full MMV windows, full batches
1      ``watermarks[0]``   shrink the MMV window (fewer snapshot
                           columns per solve — cheaper joint solves,
                           slightly noisier AoA)
2      ``watermarks[1]``   additionally cap the solve-group width
                           (smaller matmuls, lower per-batch latency)
3      ``watermarks[2]``   additionally shed *stale* packets at
                           admission (reason ``"shed_stale"``): old
                           data is the cheapest to sacrifice
=====  ==================  ============================================

Transitions are pure functions of queue occupancy with hysteresis on
the way down (so the ladder does not chatter around a watermark), and
every escalation/de-escalation emits obs metrics.  Because occupancy
itself is deterministic under replay, so is the whole ladder — a
supervised restart re-walks the same levels at the same packets.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.exceptions import ConfigurationError


@dataclass(frozen=True)
class BackpressurePolicy:
    """Watermarks and per-level degradations of the ladder."""

    #: Queue-occupancy fractions (of ``max_pending``) that trigger
    #: levels 1, 2 and 3; strictly increasing, in (0, 1].
    watermarks: tuple[float, float, float] = (0.5, 0.75, 0.9)
    #: MMV snapshot-window cap at level >= 1 (columns kept, newest
    #: first).  ``window_cap=2`` halves the default 4-packet window.
    window_cap: int = 2
    #: Solve-group width cap at level >= 2, as a fraction of
    #: ``batch_size`` (rounded up, never below 1).
    batch_cap_fraction: float = 0.5
    #: At level 3, packets older than ``shed_horizon_fraction *
    #: window_s`` behind the session clock are shed at admission.
    shed_horizon_fraction: float = 0.5
    #: Occupancy must fall this far below a watermark to de-escalate.
    hysteresis: float = 0.05

    def __post_init__(self) -> None:
        if len(self.watermarks) != 3 or not all(
            0.0 < w <= 1.0 for w in self.watermarks
        ):
            raise ConfigurationError(
                f"watermarks must be three fractions in (0, 1], got {self.watermarks}"
            )
        if not (self.watermarks[0] < self.watermarks[1] < self.watermarks[2]):
            raise ConfigurationError(
                f"watermarks must be strictly increasing, got {self.watermarks}"
            )
        if self.window_cap < 1:
            raise ConfigurationError(f"window_cap must be >= 1, got {self.window_cap}")
        if not 0.0 < self.batch_cap_fraction <= 1.0:
            raise ConfigurationError(
                f"batch_cap_fraction must be in (0, 1], got {self.batch_cap_fraction}"
            )
        if not 0.0 < self.shed_horizon_fraction <= 1.0:
            raise ConfigurationError(
                f"shed_horizon_fraction must be in (0, 1], got {self.shed_horizon_fraction}"
            )
        if self.hysteresis < 0:
            raise ConfigurationError(f"hysteresis must be >= 0, got {self.hysteresis}")

    def to_dict(self) -> dict:
        return {
            "watermarks": list(self.watermarks),
            "window_cap": self.window_cap,
            "batch_cap_fraction": self.batch_cap_fraction,
            "shed_horizon_fraction": self.shed_horizon_fraction,
            "hysteresis": self.hysteresis,
        }


class BackpressureController:
    """Track queue occupancy and hold the current degradation level."""

    def __init__(self, policy: BackpressurePolicy, *, max_pending: int, metrics=None) -> None:
        if max_pending < 1:
            raise ConfigurationError(f"max_pending must be >= 1, got {max_pending}")
        self.policy = policy
        self.max_pending = max_pending
        self.metrics = metrics
        self.level = 0
        self.n_escalations = 0
        self.n_deescalations = 0
        self.max_level_seen = 0

    def _level_for(self, occupancy: float) -> int:
        marks = self.policy.watermarks
        level = 0
        for index, mark in enumerate(marks, start=1):
            if occupancy >= mark:
                level = index
        # Hysteresis: keep the current level unless occupancy has
        # dropped clear below that level's watermark.
        if level < self.level:
            hold = self.level
            while hold > 0 and occupancy < marks[hold - 1] - self.policy.hysteresis:
                hold -= 1
            level = max(level, hold)
        return level

    def update(self, pending: int) -> int:
        """Recompute the level from the pending count; emit transitions."""
        occupancy = pending / self.max_pending
        level = self._level_for(occupancy)
        if level != self.level:
            direction = "escalate" if level > self.level else "deescalate"
            if level > self.level:
                self.n_escalations += 1
            else:
                self.n_deescalations += 1
            if self.metrics is not None:
                self.metrics.counter(
                    f"serve.backpressure.{direction}.to_level_{level}"
                ).inc()
                self.metrics.gauge("serve.backpressure.level").set(level)
            self.level = level
            self.max_level_seen = max(self.max_level_seen, level)
        return self.level

    # -- per-level degradations ---------------------------------------------

    def window_cap(self, window_packets: int) -> int:
        """MMV snapshot columns to keep at the current level."""
        if self.level >= 1:
            return min(window_packets, self.policy.window_cap)
        return window_packets

    def batch_cap(self, batch_size: int) -> int:
        """Solve-group width cap at the current level."""
        if self.level >= 2:
            return min(
                batch_size,
                max(1, math.ceil(batch_size * self.policy.batch_cap_fraction)),
            )
        return batch_size

    def shed_horizon_s(self, window_s: float) -> float | None:
        """Staleness horizon for admission shedding, or ``None``."""
        if self.level >= 3:
            return window_s * self.policy.shed_horizon_fraction
        return None

    def to_dict(self) -> dict:
        return {
            "level": self.level,
            "max_level_seen": self.max_level_seen,
            "n_escalations": self.n_escalations,
            "n_deescalations": self.n_deescalations,
            "policy": self.policy.to_dict(),
        }

    def state_dict(self) -> dict:
        return {
            "level": self.level,
            "max_level_seen": self.max_level_seen,
            "n_escalations": self.n_escalations,
            "n_deescalations": self.n_deescalations,
        }

    def restore_state(self, payload: dict) -> None:
        self.level = int(payload["level"])
        self.max_level_seen = int(payload["max_level_seen"])
        self.n_escalations = int(payload["n_escalations"])
        self.n_deescalations = int(payload["n_deescalations"])
