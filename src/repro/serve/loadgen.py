"""Synthetic streaming workloads: many mobile clients, per-AP packets.

The load generator closes the loop for the service the way the
classroom scenes close it for the offline harness: client trajectories
come from :mod:`repro.channel.mobility` (random-waypoint walkers plus a
stationary fraction — real rooms are mostly people sitting still), the
physics from the image-method ray tracer, and the packets from the CSI
synthesizer, so every packet carries a ground-truth position and the
service's fixes can be scored exactly.

A :class:`Workload` is replayable and portable (``save``/``load`` to
one ``.npz``), :func:`replay` turns it into the async packet stream
:meth:`~repro.serve.service.LocalizationService.run` consumes, and
:func:`offline_reference` replays it through the cold, unbatched solve
path — the accuracy baseline the benchmark holds the service to.
"""

from __future__ import annotations

import asyncio
import json
from dataclasses import dataclass, field, replace

import numpy as np

from repro.channel.array import UniformLinearArray
from repro.channel.csi import CsiSynthesizer
from repro.channel.geometry import AccessPoint, Room, trace_paths
from repro.channel.impairments import ImpairmentModel
from repro.channel.mobility import RandomWaypointModel, stationary_track
from repro.channel.ofdm import SubcarrierLayout
from repro.exceptions import ConfigurationError
from repro.experiments.scenarios import (
    SNR_BANDS,
    classroom_access_points,
    classroom_room,
    sample_client_position,
)
from repro.serve.packets import CsiPacket, PositionFix


@dataclass
class Workload:
    """A replayable packet stream with its geometry and ground truth."""

    room: Room
    access_points: list[AccessPoint]
    packets: list[CsiPacket]
    truth: dict[str, list[tuple[float, tuple[float, float]]]]
    array: UniformLinearArray
    layout: SubcarrierLayout
    meta: dict = field(default_factory=dict)

    @property
    def clients(self) -> list[str]:
        return sorted(self.truth)

    @property
    def duration_s(self) -> float:
        return max((p.time_s for p in self.packets), default=0.0)

    def truth_position(self, client: str, time_s: float) -> tuple[float, float]:
        """Ground-truth position of ``client`` at (the sample nearest) ``time_s``."""
        track = self.truth.get(client)
        if not track:
            raise ConfigurationError(f"no ground truth for client {client!r}")
        nearest = min(track, key=lambda sample: abs(sample[0] - time_s))
        return nearest[1]

    # -- persistence ---------------------------------------------------------

    def save(self, path) -> None:
        """One compressed ``.npz`` holding packets, geometry and truth."""
        clients = self.clients
        client_index = {name: i for i, name in enumerate(clients)}
        ap_names = [ap.name for ap in self.access_points]
        ap_index = {name: i for i, name in enumerate(ap_names)}
        np.savez_compressed(
            path,
            times=np.array([p.time_s for p in self.packets]),
            client_idx=np.array([client_index[p.client] for p in self.packets], dtype=int),
            ap_idx=np.array([ap_index[p.ap] for p in self.packets], dtype=int),
            csi=np.stack([np.asarray(p.csi) for p in self.packets]),
            rssi=np.array([p.rssi_dbm for p in self.packets]),
            clients=np.array(clients),
            ap_names=np.array(ap_names),
            ap_positions=np.array([ap.position for ap in self.access_points]),
            ap_axes=np.array([ap.axis_direction_deg for ap in self.access_points]),
            room=np.array([self.room.width, self.room.depth]),
            truth_times=np.array(
                [t for name in clients for t, _ in self.truth[name]]
            ),
            truth_xy=np.array(
                [pos for name in clients for _, pos in self.truth[name]]
            ).reshape(-1, 2),
            truth_counts=np.array([len(self.truth[name]) for name in clients], dtype=int),
            meta=np.array(
                json.dumps(
                    {
                        **self.meta,
                        "n_antennas": self.array.n_antennas,
                        "antenna_spacing": self.array.spacing,
                        "wavelength": self.array.wavelength,
                        "n_subcarriers": self.layout.n_subcarriers,
                        "subcarrier_spacing": self.layout.spacing,
                        "center_frequency": self.layout.center_frequency,
                    }
                )
            ),
        )

    @classmethod
    def load(cls, path) -> "Workload":
        with np.load(path, allow_pickle=False) as data:
            meta = json.loads(str(data["meta"]))
            array = UniformLinearArray(
                n_antennas=int(meta["n_antennas"]),
                spacing=float(meta["antenna_spacing"]),
                wavelength=float(meta["wavelength"]),
            )
            layout = SubcarrierLayout(
                n_subcarriers=int(meta["n_subcarriers"]),
                spacing=float(meta["subcarrier_spacing"]),
                center_frequency=float(meta["center_frequency"]),
            )
            room = Room(width=float(data["room"][0]), depth=float(data["room"][1]))
            access_points = [
                AccessPoint(
                    position=(float(x), float(y)),
                    axis_direction_deg=float(axis),
                    name=str(name),
                )
                for (x, y), axis, name in zip(
                    data["ap_positions"], data["ap_axes"], data["ap_names"]
                )
            ]
            clients = [str(name) for name in data["clients"]]
            packets = [
                CsiPacket(
                    client=clients[int(ci)],
                    ap=access_points[int(ai)].name,
                    time_s=float(t),
                    csi=np.array(csi),
                    rssi_dbm=float(rssi),
                )
                for t, ci, ai, csi, rssi in zip(
                    data["times"], data["client_idx"], data["ap_idx"],
                    data["csi"], data["rssi"],
                )
            ]
            truth: dict[str, list[tuple[float, tuple[float, float]]]] = {}
            cursor = 0
            for name, count in zip(clients, data["truth_counts"]):
                samples = []
                for offset in range(int(count)):
                    t = float(data["truth_times"][cursor + offset])
                    x, y = data["truth_xy"][cursor + offset]
                    samples.append((t, (float(x), float(y))))
                cursor += int(count)
                truth[name] = samples
        return cls(
            room=room, access_points=access_points, packets=packets, truth=truth,
            array=array, layout=layout, meta=meta,
        )


@dataclass
class LoadGenerator:
    """Deterministic workload factory over the classroom deployment.

    Attributes
    ----------
    n_clients / duration_s / sample_interval_s:
        Population size and per-client packet cadence (one packet per
        AP per trajectory sample).
    stationary_fraction:
        Fraction of clients that sit still (degenerate trajectories);
        the rest are random-waypoint walkers.
    n_aps / band / seed:
        Deployment size, SNR regime, and the seed everything derives
        from — the same arguments always produce the same workload.
    outages:
        Optional mid-stream AP blackouts: ``{ap_name: (start_s, end_s)}``
        windows during which that AP emits nothing (the degraded-mode
        scenario the service must survive).
    layout / array:
        Hardware model; defaults to a reduced 16-subcarrier layout so
        large populations stay fast to synthesize and solve.
    """

    n_clients: int = 10
    duration_s: float = 2.0
    sample_interval_s: float = 0.5
    stationary_fraction: float = 0.3
    n_aps: int = 4
    band: str = "high"
    seed: int = 0
    outages: dict[str, tuple[float, float]] = field(default_factory=dict)
    array: UniformLinearArray = field(default_factory=UniformLinearArray)
    layout: SubcarrierLayout = field(
        default_factory=lambda: SubcarrierLayout(n_subcarriers=16, spacing=1.25e6)
    )

    def __post_init__(self) -> None:
        if self.n_clients < 1:
            raise ConfigurationError(f"n_clients must be >= 1, got {self.n_clients}")
        if self.duration_s <= 0 or self.sample_interval_s <= 0:
            raise ConfigurationError("duration and sample interval must be positive")
        if not 0.0 <= self.stationary_fraction <= 1.0:
            raise ConfigurationError(
                f"stationary_fraction must be in [0, 1], got {self.stationary_fraction}"
            )
        if self.band not in SNR_BANDS:
            raise ConfigurationError(
                f"band must be one of {sorted(SNR_BANDS)}, got {self.band!r}"
            )

    def generate(self) -> Workload:
        rng = np.random.default_rng(self.seed)
        room = classroom_room()
        access_points = classroom_access_points(self.n_aps, room)
        unknown = set(self.outages) - {ap.name for ap in access_points}
        if unknown:
            raise ConfigurationError(f"outage for unknown AP(s): {sorted(unknown)}")
        synthesizers = [
            CsiSynthesizer(self.array, self.layout, ImpairmentModel(), seed=self.seed + i)
            for i in range(self.n_aps)
        ]
        band = SNR_BANDS[self.band]
        model = RandomWaypointModel(room)
        n_stationary = int(round(self.n_clients * self.stationary_fraction))

        packets: list[CsiPacket] = []
        truth: dict[str, list[tuple[float, tuple[float, float]]]] = {}
        for index in range(self.n_clients):
            client = f"client-{index:04d}"
            offset = float(rng.uniform(0.0, self.sample_interval_s))
            if index < n_stationary:
                track = stationary_track(
                    sample_client_position(rng, room),
                    duration_s=self.duration_s,
                    sample_interval_s=self.sample_interval_s,
                )
            else:
                track = model.generate(
                    rng,
                    duration_s=self.duration_s,
                    sample_interval_s=self.sample_interval_s,
                    start=sample_client_position(rng, room),
                )
            snrs = [band.draw(rng) for _ in range(self.n_aps)]
            truth[client] = []
            for sample in track:
                time_s = sample.time_s + offset
                truth[client].append((time_s, sample.position))
                for ap_i, ap in enumerate(access_points):
                    window = self.outages.get(ap.name)
                    if window is not None and window[0] <= time_s < window[1]:
                        continue
                    profile = trace_paths(
                        room=room,
                        transmitter=np.asarray(sample.position),
                        receiver=ap,
                        wavelength=self.array.wavelength,
                    )
                    trace = synthesizers[ap_i].packets(
                        profile, n_packets=1, snr_db=snrs[ap_i], rng=rng
                    )
                    packets.append(
                        CsiPacket(
                            client=client,
                            ap=ap.name,
                            time_s=time_s,
                            csi=trace.csi[0],
                            rssi_dbm=trace.rssi_dbm,
                        )
                    )
        packets.sort(key=lambda p: (p.time_s, p.client, p.ap))
        return Workload(
            room=room,
            access_points=access_points,
            packets=packets,
            truth=truth,
            array=self.array,
            layout=self.layout,
            meta={
                "n_clients": self.n_clients,
                "duration_s": self.duration_s,
                "sample_interval_s": self.sample_interval_s,
                "stationary_fraction": self.stationary_fraction,
                "n_aps": self.n_aps,
                "band": self.band,
                "seed": self.seed,
                "outages": {name: list(window) for name, window in self.outages.items()},
            },
        )


async def replay(workload: Workload, *, realtime: bool = False, speed: float = 1.0):
    """Async packet stream over a workload.

    ``realtime=True`` paces packets on their timestamps (divided by
    ``speed``); the default streams as fast as the event loop accepts,
    yielding control periodically so the service's solve loop runs
    concurrently.
    """
    if speed <= 0:
        raise ConfigurationError(f"speed must be positive, got {speed}")
    previous = 0.0
    for index, packet in enumerate(workload.packets):
        if realtime:
            gap = (packet.time_s - previous) / speed
            if gap > 0:
                await asyncio.sleep(gap)
            previous = packet.time_s
        elif index % 64 == 0:
            await asyncio.sleep(0)
        yield packet


def offline_reference(workload: Workload, *, config=None) -> list[PositionFix]:
    """The workload's fixes through the cold, unbatched solve path.

    Replays the packets through a service configured with
    ``batch_size=1`` (a singleton :func:`~repro.optim.solve_batch` is
    byte-identical to the sequential solver) and warm starts off, so
    every solve is exactly the offline pipeline's cold MMV solve.  The
    benchmark holds the streaming path's accuracy to this baseline.
    """
    from repro.serve.service import LocalizationService, ServeConfig

    config = config if config is not None else ServeConfig()
    config = replace(config, batch_size=1, max_delay_s=0.0, warm_start=False)
    service = LocalizationService(
        workload.room,
        workload.access_points,
        array=workload.array,
        layout=workload.layout,
        config=config,
    )
    fixes: list[PositionFix] = []
    for packet in workload.packets:
        service.submit(packet)
        fixes.extend(service.process_due())
    fixes.extend(service.drain())
    return fixes


def median_fix_error_m(fixes, workload: Workload) -> float:
    """Median raw-fix error against the workload's ground truth."""
    errors = [
        fix.error_to(workload.truth_position(fix.client, fix.time_s)) for fix in fixes
    ]
    if not errors:
        raise ConfigurationError("no fixes to score")
    return float(np.median(errors))
