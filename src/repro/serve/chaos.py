"""Service-level chaos: scripted failure drills with a scorecard.

:mod:`repro.faults` injects faults into *offline* experiment inputs;
this module aims the same philosophy at the live service.  Each
scenario scripts one production failure mode against a small
deterministic workload and asserts the resilience machinery actually
engaged:

* ``baseline`` — the clean path through the supervisor: snapshots
  written, every client fixed, zero restarts.
* ``ap_blackout`` — one AP goes dark mid-stream; the service must keep
  fixing clients from the survivors and account for the outage.
* ``queue_storm`` — admission outruns solving; the backpressure ladder
  must escalate and every turned-away packet must carry a taxonomized
  reason (never an exception).
* ``corrupted_packets`` — one AP emits garbage CSI; the per-AP circuit
  breaker must trip so the flood stops costing validation work, while
  the remaining APs keep the fix stream alive.
* ``mid_stream_crash`` — the service is crashed twice mid-stream; the
  supervisor's restore-and-replay must deliver a fix journal
  *byte-identical* to an uninterrupted run (exactly-once recovery).

:func:`run_serve_chaos` executes the scenarios and returns a
:class:`ServeChaosResult` whose :meth:`~ServeChaosResult.scorecard` is
the JSON artifact ``roarray chaos --serve`` emits and CI archives.
"""

from __future__ import annotations

import tempfile
from dataclasses import dataclass, field, replace
from pathlib import Path

import numpy as np

from repro.core.grids import AngleGrid, DelayGrid
from repro.exceptions import ConfigurationError
from repro.obs import MetricsRegistry
from repro.serve.loadgen import LoadGenerator, Workload
from repro.serve.packets import REJECT_REASONS, CsiPacket
from repro.serve.resilience import ServiceSupervisor, SnapshotPolicy
from repro.serve.service import LocalizationService, ServeConfig

#: Scorecard format version.
SCORECARD_VERSION = 1

#: Scenario registry order — also the execution order.
SERVE_CHAOS_SCENARIOS = (
    "baseline",
    "ap_blackout",
    "queue_storm",
    "corrupted_packets",
    "mid_stream_crash",
)


@dataclass(frozen=True)
class ServeChaosOptions:
    """Knobs of the drill: workload scale, seed, snapshot cadence."""

    n_clients: int = 3
    duration_s: float = 1.0
    sample_interval_s: float = 0.5
    n_aps: int = 3
    band: str = "high"
    seed: int = 7
    snapshot_every: int = 8
    max_restarts: int = 4
    #: Working directory for snapshot/journal files; a temporary
    #: directory is used (and cleaned up) when ``None``.
    workdir: str | Path | None = None


@dataclass(frozen=True)
class ScenarioOutcome:
    """One scenario's verdict plus the evidence behind it."""

    name: str
    passed: bool
    details: dict

    def to_dict(self) -> dict:
        return {"name": self.name, "passed": self.passed, "details": self.details}


@dataclass
class ServeChaosResult:
    """All scenario outcomes; renders the resilience scorecard."""

    options: ServeChaosOptions
    outcomes: list[ScenarioOutcome] = field(default_factory=list)

    @property
    def passed(self) -> bool:
        return all(outcome.passed for outcome in self.outcomes)

    @property
    def n_passed(self) -> int:
        return sum(1 for outcome in self.outcomes if outcome.passed)

    def scorecard(self) -> dict:
        return {
            "version": SCORECARD_VERSION,
            "passed": self.passed,
            "n_scenarios": len(self.outcomes),
            "n_passed": self.n_passed,
            "options": {
                "n_clients": self.options.n_clients,
                "duration_s": self.options.duration_s,
                "n_aps": self.options.n_aps,
                "band": self.options.band,
                "seed": self.options.seed,
                "snapshot_every": self.options.snapshot_every,
            },
            "scenarios": [outcome.to_dict() for outcome in self.outcomes],
        }


def _chaos_config(**overrides) -> ServeConfig:
    """The drills' solver working point: small grids, tier-1 speed."""
    defaults = dict(
        batch_size=4,
        max_delay_s=0.01,
        window_packets=4,
        min_quorum=2,
        resolution_m=0.5,
        angle_grid=AngleGrid(n_points=61),
        delay_grid=DelayGrid(n_points=21),
        max_iterations=100,
    )
    defaults.update(overrides)
    return ServeConfig(**defaults)


def _workload(options: ServeChaosOptions, **overrides) -> Workload:
    params = dict(
        n_clients=options.n_clients,
        duration_s=options.duration_s,
        sample_interval_s=options.sample_interval_s,
        stationary_fraction=0.34,
        n_aps=options.n_aps,
        band=options.band,
        seed=options.seed,
    )
    params.update(overrides)
    return LoadGenerator(**params).generate()


def _factory(workload: Workload, config: ServeConfig):
    def build(clock) -> LocalizationService:
        return LocalizationService(
            workload.room,
            workload.access_points,
            array=workload.array,
            layout=workload.layout,
            config=config,
            clock=clock,
            metrics=MetricsRegistry(),
        )

    return build


def _supervised_run(
    workload: Workload,
    config: ServeConfig,
    workdir: Path,
    options: ServeChaosOptions,
    *,
    fault_hook=None,
):
    policy = SnapshotPolicy(directory=workdir, every_packets=options.snapshot_every)
    with ServiceSupervisor(
        _factory(workload, config), policy, max_restarts=options.max_restarts
    ) as supervisor:
        result = supervisor.run(workload.packets, fault_hook=fault_hook)
        service = supervisor.service
    return result, service, policy


def _reject_counts(service: LocalizationService) -> dict[str, int]:
    counts = {}
    for reason in REJECT_REASONS:
        value = service.metrics.counter(f"serve.rejected.{reason}").value
        if value:
            counts[reason] = int(value)
    return counts


# ---------------------------------------------------------------------------
# Scenarios
# ---------------------------------------------------------------------------


def _scenario_baseline(options: ServeChaosOptions, workdir: Path) -> ScenarioOutcome:
    workload = _workload(options)
    result, service, _ = _supervised_run(workload, _chaos_config(), workdir, options)
    fixed = {fix.client for fix in result.fixes}
    details = {
        "n_packets": len(workload.packets),
        "n_fixes": len(result.fixes),
        "clients_fixed": len(fixed),
        "clients_total": len(workload.clients),
        "n_snapshots": result.n_snapshots,
        "n_restarts": result.n_restarts,
    }
    passed = (
        fixed == set(workload.clients)
        and result.n_snapshots >= 1
        and result.n_restarts == 0
    )
    return ScenarioOutcome("baseline", passed, details)


def _scenario_ap_blackout(options: ServeChaosOptions, workdir: Path) -> ScenarioOutcome:
    # The blackout AP simply stops transmitting for the middle of the
    # stream; the service must keep fixing from the survivors and its
    # health monitor must notice the silence.
    probe = _workload(options)
    dark = probe.access_points[0].name
    start = options.duration_s * 0.3
    end = options.duration_s * 1.5
    workload = _workload(options, outages={dark: (start, end)})
    config = _chaos_config(outage_after_s=options.sample_interval_s)
    result, service, _ = _supervised_run(workload, config, workdir, options)
    health = service.health.to_dict(service.latest_packet_time_s)
    details = {
        "dark_ap": dark,
        "outage_window_s": [start, end],
        "n_fixes": len(result.fixes),
        "clients_fixed": len({fix.client for fix in result.fixes}),
        "clients_total": len(workload.clients),
        "dark_ap_status": health[dark]["status"],
        "n_restarts": result.n_restarts,
    }
    passed = (
        len(result.fixes) > 0
        and health[dark]["status"] == "outage"
        and result.n_restarts == 0
    )
    return ScenarioOutcome("ap_blackout", passed, details)


def _scenario_queue_storm(options: ServeChaosOptions, workdir: Path) -> ScenarioOutcome:
    # Admission outruns solving: a tiny pending bound and a storm of
    # submissions with no processing in between.  The ladder must
    # escalate and the overflow must become taxonomized rejects.
    workload = _workload(options)
    distinct_keys = len({(p.client, p.ap) for p in workload.packets})
    max_pending = max(2, distinct_keys - 1)
    config = _chaos_config(
        batch_size=max_pending, max_delay_s=60.0, max_pending=max_pending
    )
    service = _factory(workload, config)(lambda: 0.0)
    reasons = []
    for packet in workload.packets:
        reason = service.submit(packet)
        if reason is not None:
            reasons.append(reason)
    fixes = service.drain()
    counts = _reject_counts(service)
    escalations = sum(
        int(service.metrics.counter(f"serve.backpressure.escalate.to_level_{n}").value)
        for n in (1, 2, 3)
    )
    details = {
        "max_pending": max_pending,
        "distinct_keys": distinct_keys,
        "reject_counts": counts,
        "backpressure_escalations": escalations,
        "final_level": service.backpressure.level,
        "n_fixes": len(fixes),
    }
    passed = (
        counts.get("queue_full", 0) > 0
        and escalations >= 1
        and all(reason in REJECT_REASONS for reason in reasons)
        and len(fixes) > 0
    )
    return ScenarioOutcome("queue_storm", passed, details)


def _scenario_corrupted_packets(
    options: ServeChaosOptions, workdir: Path
) -> ScenarioOutcome:
    # One AP floods garbage: every one of its packets arrives NaN-
    # poisoned.  Validation must reject them all, the breaker must trip
    # so the flood stops being inspected at all, and the surviving APs
    # must keep the fix stream alive.
    workload = _workload(options)
    bad_ap = workload.access_points[0].name
    packets = []
    for packet in workload.packets:
        if packet.ap == bad_ap:
            poisoned = np.full_like(np.asarray(packet.csi), np.nan + 0j)
            packet = CsiPacket(
                client=packet.client,
                ap=packet.ap,
                time_s=packet.time_s,
                csi=poisoned,
                rssi_dbm=packet.rssi_dbm,
            )
        packets.append(packet)
    config = _chaos_config(breaker_failure_threshold=3, breaker_open_for_s=60.0)
    workload = replace(workload, packets=packets)
    result, service, _ = _supervised_run(workload, config, workdir, options)
    counts = _reject_counts(service)
    trips = int(service.metrics.counter("serve.breaker.trips").value)
    details = {
        "bad_ap": bad_ap,
        "reject_counts": counts,
        "breaker_trips": trips,
        "breaker_state": service.breakers.state(bad_ap),
        "n_fixes": len(result.fixes),
        "n_restarts": result.n_restarts,
    }
    passed = (
        counts.get("invalid_csi", 0) >= config.breaker_failure_threshold
        and trips >= 1
        and counts.get("breaker_open", 0) >= 1
        and len(result.fixes) > 0
        and result.n_restarts == 0
    )
    return ScenarioOutcome("corrupted_packets", passed, details)


def _scenario_mid_stream_crash(
    options: ServeChaosOptions, workdir: Path
) -> ScenarioOutcome:
    # The exactly-once drill: crash the service twice mid-stream and
    # demand the recovered fix journal match an uninterrupted run's
    # journal byte for byte.
    workload = _workload(options)
    config = _chaos_config()
    steady_dir = workdir / "steady"
    crashy_dir = workdir / "crashy"
    steady_dir.mkdir(parents=True, exist_ok=True)
    crashy_dir.mkdir(parents=True, exist_ok=True)

    steady, _, steady_policy = _supervised_run(workload, config, steady_dir, options)

    n = len(workload.packets)
    crash_points = {max(1, n // 3), max(2, (2 * n) // 3)}
    armed = set(crash_points)

    def crash_hook(index: int) -> None:
        if index in armed:
            armed.discard(index)
            raise RuntimeError(f"chaos: injected crash before packet {index}")

    crashy, _, crashy_policy = _supervised_run(
        workload, config, crashy_dir, options, fault_hook=crash_hook
    )

    steady_bytes = steady_policy.fixes_path.read_bytes()
    crashy_bytes = crashy_policy.fixes_path.read_bytes()
    details = {
        "n_packets": n,
        "crash_points": sorted(crash_points),
        "n_restarts": crashy.n_restarts,
        "n_suppressed": crashy.n_suppressed,
        "steady_fixes": steady.n_delivered,
        "crashy_fixes": crashy.n_delivered,
        "journals_identical": steady_bytes == crashy_bytes,
    }
    passed = (
        steady_bytes == crashy_bytes
        and len(steady_bytes) > 0
        and crashy.n_restarts == len(crash_points)
    )
    return ScenarioOutcome("mid_stream_crash", passed, details)


_SCENARIOS = {
    "baseline": _scenario_baseline,
    "ap_blackout": _scenario_ap_blackout,
    "queue_storm": _scenario_queue_storm,
    "corrupted_packets": _scenario_corrupted_packets,
    "mid_stream_crash": _scenario_mid_stream_crash,
}


def run_serve_chaos(
    options: ServeChaosOptions | None = None,
    *,
    scenarios: list[str] | None = None,
) -> ServeChaosResult:
    """Run the service chaos drills and collect the scorecard."""
    options = options if options is not None else ServeChaosOptions()
    names = list(scenarios) if scenarios is not None else list(SERVE_CHAOS_SCENARIOS)
    unknown = sorted(set(names) - set(_SCENARIOS))
    if unknown:
        raise ConfigurationError(
            f"unknown serve chaos scenario(s) {unknown}; "
            f"available: {list(SERVE_CHAOS_SCENARIOS)}"
        )
    result = ServeChaosResult(options=options)

    def execute(base: Path) -> None:
        for name in names:
            scenario_dir = base / name
            scenario_dir.mkdir(parents=True, exist_ok=True)
            result.outcomes.append(_SCENARIOS[name](options, scenario_dir))

    if options.workdir is not None:
        execute(Path(options.workdir))
    else:
        with tempfile.TemporaryDirectory(prefix="serve-chaos-") as tmp:
            execute(Path(tmp))
    return result
