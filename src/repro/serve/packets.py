"""Wire types of the streaming localization service.

A deployment feeds the service one :class:`CsiPacket` per received
frame, tagged with the client and AP it belongs to; the service answers
with :class:`PositionFix` records.  Packets that fail admission control
become :class:`RejectedPacket` records carrying one of the
:data:`REJECT_REASONS` — backpressure and malformed input are data,
not exceptions, so a misbehaving client can never take the service
down.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.localization import DroppedAp
from repro.exceptions import ConfigurationError

#: The full admission-control taxonomy.  Every rejected packet carries
#: exactly one of these, and the service counts each under
#: ``serve.rejected.<reason>`` so an operator can tell backpressure
#: ("queue_full", and "shed_stale" when the degradation ladder sheds
#: old data first) from bad input ("invalid_csi", "unknown_ap"), late
#: arrivals ("stale"), a tripped per-AP circuit breaker
#: ("breaker_open") and shutdown ("draining") at a glance.
REJECT_REASONS = (
    "queue_full",
    "draining",
    "unknown_ap",
    "invalid_csi",
    "stale",
    "shed_stale",
    "breaker_open",
)


@dataclass(frozen=True)
class CsiPacket:
    """One received frame's CSI, tagged with its origin.

    Attributes
    ----------
    client / ap:
        Who transmitted and which AP received.  The AP name must match
        one of the service's registered access points.
    time_s:
        Capture timestamp on the deployment's clock (drives sliding
        windows and the tracker; distinct from the service's own
        micro-batching clock).
    csi:
        The per-packet CSI matrix, shape ``(antennas, subcarriers)``
        (paper Eq. 4).
    rssi_dbm:
        Link RSSI, the localization weight of paper Eq. 19.
    """

    client: str
    ap: str
    time_s: float
    csi: np.ndarray = field(repr=False)
    rssi_dbm: float = -50.0

    def __post_init__(self) -> None:
        if not self.client or not self.ap:
            raise ConfigurationError("packet needs non-empty client and ap names")
        csi = np.asarray(self.csi)
        if csi.ndim != 2:
            raise ConfigurationError(
                f"packet CSI must be 2-D (antennas × subcarriers), got shape {csi.shape}"
            )


@dataclass(frozen=True)
class RejectedPacket:
    """A packet admission control turned away, with the reason."""

    client: str
    ap: str
    time_s: float
    reason: str

    def __post_init__(self) -> None:
        if self.reason not in REJECT_REASONS:
            raise ConfigurationError(
                f"unknown reject reason {self.reason!r}; taxonomy: {REJECT_REASONS}"
            )

    def to_dict(self) -> dict:
        return {
            "client": self.client,
            "ap": self.ap,
            "time_s": self.time_s,
            "reason": self.reason,
        }


@dataclass(frozen=True)
class PositionFix:
    """One client's localization output, raw and tracked.

    ``position`` / ``confidence`` / ``used_aps`` / ``dropped_aps`` come
    straight from degraded-mode localization
    (:func:`~repro.core.localization.localize_robust`);
    ``tracked_position`` / ``velocity`` / ``accepted`` are the
    per-client Kalman tracker's posterior (``accepted=False`` means the
    innovation gate rejected the raw fix and the track coasted).
    ``latency_s`` measures ingest → fix on the service clock.
    ``trust`` / ``contaminated`` are populated only when the service
    runs with ``ServeConfig.robust``: per-AP consensus trust in [0, 1]
    and whether the fix was computed after excluding measurement-domain
    corruption (NLOS bias, ghost paths).
    """

    client: str
    time_s: float
    position: tuple[float, float]
    confidence: float
    used_aps: tuple[str, ...]
    dropped_aps: tuple[DroppedAp, ...]
    degraded: bool
    tracked_position: tuple[float, float]
    velocity: tuple[float, float]
    accepted: bool
    latency_s: float
    trust: dict = field(default_factory=dict)
    contaminated: bool = False

    def to_dict(self) -> dict:
        return {
            "client": self.client,
            "time_s": self.time_s,
            "position": [self.position[0], self.position[1]],
            "confidence": self.confidence,
            "used_aps": list(self.used_aps),
            "dropped_aps": [ap.to_dict() for ap in self.dropped_aps],
            "degraded": self.degraded,
            "tracked_position": [self.tracked_position[0], self.tracked_position[1]],
            "velocity": [self.velocity[0], self.velocity[1]],
            "accepted": self.accepted,
            "latency_s": self.latency_s,
            "trust": {name: float(value) for name, value in sorted(self.trust.items())},
            "contaminated": self.contaminated,
        }

    def error_to(self, true_position: tuple[float, float]) -> float:
        """Euclidean error of the raw fix in meters."""
        dx = self.position[0] - true_position[0]
        dy = self.position[1] - true_position[1]
        return float(np.hypot(dx, dy))
