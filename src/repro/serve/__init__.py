"""Streaming localization service.

The offline pipeline answers "where was the client, given this
recording"; :mod:`repro.serve` answers it *continuously*: per-AP CSI
packet streams are admitted, micro-batched into the batched sparse
solver, fused per client over sliding windows with first-class
warm-start state, and turned into robust position fixes with
confidence, degraded-mode AP accounting and Kalman tracks.

Entry points: :class:`LocalizationService` (the service itself),
:class:`LoadGenerator`/:func:`replay` (synthetic workloads to drive
it), and :func:`offline_reference` (the cold, unbatched accuracy
baseline).  The ``roarray serve`` / ``roarray loadgen`` CLI pair wraps
them.
"""

from repro.serve.backpressure import BackpressureController, BackpressurePolicy
from repro.serve.batcher import MicroBatch, MicroBatcher, SolveRequest
from repro.serve.breaker import BREAKER_STATES, BreakerBoard, CircuitBreaker
from repro.serve.chaos import (
    SERVE_CHAOS_SCENARIOS,
    ServeChaosOptions,
    ServeChaosResult,
    run_serve_chaos,
)
from repro.serve.health import HEALTH_FAILURE_KINDS, ApHealth, ApHealthMonitor
from repro.serve.loadgen import (
    LoadGenerator,
    Workload,
    median_fix_error_m,
    offline_reference,
    replay,
)
from repro.serve.packets import REJECT_REASONS, CsiPacket, PositionFix, RejectedPacket
from repro.serve.resilience import (
    ManualClock,
    ServiceSupervisor,
    SnapshotPolicy,
    SupervisorResult,
)
from repro.serve.service import LocalizationService, ServeConfig, ServeResult
from repro.serve.session import ApEstimate, ClientSession

__all__ = [
    "ApEstimate",
    "ApHealth",
    "ApHealthMonitor",
    "BREAKER_STATES",
    "BackpressureController",
    "BackpressurePolicy",
    "BreakerBoard",
    "CircuitBreaker",
    "ClientSession",
    "CsiPacket",
    "HEALTH_FAILURE_KINDS",
    "LoadGenerator",
    "LocalizationService",
    "ManualClock",
    "MicroBatch",
    "MicroBatcher",
    "PositionFix",
    "REJECT_REASONS",
    "RejectedPacket",
    "SERVE_CHAOS_SCENARIOS",
    "ServeChaosOptions",
    "ServeChaosResult",
    "ServeConfig",
    "ServeResult",
    "ServiceSupervisor",
    "SnapshotPolicy",
    "SolveRequest",
    "SupervisorResult",
    "Workload",
    "run_serve_chaos",
    "median_fix_error_m",
    "offline_reference",
    "replay",
]
