"""Streaming localization service.

The offline pipeline answers "where was the client, given this
recording"; :mod:`repro.serve` answers it *continuously*: per-AP CSI
packet streams are admitted, micro-batched into the batched sparse
solver, fused per client over sliding windows with first-class
warm-start state, and turned into robust position fixes with
confidence, degraded-mode AP accounting and Kalman tracks.

Entry points: :class:`LocalizationService` (the service itself),
:class:`LoadGenerator`/:func:`replay` (synthetic workloads to drive
it), and :func:`offline_reference` (the cold, unbatched accuracy
baseline).  The ``roarray serve`` / ``roarray loadgen`` CLI pair wraps
them.
"""

from repro.serve.batcher import MicroBatch, MicroBatcher, SolveRequest
from repro.serve.health import HEALTH_FAILURE_KINDS, ApHealth, ApHealthMonitor
from repro.serve.loadgen import (
    LoadGenerator,
    Workload,
    median_fix_error_m,
    offline_reference,
    replay,
)
from repro.serve.packets import REJECT_REASONS, CsiPacket, PositionFix, RejectedPacket
from repro.serve.service import LocalizationService, ServeConfig, ServeResult
from repro.serve.session import ApEstimate, ClientSession

__all__ = [
    "ApEstimate",
    "ApHealth",
    "ApHealthMonitor",
    "ClientSession",
    "CsiPacket",
    "HEALTH_FAILURE_KINDS",
    "LoadGenerator",
    "LocalizationService",
    "MicroBatch",
    "MicroBatcher",
    "PositionFix",
    "REJECT_REASONS",
    "RejectedPacket",
    "ServeConfig",
    "ServeResult",
    "SolveRequest",
    "Workload",
    "median_fix_error_m",
    "offline_reference",
    "replay",
]
