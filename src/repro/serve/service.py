"""The streaming localization service (``repro.serve``).

:class:`LocalizationService` is the long-lived, asyncio-hosted
deployment shape of the paper's pipeline: per-AP CSI packet streams in,
per-client :class:`~repro.serve.packets.PositionFix` streams out.

Dataflow::

    CsiPacket ──admission──> ClientSession window ──┐
                                                    │ SolveRequest
                   MicroBatcher (size / deadline) <─┘
                          │  MicroBatch
                          ▼
        solve_batch(method="mmv", warm_state=, warm_keys=)
                          │  per-(client, AP) joint spectrum
                          ▼
        direct-path AoA → localize_robust → KalmanTracker → PositionFix

The synchronous core (:meth:`~LocalizationService.submit`,
:meth:`~LocalizationService.process_due`, :meth:`~LocalizationService.drain`)
takes all times explicitly from the injected clock, so tests drive it
deterministically; :meth:`~LocalizationService.run` is the asyncio host
loop that pumps an async packet source through it.

Warm starts are first-class state here: one service-level
:class:`~repro.optim.warm.WarmStartState` keyed ``"<client>:<ap>"``
carries each pair's previous solution into its next micro-batch via
``solve_batch(warm_state=, warm_keys=)``, and
:meth:`~LocalizationService.save_warm_state` /
:meth:`~LocalizationService.load_warm_state` snapshot it across
restarts.
"""

from __future__ import annotations

import asyncio
import json
import time
from dataclasses import dataclass, field

import numpy as np

from repro.channel.array import UniformLinearArray
from repro.channel.geometry import AccessPoint, Room
from repro.channel.ofdm import SubcarrierLayout, intel5300_layout
from repro.core.direct_path import identify_direct_path
from repro.core.grids import AngleGrid, DelayGrid
from repro.core.joint import coefficients_to_joint_power
from repro.core.localization import (
    TRUST_THRESHOLD,
    ApObservation,
    DroppedAp,
    localize_consensus,
    localize_robust,
)
from repro.core.steering import SteeringCache, vectorize_csi_matrix
from repro.exceptions import ConfigurationError, QuorumError, ServiceError, SolverError
from repro.obs import NULL_TRACER, MetricsRegistry
from repro.optim.batch import solve_batch
from repro.optim.warm import WarmStartState
from repro.serve.backpressure import BackpressureController, BackpressurePolicy
from repro.serve.batcher import MicroBatch, MicroBatcher, SolveRequest
from repro.serve.breaker import BreakerBoard
from repro.serve.codec import decode_array, encode_array
from repro.serve.health import ApHealthMonitor
from repro.serve.packets import CsiPacket, PositionFix, RejectedPacket
from repro.serve.session import ClientSession
from repro.spectral.spectrum import JointSpectrum


@dataclass(frozen=True)
class ServeConfig:
    """Tunables of the streaming service.

    The solver knobs (grids, κ fraction, iteration cap, peak picking)
    mirror :class:`~repro.core.config.RoArrayConfig`; the rest shape
    the streaming behavior — micro-batch triggers, sliding windows,
    admission control and health thresholds.
    """

    #: Micro-batch size trigger (and the MMV batch width cap).
    batch_size: int = 16
    #: Micro-batch deadline trigger, on the service clock (seconds).
    max_delay_s: float = 0.05
    #: Bound on distinct pending (client, AP) solves — backpressure.
    max_pending: int = 4096
    #: Sliding window depth per (client, AP): packets and seconds.
    window_packets: int = 4
    window_s: float = 2.0
    #: AoA estimates older than this (packet time) drop out of fixes.
    observation_max_age_s: float = 2.0
    #: Minimum surviving APs for a fix (below → no fix, counted).
    min_quorum: int = 2
    #: Localization grid pitch in meters.
    resolution_m: float = 0.25
    #: AP health thresholds (packet staleness / consecutive failures).
    outage_after_s: float = 2.0
    failure_threshold: int = 3
    #: Per-AP circuit breaker: consecutive failures to trip, packet-time
    #: cool-down while open, and probes admitted half-open.  The breaker
    #: trips *after* health degrades (default 5 > failure_threshold 3)
    #: so dashboards see the AP flap before its packets stop costing
    #: solver budget.
    breaker_failure_threshold: int = 5
    breaker_open_for_s: float = 1.0
    breaker_half_open_probes: int = 1
    #: NLOS/corruption-aware fixes: localize by AP consensus, score
    #: per-AP trust, and demote persistently-untrusted APs in health.
    robust: bool = False
    #: Trust below this marks an AP untrusted (consensus exclusion and
    #: health demotion); only meaningful with ``robust=True``.
    trust_threshold: float = TRUST_THRESHOLD
    #: Adaptive-backpressure degradation ladder (queue watermarks).
    backpressure: BackpressurePolicy = field(default_factory=BackpressurePolicy)
    #: Chain per-(client, AP) solutions across micro-batches.
    warm_start: bool = True
    #: Sparse-solve working point.
    angle_grid: AngleGrid = field(default_factory=lambda: AngleGrid(n_points=91))
    delay_grid: DelayGrid = field(default_factory=lambda: DelayGrid(n_points=50))
    kappa_fraction: float = 0.15
    max_iterations: int = 150
    max_paths: int = 6
    peak_floor: float = 0.3
    #: Array backend for the batched solves.
    backend: str = "numpy"
    device: str | None = None
    dtype: str | None = None

    def __post_init__(self) -> None:
        if self.window_s <= 0 or self.observation_max_age_s <= 0:
            raise ConfigurationError("window_s and observation_max_age_s must be positive")
        if self.resolution_m <= 0:
            raise ConfigurationError(f"resolution_m must be positive, got {self.resolution_m}")
        if not 0 < self.kappa_fraction < 1:
            raise ConfigurationError(
                f"kappa_fraction must be in (0, 1), got {self.kappa_fraction}"
            )
        if self.max_iterations < 1:
            raise ConfigurationError(
                f"max_iterations must be >= 1, got {self.max_iterations}"
            )
        if not 0 < self.trust_threshold <= 1:
            raise ConfigurationError(
                f"trust_threshold must be in (0, 1], got {self.trust_threshold}"
            )


@dataclass(frozen=True)
class ServeResult:
    """Summary of one service run."""

    fixes: tuple[PositionFix, ...]
    rejected: tuple[RejectedPacket, ...]
    n_packets: int
    n_accepted: int
    wall_seconds: float
    max_batch_observed: int
    batch_triggers: dict[str, int]
    warm: dict
    metrics: dict
    health: dict
    breakers: dict = field(default_factory=dict)
    backpressure: dict = field(default_factory=dict)

    @property
    def n_fixes(self) -> int:
        return len(self.fixes)

    @property
    def fixes_per_second(self) -> float:
        return self.n_fixes / self.wall_seconds if self.wall_seconds > 0 else 0.0

    @property
    def fix_counts(self) -> dict[str, int]:
        counts: dict[str, int] = {}
        for fix in self.fixes:
            counts[fix.client] = counts.get(fix.client, 0) + 1
        return counts

    @property
    def reject_counts(self) -> dict[str, int]:
        counts: dict[str, int] = {}
        for packet in self.rejected:
            counts[packet.reason] = counts.get(packet.reason, 0) + 1
        return counts

    def to_dict(self) -> dict:
        return {
            "n_packets": self.n_packets,
            "n_accepted": self.n_accepted,
            "n_fixes": self.n_fixes,
            "fixes_per_second": self.fixes_per_second,
            "wall_seconds": self.wall_seconds,
            "max_batch_observed": self.max_batch_observed,
            "batch_triggers": dict(self.batch_triggers),
            "fix_counts": dict(sorted(self.fix_counts.items())),
            "reject_counts": dict(sorted(self.reject_counts.items())),
            "warm": self.warm,
            "fixes": [fix.to_dict() for fix in self.fixes],
            "rejected": [packet.to_dict() for packet in self.rejected],
            "metrics": self.metrics,
            "health": self.health,
            "breakers": self.breakers,
            "backpressure": self.backpressure,
        }


class LocalizationService:
    """Long-lived multi-client localization over streaming CSI.

    Parameters
    ----------
    room / access_points:
        The deployment geometry.  Packets from APs not registered here
        are rejected (``"unknown_ap"``).
    array / layout:
        Receiver hardware model shared by every AP; packet CSI must
        match its ``(antennas, subcarriers)`` shape.
    config:
        :class:`ServeConfig` streaming and solver tunables.
    tracer / metrics:
        Optional :class:`~repro.obs.Tracer` and
        :class:`~repro.obs.MetricsRegistry`; defaults are the no-op
        tracer and a fresh registry.
    clock:
        Monotonic-seconds callable for micro-batch deadlines and
        latency accounting (packet ``time_s`` stays the deployment's
        own clock).  Injected for deterministic tests.
    """

    def __init__(
        self,
        room: Room,
        access_points: list[AccessPoint],
        *,
        array: UniformLinearArray | None = None,
        layout: SubcarrierLayout | None = None,
        config: ServeConfig | None = None,
        tracer=NULL_TRACER,
        metrics: MetricsRegistry | None = None,
        clock=time.monotonic,
    ) -> None:
        if not access_points:
            raise ConfigurationError("service needs at least one access point")
        names = [ap.name for ap in access_points]
        if len(set(names)) != len(names):
            raise ConfigurationError(f"duplicate AP names: {names}")
        self.room = room
        self.access_points = {ap.name: ap for ap in access_points}
        self.array = array or UniformLinearArray()
        self.layout = layout or intel5300_layout()
        self.config = config or ServeConfig()
        self.tracer = tracer
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.clock = clock

        self.cache = SteeringCache(
            self.array, self.layout, self.config.angle_grid, self.config.delay_grid
        )
        self.warm_state = WarmStartState()
        self.health = ApHealthMonitor(
            names,
            outage_after_s=self.config.outage_after_s,
            failure_threshold=self.config.failure_threshold,
            trust_threshold=self.config.trust_threshold,
            metrics=self.metrics,
        )
        self.breakers = BreakerBoard(
            names,
            failure_threshold=self.config.breaker_failure_threshold,
            open_for_s=self.config.breaker_open_for_s,
            half_open_probes=self.config.breaker_half_open_probes,
            metrics=self.metrics,
        )
        self.backpressure = BackpressureController(
            self.config.backpressure,
            max_pending=self.config.max_pending,
            metrics=self.metrics,
        )
        self.sessions: dict[str, ClientSession] = {}
        self._batcher = MicroBatcher(
            batch_size=self.config.batch_size,
            max_delay_s=self.config.max_delay_s,
            max_pending=self.config.max_pending,
        )
        self._dirty: set[str] = set()
        # Snapshot encode cache for warm slots, keyed by the slot's
        # array object identity.  Safe because WarmStartState.put always
        # rebinds a fresh copy (an unchanged identity means unchanged
        # bytes), and the solver never mutates a stored slot in place
        # (warm seeds are copied into the stacked x0).
        self._warm_encode_cache: dict[str, tuple] = {}
        self._draining = False
        self._running = False
        self.max_batch_observed = 0
        self.batch_triggers: dict[str, int] = {}
        #: Newest packet time seen — the service's view of "now" on the
        #: deployment clock, which drives health staleness.
        self.latest_packet_time_s = 0.0

    # -- admission control ---------------------------------------------------

    def submit(self, packet: CsiPacket) -> str | None:
        """Admit one packet; returns ``None`` or the reject reason."""
        reason = self._admit(packet)
        if reason is None:
            self.metrics.counter("serve.packets_accepted").inc()
        else:
            self.metrics.counter(f"serve.rejected.{reason}").inc()
        return reason

    def _admit(self, packet: CsiPacket) -> str | None:
        if self._draining:
            return "draining"
        if packet.ap not in self.access_points:
            return "unknown_ap"
        # A tripped breaker rejects before validation or any window
        # work: a flapping AP's packets must not consume solver budget
        # — or even the cost of looking at them.
        if not self.breakers.allow(packet.ap, packet.time_s):
            return "breaker_open"
        csi = np.asarray(packet.csi)
        expected = (self.array.n_antennas, self.layout.n_subcarriers)
        if csi.shape != expected or not np.all(np.isfinite(csi)):
            self.health.record_failure(packet.ap, "invalid_csi", packet.time_s)
            self.breakers.record_failure(packet.ap, packet.time_s)
            return "invalid_csi"

        level = self.backpressure.update(self._batcher.pending)
        session = self.sessions.get(packet.client)
        if session is None:
            session = ClientSession(
                packet.client,
                window_packets=self.config.window_packets,
                window_s=self.config.window_s,
            )
            self.sessions[packet.client] = session
        elif packet.time_s < session.latest_time_s - self.config.window_s:
            # Older than anything the window could still hold.
            return "stale"
        elif level >= 3:
            # Ladder step 3: under heavy overload, shed stale data
            # first — packets well behind the session clock are the
            # cheapest accuracy to give up.
            horizon = self.backpressure.shed_horizon_s(self.config.window_s)
            if horizon is not None and packet.time_s < session.latest_time_s - horizon:
                return "shed_stale"

        now = self.clock()
        session.add_packet(packet.ap, packet.time_s, vectorize_csi_matrix(csi))
        snapshots = session.snapshots(packet.ap)
        # Ladder step 1: shrink the MMV window (keep the newest
        # columns) so each joint solve gets cheaper under load.
        cap = self.backpressure.window_cap(self.config.window_packets)
        if snapshots.shape[1] > cap:
            snapshots = snapshots[:, -cap:]
        request = SolveRequest(
            key=f"{packet.client}:{packet.ap}",
            client=packet.client,
            ap=packet.ap,
            snapshots=snapshots,
            packet_time_s=packet.time_s,
            rssi_dbm=packet.rssi_dbm,
            enqueued_at=now,
        )
        if not self._batcher.offer(request, now):
            return "queue_full"
        self.health.record_packet(packet.ap, packet.time_s)
        if packet.time_s > self.latest_packet_time_s:
            self.latest_packet_time_s = float(packet.time_s)
        return None

    # -- solving -------------------------------------------------------------

    @property
    def pending(self) -> int:
        return self._batcher.pending

    def process_due(self) -> list[PositionFix]:
        """Solve every due micro-batch and fix the affected clients."""
        now = self.clock()
        processed = False
        while (batch := self._batcher.poll(now)) is not None:
            self._process_batch(batch)
            processed = True
            now = self.clock()
        return self._fix_dirty_clients(now) if processed else []

    def drain(self) -> list[PositionFix]:
        """Stop admitting, flush everything pending, emit final fixes."""
        self._draining = True
        for batch in self._batcher.flush():
            self._process_batch(batch)
        return self._fix_dirty_clients(self.clock())

    def _process_batch(self, batch: MicroBatch) -> None:
        """One micro-batch → grouped MMV solves → per-AP estimates."""
        self.max_batch_observed = max(self.max_batch_observed, len(batch))
        self.batch_triggers[batch.trigger] = self.batch_triggers.get(batch.trigger, 0) + 1
        self.metrics.histogram("serve.batch_size").observe(len(batch))
        # solve_batch requires one shared problem shape; windows grow
        # from 1 to window_packets snapshots, so group by width.
        by_width: dict[int, list[SolveRequest]] = {}
        for request in batch.requests:
            by_width.setdefault(request.width, []).append(request)
        # Ladder step 2: cap the solve-group width under load so one
        # giant matmul cannot hold the event loop for a full batch.
        group_cap = self.backpressure.batch_cap(self.config.batch_size)
        with self.tracer.span(
            "serve.micro_batch", size=len(batch), trigger=batch.trigger
        ):
            for width, requests in sorted(by_width.items()):
                for start in range(0, len(requests), group_cap):
                    self._solve_group(width, requests[start : start + group_cap])

    def _solve_group(self, width: int, requests: list[SolveRequest]) -> None:
        warm = self.config.warm_start
        try:
            with self.tracer.span("serve.solve", width=width, n_problems=len(requests)):
                result = solve_batch(
                    self.cache.joint_operator,
                    [request.snapshots for request in requests],
                    "mmv",
                    kappa_fraction=self.config.kappa_fraction,
                    backend=self.config.backend,
                    device=self.config.device,
                    dtype=self.config.dtype,
                    warm_state=self.warm_state if warm else None,
                    warm_keys=[request.key for request in requests] if warm else None,
                    max_iterations=self.config.max_iterations,
                    lipschitz=self.cache.joint_lipschitz,
                )
        except SolverError as error:
            # The whole group failed (bad conditioning, backend fault):
            # taxonomize per AP and keep serving the other groups.
            self.metrics.counter("serve.solve_failures").inc(len(requests))
            for request in requests:
                self.health.record_failure(request.ap, "solver", request.packet_time_s)
                self.breakers.record_failure(request.ap, request.packet_time_s)
            with self.tracer.span("serve.solve_failure", error=str(error)):
                pass
            return

        solutions = result.to_numpy()
        n_angles = self.config.angle_grid.n_points
        n_toas = self.config.delay_grid.n_points
        for index, request in enumerate(requests):
            power = coefficients_to_joint_power(solutions[index], n_angles, n_toas)
            spectrum = JointSpectrum(
                self.config.angle_grid.angles_deg, self.config.delay_grid.toas_s, power
            )
            direct = identify_direct_path(
                spectrum, max_paths=self.config.max_paths, peak_floor=self.config.peak_floor
            )
            session = self.sessions[request.client]
            session.record_estimate(
                request.ap,
                request.packet_time_s,
                direct.aoa_deg,
                request.rssi_dbm,
                request.enqueued_at,
            )
            self.health.record_success(request.ap, request.packet_time_s)
            self.breakers.record_success(request.ap, request.packet_time_s)
            self._dirty.add(request.client)
        self.metrics.counter("serve.solves").inc(len(requests))

    # -- fixes ---------------------------------------------------------------

    def _fix_dirty_clients(self, now: float) -> list[PositionFix]:
        fixes = []
        for client in sorted(self._dirty):
            fix = self._fix_client(self.sessions[client], now)
            if fix is not None:
                fixes.append(fix)
        self._dirty.clear()
        return fixes

    def _fix_client(self, session: ClientSession, now: float) -> PositionFix | None:
        fresh = session.fresh_estimates(max_age_s=self.config.observation_max_age_s)
        observations = [
            ApObservation(
                access_point=self.access_points[ap],
                aoa_deg=estimate.aoa_deg,
                rssi_dbm=estimate.rssi_dbm,
            )
            for ap, estimate in fresh.items()
        ]
        dropped: list[DroppedAp] = []
        for name in self.access_points:
            if name in fresh:
                continue
            if self.breakers.state(name) == "open":
                reason = self.breakers.open_reason(name)
                bucket = "breaker_open"
            elif self.health.status(name, session.latest_time_s) == "outage":
                reason = f"AP outage: {self.health.outage_reason(name, session.latest_time_s)}"
                bucket = "outage"
            elif name in session.estimates:
                reason = "stale estimate"
                bucket = "stale"
            else:
                reason = "no estimate yet"
                bucket = "no_estimate"
            dropped.append(DroppedAp(name=name, reason=reason))
            self.metrics.counter(f"serve.dropped_ap.{bucket}").inc()

        trust: dict[str, float] = {}
        contaminated = False
        try:
            if self.config.robust:
                located = localize_consensus(
                    observations,
                    self.room,
                    dropped=dropped,
                    min_quorum=self.config.min_quorum,
                    resolution_m=self.config.resolution_m,
                    trust_threshold=self.config.trust_threshold,
                )
                contaminated = located.contaminated
                for score in located.trust_scores:
                    trust[score.name] = score.trust
                    self.health.record_trust(score.name, score.trust)
                    self.metrics.histogram("serve.ap_trust").observe(score.trust)
                if contaminated:
                    self.metrics.counter("serve.contaminated_fixes").inc()
            else:
                located = localize_robust(
                    observations,
                    self.room,
                    dropped=dropped,
                    min_quorum=self.config.min_quorum,
                    resolution_m=self.config.resolution_m,
                )
        except QuorumError:
            self.metrics.counter("serve.below_quorum").inc()
            return None

        state = session.tracker.update(session.latest_time_s, located.position)
        session.last_fix_time_s = session.latest_time_s
        latency = max(
            0.0, now - min(estimate.enqueued_at for estimate in fresh.values())
        )
        self.metrics.counter("serve.fixes").inc()
        self.metrics.histogram("serve.fix_latency_s").observe(latency)
        self.metrics.histogram("serve.confidence").observe(located.confidence)
        if located.degraded:
            self.metrics.counter("serve.degraded_fixes").inc()
        if not state.accepted:
            self.metrics.counter("serve.gated_fixes").inc()
        return PositionFix(
            client=session.client,
            time_s=session.latest_time_s,
            position=located.position,
            confidence=located.confidence,
            used_aps=located.used_aps,
            dropped_aps=located.dropped_aps,
            degraded=located.degraded,
            tracked_position=state.position,
            velocity=state.velocity,
            accepted=state.accepted,
            latency_s=latency,
            trust=trust,
            contaminated=contaminated,
        )

    # -- asyncio host --------------------------------------------------------

    async def run(self, source, *, poll_interval_s: float = 0.002) -> ServeResult:
        """Pump an async packet source through the service to completion.

        ``source`` is any async iterable of
        :class:`~repro.serve.packets.CsiPacket` (e.g.
        :func:`repro.serve.loadgen.replay`).  Ingest and solving share
        the event loop: full batches are solved inline with ingest
        (size trigger), and a poll task sweeps deadline batches while
        the stream idles.  When the source ends, the service drains —
        remaining windows are flushed through final micro-batches and
        last fixes emitted — and the run summary is returned.
        """
        if self._running:
            raise ServiceError("service is already running")
        self._running = True
        started = self.clock()
        fixes: list[PositionFix] = []
        rejected: list[RejectedPacket] = []
        n_packets = 0
        try:
            with self.tracer.span("serve.run"):
                ingest_done = False

                async def _ingest():
                    nonlocal n_packets, ingest_done
                    async for packet in source:
                        n_packets += 1
                        reason = self.submit(packet)
                        if reason is not None:
                            rejected.append(
                                RejectedPacket(
                                    packet.client, packet.ap, packet.time_s, reason
                                )
                            )
                        # Solve full batches inline so a fast producer
                        # cannot grow the backlog unboundedly.
                        if self._batcher.pending >= self.config.batch_size:
                            fixes.extend(self.process_due())
                    ingest_done = True

                ingest = asyncio.ensure_future(_ingest())
                try:
                    while not ingest_done:
                        fixes.extend(self.process_due())
                        await asyncio.sleep(poll_interval_s)
                    await ingest
                finally:
                    if not ingest.done():
                        ingest.cancel()
                fixes.extend(self.drain())
        finally:
            self._running = False
        wall = self.clock() - started
        return ServeResult(
            fixes=tuple(fixes),
            rejected=tuple(rejected),
            n_packets=n_packets,
            n_accepted=n_packets - len(rejected),
            wall_seconds=wall,
            max_batch_observed=self.max_batch_observed,
            batch_triggers=dict(self.batch_triggers),
            warm={
                "enabled": self.config.warm_start,
                "hits": self.warm_state.hits,
                "misses": self.warm_state.misses,
                "slots": len(self.warm_state),
                "nbytes": self.warm_state.nbytes,
            },
            metrics=self.metrics.to_dict(),
            health=self.health.to_dict(self.latest_packet_time_s),
            breakers=self.breakers.to_dict(),
            backpressure=self.backpressure.to_dict(),
        )

    # -- snapshot / restore --------------------------------------------------

    #: Bump when the snapshot layout changes incompatibly.
    SNAPSHOT_VERSION = 1

    def snapshot_state(self) -> dict:
        """Every piece of mutable service state, losslessly.

        The contract: a fresh service that ``restore_state``s this
        payload and then receives the same packet sequence produces
        *byte-identical* fixes to the service that never stopped.  That
        requires exact float round-trips everywhere (see
        :mod:`repro.serve.codec`) and packet-time clocks throughout —
        anything keyed to a wall clock would replay differently.
        """
        return {
            "version": self.SNAPSHOT_VERSION,
            # Warm slots go through the fast binary-exact codec, not
            # WarmStartState.to_dict — at thousands of slots the
            # repr-per-float path would dominate snapshot cost.  An
            # identity-keyed cache skips re-encoding slots untouched
            # since the previous snapshot.
            "warm": {"slots": self._encode_warm_slots()},
            "health": self.health.state_dict(),
            "breakers": self.breakers.state_dict(),
            "backpressure": self.backpressure.state_dict(),
            "sessions": {
                client: session.state_dict()
                for client, session in self.sessions.items()
            },
            "batcher": self._batcher.state_dict(),
            "dirty": sorted(self._dirty),
            "draining": self._draining,
            "max_batch_observed": self.max_batch_observed,
            "batch_triggers": dict(self.batch_triggers),
            "latest_packet_time_s": self.latest_packet_time_s,
        }

    def _encode_warm_slots(self) -> dict:
        cache = self._warm_encode_cache
        slots = self.warm_state.slots
        encoded = {}
        for key, value in slots.items():
            ref, payload = cache.get(key, (None, None))
            if value is not ref:
                payload = encode_array(value)
                cache[key] = (value, payload)
            encoded[key] = payload
        for key in [key for key in cache if key not in slots]:
            del cache[key]
        return encoded

    def restore_state(self, payload: dict) -> None:
        """Restore a :meth:`snapshot_state` payload into this service."""
        version = payload.get("version")
        if version != self.SNAPSHOT_VERSION:
            raise ServiceError(
                f"unsupported service snapshot version {version!r} "
                f"(this build writes {self.SNAPSHOT_VERSION})"
            )
        self.warm_state = WarmStartState(
            slots={
                key: decode_array(value)
                for key, value in payload["warm"]["slots"].items()
            }
        )
        self._warm_encode_cache.clear()
        self.health.restore_state(payload["health"])
        self.breakers.restore_state(payload["breakers"])
        self.backpressure.restore_state(payload["backpressure"])
        self.sessions = {
            client: ClientSession.from_state_dict(state)
            for client, state in payload["sessions"].items()
        }
        self._batcher.restore_state(payload["batcher"])
        self._dirty = set(payload["dirty"])
        self._draining = bool(payload["draining"])
        self.max_batch_observed = int(payload["max_batch_observed"])
        self.batch_triggers = {
            str(k): int(v) for k, v in payload["batch_triggers"].items()
        }
        self.latest_packet_time_s = float(payload["latest_packet_time_s"])

    # -- warm-start persistence ----------------------------------------------

    def save_warm_state(self, path) -> None:
        """Snapshot the service's warm-start state to JSON (atomic)."""
        from repro.runtime.checkpoint import atomic_write

        atomic_write(path, self.warm_state.to_dict())

    def load_warm_state(self, path) -> int:
        """Restore a snapshot; returns the number of slots loaded."""
        with open(path) as handle:
            self.warm_state = WarmStartState.from_dict(json.load(handle))
        self._warm_encode_cache.clear()
        return len(self.warm_state)
