"""Exact JSON codecs for service snapshot state.

Supervised crash recovery promises *byte-identical* fixes after a
restore, which demands lossless serialization of every piece of mutable
service state — and snapshots ride the clean path, so encoding speed is
a throughput concern, not a nicety.  Two primitives make both true:

* Arrays round-trip as base64 of their raw float64/complex128 bytes:
  bit-exact by construction (no decimal formatting in the loop) and
  orders of magnitude faster to encode than ``repr``-per-float lists,
  which is what keeps the supervisor's periodic snapshots inside the
  serve benchmark's clean-path overhead budget.
* Mostly-zero arrays switch to a sparse form (nonzero indices + values)
  whenever that is smaller.  Warm-start slots are sparse-recovery
  solutions — typically >90% exact zeros after soft-thresholding — so
  this cuts the dominant snapshot payload by an order of magnitude.
  Nonzeros are selected at the *bit* level, so ``-0.0`` and subnormals
  survive and the dense reconstruction is byte-identical, not merely
  value-equal.
* Sentinel times (``-inf`` before any packet) map to ``None`` so the
  snapshot stays standard JSON.
"""

from __future__ import annotations

import base64

import numpy as np

from repro.exceptions import ServiceError

#: The only dtypes a snapshot array may carry — everything the service
#: stores is (or exactly widens to) one of these.
_DTYPES = {"float64": np.float64, "complex128": np.complex128}


def encode_array(array: np.ndarray) -> dict:
    """Lossless JSON form of a (possibly complex) array.

    Dense arrays serialize as shape + raw bytes.  When the array is
    mostly exact zeros the encoder emits a sparse form instead —
    nonzero flat indices plus their raw bytes — chosen only when it is
    strictly smaller than the dense form (a sparse entry costs 24
    bytes: an int64 index plus a float64/complex128 payload component).
    Both forms decode through :func:`decode_array`.
    """
    array = np.asarray(array)
    dtype = np.complex128 if np.iscomplexobj(array) else np.float64
    array = np.ascontiguousarray(array, dtype=dtype)
    flat = array.reshape(-1)
    if flat.size:
        # Bit-level nonzero test: -0.0 and subnormals count as nonzero,
        # so scattering into np.zeros reconstructs the exact bytes.
        components = flat.view(np.uint64).reshape(flat.size, -1)
        indices = np.flatnonzero(components.any(axis=1))
        sparse_nbytes = indices.size * (8 + array.dtype.itemsize)
        if sparse_nbytes < flat.nbytes:
            values = np.ascontiguousarray(flat[indices])
            return {
                "shape": list(array.shape),
                "dtype": array.dtype.name,
                "indices": base64.b64encode(
                    indices.astype(np.int64).tobytes()
                ).decode("ascii"),
                "values": base64.b64encode(values.tobytes()).decode("ascii"),
            }
    return {
        "shape": list(array.shape),
        "dtype": array.dtype.name,
        "b64": base64.b64encode(array.tobytes()).decode("ascii"),
    }


def decode_array(payload: dict) -> np.ndarray:
    dtype = _DTYPES.get(payload["dtype"])
    if dtype is None:
        raise ServiceError(
            f"snapshot array has unsupported dtype {payload['dtype']!r} "
            f"(expected one of {sorted(_DTYPES)})"
        )
    shape = tuple(payload["shape"])
    if "indices" in payload:
        indices = np.frombuffer(
            base64.b64decode(payload["indices"].encode("ascii")), dtype=np.int64
        )
        values = np.frombuffer(
            base64.b64decode(payload["values"].encode("ascii")), dtype=dtype
        )
        if indices.size != values.size:
            raise ServiceError(
                f"sparse snapshot array is inconsistent: {indices.size} "
                f"indices but {values.size} values"
            )
        flat = np.zeros(int(np.prod(shape, dtype=np.int64)), dtype=dtype)
        flat[indices] = values
        return flat.reshape(shape)
    raw = base64.b64decode(payload["b64"].encode("ascii"))
    return np.frombuffer(raw, dtype=dtype).reshape(shape).copy()


def encode_time(value: float) -> float | None:
    """``-inf`` sentinels (no packet yet) become ``None`` in JSON."""
    return None if value == float("-inf") else float(value)


def decode_time(value: float | None) -> float:
    return float("-inf") if value is None else float(value)
