"""Size/deadline micro-batching of solve requests.

The service's throughput comes from :func:`repro.optim.solve_batch`,
which amortizes the dictionary products over many problems — but a
streaming ingest produces one problem at a time.  The
:class:`MicroBatcher` sits between them: solve requests accumulate in a
bounded pending set and a batch fires when either ``batch_size``
requests are waiting (throughput trigger) or the oldest request has
waited ``max_delay_s`` (latency trigger), so load determines the
operating point — full batches under pressure, prompt small batches
when idle.

The batcher is deliberately synchronous and clockless: callers pass
``now`` explicitly, which makes the trigger logic deterministic under
test and lets the asyncio service drive it from its own clock.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.exceptions import ConfigurationError
from repro.serve.codec import decode_array, encode_array


@dataclass(frozen=True)
class SolveRequest:
    """One pending sparse solve: a client/AP pair's current snapshot window.

    ``key`` doubles as the warm-start slot name
    (``"<client>:<ap>"``) so consecutive solves for the same pair chain
    through the service's :class:`~repro.optim.warm.WarmStartState`.
    """

    key: str
    client: str
    ap: str
    snapshots: np.ndarray = field(repr=False)  # (m, p) vectorized window
    packet_time_s: float
    rssi_dbm: float
    enqueued_at: float

    @property
    def width(self) -> int:
        """Snapshot count ``p`` — batches group by this for the MMV solve."""
        return int(self.snapshots.shape[1])

    def state_dict(self) -> dict:
        return {
            "key": self.key,
            "client": self.client,
            "ap": self.ap,
            "snapshots": encode_array(self.snapshots),
            "packet_time_s": self.packet_time_s,
            "rssi_dbm": self.rssi_dbm,
            "enqueued_at": self.enqueued_at,
        }

    @classmethod
    def from_state_dict(cls, payload: dict) -> "SolveRequest":
        return cls(
            key=str(payload["key"]),
            client=str(payload["client"]),
            ap=str(payload["ap"]),
            snapshots=decode_array(payload["snapshots"]),
            packet_time_s=float(payload["packet_time_s"]),
            rssi_dbm=float(payload["rssi_dbm"]),
            enqueued_at=float(payload["enqueued_at"]),
        )


@dataclass(frozen=True)
class MicroBatch:
    """A fired batch and what fired it (``"size"``, ``"deadline"``, ``"flush"``)."""

    requests: tuple[SolveRequest, ...]
    trigger: str

    def __len__(self) -> int:
        return len(self.requests)


class MicroBatcher:
    """Bounded, coalescing pending set with size and deadline triggers.

    A second request for a key already pending *replaces* its payload
    (the newer window supersedes the older one) without consuming a new
    slot or resetting its deadline — a chatty client cannot starve the
    latency trigger or the queue.  ``offer`` returns ``False`` only
    when the pending set is full of *distinct* keys: that is genuine
    backpressure, and the service rejects the packet as
    ``"queue_full"``.
    """

    def __init__(
        self, *, batch_size: int = 16, max_delay_s: float = 0.05, max_pending: int = 4096
    ) -> None:
        if batch_size < 1:
            raise ConfigurationError(f"batch_size must be >= 1, got {batch_size}")
        if max_delay_s < 0:
            raise ConfigurationError(f"max_delay_s must be >= 0, got {max_delay_s}")
        if max_pending < batch_size:
            raise ConfigurationError(
                f"max_pending ({max_pending}) must be >= batch_size ({batch_size})"
            )
        self.batch_size = batch_size
        self.max_delay_s = max_delay_s
        self.max_pending = max_pending
        # Insertion-ordered: the first entry is always the oldest
        # deadline (replacements keep the original position and time).
        self._pending: dict[str, SolveRequest] = {}
        self._deadlines: dict[str, float] = {}

    @property
    def pending(self) -> int:
        return len(self._pending)

    def offer(self, request: SolveRequest, now: float) -> bool:
        """Admit (or coalesce) a request; ``False`` means queue full."""
        if request.key in self._pending:
            self._pending[request.key] = request
            return True
        if len(self._pending) >= self.max_pending:
            return False
        self._pending[request.key] = request
        self._deadlines[request.key] = now
        return True

    def poll(self, now: float) -> MicroBatch | None:
        """The next due batch, or ``None`` when no trigger has fired.

        Call in a loop until ``None`` — under a backlog several size
        batches can be due at once.
        """
        if len(self._pending) >= self.batch_size:
            return self._take(self.batch_size, "size")
        if self._pending:
            oldest = next(iter(self._deadlines.values()))
            if now - oldest >= self.max_delay_s:
                return self._take(len(self._pending), "deadline")
        return None

    def flush(self) -> list[MicroBatch]:
        """Drain everything pending (shutdown), in batch-size chunks."""
        batches = []
        while self._pending:
            batches.append(self._take(min(self.batch_size, len(self._pending)), "flush"))
        return batches

    def _take(self, count: int, trigger: str) -> MicroBatch:
        keys = list(self._pending)[:count]
        requests = tuple(self._pending.pop(key) for key in keys)
        for key in keys:
            self._deadlines.pop(key, None)
        return MicroBatch(requests=requests, trigger=trigger)

    # -- snapshot support ----------------------------------------------------

    def state_dict(self) -> dict:
        """The pending backlog, in insertion order, losslessly.

        Insertion order *is* state: it determines which keys the next
        size-triggered batch takes, so the snapshot preserves it (dicts
        restore in the order entries are written).
        """
        return {
            "pending": [request.state_dict() for request in self._pending.values()],
            "deadlines": {key: self._deadlines[key] for key in self._deadlines},
        }

    def restore_state(self, payload: dict) -> None:
        self._pending = {}
        self._deadlines = {}
        for item in payload["pending"]:
            request = SolveRequest.from_state_dict(item)
            self._pending[request.key] = request
        for key, deadline in payload["deadlines"].items():
            self._deadlines[key] = float(deadline)
