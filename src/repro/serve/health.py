"""Per-AP health tracking for the streaming service.

An AP degrades in two observable ways: its *solves* start failing (the
batch runtime's failure taxonomy — validation, solver, timeout,
runtime, crash — extended with ``invalid_csi`` for packets that never
reach a solve), or its *packets* stop arriving entirely.  The monitor
folds both into a three-state health signal:

``healthy``
    Packets flowing, last solve succeeded.
``degraded``
    Recent failures, but fewer than ``failure_threshold`` in a row.
``outage``
    ``failure_threshold`` consecutive failures, or no packet for
    ``outage_after_s`` (on packet time, so the signal is deterministic
    under replay) — or no packet ever.

Degraded-mode localization consumes the signal as
:class:`~repro.core.localization.DroppedAp` records: an outage AP is
excluded from fixes with its reason attached, which is what lowers the
fix confidence instead of poisoning the position.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.localization import TRUST_THRESHOLD, DroppedAp
from repro.exceptions import ConfigurationError
from repro.runtime.jobs import FAILURE_KINDS

#: Solve-failure kinds the monitor accepts: the batch runtime's
#: taxonomy plus the service-level pre-solve rejection.
HEALTH_FAILURE_KINDS = FAILURE_KINDS + ("invalid_csi",)


@dataclass
class ApHealth:
    """One AP's running health record."""

    name: str
    last_packet_s: float | None = None
    last_success_s: float | None = None
    consecutive_failures: int = 0
    failures: dict[str, int] = field(default_factory=dict)
    n_packets: int = 0
    n_solves: int = 0
    last_trust: float | None = None

    def to_dict(self) -> dict:
        return {
            "last_packet_s": self.last_packet_s,
            "last_success_s": self.last_success_s,
            "consecutive_failures": self.consecutive_failures,
            "failures": dict(sorted(self.failures.items())),
            "n_packets": self.n_packets,
            "n_solves": self.n_solves,
            "last_trust": self.last_trust,
        }

    def restore(self, payload: dict) -> None:
        self.last_packet_s = payload["last_packet_s"]
        self.last_success_s = payload["last_success_s"]
        self.consecutive_failures = int(payload["consecutive_failures"])
        self.failures = {str(k): int(v) for k, v in payload["failures"].items()}
        self.n_packets = int(payload["n_packets"])
        self.n_solves = int(payload["n_solves"])
        # Snapshots written before trust scoring existed lack the key.
        trust = payload.get("last_trust")
        self.last_trust = None if trust is None else float(trust)


class ApHealthMonitor:
    """Fold packet arrivals and solve outcomes into per-AP health states."""

    def __init__(
        self,
        ap_names,
        *,
        outage_after_s: float = 2.0,
        failure_threshold: int = 3,
        trust_threshold: float = TRUST_THRESHOLD,
        metrics=None,
    ) -> None:
        if outage_after_s <= 0:
            raise ConfigurationError(f"outage_after_s must be positive, got {outage_after_s}")
        if failure_threshold < 1:
            raise ConfigurationError(
                f"failure_threshold must be >= 1, got {failure_threshold}"
            )
        if not 0 < trust_threshold <= 1:
            raise ConfigurationError(
                f"trust_threshold must be in (0, 1], got {trust_threshold}"
            )
        names = list(ap_names)
        if len(set(names)) != len(names):
            raise ConfigurationError(f"duplicate AP names: {names}")
        self.outage_after_s = outage_after_s
        self.failure_threshold = failure_threshold
        self.trust_threshold = trust_threshold
        self.metrics = metrics
        self._aps = {name: ApHealth(name=name) for name in names}
        # Last status each AP was *observed* in; transitions between
        # observations are counted per edge so dashboards see flapping.
        self._last_status: dict[str, str | None] = {name: None for name in names}

    def record_packet(self, ap: str, time_s: float) -> None:
        health = self._aps[ap]
        health.n_packets += 1
        if health.last_packet_s is None or time_s > health.last_packet_s:
            health.last_packet_s = time_s

    def record_success(self, ap: str, time_s: float) -> None:
        health = self._aps[ap]
        health.n_solves += 1
        health.consecutive_failures = 0
        if health.last_success_s is None or time_s > health.last_success_s:
            health.last_success_s = time_s

    def record_trust(self, ap: str, trust: float) -> None:
        """Fold one consensus-localization trust score into AP health.

        A solve can succeed mechanically while its *measurement* is
        corrupted (NLOS bias, ghost path) — trust is the orthogonal
        signal: an AP whose latest score sits below the threshold shows
        ``"degraded"`` even with a perfect packet/solve record, so
        dashboards surface the corrupted AP before operators chase the
        clients it was misplacing.
        """
        if not np.isfinite(trust) or not 0 <= trust <= 1:
            raise ConfigurationError(f"trust must be in [0, 1], got {trust}")
        self._aps[ap].last_trust = float(trust)

    def record_failure(self, ap: str, kind: str, time_s: float) -> None:
        if kind not in HEALTH_FAILURE_KINDS:
            raise ConfigurationError(
                f"unknown failure kind {kind!r}; taxonomy: {HEALTH_FAILURE_KINDS}"
            )
        health = self._aps[ap]
        health.n_solves += 1
        health.consecutive_failures += 1
        health.failures[kind] = health.failures.get(kind, 0) + 1

    def status(self, ap: str, now_s: float) -> str:
        """``"healthy"`` / ``"degraded"`` / ``"outage"`` as of ``now_s``.

        Every observed state *change* emits a
        ``serve.ap_health.transition.<old>_to_<new>`` counter; the
        first observation of an AP sets its baseline silently.
        """
        health = self._aps[ap]
        if health.last_packet_s is None:
            status = "outage"
        elif now_s - health.last_packet_s > self.outage_after_s:
            status = "outage"
        elif health.consecutive_failures >= self.failure_threshold:
            status = "outage"
        elif health.consecutive_failures > 0:
            status = "degraded"
        elif health.last_trust is not None and health.last_trust < self.trust_threshold:
            status = "degraded"
        else:
            status = "healthy"
        previous = self._last_status[ap]
        if previous != status:
            self._last_status[ap] = status
            if previous is not None and self.metrics is not None:
                self.metrics.counter(
                    f"serve.ap_health.transition.{previous}_to_{status}"
                ).inc()
        return status

    def outage_reason(self, ap: str, now_s: float) -> str:
        """Human-readable reason for an ``"outage"`` status."""
        health = self._aps[ap]
        if health.last_packet_s is None:
            return "no packets received"
        if now_s - health.last_packet_s > self.outage_after_s:
            return f"no packets for {now_s - health.last_packet_s:.1f} s"
        return (
            f"{health.consecutive_failures} consecutive solve failures "
            f"({', '.join(sorted(health.failures))})"
        )

    def dropped_aps(self, now_s: float) -> list[DroppedAp]:
        """The APs a fix at ``now_s`` must exclude, with reasons."""
        return [
            DroppedAp(name=name, reason=f"AP outage: {self.outage_reason(name, now_s)}")
            for name in self._aps
            if self.status(name, now_s) == "outage"
        ]

    def to_dict(self, now_s: float) -> dict:
        return {
            name: {"status": self.status(name, now_s), **health.to_dict()}
            for name, health in sorted(self._aps.items())
        }

    # -- snapshot support ----------------------------------------------------

    def state_dict(self) -> dict:
        """Full internal state for the service snapshot (exact restore)."""
        return {
            "aps": {name: health.to_dict() for name, health in self._aps.items()},
            "last_status": dict(self._last_status),
        }

    def restore_state(self, payload: dict) -> None:
        for name, state in payload["aps"].items():
            if name not in self._aps:
                raise ConfigurationError(f"snapshot names unknown AP {name!r}")
            self._aps[name].restore(state)
        for name, status in payload["last_status"].items():
            if name in self._last_status:
                self._last_status[name] = status
