"""Per-AP circuit breakers for the streaming service.

The :class:`~repro.serve.health.ApHealthMonitor` *reports* a flapping
AP; the breaker *acts* on it.  Without one, an AP whose solves keep
failing still consumes solver budget on every packet — each admission
builds a window, enqueues a solve, burns a batch slot, fails, and
pushes the health monitor further into outage while starving healthy
APs of batch width.  The breaker cuts that loop at admission, before
any budget is spent.

Classic three-state machine, deterministic on packet time:

``closed``
    Normal operation.  ``failure_threshold`` *consecutive* failures
    trip it open.
``open``
    Packets are rejected at admission (reason ``"breaker_open"``) for
    ``open_for_s`` seconds of packet time — no window updates, no
    batch slots, no solver budget.
``half_open``
    After the cool-down, exactly ``half_open_probes`` packets are
    admitted as probes.  One success closes the breaker; one failure
    re-opens it for a fresh cool-down.

All clocks are *packet* time, so breaker behavior is byte-identical
under supervised replay — an essential property for crash recovery:
the restored service must re-take exactly the decisions the crashed
one took.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.exceptions import ConfigurationError

#: The breaker state machine's states.
BREAKER_STATES = ("closed", "open", "half_open")


@dataclass
class CircuitBreaker:
    """One AP's breaker: closed / open / half-open on packet time."""

    failure_threshold: int = 5
    open_for_s: float = 1.0
    half_open_probes: int = 1

    state: str = "closed"
    consecutive_failures: int = 0
    opened_at_s: float = 0.0
    probes_in_flight: int = 0
    n_trips: int = 0

    def __post_init__(self) -> None:
        if self.failure_threshold < 1:
            raise ConfigurationError(
                f"failure_threshold must be >= 1, got {self.failure_threshold}"
            )
        if self.open_for_s <= 0:
            raise ConfigurationError(f"open_for_s must be positive, got {self.open_for_s}")
        if self.half_open_probes < 1:
            raise ConfigurationError(
                f"half_open_probes must be >= 1, got {self.half_open_probes}"
            )
        if self.state not in BREAKER_STATES:
            raise ConfigurationError(
                f"unknown breaker state {self.state!r}; taxonomy: {BREAKER_STATES}"
            )

    def allow(self, now_s: float) -> bool:
        """Admission decision for one packet at packet time ``now_s``."""
        if self.state == "closed":
            return True
        if self.state == "open":
            if now_s - self.opened_at_s < self.open_for_s:
                return False
            self.state = "half_open"
            self.probes_in_flight = 0
        # half_open: admit a bounded number of probes.
        if self.probes_in_flight < self.half_open_probes:
            self.probes_in_flight += 1
            return True
        return False

    def record_success(self, now_s: float) -> None:
        self.consecutive_failures = 0
        if self.state != "closed":
            self.state = "closed"
            self.probes_in_flight = 0

    def record_failure(self, now_s: float) -> None:
        self.consecutive_failures += 1
        if self.state == "half_open" or (
            self.state == "closed" and self.consecutive_failures >= self.failure_threshold
        ):
            self.state = "open"
            self.opened_at_s = float(now_s)
            self.probes_in_flight = 0
            self.n_trips += 1

    def state_dict(self) -> dict:
        return {
            "state": self.state,
            "consecutive_failures": self.consecutive_failures,
            "opened_at_s": self.opened_at_s,
            "probes_in_flight": self.probes_in_flight,
            "n_trips": self.n_trips,
        }

    def restore_state(self, payload: dict) -> None:
        state = str(payload["state"])
        if state not in BREAKER_STATES:
            raise ConfigurationError(
                f"unknown breaker state {state!r}; taxonomy: {BREAKER_STATES}"
            )
        self.state = state
        self.consecutive_failures = int(payload["consecutive_failures"])
        self.opened_at_s = float(payload["opened_at_s"])
        self.probes_in_flight = int(payload["probes_in_flight"])
        self.n_trips = int(payload["n_trips"])


class BreakerBoard:
    """The service's breakers, one per registered AP, with obs metrics.

    Every state transition is counted as
    ``serve.breaker.transition.<old>_to_<new>`` and the per-AP trip
    count as ``serve.breaker.trips``, so dashboards can see which AP is
    flapping and how often the board is saving solver budget
    (``serve.rejected.breaker_open`` counts the saved packets).
    """

    def __init__(
        self,
        ap_names,
        *,
        failure_threshold: int = 5,
        open_for_s: float = 1.0,
        half_open_probes: int = 1,
        metrics=None,
    ) -> None:
        names = list(ap_names)
        if len(set(names)) != len(names):
            raise ConfigurationError(f"duplicate AP names: {names}")
        self._breakers = {
            name: CircuitBreaker(
                failure_threshold=failure_threshold,
                open_for_s=open_for_s,
                half_open_probes=half_open_probes,
            )
            for name in names
        }
        self.metrics = metrics

    def __contains__(self, ap: str) -> bool:
        return ap in self._breakers

    def state(self, ap: str) -> str:
        return self._breakers[ap].state

    def breaker(self, ap: str) -> CircuitBreaker:
        return self._breakers[ap]

    def _transition(self, ap: str, before: str, after: str) -> None:
        if before != after and self.metrics is not None:
            self.metrics.counter(f"serve.breaker.transition.{before}_to_{after}").inc()

    def allow(self, ap: str, now_s: float) -> bool:
        breaker = self._breakers[ap]
        before = breaker.state
        allowed = breaker.allow(now_s)
        self._transition(ap, before, breaker.state)
        return allowed

    def record_success(self, ap: str, now_s: float) -> None:
        breaker = self._breakers[ap]
        before = breaker.state
        breaker.record_success(now_s)
        self._transition(ap, before, breaker.state)

    def record_failure(self, ap: str, now_s: float) -> None:
        breaker = self._breakers[ap]
        before = breaker.state
        breaker.record_failure(now_s)
        self._transition(ap, before, breaker.state)
        if breaker.state != before and breaker.state == "open" and self.metrics is not None:
            self.metrics.counter("serve.breaker.trips").inc()

    def open_reason(self, ap: str) -> str:
        breaker = self._breakers[ap]
        return (
            f"circuit breaker open: {breaker.consecutive_failures} consecutive "
            f"failures (trip #{breaker.n_trips})"
        )

    def to_dict(self) -> dict:
        return {
            name: breaker.state_dict()
            for name, breaker in sorted(self._breakers.items())
        }

    def state_dict(self) -> dict:
        return self.to_dict()

    def restore_state(self, payload: dict) -> None:
        for name, state in payload.items():
            if name not in self._breakers:
                raise ConfigurationError(f"snapshot names unknown AP {name!r}")
            self._breakers[name].restore_state(state)
