"""Supervised crash recovery for the streaming service.

A deployment's localization service dies for reasons that have nothing
to do with CSI: OOM kills, host preemption, a driver fault in an
accelerator backend.  This module makes those deaths boring.  The
:class:`ServiceSupervisor` drives a packet stream through a
:class:`~repro.serve.service.LocalizationService` while journaling two
things:

* a periodic **service snapshot** — every piece of mutable service
  state (sessions, warm starts, health, breakers, backpressure, the
  micro-batch backlog), written atomically via
  :func:`~repro.runtime.checkpoint.atomic_write` together with the
  stream cursor ``n_consumed`` and the delivery cursor ``n_fixes``;
* an **ack journal** (``fixes.jsonl``) — one fsync'd JSON line per fix
  *as it is delivered*, so the supervisor always knows exactly which
  fixes the downstream consumer has already seen.

Recovery is replay with suppression: restore the latest snapshot,
re-feed the packets after its ``n_consumed`` cursor, and swallow the
first ``journaled − snapshot.n_fixes`` regenerated fixes — they were
already delivered before the crash.  Because every snapshot codec is
lossless (:mod:`repro.serve.codec`) and the service runs on a
packet-time :class:`ManualClock` (no wall-clock anywhere in the replay
path), the regenerated fixes are *byte-identical* to the ones an
uninterrupted run would have produced — exactly-once delivery without
idempotency hacks downstream.

The same machinery serves two masters: in-process restarts (the
supervisor catches a crash, rebuilds the service from its factory and
resumes, up to ``max_restarts`` times before raising
:class:`~repro.exceptions.SupervisorError`) and cross-process
resumption (``roarray serve --snapshot-dir`` after a ``kill -9``
restores from disk and continues the stream where it died).
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Iterable, Sequence

from repro.exceptions import ConfigurationError, ServiceError, SupervisorError
from repro.obs import MetricsRegistry
from repro.runtime.checkpoint import atomic_write
from repro.serve.packets import CsiPacket, PositionFix
from repro.serve.service import LocalizationService

#: Snapshot payload version; bumped on incompatible layout changes.
SNAPSHOT_FILE_VERSION = 1

#: File names inside a snapshot directory.
SNAPSHOT_NAME = "service.json"
FIXES_JOURNAL_NAME = "fixes.jsonl"


class ManualClock:
    """A callable clock driven by packet time, not the wall.

    The service takes its clock as a callable; handing it one that
    advances only when the supervisor feeds a packet makes every
    clock-dependent decision (micro-batch deadlines, latency
    accounting, breaker cool-downs) a pure function of the packet
    stream — which is what lets a crash-and-replay run reproduce an
    uninterrupted run byte for byte.
    """

    def __init__(self, start_s: float = 0.0) -> None:
        self.now_s = float(start_s)

    def __call__(self) -> float:
        return self.now_s

    def advance_to(self, time_s: float) -> None:
        """Move forward to ``time_s``; the clock never runs backwards."""
        if time_s > self.now_s:
            self.now_s = float(time_s)


@dataclass(frozen=True)
class SnapshotPolicy:
    """Where and how often the supervisor snapshots the service.

    Attributes
    ----------
    directory:
        Snapshot directory: holds ``service.json`` (the atomic service
        snapshot) and ``fixes.jsonl`` (the delivery ack journal).
    every_packets:
        Snapshot after every N consumed packets.  Smaller values bound
        replay work after a crash at the price of more snapshot I/O on
        the clean path; ``0`` disables periodic snapshots (only the
        final one is written).
    max_duty:
        Duty-cycle throttle on periodic snapshots: after each snapshot
        the next one is deferred until the snapshot's own duration is at
        most ``max_duty`` of the wall time between them, so snapshot I/O
        can never eat more than this fraction of clean-path throughput
        no matter how large the service state grows.  Deferring a
        snapshot only widens the replay window after a crash — the fix
        stream is unaffected (snapshots are pure observers), which is
        what makes throttling on the wall clock safe in a byte-replay
        system.  ``0`` disables the throttle (snapshot on every cadence
        hit).  Interrupt/final snapshots are never throttled.
    """

    directory: str | Path
    every_packets: int = 64
    max_duty: float = 0.01

    def __post_init__(self) -> None:
        if self.every_packets < 0:
            raise ConfigurationError(
                f"every_packets must be >= 0, got {self.every_packets}"
            )
        if not 0.0 <= self.max_duty < 1.0:
            raise ConfigurationError(
                f"max_duty must be in [0, 1), got {self.max_duty}"
            )

    @property
    def snapshot_path(self) -> Path:
        return Path(self.directory) / SNAPSHOT_NAME

    @property
    def fixes_path(self) -> Path:
        return Path(self.directory) / FIXES_JOURNAL_NAME


def save_snapshot(
    path: str | Path,
    service: LocalizationService,
    *,
    clock_s: float,
    n_consumed: int,
    n_fixes: int,
) -> Path:
    """Atomically persist the service plus the stream/delivery cursors."""
    return atomic_write(
        path,
        {
            "version": SNAPSHOT_FILE_VERSION,
            "clock_s": clock_s,
            "n_consumed": int(n_consumed),
            "n_fixes": int(n_fixes),
            "service": service.snapshot_state(),
        },
        indent=None,
    )


def load_snapshot(path: str | Path) -> dict:
    """Read a snapshot payload; raises :class:`ServiceError` if unusable."""
    path = Path(path)
    try:
        with open(path, "r", encoding="utf-8") as handle:
            payload = json.load(handle)
    except (OSError, json.JSONDecodeError) as error:
        raise ServiceError(f"{path}: unreadable service snapshot ({error})") from error
    version = payload.get("version") if isinstance(payload, dict) else None
    if version != SNAPSHOT_FILE_VERSION:
        raise ServiceError(
            f"{path}: unsupported snapshot version {version!r} "
            f"(this build reads {SNAPSHOT_FILE_VERSION})"
        )
    return payload


def count_journaled_fixes(path: str | Path) -> int:
    """Complete fix records in an ack journal, healing any torn tail.

    A hard kill can leave a partial final line.  The count includes
    only lines that parse as JSON objects; if trailing torn bytes
    exist, the file is truncated back to the last complete record so
    the next append starts on a clean boundary.  A fix whose line was
    torn was *not* delivered (the write never completed), so it is
    correctly regenerated on replay.
    """
    path = Path(path)
    if not path.exists():
        return 0
    with open(path, "rb") as handle:
        data = handle.read()
    count = 0
    good_end = 0
    cursor = 0
    while True:
        newline = data.find(b"\n", cursor)
        if newline < 0:
            break
        line = data[cursor:newline]
        cursor = newline + 1
        if not line.strip():
            good_end = cursor
            continue
        try:
            record = json.loads(line)
        except (json.JSONDecodeError, UnicodeDecodeError):
            break
        if not isinstance(record, dict):
            break
        count += 1
        good_end = cursor
    if good_end < len(data):
        with open(path, "r+b") as handle:
            handle.truncate(good_end)
            handle.flush()
            os.fsync(handle.fileno())
    return count


@dataclass
class SupervisorResult:
    """What one supervised run produced and what it cost."""

    #: Fixes delivered *by this run* (replayed-and-suppressed fixes from
    #: an earlier incarnation are excluded — they were already acked).
    fixes: list[PositionFix] = field(default_factory=list)
    n_consumed: int = 0
    n_delivered: int = 0
    n_suppressed: int = 0
    n_restarts: int = 0
    n_snapshots: int = 0
    resumed: bool = False
    #: True when a ``stop`` callable ended the run early (graceful
    #: shutdown); the snapshot on disk resumes the stream exactly.
    interrupted: bool = False
    #: Wall seconds this run spent writing snapshots / fsyncing the ack
    #: journal — the resilience machinery's clean-path bill, measured so
    #: the serve benchmark can hold it to its overhead budget.
    snapshot_seconds: float = 0.0
    journal_seconds: float = 0.0

    def to_dict(self) -> dict:
        return {
            "n_fixes": len(self.fixes),
            "n_consumed": self.n_consumed,
            "n_delivered": self.n_delivered,
            "n_suppressed": self.n_suppressed,
            "n_restarts": self.n_restarts,
            "n_snapshots": self.n_snapshots,
            "resumed": self.resumed,
            "interrupted": self.interrupted,
            "snapshot_seconds": self.snapshot_seconds,
            "journal_seconds": self.journal_seconds,
        }


class ServiceSupervisor:
    """Crash-supervised, exactly-once drive of a packet stream.

    Parameters
    ----------
    factory:
        ``factory(clock) -> LocalizationService`` — builds a *fresh*
        service wired to the given clock callable.  Called once at
        startup and once per restart; it must be deterministic (same
        geometry, same config) or restored state will not line up.
    policy:
        :class:`SnapshotPolicy` — snapshot directory and cadence.
    max_restarts:
        In-process restart budget.  A crash beyond the budget raises
        :class:`~repro.exceptions.SupervisorError` (carrying the last
        crash as ``__cause__``) instead of looping forever on a
        deterministic fault.
    metrics:
        Optional :class:`~repro.obs.MetricsRegistry`; restart, snapshot
        and suppression counters land there.
    """

    def __init__(
        self,
        factory: Callable[[Callable[[], float]], LocalizationService],
        policy: SnapshotPolicy,
        *,
        max_restarts: int = 3,
        metrics: MetricsRegistry | None = None,
    ) -> None:
        if max_restarts < 0:
            raise ConfigurationError(f"max_restarts must be >= 0, got {max_restarts}")
        self.factory = factory
        self.policy = policy
        self.max_restarts = max_restarts
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        Path(policy.directory).mkdir(parents=True, exist_ok=True)
        self.clock = ManualClock()
        self.service: LocalizationService | None = None
        #: Stream cursor: packets fully consumed (submit + solve + fix).
        self.n_consumed = 0
        #: Delivery cursor: fixes acked into the journal, ever.
        self.n_delivered = 0
        #: Regenerated fixes still to swallow after a restore.
        self._suppress = 0
        self.n_restarts = 0
        self.n_snapshots = 0
        #: Lifetime wall seconds spent in snapshot writes / journal fsyncs.
        self.snapshot_seconds = 0.0
        self.journal_seconds = 0.0
        #: Wall instant before which the duty throttle defers periodic
        #: snapshots (perf_counter basis).
        self._snapshot_allowed_at = 0.0
        self._resumed = False
        self._fixes_handle = None
        self._boot()

    # -- lifecycle -----------------------------------------------------------

    def _boot(self) -> None:
        """Build (or rebuild) the service, restoring any snapshot on disk."""
        snapshot_path = self.policy.snapshot_path
        self.n_delivered = count_journaled_fixes(self.policy.fixes_path)
        if snapshot_path.exists():
            payload = load_snapshot(snapshot_path)
            self.clock = ManualClock(float(payload["clock_s"]))
            self.service = self.factory(self.clock)
            self.service.restore_state(payload["service"])
            self.n_consumed = int(payload["n_consumed"])
            self._suppress = self.n_delivered - int(payload["n_fixes"])
            if self._suppress < 0:
                raise ServiceError(
                    f"{snapshot_path} claims {payload['n_fixes']} delivered fixes "
                    f"but the ack journal holds only {self.n_delivered} — the "
                    "journal and snapshot belong to different runs"
                )
            self._resumed = True
        else:
            self.clock = ManualClock()
            self.service = self.factory(self.clock)
            self.n_consumed = 0
            # A journal without a snapshot means the run died before its
            # first snapshot: replay starts from zero and every fix
            # already journaled must be suppressed.
            self._suppress = self.n_delivered
            self._resumed = self._resumed or self.n_delivered > 0
        self._reopen_journal()

    @property
    def resumed(self) -> bool:
        """True when this supervisor restored earlier on-disk state."""
        return self._resumed

    def _reopen_journal(self) -> None:
        if self._fixes_handle is not None:
            self._fixes_handle.close()
        self._fixes_handle = open(self.policy.fixes_path, "a", encoding="utf-8")

    def close(self) -> None:
        if self._fixes_handle is not None:
            self._fixes_handle.flush()
            os.fsync(self._fixes_handle.fileno())
            self._fixes_handle.close()
            self._fixes_handle = None

    def __enter__(self) -> "ServiceSupervisor":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- the drive loop ------------------------------------------------------

    def run(
        self,
        packets: Sequence[CsiPacket] | Iterable[CsiPacket],
        *,
        fault_hook: Callable[[int], None] | None = None,
        stop: Callable[[], bool] | None = None,
        drain: bool = True,
    ) -> SupervisorResult:
        """Feed the whole stream through the service, surviving crashes.

        ``packets`` must be the *full* stream from time zero — on a
        resumed run the supervisor skips the first ``n_consumed``
        entries itself (they are already inside the restored state).
        ``fault_hook(index)`` is called before each packet and may
        raise to inject a crash (the chaos harness uses this);
        whatever it raises is treated exactly like a service crash.
        ``stop()`` is polled between packets: returning ``True`` ends
        the run *gracefully* — the in-flight step finishes, a final
        snapshot is written (pending solves included, nothing force-
        flushed) and the result is marked ``interrupted`` so a later
        run resumes the stream byte-identically.  ``drain=False``
        leaves the service running (pending solves stay queued for a
        later stream) instead of flushing at EOF.
        """
        packets = packets if isinstance(packets, Sequence) else list(packets)
        result = SupervisorResult(resumed=self._resumed)
        snapshot_s0 = self.snapshot_seconds
        journal_s0 = self.journal_seconds
        while True:
            try:
                while self.n_consumed < len(packets):
                    if stop is not None and stop():
                        result.interrupted = True
                        break
                    index = self.n_consumed
                    if fault_hook is not None:
                        fault_hook(index)
                    self._step(packets[index], result)
                if result.interrupted:
                    self.save_snapshot()
                elif drain:
                    self._deliver(self.service.drain(), result)
                    self.save_snapshot()
                result.n_snapshots = self.n_snapshots
                break
            except SupervisorError:
                raise
            except Exception as error:
                self._recover(error)
                result.n_restarts = self.n_restarts
        result.n_consumed = self.n_consumed
        result.n_delivered = self.n_delivered
        result.n_restarts = self.n_restarts
        result.n_snapshots = self.n_snapshots
        result.snapshot_seconds = self.snapshot_seconds - snapshot_s0
        result.journal_seconds = self.journal_seconds - journal_s0
        return result

    def _step(self, packet: CsiPacket, result: SupervisorResult) -> None:
        self.clock.advance_to(packet.time_s)
        self.service.submit(packet)
        fixes = self.service.process_due()
        # Consume-then-deliver: a crash between the two replays the
        # packet (its fixes were never journaled), a crash after both
        # is covered by the suppression count.  Either way no fix is
        # lost and none is delivered twice.
        self.n_consumed += 1
        self._deliver(fixes, result)
        if (
            self.policy.every_packets
            and self.n_consumed % self.policy.every_packets == 0
        ):
            if self.policy.max_duty and time.perf_counter() < self._snapshot_allowed_at:
                self.metrics.counter("serve.supervisor.snapshots_deferred").inc()
            else:
                self.save_snapshot()
                result.n_snapshots = self.n_snapshots

    def _deliver(self, fixes: list[PositionFix], result: SupervisorResult) -> None:
        delivered: list[PositionFix] = []
        for fix in fixes:
            if self._suppress > 0:
                # Regenerated during replay; the original line is
                # already in the journal (and was already consumed
                # downstream), so deliver nothing.
                self._suppress -= 1
                result.n_suppressed += 1
                self.metrics.counter("serve.supervisor.fixes_suppressed").inc()
                continue
            delivered.append(fix)
        if not delivered:
            return
        # Ack-then-deliver, one fsync per delivery batch: every line is
        # durable before any fix in the batch counts as delivered, so a
        # crash mid-batch regenerates the whole batch (torn tail healed
        # by count_journaled_fixes) instead of double-delivering.
        started = time.perf_counter()
        self._fixes_handle.write(
            "".join(json.dumps(fix.to_dict()) + "\n" for fix in delivered)
        )
        self._fixes_handle.flush()
        os.fsync(self._fixes_handle.fileno())
        self.journal_seconds += time.perf_counter() - started
        for fix in delivered:
            self.n_delivered += 1
            result.fixes.append(fix)
            self.metrics.counter("serve.supervisor.fixes_delivered").inc()

    def save_snapshot(self) -> None:
        started = time.perf_counter()
        save_snapshot(
            self.policy.snapshot_path,
            self.service,
            clock_s=self.clock.now_s,
            n_consumed=self.n_consumed,
            n_fixes=self.n_delivered,
        )
        duration = time.perf_counter() - started
        self.snapshot_seconds += duration
        if self.policy.max_duty:
            # Defer the next periodic snapshot until this one's cost
            # amortizes below the duty budget.
            self._snapshot_allowed_at = (
                time.perf_counter() + duration / self.policy.max_duty
            )
        self.n_snapshots += 1
        self.metrics.counter("serve.supervisor.snapshots").inc()

    def _recover(self, error: Exception) -> None:
        """One crash: burn a restart, rebuild and restore, or give up."""
        self.n_restarts += 1
        self.metrics.counter("serve.supervisor.restarts").inc()
        if self.n_restarts > self.max_restarts:
            raise SupervisorError(
                f"service crashed {self.n_restarts} times "
                f"(budget {self.max_restarts}); last crash: {error!r}"
            ) from error
        self.close()
        self._boot()
