"""Runtime instrumentation for batch evaluation.

A :class:`RuntimeReport` aggregates what the workers measured: per-stage
wall time (dictionary build / sparse solve / peak pick), per-job
latencies, failure counts, and end-to-end throughput.  The report is the
contract the scaling benchmark asserts against, and what
``roarray batch`` prints.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterable

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.runtime.jobs import JobOutcome

#: Stage keys in reporting order.
STAGES = ("dictionary", "solve", "peaks")


@dataclass
class StageTotals:
    """Accumulated per-stage worker seconds across a batch.

    ``dictionary`` is the steering-cache build (paid once per process
    thanks to the warmup initializer, so it amortizes toward zero as the
    batch grows), ``solve`` the sparse-recovery solve, and ``peaks`` the
    spectrum peak pick / direct-path selection.

    ``solver`` is the span-derived subtotal of time spent inside the
    sparse solver itself (the ``"solver"`` spans recorded per job when
    the batch runs with tracing enabled).  It is a *breakdown of*
    ``solve`` — the solve stage minus κ tuning, vectorization and
    alignment — so it is excluded from :attr:`total_s`; it stays 0.0
    when tracing is off.
    """

    dictionary_s: float = 0.0
    solve_s: float = 0.0
    peaks_s: float = 0.0
    solver_s: float = 0.0

    def add(self, stage_seconds: dict[str, float]) -> None:
        self.dictionary_s += stage_seconds.get("dictionary", 0.0)
        self.solve_s += stage_seconds.get("solve", 0.0)
        self.peaks_s += stage_seconds.get("peaks", 0.0)
        self.solver_s += stage_seconds.get("solver", 0.0)

    @property
    def total_s(self) -> float:
        return self.dictionary_s + self.solve_s + self.peaks_s

    def to_dict(self) -> dict[str, float]:
        return {
            "dictionary_s": self.dictionary_s,
            "solve_s": self.solve_s,
            "peaks_s": self.peaks_s,
            "solver_s": self.solver_s,
            "total_s": self.total_s,
        }


@dataclass
class RuntimeReport:
    """Everything measured while evaluating one batch.

    Attributes
    ----------
    workers:
        Worker-process count (0 = pure sequential, in-process).
    chunk_size:
        Jobs per scheduling unit.
    n_jobs / n_failures:
        Batch size and how many jobs returned a tagged failure record.
    wall_s:
        End-to-end wall time of the batch (including pool startup).
    stages:
        Summed per-stage worker seconds (see :class:`StageTotals`).
    job_seconds:
        Per-job wall seconds, in job order.
    failure_kinds:
        Failure taxonomy: count per
        :data:`~repro.runtime.jobs.FAILURE_KINDS` bucket (only nonzero
        buckets appear).
    n_timeouts / n_retries:
        How many jobs timed out (every attempt), and how many extra
        attempts the whole batch spent on retries.
    n_quarantined_packets:
        Packets the validation gate removed before analysis.
    n_fallbacks:
        Guardrail fallback events recorded across all jobs (a solve
        that needed its fallback chain).
    pool_respawns:
        How many times a crashed worker pool was rebuilt.
    n_replayed:
        Jobs replayed from a checkpoint journal instead of recomputed
        (0 on a clean, non-resumed run).  Replayed outcomes carry their
        original stage timings and taxonomy, so every other field in
        this report merges identically across a kill/resume boundary.
    """

    workers: int
    chunk_size: int
    n_jobs: int = 0
    n_failures: int = 0
    wall_s: float = 0.0
    stages: StageTotals = field(default_factory=StageTotals)
    job_seconds: list[float] = field(default_factory=list)
    failure_kinds: dict[str, int] = field(default_factory=dict)
    n_timeouts: int = 0
    n_retries: int = 0
    n_quarantined_packets: int = 0
    n_fallbacks: int = 0
    pool_respawns: int = 0
    n_replayed: int = 0

    @classmethod
    def from_outcomes(
        cls,
        outcomes: Iterable["JobOutcome"],
        *,
        workers: int,
        chunk_size: int,
        wall_s: float,
        warmup_s: float = 0.0,
        pool_respawns: int = 0,
        n_replayed: int = 0,
    ) -> "RuntimeReport":
        report = cls(
            workers=workers,
            chunk_size=chunk_size,
            wall_s=wall_s,
            pool_respawns=pool_respawns,
            n_replayed=n_replayed,
        )
        report.stages.dictionary_s += warmup_s
        for outcome in outcomes:
            report.n_jobs += 1
            if not outcome.ok:
                report.n_failures += 1
                kind = outcome.failure.kind
                report.failure_kinds[kind] = report.failure_kinds.get(kind, 0) + 1
                if kind == "timeout":
                    report.n_timeouts += 1
            report.n_retries += max(0, outcome.attempts - 1)
            report.n_quarantined_packets += outcome.quarantined_packets
            report.n_fallbacks += len(outcome.fallbacks)
            report.stages.add(outcome.stage_seconds)
            report.job_seconds.append(outcome.elapsed_s)
        return report

    @property
    def throughput_jobs_per_s(self) -> float:
        """Completed jobs per wall-clock second (0 for an empty batch)."""
        if self.wall_s <= 0.0 or self.n_jobs == 0:
            return 0.0
        return self.n_jobs / self.wall_s

    @property
    def busy_s(self) -> float:
        """Summed per-job worker seconds (compute, excluding pool overhead)."""
        return float(sum(self.job_seconds))

    def speedup_over(self, sequential: "RuntimeReport") -> float:
        """Throughput ratio of this run over a sequential reference."""
        if self.throughput_jobs_per_s == 0.0 or sequential.throughput_jobs_per_s == 0.0:
            return 0.0
        return self.throughput_jobs_per_s / sequential.throughput_jobs_per_s

    def summary(self) -> str:
        """A compact human-readable block (used by ``roarray batch``)."""
        mode = "sequential" if self.workers == 0 else f"{self.workers} worker(s)"
        solve = f"solve {self.stages.solve_s:.3f}"
        if self.stages.solver_s > 0.0:
            solve += f" (solver {self.stages.solver_s:.3f})"
        lines = [
            f"jobs: {self.n_jobs} ({self.n_failures} failed) | {mode}, chunk {self.chunk_size}",
            f"wall: {self.wall_s:.2f} s | throughput: {self.throughput_jobs_per_s:.2f} jobs/s",
            (
                "stages (worker s): "
                f"dictionary {self.stages.dictionary_s:.3f} | "
                f"{solve} | "
                f"peaks {self.stages.peaks_s:.3f}"
            ),
        ]
        if self.job_seconds:
            lines.append(
                f"per-job: mean {self.busy_s / len(self.job_seconds):.3f} s, "
                f"max {max(self.job_seconds):.3f} s"
            )
        if self.n_replayed:
            lines.append(
                f"checkpoint: {self.n_replayed} of {self.n_jobs} jobs replayed "
                "from the journal"
            )
        if (
            self.n_retries
            or self.n_timeouts
            or self.n_fallbacks
            or self.n_quarantined_packets
            or self.pool_respawns
            or self.failure_kinds
        ):
            parts = [
                f"retries {self.n_retries}",
                f"timeouts {self.n_timeouts}",
                f"fallbacks {self.n_fallbacks}",
                f"quarantined packets {self.n_quarantined_packets}",
                f"pool respawns {self.pool_respawns}",
            ]
            line = "hardening: " + " | ".join(parts)
            if self.failure_kinds:
                kinds = ", ".join(
                    f"{kind} x{self.failure_kinds[kind]}" for kind in sorted(self.failure_kinds)
                )
                line += f" | failures: {kinds}"
            lines.append(line)
        return "\n".join(lines)

    def to_dict(self) -> dict:
        """JSON-ready view of the report (``roarray batch --json``)."""
        return {
            "workers": self.workers,
            "chunk_size": self.chunk_size,
            "n_jobs": self.n_jobs,
            "n_failures": self.n_failures,
            "wall_s": self.wall_s,
            "throughput_jobs_per_s": self.throughput_jobs_per_s,
            "busy_s": self.busy_s,
            "stages": self.stages.to_dict(),
            "job_seconds": list(self.job_seconds),
            "failure_kinds": dict(self.failure_kinds),
            "n_timeouts": self.n_timeouts,
            "n_retries": self.n_retries,
            "n_quarantined_packets": self.n_quarantined_packets,
            "n_fallbacks": self.n_fallbacks,
            "pool_respawns": self.pool_respawns,
            "n_replayed": self.n_replayed,
        }
