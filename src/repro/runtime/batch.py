"""Parallel batch evaluation with a sequential-parity guarantee.

:class:`BatchEvaluator` fans a list of :class:`~repro.channel.trace.CsiTrace`
jobs out over a ``concurrent.futures.ProcessPoolExecutor``:

* **Per-worker warmup** — the pool initializer builds the estimator from
  a compact :class:`~repro.runtime.jobs.EstimatorSpec` and warms its
  :class:`~repro.core.steering.SteeringCache` once per process, so the
  joint dictionary (the expensive shared artifact) is built per worker,
  never per trace, and never pickled.
* **Determinism** — every job's result is a pure function of the job
  itself (trace + per-job seed ``base_seed + index``), jobs are chunked
  by contiguous index ranges, and outcomes are re-ordered by job index
  before returning.  The output is therefore byte-identical for any
  worker count, including the ``workers=0`` in-process sequential path.
* **Graceful degradation** — a failing job comes back as a tagged,
  taxonomized :class:`~repro.runtime.jobs.JobFailure` record
  (``validation`` / ``solver`` / ``timeout`` / ``runtime`` / ``crash``)
  instead of killing the pool; the remaining jobs are unaffected.
* **Hardened execution** — an :class:`~repro.runtime.jobs.ExecutionPolicy`
  adds an opt-in CSI validation gate, per-job wall-clock timeouts and
  bounded deterministic retries, all enforced *where the job runs* so
  ``workers=0`` and ``workers=N`` stay byte-identical.  A crashed
  worker process (``BrokenProcessPool``) is recovered by respawning the
  pool and requeueing only the unfinished chunks — completed outcomes
  are never lost.
* **Instrumentation** — workers time the dictionary / solve / peak
  stages per job; the totals, plus the failure taxonomy and
  retry/timeout/fallback counts, come back in a
  :class:`~repro.runtime.report.RuntimeReport`.
"""

from __future__ import annotations

import signal
import threading
import time
import traceback as traceback_module
from concurrent.futures import CancelledError, ProcessPoolExecutor
from concurrent.futures import wait as futures_wait
from concurrent.futures.process import BrokenProcessPool
from contextlib import contextmanager
from dataclasses import dataclass, field, replace
from typing import Sequence

from repro.channel.trace import CsiTrace
from repro.core.direct_path import ApAnalysis
from repro.exceptions import (
    ConfigurationError,
    JobTimeoutError,
    ResumableInterrupt,
    SolverError,
    ValidationError,
)
from repro.obs import NULL_TRACER, Tracer
from repro.runtime.checkpoint import (
    CheckpointJournal,
    CheckpointPolicy,
    config_digest,
    job_key,
    trace_fingerprint,
)
from repro.runtime.jobs import (
    DEFAULT_POLICY,
    RETRYABLE_KINDS,
    EstimatorSpec,
    EvalJob,
    ExecutionPolicy,
    JobFailure,
    JobOutcome,
)
from repro.runtime.report import RuntimeReport

#: How often the parallel drain loop wakes to check for completed chunks
#: and shutdown requests (seconds).
_DRAIN_POLL_S = 0.2

# Per-process estimator slot, populated by the pool initializer.  A
# module-level global is the standard ProcessPoolExecutor idiom for
# one-time per-worker state; in the parent process it stays None.
_WORKER_SYSTEM = None
# Set once the worker's one-time warmup cost has been shipped back with
# a chunk result, so N workers report N warmups total, each exactly once.
_WORKER_WARMUP_PENDING_S = 0.0
# Whether workers should record per-job trace spans (set from the
# parent's tracer state at pool startup).
_WORKER_CAPTURE_SPANS = False
# The hardening policy every job in this process runs under.
_WORKER_POLICY = DEFAULT_POLICY


def _initialize_worker(
    spec: EstimatorSpec,
    capture_spans: bool = False,
    policy: ExecutionPolicy = DEFAULT_POLICY,
) -> None:
    """Build the estimator once per worker process and warm its cache."""
    global _WORKER_SYSTEM, _WORKER_WARMUP_PENDING_S, _WORKER_CAPTURE_SPANS, _WORKER_POLICY
    # A terminal Ctrl-C delivers SIGINT to the whole process group.  The
    # *parent* owns the shutdown (drain, journal, cancel); workers must
    # not die mid-chunk from the same keystroke, or their in-flight
    # results are lost and the pool reads as crashed.
    signal.signal(signal.SIGINT, signal.SIG_IGN)
    _WORKER_SYSTEM = _build_warm_system(spec)
    _WORKER_WARMUP_PENDING_S = _system_warmup_seconds(_WORKER_SYSTEM)
    _WORKER_CAPTURE_SPANS = capture_spans
    _WORKER_POLICY = policy


class _GracefulShutdown:
    """Turn the first SIGINT/SIGTERM into a drain request, not a crash.

    While active, the first signal sets :attr:`triggered` — the
    evaluation loops notice it between jobs (sequential) or between
    drain polls (parallel), stop submitting, journal what finished and
    exit cleanly.  A *second* signal escalates to an immediate
    ``KeyboardInterrupt`` for users who really mean it.  The previous
    handlers are always restored on exit, and installation is skipped
    off the main thread (where Python forbids ``signal.signal``), so the
    evaluator stays usable from worker threads — just without graceful
    draining.
    """

    _SIGNALS = ("SIGINT", "SIGTERM")

    def __init__(self) -> None:
        self.triggered = False
        self._previous: dict[int, object] = {}

    def _on_signal(self, signum, frame) -> None:
        if self.triggered:
            raise KeyboardInterrupt
        self.triggered = True

    def __enter__(self) -> "_GracefulShutdown":
        for name in self._SIGNALS:
            signum = getattr(signal, name, None)
            if signum is None:
                continue
            try:
                self._previous[signum] = signal.signal(signum, self._on_signal)
            except (ValueError, OSError):  # pragma: no cover - non-main thread
                pass
        return self

    def __exit__(self, *exc_info) -> None:
        for signum, previous in self._previous.items():
            try:
                signal.signal(signum, previous)
            except (ValueError, OSError):  # pragma: no cover - non-main thread
                pass
        self._previous.clear()


def _system_warmup_seconds(system) -> float:
    cache = getattr(system, "cache", None)
    return float(getattr(cache, "warmup_seconds", 0.0))


def _build_warm_system(spec: EstimatorSpec):
    system = spec.build()
    cache = getattr(system, "cache", None)
    if cache is not None and hasattr(cache, "warmup"):
        cache.warmup()
    return system


@contextmanager
def _job_deadline(timeout_s: float | None):
    """Enforce a wall-clock budget with a POSIX interval timer.

    Runs identically in the pool workers and on the in-process
    sequential path (both execute jobs on their process's main thread),
    which is what keeps timeouts from breaking worker-count parity.  On
    platforms without ``SIGALRM``, or off the main thread, the deadline
    is silently skipped — the pool-crash recovery is the backstop.
    """
    usable = (
        timeout_s is not None
        and hasattr(signal, "SIGALRM")
        and threading.current_thread() is threading.main_thread()
    )
    if not usable:
        yield
        return

    def _on_alarm(signum, frame):
        raise JobTimeoutError(f"job exceeded its {timeout_s:g} s wall-clock budget")

    previous = signal.signal(signal.SIGALRM, _on_alarm)
    signal.setitimer(signal.ITIMER_REAL, timeout_s)
    try:
        yield
    finally:
        signal.setitimer(signal.ITIMER_REAL, 0.0)
        signal.signal(signal.SIGALRM, previous)


def _classify_failure(error: Exception) -> str:
    """Map an exception to its :data:`~repro.runtime.jobs.FAILURE_KINDS` bucket."""
    if isinstance(error, ValidationError):
        return "validation"
    if isinstance(error, JobTimeoutError):
        return "timeout"
    if isinstance(error, SolverError):
        return "solver"
    return "runtime"


def _expected_shape(system) -> tuple[int, int] | None:
    """The (antennas, subcarriers) shape the system's hardware model expects."""
    array = getattr(system, "array", None)
    layout = getattr(system, "layout", None)
    if array is None or layout is None:
        return None
    return (array.n_antennas, layout.n_subcarriers)


def _format_fallback_event(event: dict) -> str:
    chain = "->".join([*event.get("fallbacks", []), event.get("solver", "?")])
    return f"{event.get('stage', '?')}:{chain}"


def _evaluate_job(
    system,
    job: EvalJob,
    *,
    capture_spans: bool = False,
    policy: ExecutionPolicy = DEFAULT_POLICY,
) -> JobOutcome:
    """Run one job under the execution policy; failures become data.

    Retries happen *here* — in the same process the job runs in — so the
    sequential and pooled paths share one retry semantic: attempt *k* of
    job *i* is the same computation everywhere, and the deterministic
    backoff schedule is a pure function of the attempt number.  Only
    :data:`~repro.runtime.jobs.RETRYABLE_KINDS` (timeouts, arbitrary
    runtime errors) are retried; solver and validation failures are pure
    functions of the trace and would fail identically every time.
    """
    total_attempts = policy.max_retries + 1
    outcome = None
    for attempt in range(1, total_attempts + 1):
        backoff = policy.backoff_for_attempt(attempt)
        if backoff > 0.0:
            time.sleep(backoff)
        outcome = _attempt_job(system, job, capture_spans=capture_spans, policy=policy)
        outcome.attempts = attempt
        if outcome.ok or outcome.failure.kind not in RETRYABLE_KINDS:
            break
    if not outcome.ok:
        outcome.failure = replace(outcome.failure, attempts=outcome.attempts)
    return outcome


def _attempt_job(
    system,
    job: EvalJob,
    *,
    capture_spans: bool,
    policy: ExecutionPolicy,
) -> JobOutcome:
    """One attempt at one job: gate, analyze, classify.

    With ``capture_spans`` the job runs under a fresh per-job
    :class:`~repro.obs.Tracer` (installed on the system for the duration
    of the call), and the recorded spans come back serialized on the
    outcome.  Both the sequential and the worker-pool paths go through
    here with the same flag, so the two span trees are structurally
    identical job for job.
    """
    # Warm-started estimators chain solutions across calls, which would
    # make a job's result depend on which jobs its worker ran before it.
    # Dropping the carried state here keeps every job a pure function of
    # (trace, seed) — the batch parity guarantee — at the cost of the
    # warm-start benefit, which only sequential sweeps opt into.
    reset = getattr(system, "reset_warm_state", None)
    if reset is not None:
        reset()
    drain_fallbacks = getattr(system, "drain_fallback_events", None)
    if drain_fallbacks is not None:
        drain_fallbacks()  # discard events a previous (failed) attempt left behind
    job_tracer = Tracer() if capture_spans else NULL_TRACER
    previous_tracer = getattr(system, "tracer", None)
    if capture_spans and previous_tracer is not None:
        system.tracer = job_tracer
    stage_seconds: dict[str, float] = {}
    quarantined = 0
    start = time.perf_counter()
    try:
        with job_tracer.span("job", index=job.index):
            trace = job.trace
            if policy.validate:
                from repro.faults.validate import sanitize_trace

                trace, validation = sanitize_trace(
                    trace, expected_shape=_expected_shape(system)
                )
                quarantined = validation.n_quarantined
            with _job_deadline(policy.timeout_s):
                analysis = _timed_analysis(system, trace, stage_seconds)
    except Exception as error:
        return JobOutcome(
            index=job.index,
            failure=JobFailure(
                error_type=type(error).__name__,
                message=str(error),
                kind=_classify_failure(error),
                traceback=traceback_module.format_exc(),
            ),
            elapsed_s=time.perf_counter() - start,
            stage_seconds=stage_seconds,
            spans=_drain_spans(job_tracer, stage_seconds, capture_spans),
            quarantined_packets=quarantined,
        )
    finally:
        if capture_spans and previous_tracer is not None:
            system.tracer = previous_tracer
    fallbacks = ()
    if drain_fallbacks is not None:
        fallbacks = tuple(_format_fallback_event(event) for event in drain_fallbacks())
    return JobOutcome(
        index=job.index,
        analysis=analysis,
        elapsed_s=time.perf_counter() - start,
        stage_seconds=stage_seconds,
        spans=_drain_spans(job_tracer, stage_seconds, capture_spans),
        quarantined_packets=quarantined,
        fallbacks=fallbacks,
    )


def _drain_spans(job_tracer, stage_seconds: dict[str, float], capture_spans: bool) -> list[dict]:
    """Serialize a job tracer's spans and derive the solver-time subtotal."""
    if not capture_spans:
        return []
    solver_s = job_tracer.total_wall_s("solver")
    if solver_s > 0.0:
        stage_seconds["solver"] = solver_s
    return [span.to_dict() for span in job_tracer.spans]


def _timed_analysis(system, trace: CsiTrace, stage_seconds: dict[str, float]) -> ApAnalysis:
    """``system.analyze(trace)`` with per-stage timing.

    ROArray estimators expose the stage boundaries (cache warmup → joint
    solve → peak pick); for opaque systems everything lands in ``solve``.
    The staged path calls exactly the methods ``analyze`` chains, so the
    result is identical to a plain ``analyze(trace)``.
    """
    from repro.core.pipeline import RoArrayEstimator

    if isinstance(system, RoArrayEstimator):
        tick = time.perf_counter()
        system.warm_cache()
        stage_seconds["dictionary"] = time.perf_counter() - tick
        tick = time.perf_counter()
        spectrum = system.joint_spectrum(trace)
        stage_seconds["solve"] = time.perf_counter() - tick
        tick = time.perf_counter()
        analysis = system.analysis_from_spectrum(spectrum, trace)
        stage_seconds["peaks"] = time.perf_counter() - tick
        return analysis
    tick = time.perf_counter()
    analysis = system.analyze(trace)
    stage_seconds["solve"] = time.perf_counter() - tick
    return analysis


def _run_chunk(jobs: list[EvalJob]) -> tuple[list[JobOutcome], float]:
    """Worker entry point: evaluate one contiguous chunk of jobs.

    Returns the outcomes plus this worker's one-time cache-warmup cost
    (nonzero only on the first chunk a worker returns, so the parent can
    sum it into the report's ``dictionary`` stage without double counting).
    """
    global _WORKER_WARMUP_PENDING_S
    if _WORKER_SYSTEM is None:  # pragma: no cover - initializer contract
        raise RuntimeError("worker used before initialization")
    warmup_s, _WORKER_WARMUP_PENDING_S = _WORKER_WARMUP_PENDING_S, 0.0
    outcomes = [
        _evaluate_job(
            _WORKER_SYSTEM, job, capture_spans=_WORKER_CAPTURE_SPANS, policy=_WORKER_POLICY
        )
        for job in jobs
    ]
    return outcomes, warmup_s


@dataclass
class BatchResult:
    """Ordered outcomes of one batch plus the runtime report."""

    outcomes: list[JobOutcome]
    report: RuntimeReport

    @property
    def analyses(self) -> list[ApAnalysis | None]:
        """Per-job analyses in submission order (``None`` where failed)."""
        return [outcome.analysis for outcome in self.outcomes]

    @property
    def failures(self) -> list[JobOutcome]:
        return [outcome for outcome in self.outcomes if not outcome.ok]

    def raise_on_failure(self) -> None:
        """Raise :class:`SolverError` summarizing *all* distinct failures.

        The message counts every distinct error type in the batch (not
        just the first failure) and quotes the first failed job for
        context; per-failure detail — including the worker-side
        traceback — stays on the :class:`~repro.runtime.jobs.JobFailure`
        records in :attr:`failures`.
        """
        failed = self.failures
        if not failed:
            return
        counts: dict[str, int] = {}
        for outcome in failed:
            counts[outcome.failure.error_type] = counts.get(outcome.failure.error_type, 0) + 1
        summary = ", ".join(f"{name} x{count}" for name, count in sorted(counts.items()))
        first = failed[0]
        raise SolverError(
            f"{len(failed)} of {len(self.outcomes)} batch jobs failed ({summary}); "
            f"first: job {first.index}: {first.failure.error_type}: "
            f"{first.failure.message}"
        )

    def strict_analyses(self) -> list[ApAnalysis]:
        """All analyses, raising :class:`SolverError` if any job failed.

        This restores sequential-loop semantics for callers (like the
        experiment drivers) that treat a solver failure as fatal; see
        :meth:`raise_on_failure` for the error's shape.
        """
        self.raise_on_failure()
        return [outcome.analysis for outcome in self.outcomes]


@dataclass
class BatchEvaluator:
    """Evaluate many traces through one system, optionally in parallel.

    Parameters
    ----------
    system:
        An :class:`~repro.runtime.jobs.EstimatorSpec` or a built system
        (``RoArrayEstimator``, ``SpotFiEstimator``, ``ArrayTrackEstimator``,
        or anything implementing ``analyze(trace)``).
    workers:
        ``0`` (default) runs sequentially in-process — no subprocesses,
        no pickling.  ``N >= 1`` uses a pool of N worker processes.
        Results are byte-identical across all settings.
    chunk_size:
        Jobs per scheduling unit; ``None`` picks roughly two chunks per
        worker.  Chunking affects scheduling granularity only, never
        results.
    base_seed:
        Per-job seeds are ``base_seed + index`` (see
        :class:`~repro.runtime.jobs.EvalJob`).
    policy:
        The :class:`~repro.runtime.jobs.ExecutionPolicy` hardening knobs
        (validation gate, per-job timeout, bounded retries, pool-respawn
        budget).  The default policy disables all of them, preserving
        the original failure semantics.
    tracer:
        Optional :class:`~repro.obs.Tracer`.  When enabled, every job
        runs under its own worker-side tracer (sequential and parallel
        alike), the serialized spans come back on each
        :class:`~repro.runtime.jobs.JobOutcome`, and the whole batch is
        merged into this tracer under one ``batch_evaluate`` span.  The
        default no-op tracer records nothing and costs nothing.

    Examples
    --------
    >>> from repro.runtime import BatchEvaluator          # doctest: +SKIP
    >>> result = BatchEvaluator(estimator, workers=4).evaluate(traces)  # doctest: +SKIP
    >>> aoas = [a.direct.aoa_deg for a in result.strict_analyses()]     # doctest: +SKIP
    """

    system: object
    workers: int = 0
    chunk_size: int | None = None
    base_seed: int = 0
    policy: ExecutionPolicy = DEFAULT_POLICY
    tracer: object = NULL_TRACER
    _local_system: object = field(default=None, repr=False, compare=False)

    def __post_init__(self) -> None:
        if self.workers < 0:
            raise ConfigurationError(f"workers must be >= 0, got {self.workers}")
        if self.chunk_size is not None and self.chunk_size < 1:
            raise ConfigurationError(f"chunk_size must be >= 1, got {self.chunk_size}")
        self.spec = EstimatorSpec.for_system(self.system)

    def evaluate(
        self,
        traces: Sequence[CsiTrace],
        *,
        checkpoint: CheckpointPolicy | None = None,
    ) -> BatchResult:
        """Evaluate every trace; outcomes come back in submission order.

        With ``checkpoint``, every completed job is appended to the
        journal as it finishes; jobs already journaled by a previous run
        are *replayed* instead of recomputed, so a killed sweep resumes
        where it stopped and the final result is byte-identical to an
        uninterrupted run at any worker count.  While a checkpointed
        batch runs, the first SIGINT/SIGTERM drains gracefully — the
        journal is flushed and :class:`~repro.exceptions.ResumableInterrupt`
        is raised; without a checkpoint the interrupt propagates as
        usual (``KeyboardInterrupt``).
        """
        jobs = [
            EvalJob(index=index, trace=trace, seed=self.base_seed + index)
            for index, trace in enumerate(traces)
        ]
        journal = None
        keys: dict[int, str] = {}
        replayed: list[JobOutcome] = []
        pending_jobs = jobs
        if checkpoint is not None:
            # The digest deliberately excludes workers/chunk_size: results
            # are byte-identical across worker counts, so a journal written
            # at --workers 4 must resume cleanly at --workers 0 (and vice
            # versa).  The per-job key additionally pins the trace bytes,
            # so a changed input is recomputed, never wrongly replayed.
            digest = config_digest(self.spec, self.policy, self.base_seed, len(jobs))
            keys = {
                job.index: job_key(digest, job.index, job.seed, trace_fingerprint(job.trace))
                for job in jobs
            }
            journal = CheckpointJournal(checkpoint)
            state = journal.open(
                experiment=checkpoint.experiment,
                config_digest=digest,
                n_jobs=len(jobs),
            )
            for job in jobs:
                record = state.payloads.get(keys[job.index])
                if record is not None:
                    replayed.append(JobOutcome.from_dict(record["payload"]))
            replayed_indices = {outcome.index for outcome in replayed}
            pending_jobs = [job for job in jobs if job.index not in replayed_indices]

        start = time.perf_counter()
        try:
            with _GracefulShutdown() as shutdown, self.tracer.span(
                "batch_evaluate", workers=self.workers, n_jobs=len(jobs)
            ):
                pool_respawns = 0
                if self.workers == 0 or len(pending_jobs) == 0:
                    outcomes, warmup_s = self._evaluate_sequential(
                        pending_jobs, journal=journal, keys=keys, shutdown=shutdown
                    )
                    chunk_size = len(jobs) or 1
                else:
                    chunk_size = self._effective_chunk_size(len(pending_jobs))
                    outcomes, warmup_s, pool_respawns = self._evaluate_parallel(
                        pending_jobs,
                        chunk_size,
                        journal=journal,
                        keys=keys,
                        shutdown=shutdown,
                    )
                outcomes = replayed + outcomes
                outcomes.sort(key=lambda outcome: outcome.index)
                if shutdown.triggered and len(outcomes) < len(jobs):
                    self._raise_interrupted(journal, completed=len(outcomes), total=len(jobs))
                # Graft worker-side spans in job order (inside the
                # batch_evaluate span so each job tree hangs under it).
                # Replayed outcomes carry their original run's spans, so
                # the resumed trace tree covers the whole batch.
                for outcome in outcomes:
                    if outcome.spans:
                        self.tracer.adopt(outcome.spans)
            if journal is not None:
                journal.finalize()
        finally:
            if journal is not None:
                journal.close()
        wall_s = time.perf_counter() - start
        report = RuntimeReport.from_outcomes(
            outcomes,
            workers=self.workers,
            chunk_size=chunk_size,
            wall_s=wall_s,
            warmup_s=warmup_s,
            pool_respawns=pool_respawns,
            n_replayed=len(replayed),
        )
        return BatchResult(outcomes=outcomes, report=report)

    def _raise_interrupted(self, journal, *, completed: int, total: int) -> None:
        """Drain finished: surface the interrupt with resume guidance."""
        if journal is None:
            # No checkpoint — nothing was saved, so behave like a plain
            # interrupt and let the caller's cleanup run.
            raise KeyboardInterrupt
        journal.flush()
        raise ResumableInterrupt(
            f"interrupted after {completed} of {total} jobs; completed work "
            f"is journaled in {journal.path} — rerun the same command to resume",
            completed=completed,
            total=total,
            path=str(journal.path),
        )

    # -- internals ---------------------------------------------------------

    def _evaluate_sequential(
        self,
        jobs: list[EvalJob],
        *,
        journal: CheckpointJournal | None = None,
        keys: dict[int, str] | None = None,
        shutdown: _GracefulShutdown | None = None,
    ) -> tuple[list[JobOutcome], float]:
        warmup_s = 0.0
        if self._local_system is None and jobs:
            self._local_system = _build_warm_system(self.spec)
            warmup_s = _system_warmup_seconds(self._local_system)
        capture = bool(getattr(self.tracer, "enabled", False))
        outcomes: list[JobOutcome] = []
        for job in jobs:
            if shutdown is not None and shutdown.triggered:
                break
            outcome = _evaluate_job(
                self._local_system, job, capture_spans=capture, policy=self.policy
            )
            outcomes.append(outcome)
            if journal is not None:
                journal.append(keys[job.index], outcome.to_dict(), index=job.index)
        return outcomes, warmup_s

    def _evaluate_parallel(
        self,
        jobs: list[EvalJob],
        chunk_size: int,
        *,
        journal: CheckpointJournal | None = None,
        keys: dict[int, str] | None = None,
        shutdown: _GracefulShutdown | None = None,
    ) -> tuple[list[JobOutcome], float, int]:
        """Pooled evaluation with crash recovery.

        A worker process dying (OOM kill, segfault, ``os.kill``) breaks
        the whole ``ProcessPoolExecutor``; every unfinished future then
        raises :class:`BrokenProcessPool`.  Chunk results that already
        crossed back are kept, the pool is rebuilt, and only the
        unfinished chunks are resubmitted — up to
        ``policy.max_pool_respawns`` times, after which the remaining
        jobs come back as taxonomized ``crash`` failures instead of an
        exception.  Results stay deterministic throughout: chunk
        contents never change, so a requeued chunk recomputes exactly
        what the dead worker would have.

        Chunk results are journaled in the parent the moment their
        future resolves (workers never touch the journal file), and a
        graceful-shutdown request cancels the still-queued futures while
        letting the in-flight chunks finish and be journaled.
        """
        chunks = [jobs[i : i + chunk_size] for i in range(0, len(jobs), chunk_size)]
        capture = bool(getattr(self.tracer, "enabled", False))
        completed: dict[int, tuple[list[JobOutcome], float]] = {}
        pending = list(range(len(chunks)))
        respawns = 0
        interrupted = False
        while pending:
            workers = min(self.workers, len(pending))
            pool_broke = False
            with ProcessPoolExecutor(
                max_workers=workers,
                initializer=_initialize_worker,
                initargs=(self.spec, capture, self.policy),
            ) as pool:
                futures = {
                    pool.submit(_run_chunk, chunks[index]): index for index in pending
                }
                not_done = set(futures)
                while not_done:
                    done, not_done = futures_wait(not_done, timeout=_DRAIN_POLL_S)
                    for future in done:
                        index = futures[future]
                        try:
                            completed[index] = future.result()
                        except CancelledError:
                            continue
                        except BrokenProcessPool:
                            pool_broke = True
                            continue
                        if journal is not None:
                            for outcome in completed[index][0]:
                                journal.append(
                                    keys[outcome.index],
                                    outcome.to_dict(),
                                    index=outcome.index,
                                )
                    if pool_broke:
                        break
                    if shutdown is not None and shutdown.triggered and not interrupted:
                        # Drain: drop everything still queued; chunks a
                        # worker is already computing run to completion
                        # (and get journaled) before the pool exits.
                        interrupted = True
                        for future in not_done:
                            future.cancel()
            pending = [index for index in pending if index not in completed]
            if interrupted or not pending:
                break
            if not pool_broke:  # pragma: no cover - defensive: avoid spinning
                raise ConfigurationError(
                    f"{len(pending)} chunks unfinished without a pool crash"
                )
            if respawns >= self.policy.max_pool_respawns:
                break
            respawns += 1

        outcomes: list[JobOutcome] = []
        warmup_s = 0.0
        for index in sorted(completed):
            chunk_outcomes, chunk_warmup_s = completed[index]
            outcomes.extend(chunk_outcomes)
            warmup_s += chunk_warmup_s
        # Respawn budget exhausted: the still-unfinished jobs become
        # tagged crash failures so the batch completes with data.  After
        # a graceful interrupt the unfinished jobs are simply *pending*
        # (they resume from the journal), not failed.
        for index in pending if not interrupted else []:
            for job in chunks[index]:
                outcomes.append(
                    JobOutcome(
                        index=job.index,
                        failure=JobFailure(
                            error_type="PoolCrashError",
                            message=(
                                "worker process died and the pool-respawn budget "
                                f"({self.policy.max_pool_respawns}) is exhausted"
                            ),
                            kind="crash",
                            attempts=respawns + 1,
                        ),
                        attempts=respawns + 1,
                    )
                )
        return outcomes, warmup_s, respawns

    def _effective_chunk_size(self, n_jobs: int) -> int:
        if self.chunk_size is not None:
            return self.chunk_size
        # Aim for ~2 chunks per worker: large enough to amortize IPC,
        # small enough to keep the pool busy at the tail.
        return max(1, -(-n_jobs // (2 * self.workers)))


def evaluate_traces(
    system,
    traces: Sequence[CsiTrace],
    *,
    workers: int = 0,
    chunk_size: int | None = None,
    base_seed: int = 0,
    policy: ExecutionPolicy = DEFAULT_POLICY,
    tracer=NULL_TRACER,
    checkpoint: CheckpointPolicy | None = None,
) -> BatchResult:
    """One-shot convenience wrapper around :class:`BatchEvaluator`."""
    evaluator = BatchEvaluator(
        system,
        workers=workers,
        chunk_size=chunk_size,
        base_seed=base_seed,
        policy=policy,
        tracer=tracer,
    )
    return evaluator.evaluate(traces, checkpoint=checkpoint)
