"""Parallel batch evaluation with a sequential-parity guarantee.

:class:`BatchEvaluator` fans a list of :class:`~repro.channel.trace.CsiTrace`
jobs out over a ``concurrent.futures.ProcessPoolExecutor``:

* **Per-worker warmup** — the pool initializer builds the estimator from
  a compact :class:`~repro.runtime.jobs.EstimatorSpec` and warms its
  :class:`~repro.core.steering.SteeringCache` once per process, so the
  joint dictionary (the expensive shared artifact) is built per worker,
  never per trace, and never pickled.
* **Determinism** — every job's result is a pure function of the job
  itself (trace + per-job seed ``base_seed + index``), jobs are chunked
  by contiguous index ranges, and outcomes are re-ordered by job index
  before returning.  The output is therefore byte-identical for any
  worker count, including the ``workers=0`` in-process sequential path.
* **Graceful degradation** — a job that raises
  :class:`~repro.exceptions.SolverError` comes back as a tagged
  :class:`~repro.runtime.jobs.JobFailure` record instead of killing the
  pool; the remaining jobs are unaffected.
* **Instrumentation** — workers time the dictionary / solve / peak
  stages per job; the totals come back in a
  :class:`~repro.runtime.report.RuntimeReport`.
"""

from __future__ import annotations

import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import Sequence

from repro.channel.trace import CsiTrace
from repro.core.direct_path import ApAnalysis
from repro.exceptions import ConfigurationError, SolverError
from repro.obs import NULL_TRACER, Tracer
from repro.runtime.jobs import EstimatorSpec, EvalJob, JobFailure, JobOutcome
from repro.runtime.report import RuntimeReport

# Per-process estimator slot, populated by the pool initializer.  A
# module-level global is the standard ProcessPoolExecutor idiom for
# one-time per-worker state; in the parent process it stays None.
_WORKER_SYSTEM = None
# Set once the worker's one-time warmup cost has been shipped back with
# a chunk result, so N workers report N warmups total, each exactly once.
_WORKER_WARMUP_PENDING_S = 0.0
# Whether workers should record per-job trace spans (set from the
# parent's tracer state at pool startup).
_WORKER_CAPTURE_SPANS = False


def _initialize_worker(spec: EstimatorSpec, capture_spans: bool = False) -> None:
    """Build the estimator once per worker process and warm its cache."""
    global _WORKER_SYSTEM, _WORKER_WARMUP_PENDING_S, _WORKER_CAPTURE_SPANS
    _WORKER_SYSTEM = _build_warm_system(spec)
    _WORKER_WARMUP_PENDING_S = _system_warmup_seconds(_WORKER_SYSTEM)
    _WORKER_CAPTURE_SPANS = capture_spans


def _system_warmup_seconds(system) -> float:
    cache = getattr(system, "cache", None)
    return float(getattr(cache, "warmup_seconds", 0.0))


def _build_warm_system(spec: EstimatorSpec):
    system = spec.build()
    cache = getattr(system, "cache", None)
    if cache is not None and hasattr(cache, "warmup"):
        cache.warmup()
    return system


def _evaluate_job(system, job: EvalJob, *, capture_spans: bool = False) -> JobOutcome:
    """Run one job; convert SolverError into a tagged failure record.

    With ``capture_spans`` the job runs under a fresh per-job
    :class:`~repro.obs.Tracer` (installed on the system for the duration
    of the call), and the recorded spans come back serialized on the
    outcome.  Both the sequential and the worker-pool paths go through
    here with the same flag, so the two span trees are structurally
    identical job for job.
    """
    # Warm-started estimators chain solutions across calls, which would
    # make a job's result depend on which jobs its worker ran before it.
    # Dropping the carried state here keeps every job a pure function of
    # (trace, seed) — the batch parity guarantee — at the cost of the
    # warm-start benefit, which only sequential sweeps opt into.
    reset = getattr(system, "reset_warm_state", None)
    if reset is not None:
        reset()
    job_tracer = Tracer() if capture_spans else NULL_TRACER
    previous_tracer = getattr(system, "tracer", None)
    if capture_spans and previous_tracer is not None:
        system.tracer = job_tracer
    stage_seconds: dict[str, float] = {}
    start = time.perf_counter()
    try:
        with job_tracer.span("job", index=job.index):
            analysis = _timed_analysis(system, job.trace, stage_seconds)
    except SolverError as error:
        return JobOutcome(
            index=job.index,
            failure=JobFailure(error_type=type(error).__name__, message=str(error)),
            elapsed_s=time.perf_counter() - start,
            stage_seconds=stage_seconds,
            spans=_drain_spans(job_tracer, stage_seconds, capture_spans),
        )
    finally:
        if capture_spans and previous_tracer is not None:
            system.tracer = previous_tracer
    return JobOutcome(
        index=job.index,
        analysis=analysis,
        elapsed_s=time.perf_counter() - start,
        stage_seconds=stage_seconds,
        spans=_drain_spans(job_tracer, stage_seconds, capture_spans),
    )


def _drain_spans(job_tracer, stage_seconds: dict[str, float], capture_spans: bool) -> list[dict]:
    """Serialize a job tracer's spans and derive the solver-time subtotal."""
    if not capture_spans:
        return []
    solver_s = job_tracer.total_wall_s("solver")
    if solver_s > 0.0:
        stage_seconds["solver"] = solver_s
    return [span.to_dict() for span in job_tracer.spans]


def _timed_analysis(system, trace: CsiTrace, stage_seconds: dict[str, float]) -> ApAnalysis:
    """``system.analyze(trace)`` with per-stage timing.

    ROArray estimators expose the stage boundaries (cache warmup → joint
    solve → peak pick); for opaque systems everything lands in ``solve``.
    The staged path calls exactly the methods ``analyze`` chains, so the
    result is identical to a plain ``analyze(trace)``.
    """
    from repro.core.pipeline import RoArrayEstimator

    if isinstance(system, RoArrayEstimator):
        tick = time.perf_counter()
        system.warm_cache()
        stage_seconds["dictionary"] = time.perf_counter() - tick
        tick = time.perf_counter()
        spectrum = system.joint_spectrum(trace)
        stage_seconds["solve"] = time.perf_counter() - tick
        tick = time.perf_counter()
        analysis = system.analysis_from_spectrum(spectrum, trace)
        stage_seconds["peaks"] = time.perf_counter() - tick
        return analysis
    tick = time.perf_counter()
    analysis = system.analyze(trace)
    stage_seconds["solve"] = time.perf_counter() - tick
    return analysis


def _run_chunk(jobs: list[EvalJob]) -> tuple[list[JobOutcome], float]:
    """Worker entry point: evaluate one contiguous chunk of jobs.

    Returns the outcomes plus this worker's one-time cache-warmup cost
    (nonzero only on the first chunk a worker returns, so the parent can
    sum it into the report's ``dictionary`` stage without double counting).
    """
    global _WORKER_WARMUP_PENDING_S
    if _WORKER_SYSTEM is None:  # pragma: no cover - initializer contract
        raise RuntimeError("worker used before initialization")
    warmup_s, _WORKER_WARMUP_PENDING_S = _WORKER_WARMUP_PENDING_S, 0.0
    outcomes = [
        _evaluate_job(_WORKER_SYSTEM, job, capture_spans=_WORKER_CAPTURE_SPANS) for job in jobs
    ]
    return outcomes, warmup_s


@dataclass
class BatchResult:
    """Ordered outcomes of one batch plus the runtime report."""

    outcomes: list[JobOutcome]
    report: RuntimeReport

    @property
    def analyses(self) -> list[ApAnalysis | None]:
        """Per-job analyses in submission order (``None`` where failed)."""
        return [outcome.analysis for outcome in self.outcomes]

    @property
    def failures(self) -> list[JobOutcome]:
        return [outcome for outcome in self.outcomes if not outcome.ok]

    def strict_analyses(self) -> list[ApAnalysis]:
        """All analyses, raising :class:`SolverError` if any job failed.

        This restores sequential-loop semantics for callers (like the
        experiment drivers) that treat a solver failure as fatal.
        """
        failed = self.failures
        if failed:
            first = failed[0]
            raise SolverError(
                f"{len(failed)} of {len(self.outcomes)} batch jobs failed; "
                f"first: job {first.index}: {first.failure.error_type}: "
                f"{first.failure.message}"
            )
        return [outcome.analysis for outcome in self.outcomes]


@dataclass
class BatchEvaluator:
    """Evaluate many traces through one system, optionally in parallel.

    Parameters
    ----------
    system:
        An :class:`~repro.runtime.jobs.EstimatorSpec` or a built system
        (``RoArrayEstimator``, ``SpotFiEstimator``, ``ArrayTrackEstimator``,
        or anything implementing ``analyze(trace)``).
    workers:
        ``0`` (default) runs sequentially in-process — no subprocesses,
        no pickling.  ``N >= 1`` uses a pool of N worker processes.
        Results are byte-identical across all settings.
    chunk_size:
        Jobs per scheduling unit; ``None`` picks roughly two chunks per
        worker.  Chunking affects scheduling granularity only, never
        results.
    base_seed:
        Per-job seeds are ``base_seed + index`` (see
        :class:`~repro.runtime.jobs.EvalJob`).
    tracer:
        Optional :class:`~repro.obs.Tracer`.  When enabled, every job
        runs under its own worker-side tracer (sequential and parallel
        alike), the serialized spans come back on each
        :class:`~repro.runtime.jobs.JobOutcome`, and the whole batch is
        merged into this tracer under one ``batch_evaluate`` span.  The
        default no-op tracer records nothing and costs nothing.

    Examples
    --------
    >>> from repro.runtime import BatchEvaluator          # doctest: +SKIP
    >>> result = BatchEvaluator(estimator, workers=4).evaluate(traces)  # doctest: +SKIP
    >>> aoas = [a.direct.aoa_deg for a in result.strict_analyses()]     # doctest: +SKIP
    """

    system: object
    workers: int = 0
    chunk_size: int | None = None
    base_seed: int = 0
    tracer: object = NULL_TRACER
    _local_system: object = field(default=None, repr=False, compare=False)

    def __post_init__(self) -> None:
        if self.workers < 0:
            raise ConfigurationError(f"workers must be >= 0, got {self.workers}")
        if self.chunk_size is not None and self.chunk_size < 1:
            raise ConfigurationError(f"chunk_size must be >= 1, got {self.chunk_size}")
        self.spec = EstimatorSpec.for_system(self.system)

    def evaluate(self, traces: Sequence[CsiTrace]) -> BatchResult:
        """Evaluate every trace; outcomes come back in submission order."""
        jobs = [
            EvalJob(index=index, trace=trace, seed=self.base_seed + index)
            for index, trace in enumerate(traces)
        ]
        start = time.perf_counter()
        with self.tracer.span(
            "batch_evaluate", workers=self.workers, n_jobs=len(jobs)
        ):
            if self.workers == 0 or len(jobs) == 0:
                outcomes, warmup_s = self._evaluate_sequential(jobs)
                chunk_size = len(jobs) or 1
            else:
                chunk_size = self._effective_chunk_size(len(jobs))
                outcomes, warmup_s = self._evaluate_parallel(jobs, chunk_size)
            outcomes.sort(key=lambda outcome: outcome.index)
            # Graft worker-side spans in job order (inside the
            # batch_evaluate span so each job tree hangs under it).
            for outcome in outcomes:
                if outcome.spans:
                    self.tracer.adopt(outcome.spans)
        wall_s = time.perf_counter() - start
        report = RuntimeReport.from_outcomes(
            outcomes,
            workers=self.workers,
            chunk_size=chunk_size,
            wall_s=wall_s,
            warmup_s=warmup_s,
        )
        return BatchResult(outcomes=outcomes, report=report)

    # -- internals ---------------------------------------------------------

    def _evaluate_sequential(self, jobs: list[EvalJob]) -> tuple[list[JobOutcome], float]:
        warmup_s = 0.0
        if self._local_system is None:
            self._local_system = _build_warm_system(self.spec)
            warmup_s = _system_warmup_seconds(self._local_system)
        capture = bool(getattr(self.tracer, "enabled", False))
        return [
            _evaluate_job(self._local_system, job, capture_spans=capture) for job in jobs
        ], warmup_s

    def _evaluate_parallel(
        self, jobs: list[EvalJob], chunk_size: int
    ) -> tuple[list[JobOutcome], float]:
        chunks = [jobs[i : i + chunk_size] for i in range(0, len(jobs), chunk_size)]
        workers = min(self.workers, len(chunks))
        outcomes: list[JobOutcome] = []
        warmup_s = 0.0
        with ProcessPoolExecutor(
            max_workers=workers,
            initializer=_initialize_worker,
            initargs=(self.spec, bool(getattr(self.tracer, "enabled", False))),
        ) as pool:
            futures = [pool.submit(_run_chunk, chunk) for chunk in chunks]
            for future in futures:
                chunk_outcomes, chunk_warmup_s = future.result()
                outcomes.extend(chunk_outcomes)
                warmup_s += chunk_warmup_s
        return outcomes, warmup_s

    def _effective_chunk_size(self, n_jobs: int) -> int:
        if self.chunk_size is not None:
            return self.chunk_size
        # Aim for ~2 chunks per worker: large enough to amortize IPC,
        # small enough to keep the pool busy at the tail.
        return max(1, -(-n_jobs // (2 * self.workers)))


def evaluate_traces(
    system,
    traces: Sequence[CsiTrace],
    *,
    workers: int = 0,
    chunk_size: int | None = None,
    base_seed: int = 0,
    tracer=NULL_TRACER,
) -> BatchResult:
    """One-shot convenience wrapper around :class:`BatchEvaluator`."""
    evaluator = BatchEvaluator(
        system, workers=workers, chunk_size=chunk_size, base_seed=base_seed, tracer=tracer
    )
    return evaluator.evaluate(traces)
