"""Batch-evaluation runtime: parallel fan-out with sequential parity.

The paper's evaluation is embarrassingly parallel — hundreds of client
spots × several APs, each an independent ``analyze(trace)`` call — and
this package is the layer that exploits it without changing a single
result.  See :class:`~repro.runtime.batch.BatchEvaluator` for the
determinism, warmup, and failure-isolation contracts.
"""

from repro.runtime.batch import BatchEvaluator, BatchResult, evaluate_traces
from repro.runtime.bench import joint_solve_benchmark
from repro.runtime.checkpoint import (
    EXIT_RESUMABLE,
    CheckpointJournal,
    CheckpointPolicy,
    atomic_write,
    checkpoint_status,
    config_digest,
    job_key,
    read_manifest,
    trace_fingerprint,
    write_manifest,
)
from repro.runtime.jobs import (
    DEFAULT_POLICY,
    FAILURE_KINDS,
    RETRYABLE_KINDS,
    EstimatorSpec,
    EvalJob,
    ExecutionPolicy,
    JobFailure,
    JobOutcome,
)
from repro.runtime.report import RuntimeReport, StageTotals

__all__ = [
    "BatchEvaluator",
    "BatchResult",
    "CheckpointJournal",
    "CheckpointPolicy",
    "DEFAULT_POLICY",
    "EXIT_RESUMABLE",
    "EstimatorSpec",
    "EvalJob",
    "ExecutionPolicy",
    "FAILURE_KINDS",
    "JobFailure",
    "JobOutcome",
    "RETRYABLE_KINDS",
    "RuntimeReport",
    "StageTotals",
    "atomic_write",
    "checkpoint_status",
    "config_digest",
    "evaluate_traces",
    "job_key",
    "joint_solve_benchmark",
    "read_manifest",
    "trace_fingerprint",
    "write_manifest",
]
