"""Durable checkpoint/resume: a crash-safe experiment store.

Long sweeps (the Fig. 6–8 drivers run hundreds of joint solves) must
survive SIGKILL, OOM and host preemption without losing completed work.
This module provides the storage layer:

* :func:`atomic_write` — the one way any artifact (JSON report, NPZ
  trace, benchmark result) reaches disk: tmp file in the destination
  directory, ``fsync``, then ``os.replace``.  A crash leaves either the
  old file or the new file, never a torn hybrid.
* :class:`CheckpointJournal` — an append-only, fsync'd JSONL journal of
  per-job outcomes.  The first record is a versioned header carrying the
  experiment id, the config digest and the expected job count; every
  subsequent record is one job outcome keyed by a content hash of
  (config digest, job index, per-job seed, trace fingerprint).
  Compaction rewrites the journal atomically (tmp-write + rename),
  deduplicating records and dropping any torn tail.
* :class:`CheckpointPolicy` — what callers hand to
  :meth:`repro.runtime.BatchEvaluator.evaluate`: the journal path plus
  the ``flush_every`` / ``compact_every`` durability knobs.
* :func:`config_digest` / :func:`job_key` — stable content hashes.  The
  digest pins *what experiment this journal belongs to* (estimator
  spec, execution policy, base seed, job count); resuming against a
  journal with a different digest raises
  :class:`~repro.exceptions.CheckpointError` instead of silently mixing
  results.  The per-job key additionally pins the trace bytes, so a
  changed input reruns rather than wrongly replaying.
* :func:`checkpoint_status` / manifest helpers — what ``roarray
  resume`` uses to report percent-complete and re-dispatch the original
  command.

Torn-write recovery: a crash can leave a partial last line in the
journal.  The loader skips any record that does not parse or lacks its
required fields, counts it on the ``checkpoint.validation_warnings``
metric (and emits a Python warning), and compacts the file so the next
append starts on a clean boundary.  The skipped job is simply
recomputed — never half-trusted.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import tempfile
import warnings
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Iterable

import numpy as np

from repro.exceptions import CheckpointError, ConfigurationError

#: Journal format version; bumped on incompatible record-layout changes.
JOURNAL_VERSION = 1

#: Process exit status for "interrupted but resumable" (BSD EX_TEMPFAIL).
#: Distinct from both success (0) and failure (1/2) so wrappers can
#: requeue the run instead of reporting it broken.
EXIT_RESUMABLE = 75

#: Name of the run manifest ``roarray resume`` re-dispatches from.
MANIFEST_NAME = "manifest.json"


# ---------------------------------------------------------------------------
# Atomic artifact writes
# ---------------------------------------------------------------------------


def atomic_write(
    path: str | Path,
    data: dict | list | str | bytes | Callable[[Any], None],
    *,
    indent: int | None = 2,
) -> Path:
    """Write an artifact atomically: tmp file + ``fsync`` + ``os.replace``.

    ``data`` may be a JSON-ready dict/list (serialized with ``indent``
    and a trailing newline), a ``str`` (UTF-8 text), raw ``bytes``, or a
    callable taking a binary file object (for writers like
    ``np.savez_compressed`` that stream their own format).

    The temporary file is created in the destination directory so the
    final ``os.replace`` stays on one filesystem (rename atomicity);
    readers observe either the complete old content or the complete new
    content, never a partially written file.
    """
    path = Path(path)
    directory = path.parent if str(path.parent) else Path(".")
    fd, tmp_name = tempfile.mkstemp(
        dir=directory, prefix=f".{path.name}.", suffix=".tmp"
    )
    try:
        with os.fdopen(fd, "wb") as handle:
            if callable(data):
                data(handle)
            elif isinstance(data, bytes):
                handle.write(data)
            elif isinstance(data, str):
                handle.write(data.encode("utf-8"))
            else:
                handle.write(json.dumps(data, indent=indent).encode("utf-8"))
                handle.write(b"\n")
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp_name, path)
    except BaseException:
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise
    _fsync_directory(directory)
    return path


def _fsync_directory(directory: Path) -> None:
    """Best-effort directory fsync so the rename itself is durable."""
    try:
        fd = os.open(directory, os.O_RDONLY)
    except OSError:  # pragma: no cover - e.g. platforms without dir fds
        return
    try:
        os.fsync(fd)
    except OSError:  # pragma: no cover - not supported on all filesystems
        pass
    finally:
        os.close(fd)


# ---------------------------------------------------------------------------
# Content hashing
# ---------------------------------------------------------------------------


def describe_for_digest(value) -> Any:
    """A canonical, JSON-able description of a configuration value.

    Dataclasses recurse field by field, numpy arrays collapse to a hash
    of their bytes, containers recurse, scalars pass through.  Opaque
    objects contribute their class identity plus a ``name`` attribute if
    they expose one — enough to distinguish estimator systems without
    depending on unstable ``repr`` addresses.
    """
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, (np.integer,)):
        return int(value)
    if isinstance(value, (np.floating,)):
        return float(value)
    if isinstance(value, complex):
        return {"__complex__": [value.real, value.imag]}
    if isinstance(value, np.ndarray):
        return {
            "__ndarray__": hashlib.sha256(np.ascontiguousarray(value).tobytes()).hexdigest(),
            "shape": list(value.shape),
            "dtype": str(value.dtype),
        }
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        described = {
            f.name: describe_for_digest(getattr(value, f.name))
            for f in dataclasses.fields(value)
        }
        described["__class__"] = type(value).__qualname__
        return described
    if isinstance(value, dict):
        return {str(k): describe_for_digest(v) for k, v in sorted(value.items(), key=lambda kv: str(kv[0]))}
    if isinstance(value, (list, tuple)):
        return [describe_for_digest(item) for item in value]
    label = f"{type(value).__module__}.{type(value).__qualname__}"
    name = getattr(value, "name", None)
    return {"__object__": label, "name": name if isinstance(name, str) else None}


def config_digest(*parts) -> str:
    """A stable hex digest over arbitrary configuration values."""
    canonical = json.dumps(
        [describe_for_digest(part) for part in parts], sort_keys=True, allow_nan=True
    )
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()[:32]


def trace_fingerprint(trace) -> str:
    """Content hash of a CSI trace's measurement bytes."""
    csi = np.ascontiguousarray(trace.csi)
    digest = hashlib.sha256(csi.tobytes())
    digest.update(np.float64(trace.snr_db).tobytes())
    return digest.hexdigest()[:32]


def job_key(config_digest_hex: str, index: int, seed: int, content_hash: str = "") -> str:
    """Content hash identifying one job inside one experiment."""
    raw = f"{config_digest_hex}:{index}:{seed}:{content_hash}"
    return hashlib.sha256(raw.encode("utf-8")).hexdigest()[:32]


# ---------------------------------------------------------------------------
# The journal
# ---------------------------------------------------------------------------


@dataclass
class CheckpointPolicy:
    """Where and how eagerly a batch journals its outcomes.

    Attributes
    ----------
    path:
        Journal file (JSONL).  Parent directories are created on demand.
    flush_every:
        ``fsync`` after this many appended records.  ``1`` (default)
        makes every completed job durable immediately; larger values
        amortize the fsync cost on fast jobs at the price of losing up
        to ``flush_every - 1`` outcomes to a hard kill.
    compact_every:
        Rewrite the journal atomically after this many appends (``0``
        disables periodic compaction; the journal is always compacted
        once the batch completes).
    experiment:
        Human-readable label stored in the journal header (shown by
        ``roarray resume``); defaults to ``"batch"``.
    metrics:
        Optional :class:`repro.obs.MetricsRegistry`; replay/append/
        torn-record counters land there.
    """

    path: str | Path
    flush_every: int = 1
    compact_every: int = 0
    experiment: str = "batch"
    metrics: object | None = None

    def __post_init__(self) -> None:
        if self.flush_every < 1:
            raise ConfigurationError(f"flush_every must be >= 1, got {self.flush_every}")
        if self.compact_every < 0:
            raise ConfigurationError(
                f"compact_every must be >= 0, got {self.compact_every}"
            )


@dataclass
class JournalState:
    """What a journal load recovered: the header plus replayable payloads."""

    header: dict
    payloads: dict[str, dict] = field(default_factory=dict)
    n_torn: int = 0

    @property
    def n_recorded(self) -> int:
        return len(self.payloads)


class CheckpointJournal:
    """An append-only, fsync'd JSONL journal of per-job outcomes.

    Record layout (one JSON object per line)::

        {"record": "header", "version": 1, "experiment": ..,
         "config_digest": .., "n_jobs": ..}
        {"record": "job", "key": "<hex>", "index": 3, "payload": {...}}

    The header is written and fsync'd at creation, before any job
    record, so a journal either identifies its experiment or is treated
    as empty.  Appends go through :meth:`append`; durability follows the
    policy's ``flush_every``.  :meth:`compact` (and :meth:`finalize`)
    rewrite the journal atomically, deduplicating by key (last record
    wins) and dropping torn bytes.
    """

    def __init__(self, policy: CheckpointPolicy):
        self.policy = policy
        self.path = Path(policy.path)
        self._handle = None
        self._since_flush = 0
        self._since_compact = 0
        self._records: dict[str, dict] = {}
        self._header: dict | None = None

    # -- lifecycle ---------------------------------------------------------

    def open(self, *, experiment: str, config_digest: str, n_jobs: int) -> JournalState:
        """Create the journal or load it for resumption.

        Returns the recovered :class:`JournalState` (empty for a fresh
        journal).  Raises :class:`~repro.exceptions.CheckpointError`
        when the existing header belongs to a different experiment
        configuration — a resumed run must never mix results.
        """
        self.path.parent.mkdir(parents=True, exist_ok=True)
        fresh_header = {
            "record": "header",
            "version": JOURNAL_VERSION,
            "experiment": experiment,
            "config_digest": config_digest,
            "n_jobs": int(n_jobs),
        }
        loaded = None
        if self.path.exists() and self.path.stat().st_size > 0:
            loaded = _load_journal(self.path, metrics=self.policy.metrics)
        if loaded is not None:
            header = loaded.header
            if header.get("version") != JOURNAL_VERSION:
                raise CheckpointError(
                    f"{self.path}: journal version {header.get('version')!r} "
                    f"is not supported (expected {JOURNAL_VERSION})"
                )
            if header.get("config_digest") != config_digest:
                raise CheckpointError(
                    f"{self.path}: journal belongs to a different experiment "
                    f"configuration (digest {header.get('config_digest')!r} != "
                    f"{config_digest!r} for {experiment!r}); refusing to mix "
                    "results — point the run at a fresh checkpoint or delete "
                    "the stale journal"
                )
            state = loaded
        else:
            state = JournalState(header=fresh_header)
        self._header = state.header
        self._records = dict(state.payloads)
        # Rewrite when the journal is new/headerless or has torn bytes,
        # so the next append starts on a clean record boundary (a torn
        # tail would otherwise corrupt the record appended after it).
        if loaded is None or state.n_torn > 0:
            self._rewrite()
        self._ensure_handle()
        counter = self._counter("checkpoint.records_replayed")
        if counter is not None:
            counter.inc(state.n_recorded)
        return state

    def _ensure_handle(self) -> None:
        if self._handle is None:
            self._handle = open(self.path, "a", encoding="utf-8")

    def close(self) -> None:
        if self._handle is not None:
            self._handle.flush()
            os.fsync(self._handle.fileno())
            self._handle.close()
            self._handle = None

    def __enter__(self) -> "CheckpointJournal":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- appends -----------------------------------------------------------

    def append(self, key: str, payload: dict, *, index: int | None = None) -> None:
        """Journal one outcome; durability follows ``policy.flush_every``."""
        self._ensure_handle()
        record = {"record": "job", "key": key, "index": index, "payload": payload}
        self._handle.write(json.dumps(record) + "\n")
        self._records[key] = record
        self._since_flush += 1
        self._since_compact += 1
        counter = self._counter("checkpoint.records_appended")
        if counter is not None:
            counter.inc()
        if self._since_flush >= self.policy.flush_every:
            self.flush()
        if self.policy.compact_every and self._since_compact >= self.policy.compact_every:
            self.compact()

    def flush(self) -> None:
        """Push appended records to durable storage (``fsync``)."""
        if self._handle is not None:
            self._handle.flush()
            os.fsync(self._handle.fileno())
        self._since_flush = 0

    def compact(self) -> None:
        """Atomically rewrite the journal: header + one record per key."""
        self._rewrite()
        counter = self._counter("checkpoint.compactions")
        if counter is not None:
            counter.inc()

    def finalize(self) -> None:
        """Flush, compact and close — the batch completed."""
        self.flush()
        self._rewrite()
        self.close()

    def _rewrite(self) -> None:
        was_open = self._handle is not None
        self.close()
        lines = [json.dumps(self._header)]
        for record in sorted(
            self._records.values(),
            key=lambda r: (r.get("index") is None, r.get("index"), r.get("key")),
        ):
            lines.append(json.dumps(record))
        atomic_write(self.path, "\n".join(lines) + "\n")
        self._since_compact = 0
        if was_open:
            self._ensure_handle()

    def _counter(self, name: str):
        metrics = self.policy.metrics
        if metrics is None:
            return None
        return metrics.counter(name)


def _load_journal(path: Path, *, metrics=None) -> JournalState | None:
    """Parse a journal, skipping torn or malformed records.

    Returns ``None`` when the file has no usable header (a crash before
    the header fsync) — the caller recreates the journal from scratch.
    Every skipped record increments ``checkpoint.validation_warnings``
    and emits a Python warning; the affected jobs are recomputed.
    """
    with open(path, "r", encoding="utf-8") as handle:
        lines = handle.read().splitlines()
    if not lines:
        return None
    try:
        header = json.loads(lines[0])
    except json.JSONDecodeError:
        header = None
    if not isinstance(header, dict) or header.get("record") != "header":
        _warn_torn(path, "unreadable header — recreating the journal", metrics)
        return None
    state = JournalState(header=header)
    for lineno, line in enumerate(lines[1:], start=2):
        if not line.strip():
            continue
        try:
            record = json.loads(line)
        except json.JSONDecodeError:
            state.n_torn += 1
            _warn_torn(path, f"torn record at line {lineno} skipped", metrics)
            continue
        if (
            not isinstance(record, dict)
            or record.get("record") != "job"
            or not isinstance(record.get("key"), str)
            or not isinstance(record.get("payload"), dict)
        ):
            state.n_torn += 1
            _warn_torn(path, f"malformed record at line {lineno} skipped", metrics)
            continue
        state.payloads[record["key"]] = record
    return state


def _warn_torn(path: Path, message: str, metrics) -> None:
    if metrics is not None:
        metrics.counter("checkpoint.validation_warnings").inc()
    warnings.warn(f"checkpoint {path}: {message}", RuntimeWarning, stacklevel=3)


# ---------------------------------------------------------------------------
# Resume status + manifest
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class JournalStatus:
    """Progress of one journal inside a checkpoint directory."""

    path: str
    experiment: str
    n_jobs: int
    n_recorded: int

    @property
    def percent_complete(self) -> float:
        if self.n_jobs <= 0:
            return 0.0
        return 100.0 * min(self.n_recorded, self.n_jobs) / self.n_jobs

    @property
    def complete(self) -> bool:
        return self.n_jobs > 0 and self.n_recorded >= self.n_jobs


def checkpoint_status(directory: str | Path) -> list[JournalStatus]:
    """Scan a checkpoint directory's journals and report their progress."""
    directory = Path(directory)
    statuses = []
    for path in sorted(directory.glob("*.jsonl")):
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", RuntimeWarning)
            state = _load_journal(path)
        if state is None:
            continue
        statuses.append(
            JournalStatus(
                path=str(path),
                experiment=str(state.header.get("experiment", "?")),
                n_jobs=int(state.header.get("n_jobs", 0)),
                n_recorded=state.n_recorded,
            )
        )
    return statuses


def write_manifest(directory: str | Path, argv: Iterable[str]) -> Path:
    """Record the CLI command a checkpoint directory belongs to."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    return atomic_write(
        directory / MANIFEST_NAME,
        {"version": JOURNAL_VERSION, "command": list(argv)},
    )


def read_manifest(directory: str | Path) -> list[str]:
    """The argv recorded by :func:`write_manifest`; raises if unusable."""
    path = Path(directory) / MANIFEST_NAME
    if not path.exists():
        raise CheckpointError(
            f"{path} not found — was this checkpoint created with "
            "`roarray batch --checkpoint` / `roarray chaos --checkpoint`?"
        )
    try:
        with open(path, "r", encoding="utf-8") as handle:
            manifest = json.load(handle)
    except (OSError, json.JSONDecodeError) as error:
        raise CheckpointError(f"{path}: unreadable manifest ({error})") from error
    command = manifest.get("command")
    if not isinstance(command, list) or not all(isinstance(a, str) for a in command):
        raise CheckpointError(f"{path}: manifest carries no command to resume")
    return command
