"""Solver microbenchmarks shared by the CLI and the CI smoke jobs.

Three self-contained measurements:

* :func:`joint_solve_benchmark` — dense GEMM vs the structured
  :class:`~repro.optim.operators.KroneckerJointOperator` path on one
  Eq. 18 FISTA solve (``BENCH_joint_solve.json``).
* :func:`batched_solve_benchmark` — the per-problem sequential loop vs
  :func:`repro.optim.solve_batch` stacking many measurements into
  lockstep batched iterations, on a selectable array backend
  (``BENCH_batched_solve.json``).
* :func:`robust_solve_benchmark` — the plain LASSO solve vs the
  outlier-augmented ``[Ã | I]`` robust solve on the same measurement
  (``BENCH_robust_solve.json``); the robustness tax must stay small
  enough to leave the augmented path on by default in hardened mode.

All pin the iteration count (``tolerance=0``) so the compared paths do
identical algorithmic work and the wall-time ratio measures pure linear
algebra throughput, not convergence luck.
"""

from __future__ import annotations

import time

import numpy as np


def joint_solve_benchmark(
    *,
    snr_db: float = 12.0,
    seed: int = 2017,
    repeats: int = 3,
    max_iterations: int | None = None,
) -> dict:
    """Measure the dense vs operator joint solve at the evaluation config.

    Returns a JSON-ready dict with the grid size, pinned iteration
    count, best-of-``repeats`` wall times for both paths, their speedup,
    and the relative spectrum disagreement (which must be at rounding
    level — the operator is the *same* matrix, applied factored).
    """
    from repro.channel.csi import CsiSynthesizer
    from repro.channel.impairments import ImpairmentModel
    from repro.channel.paths import random_profile
    from repro.core.joint import coefficients_to_joint_power
    from repro.core.pipeline import RoArrayEstimator
    from repro.core.steering import vectorize_csi_matrix
    from repro.experiments.runner import evaluation_roarray_config
    from repro.optim import solve_lasso_fista
    from repro.optim.tuning import residual_kappa

    estimator = RoArrayEstimator(config=evaluation_roarray_config())
    cache = estimator.cache
    config = estimator.config
    if max_iterations is None:
        max_iterations = config.max_iterations

    rng = np.random.default_rng(seed)
    profile = random_profile(rng, direct_aoa_deg=150.0)
    synthesizer = CsiSynthesizer(
        estimator.array, estimator.layout, ImpairmentModel(), seed=seed
    )
    trace = synthesizer.packets(profile, n_packets=1, snr_db=snr_db, rng=rng)
    y = vectorize_csi_matrix(trace.packet(0))

    operator = cache.joint_operator
    dense = cache.joint_dictionary
    lipschitz = cache.joint_lipschitz
    kappa = residual_kappa(operator, y, fraction=config.kappa_fraction)

    def run(matrix):
        # tolerance=0 pins the iteration count: both paths run exactly
        # max_iterations FISTA steps, so wall time compares pure matvec
        # cost, not convergence luck.
        return solve_lasso_fista(
            matrix, y, kappa,
            max_iterations=max_iterations, tolerance=0.0, lipschitz=lipschitz,
        )

    def best_time(matrix):
        best = float("inf")
        for _ in range(repeats):
            start = time.perf_counter()
            result = run(matrix)
            best = min(best, time.perf_counter() - start)
        return best, result

    dense_seconds, dense_result = best_time(dense)
    operator_seconds, operator_result = best_time(operator)

    n_angles, n_delays = config.angle_grid.n_points, config.delay_grid.n_points
    dense_power = coefficients_to_joint_power(dense_result.x, n_angles, n_delays)
    operator_power = coefficients_to_joint_power(operator_result.x, n_angles, n_delays)
    scale = float(dense_power.max(initial=0.0)) or 1.0
    max_relative_error = float(np.abs(dense_power - operator_power).max() / scale)

    return {
        "benchmark": "joint_solve",
        "grid": {
            "n_angles": n_angles,
            "n_delays": n_delays,
            "rows": operator.shape[0],
            "columns": operator.shape[1],
        },
        "iterations": int(max_iterations),
        "repeats": int(repeats),
        "snr_db": float(snr_db),
        "seed": int(seed),
        "dense_seconds": dense_seconds,
        "operator_seconds": operator_seconds,
        "speedup": dense_seconds / operator_seconds,
        "max_relative_spectrum_error": max_relative_error,
    }


def robust_solve_benchmark(
    *,
    snr_db: float = 12.0,
    seed: int = 2017,
    repeats: int = 3,
    max_iterations: int | None = None,
) -> dict:
    """Measure the robustness tax: plain LASSO vs outlier-augmented solve.

    Times :func:`repro.optim.solve_lasso_fista` against
    :func:`repro.optim.solve_robust_lasso` on the same measurement,
    operator, κ, and pinned iteration count.  The augmented problem
    carries one extra variable per measurement row and a second
    shrinkage per iteration, so its per-iteration cost is strictly
    higher; the ratio is the price of leaving NLOS/corruption
    resilience on.  The CI smoke gate holds it at ≤ 1.6×.

    Also records the clean-trace ``outlier_fraction`` — near zero by
    construction, which is what lets hardened mode run the augmented
    path unconditionally without distorting clean solves.
    """
    from repro.channel.csi import CsiSynthesizer
    from repro.channel.impairments import ImpairmentModel
    from repro.channel.paths import random_profile
    from repro.core.pipeline import RoArrayEstimator
    from repro.core.steering import vectorize_csi_matrix
    from repro.experiments.runner import evaluation_roarray_config
    from repro.optim import solve_lasso_fista, solve_robust_lasso
    from repro.optim.tuning import residual_kappa

    estimator = RoArrayEstimator(config=evaluation_roarray_config())
    cache = estimator.cache
    config = estimator.config
    if max_iterations is None:
        max_iterations = config.max_iterations

    rng = np.random.default_rng(seed)
    profile = random_profile(rng, direct_aoa_deg=150.0)
    synthesizer = CsiSynthesizer(
        estimator.array, estimator.layout, ImpairmentModel(), seed=seed
    )
    trace = synthesizer.packets(profile, n_packets=1, snr_db=snr_db, rng=rng)
    y = vectorize_csi_matrix(trace.packet(0))

    operator = cache.joint_operator
    lipschitz = cache.joint_lipschitz
    kappa = residual_kappa(operator, y, fraction=config.kappa_fraction)

    def best_time(run):
        best, outcome = float("inf"), None
        for _ in range(repeats):
            start = time.perf_counter()
            outcome = run()
            best = min(best, time.perf_counter() - start)
        return best, outcome

    plain_seconds, plain_result = best_time(
        lambda: solve_lasso_fista(
            operator, y, kappa,
            max_iterations=max_iterations, tolerance=0.0, lipschitz=lipschitz,
        )
    )
    robust_seconds, robust_result = best_time(
        lambda: solve_robust_lasso(
            operator, y, kappa,
            max_iterations=max_iterations, tolerance=0.0, lipschitz=lipschitz,
        )
    )

    scale = max(1.0, float(np.abs(plain_result.x).max()))
    spectrum_deviation = float(np.abs(robust_result.x - plain_result.x).max()) / scale

    return {
        "benchmark": "robust_solve",
        "grid": {
            "n_angles": config.angle_grid.n_points,
            "n_delays": config.delay_grid.n_points,
            "rows": operator.shape[0],
            "columns": operator.shape[1],
        },
        "iterations": int(max_iterations),
        "repeats": int(repeats),
        "snr_db": float(snr_db),
        "seed": int(seed),
        "plain_seconds": plain_seconds,
        "robust_seconds": robust_seconds,
        "overhead_ratio": robust_seconds / plain_seconds,
        "clean_outlier_fraction": float(robust_result.outlier_fraction),
        "max_relative_spectrum_deviation": spectrum_deviation,
    }


def batched_solve_benchmark(
    *,
    backend: str = "numpy",
    device: str | None = None,
    dtype: str | None = None,
    batch_sizes: tuple[int, ...] = (1, 8, 64),
    snr_db: float = 12.0,
    seed: int = 2017,
    repeats: int = 3,
    max_iterations: int | None = None,
) -> dict:
    """Measure ``solve_batch`` against the per-problem sequential loop.

    Synthesizes ``max(batch_sizes)`` noisy packets of one evaluation
    scene, then for each batch size times (a) the sequential numpy
    reference — one pinned-iteration FISTA solve per packet — and (b)
    one :func:`repro.optim.solve_batch` call on the requested
    backend/dtype, with identical per-problem κ and iteration counts.
    Every row also records the max relative ℓ∞ deviation of the batched
    solutions from the sequential reference.

    Returns a JSON-ready dict with one row per batch size; ``speedup``
    on each row is ``loop_seconds / batched_seconds``.
    """
    from repro.channel.csi import CsiSynthesizer
    from repro.channel.impairments import ImpairmentModel
    from repro.channel.paths import random_profile
    from repro.core.pipeline import RoArrayEstimator
    from repro.core.steering import vectorize_csi_matrix
    from repro.experiments.runner import evaluation_roarray_config
    from repro.optim import solve_batch, solve_lasso_fista
    from repro.optim.backend import (
        FLOAT32_TOLERANCES,
        FLOAT64_PARITY_TOLERANCE,
        normalize_precision,
    )
    from repro.optim.tuning import residual_kappa

    estimator = RoArrayEstimator(config=evaluation_roarray_config())
    cache = estimator.cache
    config = estimator.config
    if max_iterations is None:
        max_iterations = config.max_iterations
    batch_sizes = tuple(sorted(int(b) for b in batch_sizes))
    if not batch_sizes or batch_sizes[0] < 1:
        raise ValueError(f"batch_sizes must be positive, got {batch_sizes}")

    rng = np.random.default_rng(seed)
    profile = random_profile(rng, direct_aoa_deg=150.0)
    synthesizer = CsiSynthesizer(
        estimator.array, estimator.layout, ImpairmentModel(), seed=seed
    )
    trace = synthesizer.packets(
        profile, n_packets=batch_sizes[-1], snr_db=snr_db, rng=rng
    )
    ys = [vectorize_csi_matrix(trace.packet(i)) for i in range(trace.n_packets)]

    reference = cache.joint_operator
    lipschitz = cache.joint_lipschitz
    target = cache.joint_operator_on(backend, device=device, dtype=dtype)
    kappas = [
        residual_kappa(reference, y, fraction=config.kappa_fraction) for y in ys
    ]
    precision = normalize_precision(dtype) if dtype is not None else "double"
    parity_tolerance = (
        FLOAT64_PARITY_TOLERANCE
        if precision == "double" and target.backend.name == "numpy"
        else FLOAT32_TOLERANCES["parity_gate"]
    )

    def best_time(run):
        best, outcome = float("inf"), None
        for _ in range(repeats):
            start = time.perf_counter()
            outcome = run()
            best = min(best, time.perf_counter() - start)
        return best, outcome

    rows = []
    for batch_size in batch_sizes:
        batch_ys = ys[:batch_size]
        batch_kappas = kappas[:batch_size]

        loop_seconds, loop_results = best_time(
            lambda: [
                solve_lasso_fista(
                    reference, y, k,
                    max_iterations=max_iterations, tolerance=0.0, lipschitz=lipschitz,
                )
                for y, k in zip(batch_ys, batch_kappas)
            ]
        )
        batched_seconds, batched = best_time(
            lambda: solve_batch(
                target, batch_ys, method="fista", kappa=batch_kappas,
                max_iterations=max_iterations, tolerance=0.0, lipschitz=lipschitz,
            )
        )

        solutions = batched.to_numpy()
        deviation = 0.0
        for index, result in enumerate(loop_results):
            scale = max(1.0, float(np.abs(result.x).max()))
            deviation = max(
                deviation, float(np.abs(solutions[index] - result.x).max()) / scale
            )
        rows.append(
            {
                "batch_size": int(batch_size),
                "loop_seconds": loop_seconds,
                "batched_seconds": batched_seconds,
                "speedup": loop_seconds / batched_seconds,
                "max_relative_deviation": deviation,
            }
        )

    return {
        "benchmark": "batched_solve",
        "backend": target.backend.name,
        "device": target.backend.device,
        "dtype": target.dtype_name,
        "grid": {
            "n_angles": config.angle_grid.n_points,
            "n_delays": config.delay_grid.n_points,
            "rows": reference.shape[0],
            "columns": reference.shape[1],
        },
        "iterations": int(max_iterations),
        "repeats": int(repeats),
        "snr_db": float(snr_db),
        "seed": int(seed),
        "parity_tolerance": float(parity_tolerance),
        "batches": rows,
        "max_batch_speedup": rows[-1]["speedup"],
    }
