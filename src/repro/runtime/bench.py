"""The joint-solve microbenchmark: dense GEMM vs Kronecker operator.

One self-contained measurement shared by the ``roarray bench`` CLI
subcommand and the CI benchmark smoke job (which writes the result to
``BENCH_joint_solve.json`` so the perf trajectory accumulates per
commit): time the default-config Eq. 18 FISTA solve with the dense
Eq. 16 dictionary against the structured
:class:`~repro.optim.operators.KroneckerJointOperator` path, on the
same measurement, with the same step size and a pinned iteration count
so the two paths do identical algorithmic work.
"""

from __future__ import annotations

import time

import numpy as np


def joint_solve_benchmark(
    *,
    snr_db: float = 12.0,
    seed: int = 2017,
    repeats: int = 3,
    max_iterations: int | None = None,
) -> dict:
    """Measure the dense vs operator joint solve at the evaluation config.

    Returns a JSON-ready dict with the grid size, pinned iteration
    count, best-of-``repeats`` wall times for both paths, their speedup,
    and the relative spectrum disagreement (which must be at rounding
    level — the operator is the *same* matrix, applied factored).
    """
    from repro.channel.csi import CsiSynthesizer
    from repro.channel.impairments import ImpairmentModel
    from repro.channel.paths import random_profile
    from repro.core.joint import coefficients_to_joint_power
    from repro.core.pipeline import RoArrayEstimator
    from repro.core.steering import vectorize_csi_matrix
    from repro.experiments.runner import evaluation_roarray_config
    from repro.optim import solve_lasso_fista
    from repro.optim.tuning import residual_kappa

    estimator = RoArrayEstimator(config=evaluation_roarray_config())
    cache = estimator.cache
    config = estimator.config
    if max_iterations is None:
        max_iterations = config.max_iterations

    rng = np.random.default_rng(seed)
    profile = random_profile(rng, direct_aoa_deg=150.0)
    synthesizer = CsiSynthesizer(
        estimator.array, estimator.layout, ImpairmentModel(), seed=seed
    )
    trace = synthesizer.packets(profile, n_packets=1, snr_db=snr_db, rng=rng)
    y = vectorize_csi_matrix(trace.packet(0))

    operator = cache.joint_operator
    dense = cache.joint_dictionary
    lipschitz = cache.joint_lipschitz
    kappa = residual_kappa(operator, y, fraction=config.kappa_fraction)

    def run(matrix):
        # tolerance=0 pins the iteration count: both paths run exactly
        # max_iterations FISTA steps, so wall time compares pure matvec
        # cost, not convergence luck.
        return solve_lasso_fista(
            matrix, y, kappa,
            max_iterations=max_iterations, tolerance=0.0, lipschitz=lipschitz,
        )

    def best_time(matrix):
        best = float("inf")
        for _ in range(repeats):
            start = time.perf_counter()
            result = run(matrix)
            best = min(best, time.perf_counter() - start)
        return best, result

    dense_seconds, dense_result = best_time(dense)
    operator_seconds, operator_result = best_time(operator)

    n_angles, n_delays = config.angle_grid.n_points, config.delay_grid.n_points
    dense_power = coefficients_to_joint_power(dense_result.x, n_angles, n_delays)
    operator_power = coefficients_to_joint_power(operator_result.x, n_angles, n_delays)
    scale = float(dense_power.max(initial=0.0)) or 1.0
    max_relative_error = float(np.abs(dense_power - operator_power).max() / scale)

    return {
        "benchmark": "joint_solve",
        "grid": {
            "n_angles": n_angles,
            "n_delays": n_delays,
            "rows": operator.shape[0],
            "columns": operator.shape[1],
        },
        "iterations": int(max_iterations),
        "repeats": int(repeats),
        "snr_db": float(snr_db),
        "seed": int(seed),
        "dense_seconds": dense_seconds,
        "operator_seconds": operator_seconds,
        "speedup": dense_seconds / operator_seconds,
        "max_relative_spectrum_error": max_relative_error,
    }
