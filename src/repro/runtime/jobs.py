"""Job and estimator specifications for the batch runtime.

The worker-pool protocol is pickle-based, so everything that crosses a
process boundary lives here and is deliberately small:

* :class:`EstimatorSpec` — a compact, picklable *recipe* for a system.
  Shipping the recipe instead of a built estimator is what makes the
  per-worker one-time warmup possible: the worker initializer builds the
  estimator (and its :class:`~repro.core.steering.SteeringCache`) once
  per process, so the joint dictionary is never pickled and never built
  per trace.
* :class:`EvalJob` — one unit of work: a trace plus a stable identity.
* :class:`ExecutionPolicy` — the hardening knobs (validation gate,
  per-job timeout, bounded retries) every worker enforces locally, so
  the sequential and pooled paths behave identically.
* :class:`JobFailure` / :class:`JobOutcome` — what comes back.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.channel.array import UniformLinearArray
from repro.channel.ofdm import SubcarrierLayout
from repro.channel.trace import CsiTrace
from repro.core.config import RoArrayConfig
from repro.core.direct_path import ApAnalysis
from repro.exceptions import ConfigurationError


@dataclass(frozen=True)
class EstimatorSpec:
    """A picklable recipe that builds an AP estimation system.

    For ROArray the spec carries only the configuration (grids, solver
    tunables, hardware model) — each worker rebuilds the estimator and
    warms its steering cache locally.  For other systems (SpotFi,
    ArrayTrack, or any object implementing ``analyze(trace)``) the
    built instance itself is carried; those systems hold no large
    precomputed state, so pickling them whole is cheap.
    """

    kind: str = "roarray"
    config: RoArrayConfig | None = None
    array: UniformLinearArray | None = None
    layout: SubcarrierLayout | None = None
    system: object | None = None
    #: Warm-start intent carried across the process boundary: the flag
    #: (which may be set on the instance, not the config) and the frozen
    #: :class:`~repro.optim.warm.WarmStartState` seed every job resets
    #: to.  Both participate in the checkpoint config digest, so a warm
    #: journal can never be replayed into a cold run (or vice versa).
    warm_start: bool | None = None
    warm_seed: object | None = None

    def build(self):
        """Construct the system this spec describes."""
        if self.kind == "roarray":
            from repro.core.pipeline import RoArrayEstimator

            system = RoArrayEstimator(array=self.array, layout=self.layout, config=self.config)
            if self.warm_start is not None:
                system.warm_start = self.warm_start
            if self.warm_seed is not None:
                system.seed_warm_state(self.warm_seed)
            return system
        if self.kind == "instance":
            if self.system is None:
                raise ConfigurationError("EstimatorSpec(kind='instance') requires a system")
            return self.system
        raise ConfigurationError(f"unknown estimator spec kind {self.kind!r}")

    @classmethod
    def roarray(
        cls,
        config: RoArrayConfig | None = None,
        *,
        array: UniformLinearArray | None = None,
        layout: SubcarrierLayout | None = None,
    ) -> "EstimatorSpec":
        return cls(kind="roarray", config=config, array=array, layout=layout)

    @classmethod
    def for_system(cls, system) -> "EstimatorSpec":
        """Derive a spec from an already-built system.

        A :class:`~repro.core.pipeline.RoArrayEstimator` collapses to
        its configuration (workers rebuild the cache rather than
        unpickling megabytes of dictionary); anything else is wrapped
        as-is.
        """
        from repro.core.pipeline import RoArrayEstimator

        if isinstance(system, EstimatorSpec):
            return system
        if isinstance(system, RoArrayEstimator):
            return cls(
                kind="roarray",
                config=system.config,
                array=system.array,
                layout=system.layout,
                warm_start=bool(system.warm_start),
                warm_seed=system.warm_seed.copy() if system.warm_seed is not None else None,
            )
        if not hasattr(system, "analyze"):
            raise ConfigurationError(
                f"system {system!r} does not implement analyze(trace)"
            )
        return cls(kind="instance", system=system)


@dataclass(frozen=True)
class EvalJob:
    """One trace to evaluate, with a stable identity.

    Attributes
    ----------
    index:
        Position in the submitted batch; results are re-ordered by it,
        so output order never depends on scheduling.
    trace:
        The CSI trace to analyze.
    seed:
        A per-job seed derived as ``base_seed + index`` — a function of
        the job, never of the worker or chunk it lands on.  The three
        shipped systems are deterministic and ignore it, but any future
        stochastic stage must draw randomness from this seed (and only
        this seed) to preserve the runtime's determinism guarantee.
    """

    index: int
    trace: CsiTrace
    seed: int = 0


#: Failure taxonomy: how a job failed, independent of the exception type.
#: ``validation`` — the input gate rejected the trace; ``solver`` — the
#: sparse solve failed; ``timeout`` — the per-job deadline fired;
#: ``runtime`` — any other worker-side exception; ``crash`` — the worker
#: process died and the pool-respawn budget ran out.
FAILURE_KINDS = ("validation", "solver", "timeout", "runtime", "crash")

#: Kinds worth retrying: a timeout or an arbitrary runtime error may be
#: transient (contention, a flaky dependency), but a solver or
#: validation failure is a pure function of the trace and would fail
#: identically on every attempt.
RETRYABLE_KINDS = ("timeout", "runtime")


@dataclass(frozen=True)
class ExecutionPolicy:
    """Hardening knobs enforced where the job runs.

    The policy ships to every worker through the pool initializer and
    applies identically on the in-process sequential path, so enabling
    it never breaks the worker-count parity guarantee.

    Attributes
    ----------
    timeout_s:
        Per-job (per-attempt) wall-clock budget, enforced with a POSIX
        interval timer inside the worker.  ``None`` disables it.  Code
        stuck inside a C extension that never returns to the
        interpreter cannot be interrupted this way — the pool-crash
        recovery is the backstop for that.
    max_retries:
        Extra attempts for retryable failures (:data:`RETRYABLE_KINDS`).
        Deterministic: attempt *k* of a job is the same computation on
        every worker count, and the backoff schedule is a pure function
        of the attempt number.
    backoff_s:
        Sleep before retry *k* is ``backoff_s · 2^(k-1)``.
    validate:
        Run the CSI validation gate
        (:func:`repro.faults.validate.sanitize_trace`) before analysis:
        quarantine bad packets, fail the job with a ``validation``
        failure when nothing survives.  Off by default — the gate is a
        byte-identical no-op on clean traces, but leaving it opt-in
        keeps the default path's failure semantics unchanged.
    max_pool_respawns:
        Parent-side: how many times a crashed process pool is rebuilt
        before the still-unfinished jobs are tagged as ``crash``
        failures.
    """

    timeout_s: float | None = None
    max_retries: int = 0
    backoff_s: float = 0.0
    validate: bool = False
    max_pool_respawns: int = 2

    def __post_init__(self) -> None:
        if self.timeout_s is not None and self.timeout_s <= 0:
            raise ConfigurationError(f"timeout_s must be positive, got {self.timeout_s}")
        if self.max_retries < 0:
            raise ConfigurationError(f"max_retries must be >= 0, got {self.max_retries}")
        if self.backoff_s < 0:
            raise ConfigurationError(f"backoff_s must be >= 0, got {self.backoff_s}")
        if self.max_pool_respawns < 0:
            raise ConfigurationError(
                f"max_pool_respawns must be >= 0, got {self.max_pool_respawns}"
            )

    def backoff_for_attempt(self, attempt: int) -> float:
        """Deterministic exponential backoff before retry ``attempt`` (2-based)."""
        if self.backoff_s <= 0.0 or attempt <= 1:
            return 0.0
        return self.backoff_s * (2.0 ** (attempt - 2))


#: The default, fully permissive policy (no gate, no timeout, no retries).
DEFAULT_POLICY = ExecutionPolicy()


@dataclass(frozen=True)
class JobFailure:
    """A tagged record of a failed job.

    Workers convert failures into data instead of exceptions so one
    degenerate trace cannot poison the pool.  Besides the error type
    name and message, the failure carries its taxonomy ``kind`` (one of
    :data:`FAILURE_KINDS`), the worker-side ``traceback`` string (the
    exception object itself cannot cross the process boundary intact),
    and how many ``attempts`` were spent before giving up.
    """

    error_type: str
    message: str
    kind: str = "solver"
    traceback: str = ""
    attempts: int = 1

    def to_dict(self) -> dict:
        """JSON-ready view (round-trips through :meth:`from_dict`)."""
        return {
            "error_type": self.error_type,
            "message": self.message,
            "kind": self.kind,
            "traceback": self.traceback,
            "attempts": int(self.attempts),
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "JobFailure":
        return cls(
            error_type=str(payload["error_type"]),
            message=str(payload["message"]),
            kind=str(payload.get("kind", "solver")),
            traceback=str(payload.get("traceback", "")),
            attempts=int(payload.get("attempts", 1)),
        )


@dataclass
class JobOutcome:
    """The per-job result crossing back from a worker.

    Exactly one of ``analysis`` / ``failure`` is set.  ``stage_seconds``
    holds the per-stage wall times (``dictionary`` / ``solve`` /
    ``peaks``, plus the span-derived ``solver`` subtotal when tracing)
    the worker measured.  ``spans`` carries the job's serialized trace
    spans (plain dicts, see :meth:`repro.obs.Span.to_dict`) when the
    batch ran with tracing enabled — serialized rather than live so they
    survive the pickle trip back from worker processes; the parent
    re-homes them via :meth:`repro.obs.Tracer.adopt`.

    The hardening fields: ``attempts`` counts executions of this job
    (1 = first try succeeded), ``quarantined_packets`` how many packets
    the validation gate removed before analysis, and ``fallbacks`` any
    guardrail fallback events the estimator recorded during the job
    (see :meth:`repro.core.pipeline.RoArrayEstimator.drain_fallback_events`).
    """

    index: int
    analysis: ApAnalysis | None = None
    failure: JobFailure | None = None
    elapsed_s: float = 0.0
    stage_seconds: dict[str, float] = field(default_factory=dict)
    spans: list[dict] = field(default_factory=list)
    attempts: int = 1
    quarantined_packets: int = 0
    fallbacks: tuple[str, ...] = ()

    @property
    def ok(self) -> bool:
        return self.failure is None

    def to_dict(self) -> dict:
        """JSON-ready view — what the checkpoint journal stores per job.

        The analysis round-trips byte-exactly (floats via ``repr``), so
        a replayed outcome is indistinguishable from the recomputed one;
        the timing fields carry the *original* run's measurements, which
        is what lets a resumed :class:`~repro.runtime.report.RuntimeReport`
        merge observability totals across the kill/resume boundary.
        """
        analysis = self.analysis
        if analysis is not None and not hasattr(analysis, "to_dict"):
            raise ConfigurationError(
                f"analysis {type(analysis).__name__} is not checkpointable "
                "(no to_dict): run this system without a checkpoint"
            )
        return {
            "index": int(self.index),
            "analysis": None if analysis is None else analysis.to_dict(),
            "failure": None if self.failure is None else self.failure.to_dict(),
            "elapsed_s": float(self.elapsed_s),
            "stage_seconds": {k: float(v) for k, v in self.stage_seconds.items()},
            "spans": list(self.spans),
            "attempts": int(self.attempts),
            "quarantined_packets": int(self.quarantined_packets),
            "fallbacks": list(self.fallbacks),
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "JobOutcome":
        from repro.core.direct_path import ApAnalysis

        analysis = payload.get("analysis")
        failure = payload.get("failure")
        return cls(
            index=int(payload["index"]),
            analysis=None if analysis is None else ApAnalysis.from_dict(analysis),
            failure=None if failure is None else JobFailure.from_dict(failure),
            elapsed_s=float(payload.get("elapsed_s", 0.0)),
            stage_seconds=dict(payload.get("stage_seconds", {})),
            spans=list(payload.get("spans", [])),
            attempts=int(payload.get("attempts", 1)),
            quarantined_packets=int(payload.get("quarantined_packets", 0)),
            fallbacks=tuple(payload.get("fallbacks", ())),
        )
