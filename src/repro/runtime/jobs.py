"""Job and estimator specifications for the batch runtime.

The worker-pool protocol is pickle-based, so everything that crosses a
process boundary lives here and is deliberately small:

* :class:`EstimatorSpec` — a compact, picklable *recipe* for a system.
  Shipping the recipe instead of a built estimator is what makes the
  per-worker one-time warmup possible: the worker initializer builds the
  estimator (and its :class:`~repro.core.steering.SteeringCache`) once
  per process, so the joint dictionary is never pickled and never built
  per trace.
* :class:`EvalJob` — one unit of work: a trace plus a stable identity.
* :class:`JobFailure` / :class:`JobOutcome` — what comes back.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.channel.array import UniformLinearArray
from repro.channel.ofdm import SubcarrierLayout
from repro.channel.trace import CsiTrace
from repro.core.config import RoArrayConfig
from repro.core.direct_path import ApAnalysis
from repro.exceptions import ConfigurationError


@dataclass(frozen=True)
class EstimatorSpec:
    """A picklable recipe that builds an AP estimation system.

    For ROArray the spec carries only the configuration (grids, solver
    tunables, hardware model) — each worker rebuilds the estimator and
    warms its steering cache locally.  For other systems (SpotFi,
    ArrayTrack, or any object implementing ``analyze(trace)``) the
    built instance itself is carried; those systems hold no large
    precomputed state, so pickling them whole is cheap.
    """

    kind: str = "roarray"
    config: RoArrayConfig | None = None
    array: UniformLinearArray | None = None
    layout: SubcarrierLayout | None = None
    system: object | None = None

    def build(self):
        """Construct the system this spec describes."""
        if self.kind == "roarray":
            from repro.core.pipeline import RoArrayEstimator

            return RoArrayEstimator(array=self.array, layout=self.layout, config=self.config)
        if self.kind == "instance":
            if self.system is None:
                raise ConfigurationError("EstimatorSpec(kind='instance') requires a system")
            return self.system
        raise ConfigurationError(f"unknown estimator spec kind {self.kind!r}")

    @classmethod
    def roarray(
        cls,
        config: RoArrayConfig | None = None,
        *,
        array: UniformLinearArray | None = None,
        layout: SubcarrierLayout | None = None,
    ) -> "EstimatorSpec":
        return cls(kind="roarray", config=config, array=array, layout=layout)

    @classmethod
    def for_system(cls, system) -> "EstimatorSpec":
        """Derive a spec from an already-built system.

        A :class:`~repro.core.pipeline.RoArrayEstimator` collapses to
        its configuration (workers rebuild the cache rather than
        unpickling megabytes of dictionary); anything else is wrapped
        as-is.
        """
        from repro.core.pipeline import RoArrayEstimator

        if isinstance(system, EstimatorSpec):
            return system
        if isinstance(system, RoArrayEstimator):
            return cls(
                kind="roarray", config=system.config, array=system.array, layout=system.layout
            )
        if not hasattr(system, "analyze"):
            raise ConfigurationError(
                f"system {system!r} does not implement analyze(trace)"
            )
        return cls(kind="instance", system=system)


@dataclass(frozen=True)
class EvalJob:
    """One trace to evaluate, with a stable identity.

    Attributes
    ----------
    index:
        Position in the submitted batch; results are re-ordered by it,
        so output order never depends on scheduling.
    trace:
        The CSI trace to analyze.
    seed:
        A per-job seed derived as ``base_seed + index`` — a function of
        the job, never of the worker or chunk it lands on.  The three
        shipped systems are deterministic and ignore it, but any future
        stochastic stage must draw randomness from this seed (and only
        this seed) to preserve the runtime's determinism guarantee.
    """

    index: int
    trace: CsiTrace
    seed: int = 0


@dataclass(frozen=True)
class JobFailure:
    """A tagged record of a job that raised :class:`~repro.exceptions.SolverError`.

    Workers convert solver failures into data instead of exceptions so
    one degenerate trace cannot poison the pool; the error type name and
    message survive the trip back for diagnostics.
    """

    error_type: str
    message: str


@dataclass
class JobOutcome:
    """The per-job result crossing back from a worker.

    Exactly one of ``analysis`` / ``failure`` is set.  ``stage_seconds``
    holds the per-stage wall times (``dictionary`` / ``solve`` /
    ``peaks``, plus the span-derived ``solver`` subtotal when tracing)
    the worker measured.  ``spans`` carries the job's serialized trace
    spans (plain dicts, see :meth:`repro.obs.Span.to_dict`) when the
    batch ran with tracing enabled — serialized rather than live so they
    survive the pickle trip back from worker processes; the parent
    re-homes them via :meth:`repro.obs.Tracer.adopt`.
    """

    index: int
    analysis: ApAnalysis | None = None
    failure: JobFailure | None = None
    elapsed_s: float = 0.0
    stage_seconds: dict[str, float] = field(default_factory=dict)
    spans: list[dict] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return self.failure is None
