"""The CSI validation gate: classify defects, quarantine bad packets.

Real CSI extractors emit garbage — NaN bursts, zeroed RF chains, short
reads — and a single non-finite packet poisons the whole MMV fusion
solve (:func:`repro.core.fusion.fuse_packets` rejects the entire
batch).  :func:`sanitize_trace` sits in front of the estimator:

* **classify** every defect it finds (:class:`CsiDefect`, one of
  :data:`DEFECT_KINDS`),
* **quarantine** packets that are individually unusable (non-finite or
  zero-power) so the surviving packets still fuse,
* **raise** :class:`~repro.exceptions.ValidationError` only when the
  trace is unusable as a whole (wrong shape, empty, nothing left after
  quarantine).

The gate is a byte-identical no-op on clean input: when nothing needs
quarantining, the *same trace object* is returned — no copy, no
normalization — so enabling validation cannot change a clean result.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

import numpy as np

from repro.channel.trace import CsiTrace
from repro.exceptions import ValidationError

#: Defect taxonomy, in classification order.
DEFECT_KINDS = (
    "empty",
    "shape_mismatch",
    "non_finite",
    "zero_power_packet",
    "zero_power_antenna",
)


@dataclass(frozen=True)
class CsiDefect:
    """One classified defect.

    ``packet`` / ``antenna`` locate the defect when it is packet- or
    antenna-scoped; both are ``None`` for trace-level defects.
    """

    kind: str
    packet: int | None = None
    antenna: int | None = None
    detail: str = ""

    def to_dict(self) -> dict:
        return {
            "kind": self.kind,
            "packet": self.packet,
            "antenna": self.antenna,
            "detail": self.detail,
        }


@dataclass(frozen=True)
class ValidationReport:
    """What the gate found and did for one trace."""

    defects: tuple[CsiDefect, ...] = ()
    quarantined_packets: tuple[int, ...] = ()
    dead_antennas: tuple[int, ...] = ()

    @property
    def clean(self) -> bool:
        return not self.defects

    @property
    def n_quarantined(self) -> int:
        return len(self.quarantined_packets)

    def to_dict(self) -> dict:
        return {
            "defects": [d.to_dict() for d in self.defects],
            "quarantined_packets": list(self.quarantined_packets),
            "dead_antennas": list(self.dead_antennas),
        }


def classify_defects(
    trace: CsiTrace, *, expected_shape: tuple[int, int] | None = None
) -> list[CsiDefect]:
    """Classify every defect in ``trace`` without modifying anything.

    ``expected_shape`` is the estimator's ``(n_antennas,
    n_subcarriers)`` hardware model; when given, a mismatch is reported
    as the (unrecoverable) ``shape_mismatch`` defect.
    """
    defects: list[CsiDefect] = []
    if trace.n_packets == 0:
        defects.append(CsiDefect("empty", detail="trace has no packets"))
        return defects
    if expected_shape is not None and trace.csi.shape[1:] != tuple(expected_shape):
        defects.append(
            CsiDefect(
                "shape_mismatch",
                detail=f"per-packet shape {trace.csi.shape[1:]} != expected {tuple(expected_shape)}",
            )
        )
        return defects

    finite = np.isfinite(trace.csi.real) & np.isfinite(trace.csi.imag)
    packet_power = np.sum(np.abs(np.where(finite, trace.csi, 0.0)) ** 2, axis=(1, 2))
    for packet in range(trace.n_packets):
        if not finite[packet].all():
            n_bad = int(np.count_nonzero(~finite[packet]))
            defects.append(
                CsiDefect("non_finite", packet=packet, detail=f"{n_bad} non-finite entries")
            )
        elif packet_power[packet] == 0.0:
            defects.append(CsiDefect("zero_power_packet", packet=packet, detail="all-zero CSI"))

    usable = finite.all(axis=(1, 2)) & (packet_power > 0.0)
    if usable.any():
        antenna_power = np.sum(np.abs(trace.csi[usable]) ** 2, axis=(0, 2))
        for antenna in np.flatnonzero(antenna_power == 0.0):
            defects.append(
                CsiDefect(
                    "zero_power_antenna",
                    antenna=int(antenna),
                    detail="zero power on every usable packet",
                )
            )
    return defects


def sanitize_trace(
    trace: CsiTrace, *, expected_shape: tuple[int, int] | None = None
) -> tuple[CsiTrace, ValidationReport]:
    """Quarantine unusable packets; raise only when nothing survives.

    Returns ``(clean_trace, report)``.  On a defect-free trace the input
    object itself comes back (identity, not a copy) so the gate is a
    guaranteed no-op on clean data.

    Raises
    ------
    ValidationError
        For trace-level defects: empty trace, shape mismatch, or every
        packet quarantined.
    """
    defects = classify_defects(trace, expected_shape=expected_shape)
    fatal = [d for d in defects if d.kind in ("empty", "shape_mismatch")]
    if fatal:
        raise ValidationError(f"trace rejected: {fatal[0].kind} ({fatal[0].detail})")

    quarantined = tuple(sorted({d.packet for d in defects if d.packet is not None}))
    dead_antennas = tuple(d.antenna for d in defects if d.kind == "zero_power_antenna")
    report = ValidationReport(
        defects=tuple(defects), quarantined_packets=quarantined, dead_antennas=dead_antennas
    )
    if not quarantined:
        return trace, report
    if len(quarantined) == trace.n_packets:
        raise ValidationError(
            f"trace rejected: all {trace.n_packets} packets quarantined "
            f"({len(defects)} defects)"
        )

    keep = np.ones(trace.n_packets, dtype=bool)
    keep[list(quarantined)] = False
    delays = trace.detection_delays_s
    if delays.shape[0] == trace.n_packets:
        delays = delays[keep]
    times = trace.capture_times_s
    if times.shape[0] == trace.n_packets:
        times = times[keep]
    cleaned = replace(
        trace, csi=trace.csi[keep].copy(), detection_delays_s=delays, capture_times_s=times
    )
    return cleaned, report
