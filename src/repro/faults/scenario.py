"""Chaos scenarios: seeded compositions of fault injectors over APs.

A :class:`ChaosScenario` assigns injectors to APs (by index into the
per-location trace list) and applies them deterministically: each
``(scenario seed, salt, AP, fault position)`` tuple derives its own
:class:`numpy.random.Generator`, so

* the same scenario + seed reproduces the identical corrupted world
  byte-for-byte,
* faults on one AP never perturb the random stream of another, and
* per-location ``salt`` values decorrelate faults across locations
  while staying reproducible.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.channel.trace import CsiTrace
from repro.exceptions import FaultInjectionError
from repro.faults.injectors import (
    AntennaDropout,
    ApOutage,
    InjectedFault,
    ValueCorruption,
)


@dataclass(frozen=True)
class ApFault:
    """One injector aimed at one AP (index into the trace list)."""

    ap: int
    injector: object

    def __post_init__(self) -> None:
        if self.ap < 0:
            raise FaultInjectionError(f"ap index must be >= 0, got {self.ap}")
        if not hasattr(self.injector, "apply"):
            raise FaultInjectionError(f"injector {self.injector!r} has no apply(trace, rng)")


@dataclass(frozen=True)
class InjectionRecord:
    """One applied fault, tagged with the AP it hit."""

    ap: int
    fault: InjectedFault

    def to_dict(self) -> dict:
        return {"ap": self.ap, **self.fault.to_dict()}


@dataclass(frozen=True)
class InjectionResult:
    """The corrupted world one scenario application produced.

    ``traces[i]`` is ``None`` where AP *i* suffered an outage; the
    ``injected`` log is the ground truth the failure taxonomy compares
    detected defects against.
    """

    traces: tuple[CsiTrace | None, ...]
    injected: tuple[InjectionRecord, ...]

    @property
    def surviving(self) -> tuple[int, ...]:
        return tuple(i for i, trace in enumerate(self.traces) if trace is not None)

    @property
    def dead(self) -> tuple[int, ...]:
        return tuple(i for i, trace in enumerate(self.traces) if trace is None)

    def to_dict(self) -> dict:
        return {
            "surviving_aps": list(self.surviving),
            "dead_aps": list(self.dead),
            "injected": [record.to_dict() for record in self.injected],
        }


@dataclass(frozen=True)
class ChaosScenario:
    """A named, seeded set of per-AP faults."""

    name: str = "chaos"
    faults: tuple[ApFault, ...] = ()
    seed: int = 0

    def apply(self, traces: list[CsiTrace], *, salt: int = 0) -> InjectionResult:
        """Inject every fault into its AP's trace; inputs are untouched."""
        current: list[CsiTrace | None] = list(traces)
        injected: list[InjectionRecord] = []
        for position, fault in enumerate(self.faults):
            if fault.ap >= len(current):
                raise FaultInjectionError(
                    f"fault targets AP {fault.ap} but only {len(current)} traces were given"
                )
            trace = current[fault.ap]
            if trace is None:
                continue  # already dark — nothing left to corrupt
            rng = np.random.default_rng([max(self.seed, 0), salt, fault.ap, position])
            faulted, faults = fault.injector.apply(trace, rng)
            current[fault.ap] = faulted
            injected.extend(InjectionRecord(ap=fault.ap, fault=f) for f in faults)
        return InjectionResult(traces=tuple(current), injected=tuple(injected))

    def describe(self) -> dict:
        """JSON-ready summary (what ``roarray chaos --json`` embeds)."""
        return {
            "name": self.name,
            "seed": self.seed,
            "faults": [
                {"ap": fault.ap, "injector": type(fault.injector).__name__}
                for fault in self.faults
            ],
        }


def demo_scenario(n_aps: int = 6, *, seed: int = 0, corrupt_fraction: float = 0.2) -> ChaosScenario:
    """The paper-style degradation demo: 2 dead APs, 1 crippled, dirty CSI.

    With ``n_aps`` APs, the scenario kills the last two, drops one
    antenna on the third-from-last, and poisons ``corrupt_fraction`` of
    every surviving AP's packets with NaNs — the acceptance scenario
    for graceful degradation.
    """
    if n_aps < 4:
        raise FaultInjectionError(f"demo scenario needs >= 4 APs, got {n_aps}")
    faults: list[ApFault] = [
        ApFault(ap=n_aps - 1, injector=ApOutage()),
        ApFault(ap=n_aps - 2, injector=ApOutage()),
        ApFault(ap=n_aps - 3, injector=AntennaDropout(n_antennas=1)),
    ]
    faults.extend(
        ApFault(ap=ap, injector=ValueCorruption(fraction=corrupt_fraction))
        for ap in range(n_aps - 2)
    )
    return ChaosScenario(name="demo", faults=tuple(faults), seed=seed)
