"""End-to-end chaos runs: inject faults, analyze, degrade gracefully.

:func:`run_chaos_experiment` is the acceptance harness for the
robustness substrate.  It synthesizes the standard classroom evaluation
world, applies a :class:`~repro.faults.scenario.ChaosScenario` to every
location's per-AP traces, pushes the corrupted traces through the
hardened batch runtime (validation gate on, solver guardrails on), and
localizes each location in degraded mode — producing a
:class:`~repro.core.localization.DegradedResult` per location instead
of an exception, alongside the clean-world reference fix for the same
scenes.

Determinism: trace synthesis, fault injection and analysis are all pure
functions of ``seed`` (injection additionally of the scenario's own
seed), so a rerun — at *any* worker count — is byte-identical.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

import numpy as np

from repro.channel.impairments import ImpairmentModel
from repro.core.config import RoArrayConfig
from repro.core.localization import ApObservation, DegradedResult, DroppedAp, localize_robust
from repro.exceptions import ConfigurationError, QuorumError
from repro.faults.scenario import ChaosScenario, InjectionResult, demo_scenario
from repro.obs import NULL_TRACER, MetricsRegistry
from repro.optim.guard import GuardrailPolicy
from repro.runtime.jobs import ExecutionPolicy
from repro.runtime.report import RuntimeReport


@dataclass(frozen=True)
class LocationOutcome:
    """One location's clean-vs-degraded comparison.

    ``fix`` is the degraded-mode result (``None`` only when the
    survivors fell below quorum, in which case ``quorum_failure`` holds
    the reason); ``clean_error_m`` / ``degraded_error_m`` are distances
    to the scene's ground-truth client position.
    """

    location: int
    clean_error_m: float
    fix: DegradedResult | None
    degraded_error_m: float | None
    quorum_failure: str | None
    injection: InjectionResult

    @property
    def located(self) -> bool:
        return self.fix is not None

    def to_dict(self) -> dict:
        return {
            "location": self.location,
            "clean_error_m": self.clean_error_m,
            "fix": self.fix.to_dict() if self.fix is not None else None,
            "degraded_error_m": self.degraded_error_m,
            "quorum_failure": self.quorum_failure,
            "injection": self.injection.to_dict(),
        }


@dataclass(frozen=True)
class ChaosResult:
    """Everything one chaos run produced."""

    scenario: dict
    band: str
    n_aps: int
    seed: int
    workers: int
    locations: tuple[LocationOutcome, ...]
    report: RuntimeReport
    metrics: dict

    @property
    def n_located(self) -> int:
        return sum(1 for outcome in self.locations if outcome.located)

    def degradation_rows(self) -> list[dict]:
        """Plain-dict rows for the markdown degradation table.

        Duck-typed on purpose: the reporting layer renders these without
        importing ``repro.faults``.
        """
        rows = []
        for outcome in self.locations:
            fix = outcome.fix
            rows.append(
                {
                    "location": outcome.location,
                    "clean_error_m": outcome.clean_error_m,
                    "degraded_error_m": outcome.degraded_error_m,
                    "confidence": fix.confidence if fix is not None else None,
                    "used_aps": list(fix.used_aps) if fix is not None else [],
                    "dropped_aps": [
                        f"{ap.name}: {ap.reason}" for ap in fix.dropped_aps
                    ]
                    if fix is not None
                    else [outcome.quorum_failure or "below quorum"],
                }
            )
        return rows

    def to_dict(self) -> dict:
        return {
            "scenario": self.scenario,
            "band": self.band,
            "n_aps": self.n_aps,
            "seed": self.seed,
            "workers": self.workers,
            "n_locations": len(self.locations),
            "n_located": self.n_located,
            "locations": [outcome.to_dict() for outcome in self.locations],
            "report": self.report.to_dict(),
            "metrics": self.metrics,
        }


def hardened_roarray_config(
    base: RoArrayConfig | None = None, *, guardrails: GuardrailPolicy | None = None
) -> RoArrayConfig:
    """The evaluation config with solver guardrails switched on."""
    from repro.experiments.runner import evaluation_roarray_config

    base = base if base is not None else evaluation_roarray_config()
    return replace(base, guardrails=guardrails if guardrails is not None else GuardrailPolicy())


def run_chaos_experiment(
    scenario: ChaosScenario | None = None,
    *,
    n_aps: int = 6,
    n_locations: int = 3,
    n_packets: int = 10,
    band: str = "medium",
    seed: int = 0,
    workers: int = 0,
    resolution_m: float = 0.1,
    min_quorum: int = 2,
    policy: ExecutionPolicy | None = None,
    config: RoArrayConfig | None = None,
    tracer=NULL_TRACER,
    metrics: MetricsRegistry | None = None,
    checkpoint_dir=None,
) -> ChaosResult:
    """Run one chaos scenario end-to-end and score the degradation.

    Each location gets a fresh random scene (the standard evaluation
    substrate); the scenario is applied per location with
    ``salt=location``, the surviving corrupted traces are analyzed
    through the hardened batch runtime, and every location is localized
    in degraded mode — dead APs, validation rejections, and solver
    failures all become :class:`~repro.core.localization.DroppedAp`
    records on the fix rather than exceptions.

    Parameters
    ----------
    scenario:
        The fault composition; defaults to
        :func:`~repro.faults.scenario.demo_scenario` (2 AP outages, one
        antenna dropout, 20% NaN-corrupted packets).
    policy:
        Hardening knobs for the faulted batch; defaults to the
        validation gate switched on (everything else off).  The gate is
        required — without it a NaN-poisoned trace fails the whole
        fusion solve instead of being quarantined.
    config:
        Estimator configuration; defaults to the evaluation working
        point with solver guardrails enabled
        (:func:`hardened_roarray_config`).
    metrics:
        Optional :class:`~repro.obs.MetricsRegistry`; chaos counters
        (injected / detected / dropped / located) are recorded there and
        the export embedded in the result.
    checkpoint_dir:
        Directory for durable journals: the clean batch checkpoints to
        ``chaos_clean.jsonl`` and the faulted batch to
        ``chaos_faulted.jsonl``.  A killed chaos run rerun with the same
        arguments resumes both batches and produces a byte-identical
        :class:`ChaosResult` (injection and localization are cheap,
        deterministic recomputations).
    """
    from repro.core.pipeline import RoArrayEstimator
    from repro.experiments.runner import _batch_analyses, _journal_policy, _scene_traces
    from repro.experiments.scenarios import SNR_BANDS, build_random_scene

    if n_locations < 1:
        raise ConfigurationError(f"n_locations must be >= 1, got {n_locations}")
    if band not in SNR_BANDS:
        raise ConfigurationError(f"band must be one of {sorted(SNR_BANDS)}, got {band!r}")
    scenario = scenario if scenario is not None else demo_scenario(n_aps, seed=seed)
    policy = policy if policy is not None else ExecutionPolicy(validate=True)
    config = config if config is not None else hardened_roarray_config()
    metrics = metrics if metrics is not None else MetricsRegistry()
    snr_band = SNR_BANDS[band]
    rng = np.random.default_rng(seed)

    with tracer.span(
        "experiment", name="chaos", scenario=scenario.name, n_locations=n_locations
    ):
        # --- Synthesis: the clean world, identical for any worker count. ----
        scenes = []
        clean_per_location = []
        with tracer.span("synthesis", n_locations=n_locations, n_aps=n_aps):
            for location in range(n_locations):
                scene = build_random_scene(rng, n_aps=n_aps)
                snrs = [snr_band.draw(rng) for _ in range(n_aps)]
                scenes.append(scene)
                clean_per_location.append(
                    _scene_traces(
                        scene,
                        snr_db_per_ap=snrs,
                        n_packets=n_packets,
                        impairments=ImpairmentModel(),
                        rng=rng,
                        boot_seed=seed * 20_000 + location * 100,
                    )
                )

        # --- Injection: corrupt every location's world deterministically. ---
        injections: list[InjectionResult] = []
        with tracer.span("injection", scenario=scenario.name):
            for location in range(n_locations):
                injection = scenario.apply(clean_per_location[location], salt=location)
                injections.append(injection)
                metrics.counter("chaos.faults_injected").inc(len(injection.injected))
                metrics.counter("chaos.aps_killed").inc(len(injection.dead))

        estimator = RoArrayEstimator(config=config)

        # --- Clean reference: the same scenes without faults. ---------------
        with tracer.span("clean_batch"):
            clean_flat = [t for traces in clean_per_location for t in traces]
            clean_analyses = _batch_analyses(
                estimator,
                clean_flat,
                workers=workers,
                base_seed=seed,
                tracer=tracer,
                checkpoint=_journal_policy(
                    checkpoint_dir, "chaos_clean", "chaos:clean", metrics
                ),
            )

        # --- Faulted batch through the hardened runtime. ---------------------
        from repro.runtime.batch import BatchEvaluator

        keys: list[tuple[int, int]] = []  # flat index -> (location, ap)
        faulted_flat = []
        for location, injection in enumerate(injections):
            for ap in injection.surviving:
                keys.append((location, ap))
                faulted_flat.append(injection.traces[ap])
        evaluator = BatchEvaluator(
            estimator, workers=workers, base_seed=seed, policy=policy, tracer=tracer
        )
        with tracer.span("faulted_batch", n_jobs=len(faulted_flat)):
            batch = evaluator.evaluate(
                faulted_flat,
                checkpoint=_journal_policy(
                    checkpoint_dir, "chaos_faulted", "chaos:faulted", metrics
                ),
            )

        metrics.counter("chaos.jobs_total").inc(len(batch.outcomes))
        metrics.counter("chaos.jobs_failed").inc(batch.report.n_failures)
        metrics.counter("chaos.packets_quarantined").inc(
            batch.report.n_quarantined_packets
        )
        metrics.counter("chaos.solver_fallbacks").inc(batch.report.n_fallbacks)

        # --- Degraded-mode localization per location. ------------------------
        outcome_by_key = {key: batch.outcomes[i] for i, key in enumerate(keys)}
        locations: list[LocationOutcome] = []
        for location in range(n_locations):
            scene = scenes[location]
            injection = injections[location]
            clean_obs = [
                ApObservation(
                    access_point=scene.access_points[ap],
                    aoa_deg=clean_analyses[location * n_aps + ap].direct.aoa_deg,
                    rssi_dbm=clean_per_location[location][ap].rssi_dbm,
                )
                for ap in range(n_aps)
            ]
            clean_fix = localize_robust(
                clean_obs, scene.room, min_quorum=min_quorum, resolution_m=resolution_m
            )

            observations = []
            dropped = [
                DroppedAp(name=scene.access_points[ap].name, reason="AP outage (no trace)")
                for ap in injection.dead
            ]
            for ap in injection.surviving:
                outcome = outcome_by_key[(location, ap)]
                if outcome.ok:
                    observations.append(
                        ApObservation(
                            access_point=scene.access_points[ap],
                            aoa_deg=outcome.analysis.direct.aoa_deg,
                            rssi_dbm=injection.traces[ap].rssi_dbm,
                        )
                    )
                else:
                    dropped.append(
                        DroppedAp(
                            name=scene.access_points[ap].name,
                            reason=f"{outcome.failure.kind}: {outcome.failure.message}",
                        )
                    )
            metrics.counter("chaos.aps_dropped").inc(len(dropped))

            fix: DegradedResult | None
            degraded_error: float | None
            quorum_failure: str | None = None
            try:
                fix = localize_robust(
                    observations,
                    scene.room,
                    dropped=dropped,
                    min_quorum=min_quorum,
                    resolution_m=resolution_m,
                )
                degraded_error = fix.error_to(scene.client)
                metrics.counter("chaos.locations_located").inc()
                metrics.histogram("chaos.confidence").observe(fix.confidence)
            except QuorumError as error:
                fix, degraded_error, quorum_failure = None, None, str(error)
                metrics.counter("chaos.locations_below_quorum").inc()
            locations.append(
                LocationOutcome(
                    location=location,
                    clean_error_m=clean_fix.error_to(scene.client),
                    fix=fix,
                    degraded_error_m=degraded_error,
                    quorum_failure=quorum_failure,
                    injection=injection,
                )
            )

    return ChaosResult(
        scenario=scenario.describe(),
        band=band,
        n_aps=n_aps,
        seed=seed,
        workers=workers,
        locations=tuple(locations),
        report=batch.report,
        metrics=metrics.to_dict(),
    )
