"""Deterministic, seeded CSI fault injectors.

Each injector is a small frozen dataclass with one method,

    apply(trace, rng) -> (faulted_trace, [InjectedFault, ...])

that returns a *new* :class:`~repro.channel.trace.CsiTrace` (inputs are
never mutated) plus a structured record of what was injected.  All
randomness is drawn from the ``rng`` argument and nothing else, so a
scenario that hands each injector a seeded generator reproduces the
same corrupted world byte-for-byte — and every estimator sees identical
faults because injection happens at the trace level, before any
analysis.

The catalogue mirrors the failure modes of a real deployment:

* :class:`AntennaDropout` — dead RF chains; turns the ULA into a sparse
  array geometry (cf. Fischer et al., arXiv:2406.09001).
* :class:`SubcarrierNulling` — OFDM bins lost to interference.
* :class:`PacketLoss` / :class:`PacketDuplication` — transport faults.
* :class:`PhaseGlitch` — per-packet PLL slips (random constant phase
  jumps per antenna).
* :class:`ValueCorruption` — NaN/Inf entries from a buggy extractor.
* :class:`SnrCollapse` — sudden interference bursts.
* :class:`ApOutage` — the whole AP goes dark (handled by scenarios:
  ``apply`` returns ``None`` in place of a trace).
* :class:`NlosBias` — a blocked line-of-sight: the measurement-domain
  arrival geometry rotates so the AP reports a consistently wrong AoA,
  with diffuse scatter smearing the spectrum.
* :class:`GhostPath` — a strong early reflection that hijacks the
  smallest-ToA direct-path selection rule.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Sequence

import numpy as np

from repro.channel.constants import INTEL5300_SUBCARRIER_SPACING
from repro.channel.trace import CsiTrace
from repro.exceptions import FaultInjectionError


@dataclass(frozen=True)
class InjectedFault:
    """One injected fault, as ground truth for the failure taxonomy."""

    kind: str
    detail: str = ""

    def to_dict(self) -> dict:
        return {"kind": self.kind, "detail": self.detail}


def _with_csi(trace: CsiTrace, csi: np.ndarray, detection_delays_s: np.ndarray | None = None) -> CsiTrace:
    """A copy of ``trace`` with new CSI (and optionally new delays)."""
    return replace(
        trace,
        csi=csi,
        detection_delays_s=(
            trace.detection_delays_s if detection_delays_s is None else detection_delays_s
        ),
    )


def _check_fraction(name: str, value: float, *, closed_top: bool = True) -> None:
    top_ok = value <= 1.0 if closed_top else value < 1.0
    if not (0.0 <= value and top_ok):
        raise FaultInjectionError(f"{name} must be a fraction in [0, 1], got {value}")


@dataclass(frozen=True)
class AntennaDropout:
    """Zero out whole RF chains across every packet.

    ``antennas`` pins the victims; otherwise ``n_antennas`` of them are
    drawn from ``rng``.  At least one antenna always survives.
    """

    n_antennas: int = 1
    antennas: tuple[int, ...] | None = None

    kind = "antenna_dropout"

    def __post_init__(self) -> None:
        if self.n_antennas < 1:
            raise FaultInjectionError(f"n_antennas must be >= 1, got {self.n_antennas}")

    def apply(self, trace: CsiTrace, rng: np.random.Generator) -> tuple[CsiTrace, list[InjectedFault]]:
        if self.antennas is not None:
            victims = sorted(set(self.antennas))
        else:
            n = min(self.n_antennas, trace.n_antennas - 1)
            victims = sorted(rng.choice(trace.n_antennas, size=n, replace=False).tolist())
        if any(not 0 <= a < trace.n_antennas for a in victims):
            raise FaultInjectionError(
                f"antenna index out of range for {trace.n_antennas}-antenna trace: {victims}"
            )
        if len(victims) >= trace.n_antennas:
            raise FaultInjectionError("antenna dropout must leave at least one antenna alive")
        csi = trace.csi.copy()
        csi[:, victims, :] = 0.0
        faults = [InjectedFault(self.kind, f"antennas {victims}")]
        return _with_csi(trace, csi), faults


@dataclass(frozen=True)
class SubcarrierNulling:
    """Zero a random fraction of OFDM subcarriers on every packet."""

    fraction: float = 0.1

    kind = "subcarrier_null"

    def __post_init__(self) -> None:
        _check_fraction("fraction", self.fraction, closed_top=False)

    def apply(self, trace: CsiTrace, rng: np.random.Generator) -> tuple[CsiTrace, list[InjectedFault]]:
        n = int(round(self.fraction * trace.n_subcarriers))
        if n == 0:
            return trace, []
        n = min(n, trace.n_subcarriers - 1)
        victims = sorted(rng.choice(trace.n_subcarriers, size=n, replace=False).tolist())
        csi = trace.csi.copy()
        csi[:, :, victims] = 0.0
        return _with_csi(trace, csi), [InjectedFault(self.kind, f"subcarriers {victims}")]


@dataclass(frozen=True)
class PacketLoss:
    """Drop each packet independently with the given probability.

    At least one packet always survives (a link with zero delivered
    packets is an :class:`ApOutage`, not packet loss).
    """

    probability: float = 0.2

    kind = "packet_loss"

    def __post_init__(self) -> None:
        _check_fraction("probability", self.probability)

    def apply(self, trace: CsiTrace, rng: np.random.Generator) -> tuple[CsiTrace, list[InjectedFault]]:
        dropped = rng.random(trace.n_packets) < self.probability
        if dropped.all():
            dropped[int(rng.integers(trace.n_packets))] = False
        if not dropped.any():
            return trace, []
        keep = ~dropped
        delays = trace.detection_delays_s
        if delays.shape[0] == trace.n_packets:
            delays = delays[keep]
        faults = [InjectedFault(self.kind, f"dropped packets {np.flatnonzero(dropped).tolist()}")]
        return _with_csi(trace, trace.csi[keep].copy(), delays), faults


@dataclass(frozen=True)
class PacketDuplication:
    """Duplicate each packet independently with the given probability.

    The copy lands immediately after the original, the way a retransmit
    shows up in a capture.
    """

    probability: float = 0.2

    kind = "packet_duplication"

    def __post_init__(self) -> None:
        _check_fraction("probability", self.probability)

    def apply(self, trace: CsiTrace, rng: np.random.Generator) -> tuple[CsiTrace, list[InjectedFault]]:
        duplicated = rng.random(trace.n_packets) < self.probability
        if not duplicated.any():
            return trace, []
        order = []
        for index in range(trace.n_packets):
            order.append(index)
            if duplicated[index]:
                order.append(index)
        delays = trace.detection_delays_s
        if delays.shape[0] == trace.n_packets:
            delays = delays[order]
        faults = [
            InjectedFault(self.kind, f"duplicated packets {np.flatnonzero(duplicated).tolist()}")
        ]
        return _with_csi(trace, trace.csi[order].copy(), delays), faults


@dataclass(frozen=True)
class PhaseGlitch:
    """Per-packet PLL slip: a random constant phase jump per antenna."""

    probability: float = 0.2
    max_jump_rad: float = float(np.pi)

    kind = "phase_glitch"

    def __post_init__(self) -> None:
        _check_fraction("probability", self.probability)
        if self.max_jump_rad <= 0:
            raise FaultInjectionError(f"max_jump_rad must be positive, got {self.max_jump_rad}")

    def apply(self, trace: CsiTrace, rng: np.random.Generator) -> tuple[CsiTrace, list[InjectedFault]]:
        glitched = rng.random(trace.n_packets) < self.probability
        jumps = rng.uniform(-self.max_jump_rad, self.max_jump_rad, size=(trace.n_packets, trace.n_antennas))
        if not glitched.any():
            return trace, []
        csi = trace.csi.copy()
        for index in np.flatnonzero(glitched):
            csi[index] *= np.exp(1j * jumps[index])[:, None]
        faults = [InjectedFault(self.kind, f"glitched packets {np.flatnonzero(glitched).tolist()}")]
        return _with_csi(trace, csi), faults


@dataclass(frozen=True)
class ValueCorruption:
    """Poison a fraction of packets with non-finite CSI entries.

    Each selected packet gets ``entries_per_packet`` random elements
    overwritten with NaN (``mode="nan"``) or +Inf (``mode="inf"``) —
    the classic symptom of a buggy CSI extractor.  The validation gate
    is expected to quarantine exactly these packets.
    """

    fraction: float = 0.2
    entries_per_packet: int = 1
    mode: str = "nan"

    kind = "value_corruption"

    def __post_init__(self) -> None:
        _check_fraction("fraction", self.fraction)
        if self.entries_per_packet < 1:
            raise FaultInjectionError(
                f"entries_per_packet must be >= 1, got {self.entries_per_packet}"
            )
        if self.mode not in ("nan", "inf"):
            raise FaultInjectionError(f"mode must be 'nan' or 'inf', got {self.mode!r}")

    def apply(self, trace: CsiTrace, rng: np.random.Generator) -> tuple[CsiTrace, list[InjectedFault]]:
        n_poisoned = int(round(self.fraction * trace.n_packets))
        if n_poisoned == 0:
            return trace, []
        n_poisoned = min(n_poisoned, trace.n_packets)
        victims = sorted(rng.choice(trace.n_packets, size=n_poisoned, replace=False).tolist())
        poison = complex("nan") if self.mode == "nan" else complex("inf")
        per_packet = trace.n_antennas * trace.n_subcarriers
        csi = trace.csi.copy()
        for packet in victims:
            flat = csi[packet].reshape(-1)
            entries = rng.choice(per_packet, size=min(self.entries_per_packet, per_packet), replace=False)
            flat[entries] = poison
        faults = [InjectedFault(self.kind, f"{self.mode} in packets {victims}")]
        return _with_csi(trace, csi), faults


@dataclass(frozen=True)
class SnrCollapse:
    """Interference burst: add noise to cut the link SNR by ``drop_db``."""

    drop_db: float = 10.0

    kind = "snr_collapse"

    def __post_init__(self) -> None:
        if self.drop_db <= 0:
            raise FaultInjectionError(f"drop_db must be positive, got {self.drop_db}")

    def apply(self, trace: CsiTrace, rng: np.random.Generator) -> tuple[CsiTrace, list[InjectedFault]]:
        signal_power = float(np.mean(np.abs(trace.csi) ** 2))
        if signal_power == 0.0:
            return trace, []
        # Noise power chosen so signal/noise lands drop_db below the
        # trace's recorded SNR (the added burst dominates the original
        # noise floor for any meaningful drop).
        target_snr_db = trace.snr_db - self.drop_db
        noise_power = signal_power / (10.0 ** (target_snr_db / 10.0))
        scale = np.sqrt(noise_power / 2.0)
        noise = scale * (
            rng.standard_normal(trace.csi.shape) + 1j * rng.standard_normal(trace.csi.shape)
        )
        faulted = _with_csi(trace, trace.csi + noise)
        faulted = replace(faulted, snr_db=float(target_snr_db))
        return faulted, [InjectedFault(self.kind, f"-{self.drop_db:g} dB")]


@dataclass(frozen=True)
class ApOutage:
    """The AP goes dark: no trace is delivered at all.

    Scenarios interpret the ``None`` trace as a missing AP; the
    degraded-mode localizer then re-weights over the survivors.
    """

    kind = "ap_outage"

    def apply(self, trace: CsiTrace, rng: np.random.Generator) -> tuple[None, list[InjectedFault]]:
        return None, [InjectedFault(self.kind, "no trace delivered")]


def _steering(n_antennas: int, spacing_wavelengths: float, aoa_deg: float) -> np.ndarray:
    """ULA steering vector with spacing expressed in wavelengths."""
    factor = np.exp(-2j * np.pi * spacing_wavelengths * np.cos(np.deg2rad(aoa_deg)))
    return factor ** np.arange(n_antennas)


def _delay_ramp(n_subcarriers: int, spacing_hz: float, toa_s: float) -> np.ndarray:
    """Per-subcarrier phase ramp [1, Γ, …, Γ^{L−1}] for one delay."""
    factor = np.exp(-2j * np.pi * spacing_hz * toa_s)
    return factor ** np.arange(n_subcarriers)


def _require_direct_aoa(trace: CsiTrace, kind: str) -> float:
    aoa = trace.direct_aoa_deg
    if not np.isfinite(aoa):
        raise FaultInjectionError(
            f"{kind} needs direct_aoa_deg ground truth; trace has none"
        )
    return float(aoa)


@dataclass(frozen=True)
class NlosBias:
    """Blocked line-of-sight: the arrival geometry rotates by ``bias_deg``.

    When an obstacle blocks the LoS path, the energy that reaches the
    array comes via a reflection — every arrival shifts coherently to
    the reflector's bearing.  The injector models this in the
    measurement domain: each antenna ``i`` is multiplied by
    ``exp(−j·2π·d/λ·Δu·i)`` with ``Δu = cos(θ₀+bias) − cos(θ₀)``, which
    moves the direct path's apparent AoA from θ₀ to θ₀+bias while
    preserving per-packet noise and impairments.  On top of the
    rotation, ``n_scatter`` weak diffuse paths (rough-surface
    scattering around the reflected bearing, at longer delays) smear
    the spectrum — the dispersion signature the trust scorer keys on.

    Ground-truth fields (``direct_aoa_deg``, true positions) are left
    untouched: the client did not move, the measurement is simply
    wrong.  That is exactly what makes this the adversarial case for
    consensus localization — a single AP reporting a clean-looking,
    confidently wrong angle.
    """

    bias_deg: float = 15.0
    n_scatter: int = 3
    scatter_amplitude: float = 0.35
    scatter_spread_deg: float = 25.0
    scatter_delay_spread_s: float = 60e-9
    spacing_wavelengths: float = 0.5
    subcarrier_spacing_hz: float = INTEL5300_SUBCARRIER_SPACING

    kind = "nlos_bias"

    def __post_init__(self) -> None:
        if self.bias_deg == 0.0 or not np.isfinite(self.bias_deg):
            raise FaultInjectionError(f"bias_deg must be finite and nonzero, got {self.bias_deg}")
        if self.n_scatter < 0:
            raise FaultInjectionError(f"n_scatter must be >= 0, got {self.n_scatter}")
        if self.scatter_amplitude < 0:
            raise FaultInjectionError(
                f"scatter_amplitude must be >= 0, got {self.scatter_amplitude}"
            )
        if not 0 < self.spacing_wavelengths <= 0.5:
            raise FaultInjectionError(
                f"spacing_wavelengths must be in (0, 0.5], got {self.spacing_wavelengths}"
            )

    def apply(self, trace: CsiTrace, rng: np.random.Generator) -> tuple[CsiTrace, list[InjectedFault]]:
        aoa = _require_direct_aoa(trace, self.kind)
        biased_aoa = float(np.clip(aoa + self.bias_deg, 0.0, 180.0))
        delta_u = np.cos(np.deg2rad(biased_aoa)) - np.cos(np.deg2rad(aoa))
        ramp = np.exp(
            -2j * np.pi * self.spacing_wavelengths * delta_u * np.arange(trace.n_antennas)
        )
        csi = trace.csi * ramp[None, :, None]

        if self.n_scatter > 0 and self.scatter_amplitude > 0:
            rms = float(np.sqrt(np.mean(np.abs(trace.csi) ** 2)))
            base_toa = trace.direct_toa_s if np.isfinite(trace.direct_toa_s) else 0.0
            scale = self.scatter_amplitude * rms / np.sqrt(self.n_scatter)
            for _ in range(self.n_scatter):
                angle = float(
                    np.clip(
                        biased_aoa + rng.uniform(-self.scatter_spread_deg, self.scatter_spread_deg),
                        0.0,
                        180.0,
                    )
                )
                toa = base_toa + rng.uniform(0.0, self.scatter_delay_spread_s)
                spatial = _steering(trace.n_antennas, self.spacing_wavelengths, angle)
                temporal = _delay_ramp(trace.n_subcarriers, self.subcarrier_spacing_hz, toa)
                # Per-packet fading phase: diffuse scatter decorrelates
                # packet to packet while the specular rotation stays fixed.
                phases = np.exp(1j * rng.uniform(0.0, 2.0 * np.pi, size=trace.n_packets))
                csi = csi + scale * phases[:, None, None] * np.outer(spatial, temporal)[None, :, :]

        faults = [
            InjectedFault(
                self.kind,
                f"aoa {aoa:.1f}° → {biased_aoa:.1f}° "
                f"({self.n_scatter} scatter paths @ {self.scatter_amplitude:g}×)",
            )
        ]
        return _with_csi(trace, csi), faults


@dataclass(frozen=True)
class GhostPath:
    """A strong multipath arrival engineered to impersonate the LoS path.

    Adds one coherent path at ``aoa_offset_deg`` away from the true
    direct bearing whose delay sits ``delay_offset_s`` relative to the
    true direct ToA.  With a *negative* offset the ghost arrives first,
    so the smallest-ToA direct-path selection rule picks it and the AP
    reports the ghost's bearing — the multipath analogue of
    :class:`NlosBias` that corrupts path *selection* instead of the
    whole geometry.  The ghost's phase decorrelates packet to packet
    (fading), which is what leaves the joint spectrum visibly
    two-lobed.
    """

    amplitude: float = 1.5
    aoa_offset_deg: float = 30.0
    delay_offset_s: float = -60e-9
    spacing_wavelengths: float = 0.5
    subcarrier_spacing_hz: float = INTEL5300_SUBCARRIER_SPACING

    kind = "ghost_path"

    def __post_init__(self) -> None:
        if self.amplitude <= 0 or not np.isfinite(self.amplitude):
            raise FaultInjectionError(f"amplitude must be positive, got {self.amplitude}")
        if self.aoa_offset_deg == 0.0 or not np.isfinite(self.aoa_offset_deg):
            raise FaultInjectionError(
                f"aoa_offset_deg must be finite and nonzero, got {self.aoa_offset_deg}"
            )
        if not np.isfinite(self.delay_offset_s):
            raise FaultInjectionError(f"delay_offset_s must be finite, got {self.delay_offset_s}")
        if not 0 < self.spacing_wavelengths <= 0.5:
            raise FaultInjectionError(
                f"spacing_wavelengths must be in (0, 0.5], got {self.spacing_wavelengths}"
            )

    def apply(self, trace: CsiTrace, rng: np.random.Generator) -> tuple[CsiTrace, list[InjectedFault]]:
        aoa = _require_direct_aoa(trace, self.kind)
        ghost_aoa = float(np.clip(aoa + self.aoa_offset_deg, 0.0, 180.0))
        base_toa = trace.direct_toa_s if np.isfinite(trace.direct_toa_s) else 0.0
        ghost_toa = max(0.0, base_toa + self.delay_offset_s)

        rms = float(np.sqrt(np.mean(np.abs(trace.csi) ** 2)))
        spatial = _steering(trace.n_antennas, self.spacing_wavelengths, ghost_aoa)
        path = np.outer(
            spatial, _delay_ramp(trace.n_subcarriers, self.subcarrier_spacing_hz, ghost_toa)
        )
        phases = np.exp(1j * rng.uniform(0.0, 2.0 * np.pi, size=trace.n_packets))
        csi = trace.csi + self.amplitude * rms * phases[:, None, None] * path[None, :, :]

        faults = [
            InjectedFault(
                self.kind,
                f"ghost @ {ghost_aoa:.1f}°, τ {ghost_toa * 1e9:.0f} ns "
                f"({self.amplitude:g}× rms)",
            )
        ]
        return _with_csi(trace, csi), faults


#: Everything a scenario can compose, in catalogue order.
INJECTORS: tuple[type, ...] = (
    AntennaDropout,
    SubcarrierNulling,
    PacketLoss,
    PacketDuplication,
    PhaseGlitch,
    ValueCorruption,
    SnrCollapse,
    ApOutage,
    NlosBias,
    GhostPath,
)
