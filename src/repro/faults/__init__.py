"""Fault injection, CSI validation, and chaos experiments (``repro.faults``).

The robustness substrate, in three layers:

* :mod:`~repro.faults.injectors` — deterministic, seeded fault
  injectors at the CSI-trace level (antenna dropout, subcarrier
  nulling, packet loss/duplication, phase glitches, NaN/Inf corruption,
  SNR collapse, AP outage).
* :mod:`~repro.faults.validate` — the validation gate: classify CSI
  defects and quarantine unusable packets before they reach the
  estimator (a byte-identical no-op on clean traces).
* :mod:`~repro.faults.scenario` / :mod:`~repro.faults.chaos` — compose
  injectors into seeded chaos scenarios and run them end-to-end through
  the hardened batch runtime and degraded-mode localization
  (``roarray chaos``).
"""

from repro.faults.chaos import (
    ChaosResult,
    LocationOutcome,
    hardened_roarray_config,
    run_chaos_experiment,
)
from repro.faults.nlos import (
    NLOS_SCENARIOS,
    NlosDrillResult,
    NlosSuiteResult,
    NlosTrialOutcome,
    nlos_scenario,
    robust_ap_evidence,
    run_nlos_drill,
    run_nlos_suite,
)
from repro.faults.injectors import (
    INJECTORS,
    AntennaDropout,
    ApOutage,
    GhostPath,
    InjectedFault,
    NlosBias,
    PacketDuplication,
    PacketLoss,
    PhaseGlitch,
    SnrCollapse,
    SubcarrierNulling,
    ValueCorruption,
)
from repro.faults.scenario import (
    ApFault,
    ChaosScenario,
    InjectionRecord,
    InjectionResult,
    demo_scenario,
)
from repro.faults.validate import (
    DEFECT_KINDS,
    CsiDefect,
    ValidationReport,
    classify_defects,
    sanitize_trace,
)

__all__ = [
    "DEFECT_KINDS",
    "INJECTORS",
    "NLOS_SCENARIOS",
    "NlosDrillResult",
    "NlosSuiteResult",
    "NlosTrialOutcome",
    "AntennaDropout",
    "ApFault",
    "ApOutage",
    "ChaosResult",
    "ChaosScenario",
    "CsiDefect",
    "GhostPath",
    "InjectedFault",
    "NlosBias",
    "InjectionRecord",
    "InjectionResult",
    "LocationOutcome",
    "PacketDuplication",
    "PacketLoss",
    "PhaseGlitch",
    "SnrCollapse",
    "SubcarrierNulling",
    "ValidationReport",
    "ValueCorruption",
    "classify_defects",
    "demo_scenario",
    "hardened_roarray_config",
    "nlos_scenario",
    "robust_ap_evidence",
    "run_chaos_experiment",
    "run_nlos_drill",
    "run_nlos_suite",
    "sanitize_trace",
]
