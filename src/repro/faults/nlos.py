"""NLOS chaos drills: measurement-domain corruption vs. AP consensus.

The injectors in :mod:`repro.faults.injectors` cover faults that make a
trace *visibly* broken — NaN entries, dead antennas, collapsed SNR.
:class:`~repro.faults.injectors.NlosBias` and
:class:`~repro.faults.injectors.GhostPath` are different in kind: the
corrupted trace is perfectly healthy CSI that estimates to a clean,
confidently *wrong* angle.  No validation gate can catch it; only
cross-AP consensus can.

This module is the acceptance harness for that layer.  Each drill runs
the full chain — synthesize the classroom world, corrupt selected APs
in the measurement domain, analyze every trace through the hardened
batch runtime, probe each AP with the outlier-augmented robust solver
for corruption evidence, and localize with
:func:`~repro.core.localization.localize_consensus` — and asserts both
*detection* (the corrupted AP's trust collapses) and *bounded error*
(the consensus fix stays close to the clean-world fix).

Drills:

* ``nlos_single_ap`` — one of four APs reports an AoA biased by ≥ 15°;
  the victim rotates across trials.  Pass: the victim is flagged
  (trust < threshold) in ≥ 90% of trials AND the median consensus
  error is ≤ 1.3× the clean median.
* ``nlos_majority`` — three of four APs are biased the same way; no
  quorum of honest APs exists.  Pass: the fix is marked
  ``contaminated`` in ≥ 70% of trials (the system must not claim
  confidence it does not have).
* ``ghost_multipath`` — a strong early reflection hijacks the
  smallest-ToA direct-path rule on one AP.  Pass: victim flagged in
  ≥ 70% of trials AND median consensus error ≤ 1.5× clean.

Determinism: synthesis, injection, analysis and the evidence probes
are all pure functions of ``seed``, so a drill rerun — at any worker
count, or resumed from its checkpoint journal — produces a
byte-identical scorecard.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.channel.impairments import ImpairmentModel
from repro.channel.trace import CsiTrace
from repro.core.config import RoArrayConfig
from repro.core.localization import (
    ApEvidence,
    ApObservation,
    ConsensusResult,
    localize_consensus,
    localize_robust,
    peak_dispersion,
)
from repro.core.steering import SteeringCache, vectorize_csi_matrix
from repro.exceptions import ConfigurationError, QuorumError
from repro.faults.injectors import GhostPath, NlosBias
from repro.faults.scenario import ApFault, ChaosScenario
from repro.obs import NULL_TRACER, MetricsRegistry
from repro.optim.robust import solve_robust_lasso
from repro.optim.tuning import residual_kappa

SCORECARD_VERSION = 1

#: Drill names, in catalogue order (``roarray chaos --scenario`` accepts these).
NLOS_SCENARIOS = ("nlos_single_ap", "nlos_majority", "ghost_multipath")


def robust_ap_evidence(
    cache: SteeringCache,
    trace: CsiTrace,
    *,
    kappa_fraction: float = 0.15,
    max_iterations: int = 150,
) -> ApEvidence:
    """Probe one AP's trace with the outlier-augmented solver.

    Solves the robust program ``min ‖y − [Ã|I][x;e]‖² + κ‖x‖₁ + λ‖e‖₁``
    on the first packet against the cached joint dictionary and distills
    the two measurement-domain corruption signatures
    :func:`~repro.core.localization.score_ap_trust` fuses:

    * ``outlier_fraction`` — the share of measurement energy the solver
      had to attribute to the outlier channel ``e`` rather than to any
      dictionary atom (corruption that is *not* explicable as a path);
    * ``peak_dispersion`` — how smeared the recovered angle spectrum is
      around its peak (diffuse NLOS scatter leaves no single clean lobe).

    A clean trace probes near (0, small); NLOS and ghost-path traces
    probe visibly above the trust scorer's evidence floors.
    """
    from repro.core.joint import coefficients_to_joint_power

    y = vectorize_csi_matrix(trace.packet(0))
    kappa = residual_kappa(cache.joint_operator, y, fraction=kappa_fraction)
    result = solve_robust_lasso(
        cache.joint_operator,
        y,
        kappa=kappa,
        max_iterations=max_iterations,
        lipschitz=cache.joint_lipschitz,
    )
    power = coefficients_to_joint_power(
        result.x, cache.angle_grid.n_points, cache.delay_grid.n_points
    )
    dispersion = peak_dispersion(cache.angle_grid.angles_deg, power.max(axis=1))
    return ApEvidence(
        outlier_fraction=min(1.0, result.outlier_fraction),
        peak_dispersion=dispersion,
    )


def nlos_scenario(
    name: str,
    *,
    n_aps: int,
    victims: tuple[int, ...],
    bias_deg: float = 18.0,
    seed: int = 0,
) -> ChaosScenario:
    """The per-trial fault composition for one drill."""
    if any(not 0 <= v < n_aps for v in victims):
        raise ConfigurationError(f"victim indices {victims} out of range for {n_aps} APs")
    if name == "ghost_multipath":
        faults = tuple(ApFault(ap=v, injector=GhostPath()) for v in victims)
    else:
        faults = tuple(
            ApFault(ap=v, injector=NlosBias(bias_deg=bias_deg)) for v in victims
        )
    return ChaosScenario(name=name, faults=faults, seed=seed)


@dataclass(frozen=True)
class NlosTrialOutcome:
    """One trial's clean/blind/consensus comparison."""

    trial: int
    victims: tuple[str, ...]
    clean_error_m: float
    blind_error_m: float
    consensus_error_m: float | None
    detected: bool
    false_flags: tuple[str, ...]
    contaminated: bool
    quorum_failure: str | None
    trust: dict[str, float]
    evidence: dict[str, dict]

    def to_dict(self) -> dict:
        return {
            "trial": self.trial,
            "victims": list(self.victims),
            "clean_error_m": self.clean_error_m,
            "blind_error_m": self.blind_error_m,
            "consensus_error_m": self.consensus_error_m,
            "detected": self.detected,
            "false_flags": list(self.false_flags),
            "contaminated": self.contaminated,
            "quorum_failure": self.quorum_failure,
            "trust": dict(self.trust),
            "evidence": dict(self.evidence),
        }


@dataclass
class NlosDrillResult:
    """One drill's verdict plus the evidence behind it."""

    name: str
    passed: bool
    criteria: dict
    trials: tuple[NlosTrialOutcome, ...]
    seed: int
    workers: int

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "passed": self.passed,
            "criteria": self.criteria,
            "seed": self.seed,
            "workers": self.workers,
            "trials": [trial.to_dict() for trial in self.trials],
        }


@dataclass
class NlosSuiteResult:
    """All drill results; renders the NLOS robustness scorecard."""

    drills: list[NlosDrillResult] = field(default_factory=list)

    @property
    def passed(self) -> bool:
        return all(drill.passed for drill in self.drills)

    @property
    def n_passed(self) -> int:
        return sum(1 for drill in self.drills if drill.passed)

    def scorecard(self) -> dict:
        return {
            "version": SCORECARD_VERSION,
            "passed": self.passed,
            "n_scenarios": len(self.drills),
            "n_passed": self.n_passed,
            "scenarios": [drill.to_dict() for drill in self.drills],
        }


def _drill_victims(name: str, trial: int, n_aps: int) -> tuple[int, ...]:
    """Which APs a trial corrupts; the victim set rotates with the trial."""
    if name == "nlos_majority":
        honest = trial % n_aps
        return tuple(ap for ap in range(n_aps) if ap != honest)
    return (trial % n_aps,)


def run_nlos_drill(
    name: str,
    *,
    n_trials: int = 10,
    n_aps: int = 4,
    n_packets: int = 4,
    bias_deg: float = 18.0,
    band: str = "high",
    seed: int = 0,
    workers: int = 0,
    resolution_m: float = 0.1,
    config: RoArrayConfig | None = None,
    tracer=NULL_TRACER,
    metrics: MetricsRegistry | None = None,
    checkpoint_dir=None,
) -> NlosDrillResult:
    """Run one NLOS drill end-to-end and score it.

    Mirrors :func:`repro.faults.chaos.run_chaos_experiment`'s
    determinism contract: synthesis and injection are pure functions of
    ``seed``; the clean and faulted analyses run through the batch
    runtime (worker-count independent, checkpointable to
    ``nlos_<name>_clean.jsonl`` / ``nlos_<name>_faulted.jsonl``); the
    evidence probes and consensus localization are deterministic
    post-processing.  A rerun at any worker count — or resumed from its
    journals — yields a byte-identical result.
    """
    from repro.core.pipeline import RoArrayEstimator
    from repro.experiments.runner import _batch_analyses, _journal_policy, _scene_traces
    from repro.experiments.scenarios import SNR_BANDS, build_random_scene
    from repro.faults.chaos import hardened_roarray_config

    if name not in NLOS_SCENARIOS:
        raise ConfigurationError(
            f"unknown NLOS scenario {name!r}; available: {list(NLOS_SCENARIOS)}"
        )
    if n_trials < 1:
        raise ConfigurationError(f"n_trials must be >= 1, got {n_trials}")
    if band not in SNR_BANDS:
        raise ConfigurationError(f"band must be one of {sorted(SNR_BANDS)}, got {band!r}")
    if bias_deg < 15.0:
        raise ConfigurationError(
            f"bias_deg must be >= 15 (the drill's detectability floor), got {bias_deg}"
        )
    config = config if config is not None else hardened_roarray_config()
    metrics = metrics if metrics is not None else MetricsRegistry()
    snr_band = SNR_BANDS[band]
    rng = np.random.default_rng(seed)

    with tracer.span("experiment", name=f"nlos:{name}", n_trials=n_trials):
        # --- Synthesis + injection: pure functions of the seed. -------------
        scenes, clean_per_trial, injections = [], [], []
        with tracer.span("synthesis", n_trials=n_trials, n_aps=n_aps):
            for trial in range(n_trials):
                scene = build_random_scene(rng, n_aps=n_aps)
                snrs = [snr_band.draw(rng) for _ in range(n_aps)]
                scenes.append(scene)
                clean_per_trial.append(
                    _scene_traces(
                        scene,
                        snr_db_per_ap=snrs,
                        n_packets=n_packets,
                        impairments=ImpairmentModel(),
                        rng=rng,
                        boot_seed=seed * 20_000 + trial * 100,
                    )
                )
        with tracer.span("injection", scenario=name):
            for trial in range(n_trials):
                scenario = nlos_scenario(
                    name,
                    n_aps=n_aps,
                    victims=_drill_victims(name, trial, n_aps),
                    bias_deg=bias_deg,
                    seed=seed,
                )
                injections.append(scenario.apply(clean_per_trial[trial], salt=trial))
                metrics.counter("nlos.faults_injected").inc(
                    len(injections[-1].injected)
                )

        # --- Analysis through the batch runtime (workers-parity safe). ------
        estimator = RoArrayEstimator(config=config)
        clean_flat = [t for traces in clean_per_trial for t in traces]
        faulted_flat = [
            injection.traces[ap]
            for injection in injections
            for ap in range(n_aps)
        ]
        with tracer.span("clean_batch", n_jobs=len(clean_flat)):
            clean_analyses = _batch_analyses(
                estimator,
                clean_flat,
                workers=workers,
                base_seed=seed,
                tracer=tracer,
                checkpoint=_journal_policy(
                    checkpoint_dir, f"nlos_{name}_clean", f"nlos:{name}:clean", metrics
                ),
            )
        with tracer.span("faulted_batch", n_jobs=len(faulted_flat)):
            faulted_analyses = _batch_analyses(
                estimator,
                faulted_flat,
                workers=workers,
                base_seed=seed,
                tracer=tracer,
                checkpoint=_journal_policy(
                    checkpoint_dir, f"nlos_{name}_faulted", f"nlos:{name}:faulted", metrics
                ),
            )

        # --- Evidence probes + consensus localization per trial. -------------
        trials: list[NlosTrialOutcome] = []
        for trial in range(n_trials):
            scene = scenes[trial]
            injection = injections[trial]
            victim_names = tuple(
                scene.access_points[ap].name
                for ap in _drill_victims(name, trial, n_aps)
            )
            clean_obs = [
                ApObservation(
                    access_point=scene.access_points[ap],
                    aoa_deg=clean_analyses[trial * n_aps + ap].direct.aoa_deg,
                    rssi_dbm=clean_per_trial[trial][ap].rssi_dbm,
                )
                for ap in range(n_aps)
            ]
            faulted_obs = [
                ApObservation(
                    access_point=scene.access_points[ap],
                    aoa_deg=faulted_analyses[trial * n_aps + ap].direct.aoa_deg,
                    rssi_dbm=injection.traces[ap].rssi_dbm,
                )
                for ap in range(n_aps)
            ]
            evidence = {
                scene.access_points[ap].name: robust_ap_evidence(
                    estimator.cache, injection.traces[ap]
                )
                for ap in range(n_aps)
            }

            clean_fix = localize_robust(clean_obs, scene.room, resolution_m=resolution_m)
            blind_fix = localize_robust(faulted_obs, scene.room, resolution_m=resolution_m)

            fix: ConsensusResult | None
            quorum_failure: str | None = None
            try:
                fix = localize_consensus(
                    faulted_obs,
                    scene.room,
                    evidence=evidence,
                    resolution_m=resolution_m,
                )
            except QuorumError as error:
                fix, quorum_failure = None, str(error)

            scores = {} if fix is None else {s.name: s for s in fix.trust_scores}
            trust = {name: score.trust for name, score in scores.items()}
            detected = fix is not None and all(
                not scores[name].trusted for name in victim_names
            )
            false_flags = tuple(
                s.name
                for s in scores.values()
                if not s.trusted and s.name not in victim_names
            )
            metrics.counter("nlos.trials").inc()
            if detected:
                metrics.counter("nlos.victims_flagged").inc()
            trials.append(
                NlosTrialOutcome(
                    trial=trial,
                    victims=victim_names,
                    clean_error_m=clean_fix.error_to(scene.client),
                    blind_error_m=blind_fix.error_to(scene.client),
                    consensus_error_m=(
                        None if fix is None else fix.error_to(scene.client)
                    ),
                    detected=detected,
                    false_flags=false_flags,
                    contaminated=fix.contaminated if fix is not None else True,
                    quorum_failure=quorum_failure,
                    trust={k: float(v) for k, v in trust.items()},
                    evidence={k: v.to_dict() for k, v in evidence.items()},
                )
            )

    passed, criteria = _score_drill(name, trials)
    return NlosDrillResult(
        name=name,
        passed=passed,
        criteria=criteria,
        trials=tuple(trials),
        seed=seed,
        workers=workers,
    )


def _score_drill(name: str, trials: list[NlosTrialOutcome]) -> tuple[bool, dict]:
    """The drill's pass criteria: detection AND bounded error."""
    clean_median = float(np.median([t.clean_error_m for t in trials]))
    consensus_errors = [
        t.consensus_error_m for t in trials if t.consensus_error_m is not None
    ]
    consensus_median = (
        float(np.median(consensus_errors)) if consensus_errors else float("inf")
    )
    blind_median = float(np.median([t.blind_error_m for t in trials]))
    detection_rate = float(np.mean([t.detected for t in trials]))
    contamination_rate = float(np.mean([t.contaminated for t in trials]))
    false_flag_rate = float(np.mean([len(t.false_flags) > 0 for t in trials]))

    # An absolute floor keeps the ratio criterion meaningful when the
    # clean world localizes to within a grid cell or two.
    error_floor_m = 0.3

    if name == "nlos_single_ap":
        error_bound = max(1.3 * clean_median, error_floor_m)
        checks = {
            "detection_rate >= 0.9": detection_rate >= 0.9,
            f"consensus_median <= {error_bound:.3f}": consensus_median <= error_bound,
        }
    elif name == "nlos_majority":
        checks = {"contamination_rate >= 0.7": contamination_rate >= 0.7}
    else:  # ghost_multipath
        error_bound = max(1.5 * clean_median, error_floor_m)
        checks = {
            "detection_rate >= 0.7": detection_rate >= 0.7,
            f"consensus_median <= {error_bound:.3f}": consensus_median <= error_bound,
        }

    criteria = {
        "clean_median_m": clean_median,
        "blind_median_m": blind_median,
        "consensus_median_m": consensus_median,
        "detection_rate": detection_rate,
        "contamination_rate": contamination_rate,
        "false_flag_rate": false_flag_rate,
        "checks": checks,
    }
    return all(checks.values()), criteria


def run_nlos_suite(
    *,
    scenarios=None,
    n_trials: int = 10,
    seed: int = 0,
    workers: int = 0,
    tracer=NULL_TRACER,
    checkpoint_dir=None,
    **drill_options,
) -> NlosSuiteResult:
    """Run the requested drills (default: all) into one scorecard."""
    names = list(scenarios) if scenarios is not None else list(NLOS_SCENARIOS)
    unknown = sorted(set(names) - set(NLOS_SCENARIOS))
    if unknown:
        raise ConfigurationError(
            f"unknown NLOS scenario(s) {unknown}; available: {list(NLOS_SCENARIOS)}"
        )
    result = NlosSuiteResult()
    for name in names:
        result.drills.append(
            run_nlos_drill(
                name,
                n_trials=n_trials,
                seed=seed,
                workers=workers,
                tracer=tracer,
                checkpoint_dir=checkpoint_dir,
                **drill_options,
            )
        )
    return result
