"""ROArray: robust indoor WiFi localization using sparse recovery.

This package is a from-scratch reproduction of

    Wei Gong and Jiangchuan Liu,
    "Robust Indoor Wireless Localization Using Sparse Recovery",
    IEEE ICDCS 2017.

It contains four layers, from bottom to top:

``repro.optim``
    Complex-valued sparse-recovery solvers (FISTA, ADMM, OMP and a
    joint-sparse MMV solver) used in place of the paper's MATLAB/CVX
    second-order cone programs.

``repro.channel``
    A synthetic WiFi CSI substrate: geometric multipath, uniform linear
    array phase model, Intel-5300-style OFDM subcarrier layout, and the
    hardware impairments (packet detection delay, per-boot phase offsets,
    polarization loss, AWGN) that the paper's testbed exhibits.

``repro.baselines``
    Faithful re-implementations of the systems the paper compares
    against: MUSIC, SpotFi and ArrayTrack.

``repro.core``
    ROArray itself: sparse AoA estimation, joint ToA&AoA estimation,
    multi-packet SVD fusion, smallest-ToA direct-path identification,
    phase calibration and RSSI-weighted multi-AP localization.

``repro.experiments``
    The evaluation harness reproducing every figure in the paper.
"""

from repro.version import __version__
from repro.exceptions import (
    CalibrationError,
    CheckpointError,
    ConfigurationError,
    DatasetError,
    FaultInjectionError,
    GeometryError,
    IngestError,
    JobTimeoutError,
    PoolCrashError,
    QuorumError,
    ReproError,
    ResumableInterrupt,
    SolverDivergenceError,
    SolverError,
    ValidationError,
)

__all__ = [
    "__version__",
    "CalibrationError",
    "CheckpointError",
    "ConfigurationError",
    "DatasetError",
    "FaultInjectionError",
    "GeometryError",
    "IngestError",
    "JobTimeoutError",
    "PoolCrashError",
    "QuorumError",
    "ReproError",
    "ResumableInterrupt",
    "SolverDivergenceError",
    "SolverError",
    "ValidationError",
]
