"""Command-line interface.

The subcommands cover the workflows a user has before writing code:

``roarray simulate``
    Synthesize a CSI trace for a random classroom link and save it as
    ``.npz`` (the :class:`~repro.channel.trace.CsiTrace` format).
``roarray analyze``
    Load a trace and run one of the three systems on it; prints the
    direct-path estimate and an ASCII AoA spectrum.
``roarray ingest``
    Pull real captures (Intel 5300 ``.dat``, SpotFi ``.mat``) through
    the preprocessing + validation pipeline, fit calibration, and write
    normalized ``.npz`` artifacts — optionally registering them as
    named datasets.
``roarray batch``
    Analyze many traces (or a synthetic sweep) through the parallel
    batch runtime; prints per-trace estimates and the
    :class:`~repro.runtime.report.RuntimeReport` summary.  ``--workers``
    changes throughput only — results are identical for any value.
    ``--localize`` additionally fuses dataset-backed traces into a
    position fix using the registry's AP geometry.
``roarray localize``
    Run one full multi-AP localization round end to end and print the
    fix against ground truth.
``roarray chaos``
    Inject a fault scenario (AP outages, antenna dropout, NaN-corrupted
    packets) into a multi-AP world and run it through the hardened
    runtime; prints the clean-vs-degraded localization table.
``roarray resume <dir>``
    Finish an interrupted ``--checkpoint`` run: reads the directory's
    manifest, reports percent-complete per journal, and re-dispatches
    the original command — journaled jobs replay, missing ones compute.
``roarray loadgen``
    Generate a streaming workload — many mobile clients walking a
    classroom, one CSI packet per AP per trajectory sample — and save
    it as one replayable ``.npz``.
``roarray serve``
    Replay a saved workload through the streaming localization service
    (:mod:`repro.serve`): micro-batched solves, warm starts, per-AP
    health, Kalman tracks.  Prints fix throughput, latency quantiles
    and the reject/drop taxonomies.
``roarray figures``
    List the paper's figures and the benchmark that regenerates each.
``roarray trace <command> ...``
    Run any other subcommand with tracing enabled and write the span
    tree to ``--trace-out`` (default ``trace.json``).

Every command that reads a trace (``analyze``, ``batch``, ``ingest``)
accepts one unified source grammar, resolved by
:func:`repro.io.open_trace`: a file path (``.npz`` / ``.dat`` /
``.mat``, format sniffed), a ``dataset://name`` registry reference, or
a ``synthetic://scenario?params`` spec (bare scenario names work too).
Band arguments (``localize``, ``chaos``, ``loadgen``) likewise accept
``synthetic://band/medium`` alongside the bare name.

Every subcommand that reports results accepts ``--json`` for
machine-readable output instead of the human-readable blocks.
All output goes through :mod:`repro.experiments.reporting.console`.

Also runnable as ``python -m repro.cli``.
"""

from __future__ import annotations

import argparse
import sys

import numpy as np

from repro.channel.array import UniformLinearArray
from repro.channel.csi import CsiSynthesizer
from repro.channel.impairments import ImpairmentModel
from repro.channel.ofdm import intel5300_layout
from repro.channel.paths import random_profile
from repro.channel.trace import CsiTrace
from repro.obs import NULL_TRACER


def _tracer_of(args: argparse.Namespace):
    """The tracer installed by ``roarray trace`` (null tracer otherwise)."""
    tracer = getattr(args, "tracer", None)
    return NULL_TRACER if tracer is None else tracer


def _build_system(name: str, tracer=NULL_TRACER):
    from repro.baselines.arraytrack import ArrayTrackEstimator
    from repro.baselines.spotfi import SpotFiEstimator
    from repro.core.pipeline import RoArrayEstimator

    if name == "roarray":
        return RoArrayEstimator(tracer=tracer)
    systems = {
        "spotfi": SpotFiEstimator,
        "arraytrack": ArrayTrackEstimator,
    }
    return systems[name]()


def _preprocess(trace: CsiTrace) -> CsiTrace:
    """Apply the format-appropriate default preprocessing stages."""
    from repro.io import default_stages, run_stages

    cleaned, _reports = run_stages(trace, default_stages(trace.source_format))
    return cleaned


def _band_arg(value: str) -> str:
    """argparse type for band options: bare name or synthetic:// spelling."""
    from repro.exceptions import IngestError
    from repro.io import scenario_band

    try:
        return scenario_band(value)
    except IngestError as error:
        raise argparse.ArgumentTypeError(str(error)) from None


def cmd_simulate(args: argparse.Namespace) -> int:
    from repro.experiments.reporting.console import emit

    rng = np.random.default_rng(args.seed)
    profile = random_profile(
        rng,
        n_paths=args.paths,
        direct_aoa_deg=args.aoa,
        direct_toa_s=30e-9,
    )
    if args.blockage_db > 0:
        profile = profile.with_direct_attenuation(args.blockage_db)
    synthesizer = CsiSynthesizer(
        UniformLinearArray(), intel5300_layout(), ImpairmentModel(), seed=args.seed
    )
    trace = synthesizer.packets(profile, n_packets=args.packets, snr_db=args.snr, rng=rng)
    trace.save(args.output)
    emit(
        f"wrote {args.output}: {trace.n_packets} packets, "
        f"{trace.n_antennas}×{trace.n_subcarriers} CSI, SNR {trace.snr_db:g} dB, "
        f"direct AoA {trace.direct_aoa_deg:g}°"
    )
    return 0


def cmd_analyze(args: argparse.Namespace) -> int:
    from repro.experiments.reporting.text import format_spectrum_ascii
    from repro.experiments.reporting.console import emit, emit_json

    from repro.io import open_trace

    tracer = _tracer_of(args)
    trace = open_trace(args.trace, registry=args.registry)
    if args.preprocess:
        trace = _preprocess(trace)
    system = _build_system(args.system, tracer)
    with tracer.span("analyze", system=system.name):
        analysis = system.analyze(trace)
    truth = None if np.isnan(trace.direct_aoa_deg) else float(trace.direct_aoa_deg)
    error = None if truth is None else abs(float(analysis.direct.aoa_deg) - truth)
    if args.json:
        emit_json(
            {
                "system": system.name,
                "trace": args.trace,
                "direct": {
                    "aoa_deg": float(analysis.direct.aoa_deg),
                    "toa_s": None if np.isnan(analysis.direct.toa_s) else float(analysis.direct.toa_s),
                    "n_paths": int(analysis.direct.n_paths),
                },
                "truth_aoa_deg": truth,
                "aoa_error_deg": error,
            }
        )
        return 0
    emit(f"system: {system.name}")
    emit(
        f"direct path: AoA {analysis.direct.aoa_deg:.1f}°"
        + ("" if np.isnan(analysis.direct.toa_s) else f", ToA {analysis.direct.toa_s * 1e9:.0f} ns")
        + f", {analysis.direct.n_paths} path(s) resolved"
    )
    if truth is not None:
        emit(f"ground truth: AoA {truth:.1f}° (error {error:.1f}°)")
    if hasattr(system, "aoa_spectrum"):
        emit("AoA spectrum:")
        emit(format_spectrum_ascii(system.aoa_spectrum(trace)))
    return 0


def cmd_ingest(args: argparse.Namespace) -> int:
    from repro.experiments.reporting.console import emit, emit_json
    from repro.io import DatasetRegistry, ingest_sources

    tracer = _tracer_of(args)
    registry = None
    if args.register_prefix is not None:
        registry = DatasetRegistry(args.registry)
    if args.checkpoint:
        from repro.runtime import write_manifest

        write_manifest(args.checkpoint, getattr(args, "argv", []))
    result = ingest_sources(
        args.sources,
        out_dir=args.out,
        calibrate=not args.no_calibrate,
        expected_shape=tuple(args.expect_shape) if args.expect_shape else None,
        registry=registry,
        register_prefix=args.register_prefix,
        overwrite=args.overwrite,
        checkpoint_dir=args.checkpoint,
        tracer=tracer,
    )
    if args.json:
        emit_json(result.to_dict())
        return 0 if result.ok else 1
    for record in result.records:
        if record.ok:
            line = (
                f"{record.n_packets} packets, "
                f"{record.n_antennas}×{record.n_subcarriers} [{record.source_format}]"
            )
            if record.snr_db is not None:
                line += f", SNR {record.snr_db:.1f} dB"
            if record.calibration is not None:
                spread = record.calibration["detection_delay_range_s"] * 1e9
                line += f", delay spread {spread:.1f} ns"
            if record.output_path:
                line += f" → {record.output_path}"
            if record.dataset:
                line += f" (dataset://{record.dataset})"
        else:
            line = f"FAILED [{record.error_kind or 'unknown'}] ({record.error})"
        emit(f"  {record.label:<28} {line}")
    if result.n_replayed:
        emit(f"{result.n_replayed} source(s) replayed from checkpoint", stream=sys.stderr)
    if result.n_failed:
        emit("failure summary:")
        for group in result.failure_summary():
            emit(
                f"  {group['count']:>4}× [{group['error_kind']}] {group['error']}"
                f" (e.g. {group['sources'][0]})"
            )
    emit(f"{len(result.records) - result.n_failed}/{len(result.records)} trace(s) ingested")
    return 0 if result.ok else 1


def cmd_batch(args: argparse.Namespace) -> int:
    from repro.experiments.reporting.console import emit, emit_json
    from repro.io import DatasetRegistry, open_traces, resolve_source
    from repro.runtime import BatchEvaluator

    tracer = _tracer_of(args)
    sources = list(args.traces)
    if args.synthetic > 0:
        # Sugar for the unified spec; the generation loop inside
        # synthesize_from_spec matches the historical --synthetic loop
        # bit for bit.
        sources.append(
            f"synthetic://random?n={args.synthetic}"
            f"&packets={args.packets}&snr={args.snr:g}&seed={args.seed}"
        )
    if not sources:
        emit(
            "nothing to do: pass trace sources (paths, dataset:// refs, "
            "synthetic:// specs) or --synthetic N",
            stream=sys.stderr,
        )
        return 2

    registry = None
    labels: list[str] = []
    traces: list[CsiTrace] = []
    entries: list = []  # DatasetEntry | None, aligned with traces
    for source in sources:
        resolved = resolve_source(source)
        entry = None
        if resolved.kind == "dataset":
            if registry is None:
                registry = DatasetRegistry(args.registry)
            entry = registry.entry(resolved.dataset)
        for label, trace in open_traces(source, registry=registry):
            if args.preprocess:
                trace = _preprocess(trace)
            labels.append(label)
            traces.append(trace)
            entries.append(entry)

    system = _build_system(args.system, tracer)
    evaluator = BatchEvaluator(
        system, workers=args.workers, chunk_size=args.chunk_size, base_seed=args.seed,
        tracer=tracer,
    )
    checkpoint = None
    if args.checkpoint:
        from pathlib import Path

        from repro.runtime import CheckpointPolicy, write_manifest

        write_manifest(args.checkpoint, getattr(args, "argv", []))
        checkpoint = CheckpointPolicy(
            path=Path(args.checkpoint) / "batch.jsonl", experiment="batch"
        )
    result = evaluator.evaluate(traces, checkpoint=checkpoint)

    fix_payload = None
    if args.localize:
        fix_payload, problem = _batch_fix(
            entries, traces, result.outcomes, resolution_m=args.resolution
        )
        if problem is not None:
            emit(f"cannot localize: {problem}", stream=sys.stderr)
            return 2

    if args.json:
        rows = []
        for label, trace, outcome in zip(labels, traces, result.outcomes):
            row: dict = {"label": label, "ok": outcome.ok}
            if outcome.ok:
                row["aoa_deg"] = float(outcome.analysis.direct.aoa_deg)
                row["n_paths"] = int(outcome.analysis.direct.n_paths)
                if not np.isnan(trace.direct_aoa_deg):
                    row["aoa_error_deg"] = abs(
                        float(outcome.analysis.direct.aoa_deg) - float(trace.direct_aoa_deg)
                    )
            else:
                row["failure"] = {
                    "error_type": outcome.failure.error_type,
                    "message": outcome.failure.message,
                }
            rows.append(row)
        payload = {"outcomes": rows, "report": result.report.to_dict()}
        if fix_payload is not None:
            payload["fix"] = fix_payload
        emit_json(payload)
        return 1 if result.failures else 0
    for label, trace, outcome in zip(labels, traces, result.outcomes):
        if outcome.ok:
            line = (
                f"AoA {outcome.analysis.direct.aoa_deg:6.1f}° | "
                f"{outcome.analysis.direct.n_paths} path(s)"
            )
            if not np.isnan(trace.direct_aoa_deg):
                line += f" | error {abs(outcome.analysis.direct.aoa_deg - trace.direct_aoa_deg):.1f}°"
        else:
            line = f"FAILED ({outcome.failure.error_type}: {outcome.failure.message})"
        emit(f"  {label:<24} {line}")
    if fix_payload is not None:
        line = (
            f"fix ({fix_payload['position'][0]:.2f}, "
            f"{fix_payload['position'][1]:.2f}) m from {fix_payload['n_aps']} AP(s)"
        )
        if "error_m" in fix_payload:
            line += (
                f" | truth ({fix_payload['truth'][0]:.2f}, "
                f"{fix_payload['truth'][1]:.2f}) m | error {fix_payload['error_m']:.2f} m"
            )
        emit("")
        emit(line)
    emit("")
    emit(result.report.summary())
    return 1 if result.failures else 0


def _batch_fix(entries, traces, outcomes, *, resolution_m):
    """Fuse dataset-backed batch outcomes into one position fix.

    Returns ``(payload, problem)`` — exactly one is ``None``.  Requires
    every source to be a ``dataset://`` reference whose manifest records
    the capturing AP's geometry.
    """
    from repro.channel.geometry import Room
    from repro.core.localization import ApObservation, localize_weighted_aoa

    observations = []
    room = None
    truth = None
    for entry, trace, outcome in zip(entries, traces, outcomes):
        if entry is None or entry.access_point() is None:
            return None, (
                "--localize needs every source to be a dataset:// reference "
                "with AP geometry in the registry"
            )
        if not outcome.ok:
            continue
        observations.append(
            ApObservation(
                entry.access_point(),
                float(outcome.analysis.direct.aoa_deg),
                float(trace.rssi_dbm),
            )
        )
        dims = entry.ground_truth.get("room")
        if dims is not None:
            room = Room(width=float(dims[0]), depth=float(dims[1]))
        client = entry.ground_truth.get("client")
        if client is not None:
            truth = (float(client[0]), float(client[1]))
    if len(observations) < 2:
        return None, (
            f"need at least 2 successful AP observations, have {len(observations)}"
        )
    fix = localize_weighted_aoa(observations, room or Room(), resolution_m=resolution_m)
    payload = {
        "position": [float(fix.position[0]), float(fix.position[1])],
        "n_aps": len(observations),
    }
    if truth is not None:
        payload["truth"] = list(truth)
        payload["error_m"] = float(fix.error_to(truth))
    return payload, None


def cmd_localize(args: argparse.Namespace) -> int:
    from repro.core.localization import ApObservation, localize_weighted_aoa
    from repro.experiments.reporting.console import emit
    from repro.experiments.runner import _scene_traces
    from repro.experiments.scenarios import SNR_BANDS, build_random_scene

    tracer = _tracer_of(args)
    rng = np.random.default_rng(args.seed)
    band = SNR_BANDS[args.band]
    scene = build_random_scene(rng, n_aps=args.aps)
    snrs = [band.draw(rng) for _ in range(args.aps)]
    blockages = [band.draw_blockage(rng) for _ in range(args.aps)]
    traces = _scene_traces(
        scene,
        snr_db_per_ap=snrs,
        n_packets=args.packets,
        impairments=ImpairmentModel(),
        rng=rng,
        boot_seed=args.seed,
        blockage_db_per_ap=blockages,
    )
    system = _build_system(args.system, tracer)
    observations = []
    with tracer.span("localize", system=system.name, n_aps=args.aps) as round_span:
        for i, trace in enumerate(traces):
            with tracer.span("ap_analysis", ap=scene.access_points[i].name):
                analysis = system.analyze(trace)
            truth = scene.ground_truth_aoa(i)
            emit(
                f"AP {scene.access_points[i].name:<12} SNR {snrs[i]:5.1f} dB | "
                f"AoA {analysis.direct.aoa_deg:6.1f}° (truth {truth:6.1f}°)"
            )
            observations.append(
                ApObservation(scene.access_points[i], analysis.direct.aoa_deg, trace.rssi_dbm)
            )
        with tracer.span("localization", n_aps=len(observations)):
            fix = localize_weighted_aoa(observations, scene.room, resolution_m=args.resolution)
        error = fix.error_to(scene.client)
        round_span.annotate(location_error_m=float(error))
    emit(
        f"\nfix ({fix.position[0]:.2f}, {fix.position[1]:.2f}) m | "
        f"truth ({scene.client[0]:.2f}, {scene.client[1]:.2f}) m | error {error:.2f} m"
    )
    return 0


FIGURES = {
    "fig2": ("MUSIC AoA spectra vs SNR", "benchmarks/test_fig2_music_snr.py"),
    "fig3": ("sparse spectrum vs iterations", "benchmarks/test_fig3_iterations.py"),
    "fig4": ("single packets vs multi-packet fusion", "benchmarks/test_fig4_joint_fusion.py"),
    "fig6": ("localization CDFs, 3 systems × 3 SNR bands", "benchmarks/test_fig6_localization_cdf.py"),
    "fig7": ("AoA-error CDFs, 3 systems × 3 SNR bands", "benchmarks/test_fig7_aoa_cdf.py"),
    "fig8a": ("accuracy vs number of APs", "benchmarks/test_fig8a_ap_density.py"),
    "fig8b": ("phase-calibration schemes", "benchmarks/test_fig8b_calibration.py"),
    "fig8c": ("polarization deviation", "benchmarks/test_fig8c_polarization.py"),
    "sec3c": ("complexity scaling", "benchmarks/test_complexity_scaling.py"),
}


def cmd_report(args: argparse.Namespace) -> int:
    from repro.experiments.reporting import generate_report
    from repro.experiments.reporting.console import emit, emit_json

    tracer = _tracer_of(args)
    sections = tuple(args.sections) if args.sections else None
    markdown = generate_report(
        scale=args.scale,
        seed=args.seed,
        sections=sections,
        tracer=tracer,
        telemetry=args.telemetry,
    )
    if args.json:
        payload = {
            "scale": args.scale,
            "seed": args.seed,
            "sections": list(sections) if sections else None,
            "markdown": markdown,
        }
        if args.output == "-":
            emit_json(payload)
        else:
            import json

            from repro.runtime.checkpoint import atomic_write

            atomic_write(args.output, json.dumps(payload, indent=2, sort_keys=True) + "\n")
            emit(f"wrote {args.output}")
        return 0
    if args.output == "-":
        emit(markdown)
    else:
        from repro.runtime.checkpoint import atomic_write

        atomic_write(args.output, markdown)
        emit(f"wrote {args.output} ({len(markdown.splitlines())} lines)")
    return 0


def cmd_bench(args: argparse.Namespace) -> int:
    from repro.experiments.reporting.console import emit, emit_json
    from repro.runtime.bench import batched_solve_benchmark, joint_solve_benchmark

    tracer = _tracer_of(args)
    if args.batched:
        with tracer.span("bench", benchmark="batched_solve") as span:
            result = batched_solve_benchmark(
                backend=args.backend,
                device=args.device,
                dtype=args.dtype,
                batch_sizes=tuple(args.batch_sizes),
                snr_db=args.snr,
                seed=args.seed,
                repeats=args.repeats,
                max_iterations=args.iterations,
            )
            span.annotate(speedup=result["max_batch_speedup"])
        output = args.output or "BENCH_batched_solve.json"
        if args.json:
            emit_json(result)
        else:
            grid = result["grid"]
            emit(
                f"batched solve ({grid['rows']}×{grid['columns']} dictionary, "
                f"{result['iterations']} iterations, backend {result['backend']}"
                f"[{result['dtype']}], best of {result['repeats']}):"
            )
            for row in result["batches"]:
                emit(
                    f"  batch {row['batch_size']:>4}: loop {row['loop_seconds']:.3f} s | "
                    f"batched {row['batched_seconds']:.3f} s | "
                    f"speedup {row['speedup']:.2f}× | "
                    f"deviation {row['max_relative_deviation']:.2e}"
                )
        from repro.runtime.checkpoint import atomic_write

        atomic_write(output, result)
        if not args.json:
            emit(f"wrote {output}")
        return 0
    with tracer.span("bench", benchmark="joint_solve") as span:
        result = joint_solve_benchmark(
            snr_db=args.snr, seed=args.seed, repeats=args.repeats, max_iterations=args.iterations
        )
        span.annotate(speedup=result["speedup"])
    if args.json:
        emit_json(result)
    else:
        grid = result["grid"]
        emit(
            f"joint solve ({grid['rows']}×{grid['columns']} dictionary, "
            f"{result['iterations']} iterations, best of {result['repeats']}):"
        )
        emit(
            f"  dense {result['dense_seconds']:.3f} s | "
            f"operator {result['operator_seconds']:.3f} s | "
            f"speedup {result['speedup']:.2f}×"
        )
        emit(f"  max relative spectrum error {result['max_relative_spectrum_error']:.2e}")
    if args.output:
        from repro.runtime.checkpoint import atomic_write

        atomic_write(args.output, result)
    return 0


def _chaos_serve(args: argparse.Namespace) -> int:
    """``roarray chaos --serve``: the service-level resilience drills."""
    from repro.experiments.reporting.console import emit, emit_json
    from repro.serve import ServeChaosOptions, run_serve_chaos

    options = ServeChaosOptions(seed=args.seed)
    result = run_serve_chaos(options, scenarios=args.scenario or None)
    scorecard = result.scorecard()
    if args.scorecard:
        from repro.runtime.checkpoint import atomic_write

        atomic_write(args.scorecard, scorecard)
    if args.json:
        emit_json(scorecard)
        return 0 if result.passed else 1
    emit(
        f"serve chaos: {result.n_passed}/{len(result.outcomes)} scenario(s) passed"
        + (f" | scorecard: {args.scorecard}" if args.scorecard else "")
    )
    for outcome in result.outcomes:
        verdict = "PASS" if outcome.passed else "FAIL"
        highlights = ", ".join(
            f"{key}={value}"
            for key, value in outcome.details.items()
            if isinstance(value, (int, float, str, bool))
        )
        emit(f"  [{verdict}] {outcome.name}: {highlights}")
    return 0 if result.passed else 1


def _chaos_nlos(args: argparse.Namespace) -> int:
    """``roarray chaos --scenario nlos_*``: the measurement-corruption drills.

    Exits 0 iff every requested drill passes its acceptance criteria
    (detection AND bounded consensus error).  The drills run at their
    pinned working point (high SNR band, 18° bias floor) — that working
    point is part of the scored contract, so ``--band`` is not
    forwarded here.
    """
    from repro.experiments.reporting.console import emit, emit_json
    from repro.faults.nlos import NLOS_SCENARIOS, run_nlos_suite

    unknown = sorted(set(args.scenario) - set(NLOS_SCENARIOS))
    if unknown:
        emit(
            f"unknown NLOS scenario(s) {unknown}; available: {list(NLOS_SCENARIOS)}",
            stream=sys.stderr,
        )
        return 2
    tracer = _tracer_of(args)
    suite = run_nlos_suite(
        scenarios=tuple(args.scenario),
        seed=args.seed,
        workers=args.workers,
        tracer=tracer,
        checkpoint_dir=args.checkpoint,
    )
    scorecard = suite.scorecard()
    if args.scorecard:
        from repro.runtime.checkpoint import atomic_write

        atomic_write(args.scorecard, scorecard)
    if args.json:
        emit_json(scorecard)
        return 0 if suite.passed else 1
    emit(
        f"nlos drills: {suite.n_passed}/{len(suite.drills)} passed"
        + (f" | scorecard: {args.scorecard}" if args.scorecard else "")
    )
    for drill in suite.drills:
        verdict = "PASS" if drill.passed else "FAIL"
        highlights = ", ".join(
            f"{key}={value:.2f}" if isinstance(value, float) else f"{key}={value}"
            for key, value in drill.criteria.items()
            if isinstance(value, (int, float))
        )
        emit(f"  [{verdict}] {drill.name}: {highlights}")
    return 0 if suite.passed else 1


def cmd_chaos(args: argparse.Namespace) -> int:
    if args.serve:
        return _chaos_serve(args)
    if args.scenario:
        return _chaos_nlos(args)
    from repro.experiments.reporting.console import emit, emit_json
    from repro.experiments.reporting.markdown import format_degradation_table
    from repro.faults import (
        AntennaDropout,
        ApFault,
        ApOutage,
        ChaosScenario,
        ValueCorruption,
        run_chaos_experiment,
    )
    from repro.runtime import ExecutionPolicy

    tracer = _tracer_of(args)
    if args.kill_aps + (1 if args.drop_antennas > 0 else 0) >= args.aps:
        emit(
            f"scenario kills or cripples every AP ({args.aps} APs, "
            f"{args.kill_aps} killed): nothing left to localize with",
            stream=sys.stderr,
        )
        return 2
    faults = [
        ApFault(ap=args.aps - 1 - k, injector=ApOutage()) for k in range(args.kill_aps)
    ]
    if args.drop_antennas > 0:
        faults.append(
            ApFault(
                ap=args.aps - 1 - args.kill_aps,
                injector=AntennaDropout(n_antennas=args.drop_antennas),
            )
        )
    if args.corrupt > 0:
        faults.extend(
            ApFault(ap=ap, injector=ValueCorruption(fraction=args.corrupt))
            for ap in range(args.aps - args.kill_aps)
        )
    scenario = ChaosScenario(name="cli", faults=tuple(faults), seed=args.seed)
    policy = ExecutionPolicy(
        validate=True, timeout_s=args.timeout, max_retries=args.retries
    )
    if args.checkpoint:
        from repro.runtime import write_manifest

        write_manifest(args.checkpoint, getattr(args, "argv", []))
    result = run_chaos_experiment(
        scenario,
        n_aps=args.aps,
        n_locations=args.locations,
        n_packets=args.packets,
        band=args.band,
        seed=args.seed,
        workers=args.workers,
        resolution_m=args.resolution,
        min_quorum=args.min_quorum,
        policy=policy,
        tracer=tracer,
        checkpoint_dir=args.checkpoint,
    )
    if args.json:
        emit_json(result.to_dict())
        return 0 if result.n_located == len(result.locations) else 1
    emit(
        f"chaos scenario {scenario.name!r}: {args.kill_aps} AP(s) killed, "
        f"{args.drop_antennas} antenna(s) dropped, "
        f"{args.corrupt:.0%} of packets corrupted"
    )
    emit("")
    emit(format_degradation_table(result.degradation_rows()).rstrip())
    emit("")
    emit(result.report.summary())
    return 0 if result.n_located == len(result.locations) else 1


def cmd_resume(args: argparse.Namespace) -> int:
    """Re-dispatch the command recorded in a checkpoint directory.

    The original ``--checkpoint`` run wrote a manifest with its argv;
    this replays it verbatim, so the resumed run replays journaled jobs
    and computes only what is missing.  Progress goes to stderr (the
    re-dispatched command may be emitting ``--json`` on stdout).
    """
    from repro.experiments.reporting.console import emit, emit_json
    from repro.experiments.reporting.text import format_checkpoint_status
    from repro.runtime.checkpoint import checkpoint_status, read_manifest

    command = read_manifest(args.checkpoint)
    statuses = checkpoint_status(args.checkpoint)
    if args.json:
        emit_json(
            {
                "checkpoint": args.checkpoint,
                "command": list(command),
                "journals": [
                    {
                        "path": status.path,
                        "experiment": status.experiment,
                        "n_jobs": status.n_jobs,
                        "n_recorded": status.n_recorded,
                        "percent_complete": status.percent_complete,
                        "complete": status.complete,
                    }
                    for status in statuses
                ],
            },
            stream=sys.stderr,
        )
    else:
        if statuses:
            emit(format_checkpoint_status(statuses), stream=sys.stderr)
        emit(f"resuming: roarray {' '.join(command)}", stream=sys.stderr)
    inner = build_parser().parse_args(command)
    inner.argv = list(command)
    return inner.handler(inner)


def cmd_loadgen(args: argparse.Namespace) -> int:
    from repro.experiments.reporting.console import emit, emit_json
    from repro.serve import LoadGenerator

    outages = {}
    for name, start, end in args.outage or ():
        outages[name] = (float(start), float(end))
    generator = LoadGenerator(
        n_clients=args.clients,
        duration_s=args.duration,
        sample_interval_s=args.interval,
        stationary_fraction=args.stationary,
        n_aps=args.aps,
        band=args.band,
        seed=args.seed,
        outages=outages,
    )
    workload = generator.generate()
    workload.save(args.output)
    if args.json:
        emit_json(
            {
                "output": args.output,
                "packets": len(workload.packets),
                "clients": len(workload.clients),
                "duration_s": float(workload.duration_s),
                "aps": args.aps,
                "band": args.band,
                "seed": args.seed,
                "outages": {name: list(window) for name, window in sorted(outages.items())},
            }
        )
        return 0
    emit(
        f"wrote {args.output}: {len(workload.packets)} packets from "
        f"{len(workload.clients)} clients over {workload.duration_s:.1f} s "
        f"({args.aps} APs, {args.band} band"
        + (f", outages: {', '.join(sorted(outages))}" if outages else "")
        + ")"
    )
    return 0


def _serve_supervised(args: argparse.Namespace, workload, config, tracer) -> int:
    """``roarray serve --snapshot-dir``: the crash-supervised drive.

    Runs the synchronous supervised core instead of the asyncio host:
    packets feed through a :class:`~repro.serve.ServiceSupervisor`
    that snapshots periodically and journals every delivered fix to
    ``<snapshot-dir>/fixes.jsonl``.  SIGTERM / SIGINT request a
    graceful stop — the in-flight step finishes, a final snapshot is
    written and the process exits 75 (resumable); re-running the same
    command resumes the stream and produces a byte-identical journal.
    """
    import signal

    from repro.experiments.reporting.console import emit, emit_json
    from repro.runtime.checkpoint import EXIT_RESUMABLE
    from repro.serve import LocalizationService, ServiceSupervisor, SnapshotPolicy

    stop_requested = False

    def _request_stop(signum, frame):
        nonlocal stop_requested
        stop_requested = True

    def factory(clock):
        return LocalizationService(
            workload.room,
            workload.access_points,
            array=workload.array,
            layout=workload.layout,
            config=config,
            tracer=tracer,
            clock=clock,
        )

    policy = SnapshotPolicy(
        directory=args.snapshot_dir,
        every_packets=args.snapshot_every,
        max_duty=args.snapshot_duty,
    )
    previous_term = signal.signal(signal.SIGTERM, _request_stop)
    previous_int = signal.signal(signal.SIGINT, _request_stop)
    try:
        with ServiceSupervisor(factory, policy) as supervisor:
            if args.warm_in and not supervisor.resumed:
                slots = supervisor.service.load_warm_state(args.warm_in)
                emit(
                    f"loaded {slots} warm-start slot(s) from {args.warm_in}",
                    stream=sys.stderr,
                )
            result = supervisor.run(workload.packets, stop=lambda: stop_requested)
            service = supervisor.service
    finally:
        signal.signal(signal.SIGTERM, previous_term)
        signal.signal(signal.SIGINT, previous_int)
    if args.warm_out:
        service.save_warm_state(args.warm_out)
    summary = {
        "workload": args.workload,
        "snapshot_dir": str(args.snapshot_dir),
        "fixes_journal": str(policy.fixes_path),
        **result.to_dict(),
    }
    if args.json:
        emit_json(summary)
    else:
        state = "interrupted (resumable)" if result.interrupted else "complete"
        emit(
            f"supervised serve {state}: {result.n_consumed}/"
            f"{len(workload.packets)} packets, {len(result.fixes)} fix(es) "
            f"delivered this run ({result.n_delivered} total in "
            f"{policy.fixes_path})"
        )
        emit(
            f"snapshots: {result.n_snapshots} | restarts: {result.n_restarts} | "
            f"replay-suppressed fixes: {result.n_suppressed}"
            + (" | resumed from snapshot" if result.resumed else "")
        )
    return EXIT_RESUMABLE if result.interrupted else 0


def cmd_serve(args: argparse.Namespace) -> int:
    import asyncio

    from repro.core.grids import AngleGrid, DelayGrid
    from repro.experiments.reporting.console import emit, emit_json
    from repro.serve import LocalizationService, ServeConfig, Workload, replay

    tracer = _tracer_of(args)
    workload = Workload.load(args.workload)
    config = ServeConfig(
        batch_size=args.batch_size,
        max_delay_s=args.max_delay,
        window_packets=args.window_packets,
        observation_max_age_s=args.observation_max_age,
        outage_after_s=args.outage_after,
        min_quorum=args.min_quorum,
        resolution_m=args.resolution,
        robust=args.robust,
        warm_start=not args.no_warm,
        angle_grid=AngleGrid(n_points=args.angle_points),
        delay_grid=DelayGrid(n_points=args.delay_points),
        max_iterations=args.iterations,
        backend=args.backend,
        device=args.device,
        dtype=args.dtype,
    )
    if args.snapshot_dir:
        return _serve_supervised(args, workload, config, tracer)
    service = LocalizationService(
        workload.room,
        workload.access_points,
        array=workload.array,
        layout=workload.layout,
        config=config,
        tracer=tracer,
    )
    if args.warm_in:
        slots = service.load_warm_state(args.warm_in)
        emit(f"loaded {slots} warm-start slot(s) from {args.warm_in}", stream=sys.stderr)
    result = asyncio.run(service.run(replay(workload)))
    if args.warm_out:
        service.save_warm_state(args.warm_out)

    fixed_clients = set(result.fix_counts)
    missing = sorted(set(workload.clients) - fixed_clients)
    errors = [
        fix.error_to(workload.truth_position(fix.client, fix.time_s))
        for fix in result.fixes
    ]
    median_error = float(np.median(errors)) if errors else None
    latency = result.metrics.get("serve.fix_latency_s", {})
    if args.json:
        emit_json(
            {
                "workload": args.workload,
                "summary": result.to_dict(),
                "median_error_m": median_error,
                "clients_total": len(workload.clients),
                "clients_fixed": len(fixed_clients),
                "clients_missing": missing,
            }
        )
    else:
        emit(
            f"served {result.n_packets} packets ({result.n_accepted} accepted, "
            f"{len(result.rejected)} rejected) in {result.wall_seconds:.2f} s"
        )
        emit(
            f"fixes: {result.n_fixes} ({result.fixes_per_second:.1f}/s) for "
            f"{len(fixed_clients)}/{len(workload.clients)} clients"
            + (f" | median error {median_error:.2f} m" if median_error is not None else "")
        )
        if latency.get("count"):
            emit(
                f"fix latency: p50 {latency['p50'] * 1e3:.1f} ms | "
                f"p90 {latency['p90'] * 1e3:.1f} ms | p99 {latency['p99'] * 1e3:.1f} ms"
            )
        emit(
            f"batches: max {result.max_batch_observed} | triggers "
            + ", ".join(f"{k}={v}" for k, v in sorted(result.batch_triggers.items()))
        )
        warm = result.warm
        emit(
            f"warm starts: {'on' if warm['enabled'] else 'off'} | "
            f"{warm['hits']} hits, {warm['misses']} misses, "
            f"{warm['slots']} slots ({warm['nbytes'] / 1024:.0f} KiB)"
        )
        if result.reject_counts:
            emit(
                "rejects: "
                + ", ".join(f"{k}={v}" for k, v in sorted(result.reject_counts.items()))
            )
        for name, health in result.health.items():
            if health["status"] != "healthy":
                emit(f"AP {name}: {health['status']} ({health['failures']})")
        if missing:
            emit(f"no fix for {len(missing)} client(s): {', '.join(missing[:5])}...")
    if args.require_all_clients and missing:
        return 1
    return 0


def cmd_figures(_args: argparse.Namespace) -> int:
    from repro.experiments.reporting.console import emit

    emit("paper figure → benchmark (run with: pytest <file> --benchmark-only -s)")
    for key, (description, path) in FIGURES.items():
        emit(f"  {key:<6} {description:<45} {path}")
    return 0


def cmd_trace(args: argparse.Namespace) -> int:
    """Re-dispatch ``args.rest`` with a recording tracer installed."""
    from repro.experiments.reporting.console import emit
    from repro.obs import Tracer

    rest = list(args.rest)
    if rest and rest[0] == "--":
        rest = rest[1:]
    if not rest:
        emit("usage: roarray trace [--trace-out PATH] <command> [args...]", stream=sys.stderr)
        return 2
    if rest[0] == "trace":
        emit("trace cannot be nested", stream=sys.stderr)
        return 2
    inner = build_parser().parse_args(rest)
    inner.argv = rest
    tracer = Tracer()
    inner.tracer = tracer
    code = inner.handler(inner)
    tracer.export_json(args.trace_out)
    emit(f"wrote {args.trace_out} ({len(tracer.spans)} spans)", stream=sys.stderr)
    return code


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="roarray",
        description="ROArray (ICDCS'17) reproduction — simulate, analyze, localize.",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    simulate = subparsers.add_parser("simulate", help="synthesize a CSI trace to .npz")
    simulate.add_argument("output", help="output .npz path")
    simulate.add_argument("--snr", type=float, default=10.0, help="SNR in dB (default 10)")
    simulate.add_argument("--packets", type=int, default=10, help="packets (default 10)")
    simulate.add_argument("--paths", type=int, default=4, help="multipath count (default 4)")
    simulate.add_argument("--aoa", type=float, default=150.0, help="direct-path AoA in deg")
    simulate.add_argument("--blockage-db", type=float, default=0.0, help="LoS attenuation")
    simulate.add_argument("--seed", type=int, default=0)
    simulate.set_defaults(handler=cmd_simulate)

    analyze = subparsers.add_parser("analyze", help="run a system on a saved trace")
    analyze.add_argument(
        "trace",
        help="trace source: file path (.npz/.dat/.mat), dataset://name, "
        "or synthetic:// spec",
    )
    analyze.add_argument(
        "--system", choices=("roarray", "spotfi", "arraytrack"), default="roarray"
    )
    analyze.add_argument(
        "--registry", default=None, metavar="PATH",
        help="dataset registry root or manifest for dataset:// sources "
        "(default: $REPRO_DATA_DIR or ./datasets)",
    )
    analyze.add_argument(
        "--preprocess", action="store_true",
        help="apply the format's default preprocessing stages (STO removal "
        "for real captures) before analysis",
    )
    analyze.add_argument("--json", action="store_true", help="machine-readable output")
    analyze.set_defaults(handler=cmd_analyze)

    ingest = subparsers.add_parser(
        "ingest",
        help="parse real captures through preprocessing + validation, fit "
        "calibration, write normalized .npz artifacts",
    )
    ingest.add_argument(
        "sources", nargs="+",
        help="capture sources: .dat/.mat/.npz paths, dataset:// refs, or "
        "synthetic:// specs",
    )
    ingest.add_argument(
        "--out", default=None, metavar="DIR",
        help="write normalized .npz artifacts under DIR (default: no artifacts)",
    )
    ingest.add_argument(
        "--registry", default=None, metavar="PATH",
        help="dataset registry root or manifest (default: $REPRO_DATA_DIR "
        "or ./datasets)",
    )
    ingest.add_argument(
        "--register-prefix", default=None, metavar="PREFIX",
        help="register each written artifact as dataset PREFIX<label> "
        "(requires --out)",
    )
    ingest.add_argument(
        "--overwrite", action="store_true",
        help="replace already-registered dataset names",
    )
    ingest.add_argument(
        "--no-calibrate", action="store_true",
        help="skip the per-trace calibration fit",
    )
    ingest.add_argument(
        "--expect-shape", type=int, nargs=2, default=None, metavar=("M", "L"),
        help="fail validation unless traces are M antennas × L subcarriers",
    )
    ingest.add_argument(
        "--checkpoint", default=None, metavar="DIR",
        help="journal per-source outcomes to DIR/ingest.jsonl; a rerun "
        "replays finished sources",
    )
    ingest.add_argument("--json", action="store_true", help="machine-readable output")
    ingest.set_defaults(handler=cmd_ingest)

    batch = subparsers.add_parser(
        "batch", help="analyze many traces through the parallel batch runtime"
    )
    batch.add_argument(
        "traces", nargs="*",
        help="trace sources: file paths, dataset:// refs, synthetic:// specs "
        "(or use --synthetic)",
    )
    batch.add_argument(
        "--synthetic", type=int, default=0, metavar="N",
        help="generate N seeded random traces (sugar for "
        "synthetic://random?n=N&packets=…&snr=…&seed=…)",
    )
    batch.add_argument(
        "--registry", default=None, metavar="PATH",
        help="dataset registry root or manifest for dataset:// sources",
    )
    batch.add_argument(
        "--preprocess", action="store_true",
        help="apply each format's default preprocessing stages before analysis",
    )
    batch.add_argument(
        "--localize", action="store_true",
        help="fuse dataset-backed outcomes into one position fix using the "
        "registry's AP geometry",
    )
    batch.add_argument(
        "--resolution", type=float, default=0.1,
        help="fix grid pitch in m for --localize (default 0.1)",
    )
    batch.add_argument(
        "--system", choices=("roarray", "spotfi", "arraytrack"), default="roarray"
    )
    batch.add_argument(
        "--workers", type=int, default=0, help="worker processes (0 = sequential, default)"
    )
    batch.add_argument(
        "--chunk-size", type=int, default=None, help="jobs per scheduling unit (default: auto)"
    )
    batch.add_argument("--packets", type=int, default=10, help="packets per synthetic trace")
    batch.add_argument("--snr", type=float, default=10.0, help="synthetic trace SNR in dB")
    batch.add_argument("--seed", type=int, default=0)
    batch.add_argument(
        "--checkpoint", default=None, metavar="DIR",
        help="journal completed jobs to DIR/batch.jsonl; an interrupted run "
        "exits with status 75 and `roarray resume DIR` finishes it",
    )
    batch.add_argument("--json", action="store_true", help="machine-readable output")
    batch.set_defaults(handler=cmd_batch)

    localize = subparsers.add_parser("localize", help="one end-to-end localization round")
    localize.add_argument(
        "--system", choices=("roarray", "spotfi", "arraytrack"), default="roarray"
    )
    localize.add_argument(
        "--band", type=_band_arg, default="medium",
        help="SNR regime: high/medium/low or synthetic://band/<name>",
    )
    localize.add_argument("--aps", type=int, default=6)
    localize.add_argument("--packets", type=int, default=10)
    localize.add_argument("--resolution", type=float, default=0.1)
    localize.add_argument("--seed", type=int, default=0)
    localize.set_defaults(handler=cmd_localize)

    bench = subparsers.add_parser(
        "bench",
        help="solver microbenchmarks: dense vs Kronecker operator, or "
        "--batched for solve_batch vs the sequential loop",
    )
    bench.add_argument("--snr", type=float, default=12.0, help="measurement SNR in dB")
    bench.add_argument("--seed", type=int, default=2017)
    bench.add_argument("--repeats", type=int, default=3, help="timing repeats (best-of)")
    bench.add_argument(
        "--iterations", type=int, default=None, help="pinned FISTA iterations (default: config)"
    )
    bench.add_argument(
        "--batched", action="store_true",
        help="benchmark solve_batch against the per-problem loop "
        "(writes BENCH_batched_solve.json unless --output is given)",
    )
    bench.add_argument(
        "--backend", choices=("numpy", "torch", "cupy"), default="numpy",
        help="array backend for the batched path (default numpy)",
    )
    bench.add_argument(
        "--device", default=None, metavar="DEV",
        help="device for the batched backend (e.g. cuda:0)",
    )
    bench.add_argument(
        "--dtype", choices=("complex64", "complex128"), default=None,
        help="precision for the batched path (default complex128)",
    )
    bench.add_argument(
        "--batch-sizes", type=int, nargs="+", default=[1, 8, 64], metavar="N",
        help="batch sizes to sweep with --batched (default 1 8 64)",
    )
    bench.add_argument(
        "--output", default=None, metavar="PATH", help="also write the JSON to PATH"
    )
    bench.add_argument("--json", action="store_true", help="print the full JSON result")
    bench.set_defaults(handler=cmd_bench)

    chaos = subparsers.add_parser(
        "chaos", help="inject faults and demonstrate graceful degradation"
    )
    chaos.add_argument("--aps", type=int, default=6, help="APs per scene (default 6)")
    chaos.add_argument("--locations", type=int, default=3, help="test locations (default 3)")
    chaos.add_argument("--packets", type=int, default=10, help="packets per AP trace")
    chaos.add_argument(
        "--band", type=_band_arg, default="medium",
        help="SNR regime: high/medium/low or synthetic://band/<name>",
    )
    chaos.add_argument("--kill-aps", type=int, default=2, help="APs to black out entirely")
    chaos.add_argument(
        "--drop-antennas", type=int, default=1, help="antennas to kill on one surviving AP"
    )
    chaos.add_argument(
        "--corrupt", type=float, default=0.2, metavar="FRACTION",
        help="fraction of packets NaN-poisoned on surviving APs (default 0.2)",
    )
    chaos.add_argument(
        "--timeout", type=float, default=None, metavar="S", help="per-job wall-clock budget"
    )
    chaos.add_argument(
        "--retries", type=int, default=0, help="retry budget for transient failures"
    )
    chaos.add_argument("--min-quorum", type=int, default=2, help="min surviving APs per fix")
    chaos.add_argument(
        "--workers", type=int, default=0, help="worker processes (0 = sequential, default)"
    )
    chaos.add_argument("--resolution", type=float, default=0.1)
    chaos.add_argument("--seed", type=int, default=0)
    chaos.add_argument(
        "--checkpoint", default=None, metavar="DIR",
        help="journal both chaos batches to DIR; an interrupted run exits "
        "with status 75 and `roarray resume DIR` finishes it",
    )
    chaos.add_argument(
        "--serve", action="store_true",
        help="run the service-level resilience drills (AP blackout, queue "
        "storm, corrupted packets, mid-stream crash recovery) instead of "
        "the offline fault-injection experiment",
    )
    chaos.add_argument(
        "--scenario", action="append", metavar="NAME",
        help="run only the named scenario (repeatable): with --serve the "
        "service resilience drills; otherwise the NLOS measurement-corruption "
        "drills (nlos_single_ap, nlos_majority, ghost_multipath), exiting 0 "
        "iff every drill passes",
    )
    chaos.add_argument(
        "--scorecard", default=None, metavar="PATH",
        help="with --serve or --scenario: write the scorecard JSON to PATH",
    )
    chaos.add_argument("--json", action="store_true", help="machine-readable output")
    chaos.set_defaults(handler=cmd_chaos)

    resume = subparsers.add_parser(
        "resume", help="finish an interrupted --checkpoint run from its journals"
    )
    resume.add_argument("checkpoint", metavar="DIR", help="checkpoint directory")
    resume.add_argument(
        "--json", action="store_true",
        help="machine-readable progress to stderr (stdout stays with the "
        "re-dispatched command)",
    )
    resume.set_defaults(handler=cmd_resume)

    loadgen = subparsers.add_parser(
        "loadgen", help="generate a streaming workload of mobile clients to .npz"
    )
    loadgen.add_argument("output", help="output .npz workload path")
    loadgen.add_argument("--clients", type=int, default=50, help="client count (default 50)")
    loadgen.add_argument(
        "--duration", type=float, default=2.0, help="stream duration in s (default 2)"
    )
    loadgen.add_argument(
        "--interval", type=float, default=0.5, help="per-client sample interval in s"
    )
    loadgen.add_argument(
        "--stationary", type=float, default=0.3, metavar="FRACTION",
        help="fraction of clients that sit still (default 0.3)",
    )
    loadgen.add_argument("--aps", type=int, default=4, help="access points (default 4)")
    loadgen.add_argument(
        "--band", type=_band_arg, default="high",
        help="SNR regime: high/medium/low or synthetic://band/<name>",
    )
    loadgen.add_argument("--seed", type=int, default=0)
    loadgen.add_argument(
        "--outage", nargs=3, action="append", metavar=("AP", "START", "END"),
        help="black out AP between START and END seconds (repeatable)",
    )
    loadgen.add_argument("--json", action="store_true", help="machine-readable output")
    loadgen.set_defaults(handler=cmd_loadgen)

    serve = subparsers.add_parser(
        "serve", help="replay a workload through the streaming localization service"
    )
    serve.add_argument("workload", help=".npz workload from `roarray loadgen`")
    serve.add_argument("--batch-size", type=int, default=16, help="micro-batch size")
    serve.add_argument(
        "--max-delay", type=float, default=0.05, metavar="S",
        help="micro-batch latency trigger in s (default 0.05)",
    )
    serve.add_argument(
        "--window-packets", type=int, default=4, help="sliding-window packets per AP"
    )
    serve.add_argument(
        "--observation-max-age", type=float, default=2.0, metavar="S",
        help="drop per-AP estimates older than this from fixes (default 2.0)",
    )
    serve.add_argument(
        "--outage-after", type=float, default=2.0, metavar="S",
        help="mark an AP outage after this long without packets (default 2.0)",
    )
    serve.add_argument("--min-quorum", type=int, default=2, help="min APs per fix")
    serve.add_argument("--resolution", type=float, default=0.25, help="fix grid pitch in m")
    serve.add_argument(
        "--robust", action="store_true",
        help="NLOS/corruption-aware fixes: localize by AP consensus, attach "
        "per-AP trust scores, and demote persistently-untrusted APs in health",
    )
    serve.add_argument(
        "--angle-points", type=int, default=91, help="AoA grid size (default 91)"
    )
    serve.add_argument(
        "--delay-points", type=int, default=50, help="ToA grid size (default 50)"
    )
    serve.add_argument(
        "--iterations", type=int, default=150, help="FISTA iterations per solve"
    )
    serve.add_argument(
        "--no-warm", action="store_true", help="disable cross-batch warm starts"
    )
    serve.add_argument(
        "--warm-in", default=None, metavar="PATH", help="load warm-start state from PATH"
    )
    serve.add_argument(
        "--warm-out", default=None, metavar="PATH", help="save warm-start state to PATH"
    )
    serve.add_argument(
        "--backend", choices=("numpy", "torch", "cupy"), default="numpy",
        help="solver backend (default numpy)",
    )
    serve.add_argument("--device", default=None, metavar="DEV", help="backend device")
    serve.add_argument(
        "--dtype", choices=("complex64", "complex128"), default=None,
        help="solver precision (default complex128)",
    )
    serve.add_argument(
        "--snapshot-dir", default=None, metavar="DIR",
        help="run crash-supervised: snapshot service state to DIR, journal "
        "fixes to DIR/fixes.jsonl, resume from DIR if a snapshot exists; "
        "SIGTERM drains gracefully and exits 75 (resumable)",
    )
    serve.add_argument(
        "--snapshot-every", type=int, default=64, metavar="N",
        help="with --snapshot-dir: snapshot after every N packets (default 64)",
    )
    serve.add_argument(
        "--snapshot-duty", type=float, default=0.01, metavar="FRAC",
        help="with --snapshot-dir: defer periodic snapshots so their I/O "
        "stays under this fraction of wall time (default 0.01; 0 disables "
        "the throttle)",
    )
    serve.add_argument(
        "--require-all-clients", action="store_true",
        help="exit 1 unless every client in the workload got at least one fix",
    )
    serve.add_argument("--json", action="store_true", help="machine-readable output")
    serve.set_defaults(handler=cmd_serve)

    figures = subparsers.add_parser("figures", help="map paper figures to benchmarks")
    figures.set_defaults(handler=cmd_figures)

    report = subparsers.add_parser(
        "report", help="run the full evaluation and write a markdown report"
    )
    report.add_argument("output", help="output .md path (or - for stdout)")
    report.add_argument("--scale", type=int, default=1, help="location multiplier")
    report.add_argument("--seed", type=int, default=2017)
    report.add_argument(
        "--sections",
        nargs="+",
        choices=("fig2", "fig3", "fig4", "bands", "fig8"),
        default=None,
        help="subset of sections (default: all)",
    )
    report.add_argument(
        "--telemetry", action="store_true", help="append a per-span cost table"
    )
    report.add_argument("--json", action="store_true", help="machine-readable output")
    report.set_defaults(handler=cmd_report)

    trace = subparsers.add_parser(
        "trace", help="run another subcommand with tracing, write spans to JSON"
    )
    trace.add_argument(
        "--trace-out", default="trace.json", metavar="PATH", help="span-tree JSON path"
    )
    trace.add_argument("rest", nargs=argparse.REMAINDER, help="subcommand to trace")
    trace.set_defaults(handler=cmd_trace)

    return parser


def main(argv: list[str] | None = None) -> int:
    from repro.exceptions import CheckpointError, ResumableInterrupt
    from repro.runtime.checkpoint import EXIT_RESUMABLE

    parser = build_parser()
    args = parser.parse_args(argv)
    # The verbatim argv, recorded in checkpoint manifests so `roarray
    # resume` can re-dispatch the original command.
    args.argv = list(argv) if argv is not None else sys.argv[1:]
    try:
        return args.handler(args)
    except ResumableInterrupt as interrupt:
        percent = (
            100.0 * interrupt.completed / interrupt.total if interrupt.total else 0.0
        )
        print(f"interrupted: {interrupt}", file=sys.stderr)
        print(
            f"progress: {interrupt.completed} of {interrupt.total} jobs "
            f"journaled ({percent:.1f}% complete)",
            file=sys.stderr,
        )
        return EXIT_RESUMABLE
    except CheckpointError as error:
        print(f"checkpoint error: {error}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())
