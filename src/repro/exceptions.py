"""Exception hierarchy for the ROArray reproduction.

All exceptions raised deliberately by this package derive from
:class:`ReproError`, so callers can catch the whole family with a single
``except`` clause while still distinguishing subsystems.
"""


class ReproError(Exception):
    """Base class for all errors raised by :mod:`repro`."""


class ConfigurationError(ReproError):
    """A user-supplied configuration value is invalid or inconsistent."""


class SolverError(ReproError):
    """A sparse-recovery solver received bad input or failed to make progress."""


class GeometryError(ReproError):
    """A scene/geometry construction is degenerate (e.g. AP outside room)."""


class CalibrationError(ReproError):
    """Phase calibration could not be performed with the given measurements."""
