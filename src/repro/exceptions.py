"""Exception hierarchy for the ROArray reproduction.

All exceptions raised deliberately by this package derive from
:class:`ReproError`, so callers can catch the whole family with a single
``except`` clause while still distinguishing subsystems.
"""


class ReproError(Exception):
    """Base class for all errors raised by :mod:`repro`."""


class ConfigurationError(ReproError):
    """A user-supplied configuration value is invalid or inconsistent."""


class SolverError(ReproError):
    """A sparse-recovery solver received bad input or failed to make progress."""


class BackendError(ReproError):
    """An array backend is unknown, unavailable, or misused.

    Raised by :mod:`repro.optim.backend` when a requested backend
    (``"torch"``, ``"cupy"``) is not importable in this environment, or
    when a backend name is not registered at all.  The numpy backend is
    always available and never raises this.
    """


class GeometryError(ReproError):
    """A scene/geometry construction is degenerate (e.g. AP outside room)."""


class CalibrationError(ReproError):
    """Phase calibration could not be performed with the given measurements."""


#: Closed taxonomy of ingestion-failure kinds.  Every
#: :class:`IngestError` carries exactly one of these so fuzz harnesses,
#: failure summaries, and dashboards can bucket hostile inputs without
#: parsing error prose.
INGEST_FAULT_KINDS = (
    "io",  # the file/stream itself could not be read (OSError territory)
    "truncated",  # data ends mid-record / mid-array
    "bad_length",  # a length field disagrees with the payload it frames
    "bad_field",  # a scalar field holds an impossible value
    "bad_shape",  # array layout cannot be normalized to (packets, m, s)
    "empty",  # structurally readable but contains no usable records
    "unsupported",  # recognized format variant this reader does not handle
    "unresolved",  # the source spec / dataset reference does not resolve
    "invalid",  # malformed in a way no finer bucket captures
)


class IngestError(ReproError):
    """A trace source could not be read or resolved.

    Raised by :mod:`repro.io` for unreadable or malformed capture files
    (truncated Intel 5300 ``.dat`` records, a ``.mat`` file without a
    recognizable CSI variable), unknown formats that survive sniffing,
    and sources that simply do not exist.  Defects *inside* a parseable
    trace (NaN packets, dead antennas) are not ingest errors — they are
    the validation gate's job (:class:`ValidationError`).

    Every instance carries a ``kind`` from :data:`INGEST_FAULT_KINDS`;
    the adversarial-ingestion harness asserts that hostile bytes always
    surface as one of these, never as a stray ``struct.error`` or
    ``IndexError``.
    """

    def __init__(self, message: str, *, kind: str = "invalid"):
        if kind not in INGEST_FAULT_KINDS:
            raise ValueError(f"unknown ingest fault kind {kind!r}")
        super().__init__(message)
        self.kind = kind


class DatasetError(IngestError):
    """A dataset registry reference could not be resolved.

    Raised for unknown ``dataset://`` names, a missing or unreadable
    registry manifest, and checksum mismatches between the manifest and
    the file on disk (a corrupted or silently replaced capture must not
    masquerade as the registered one).
    """

    def __init__(self, message: str, *, kind: str = "unresolved"):
        super().__init__(message, kind=kind)


class ValidationError(ReproError):
    """CSI input failed the validation gate beyond repair.

    Raised by :func:`repro.faults.validate.sanitize_trace` when a trace
    is structurally unusable — wrong shape, empty, or with every packet
    quarantined.  Recoverable defects (a few non-finite packets) are
    quarantined instead and never raise.
    """


class FaultInjectionError(ConfigurationError):
    """A fault injector or chaos scenario is misconfigured."""


class JobTimeoutError(ReproError):
    """A batch job exceeded its per-job wall-clock budget."""


class PoolCrashError(ReproError):
    """A worker process died and its jobs could not be completed.

    Raised (as a tagged :class:`~repro.runtime.jobs.JobFailure`, not an
    exception) once the batch runtime exhausts its pool-respawn budget.
    """


class QuorumError(ReproError):
    """Too few surviving APs to attempt a localization fix."""


class CheckpointError(ReproError):
    """A checkpoint journal cannot be used for the requested run.

    Raised when the journal's config digest does not match the run being
    resumed (resuming would silently mix results from two different
    experiments), when its format version is unsupported, or when the
    header itself is unreadable.  A torn *tail* record is **not** an
    error — the loader skips it and the job is recomputed.
    """


class ResumableInterrupt(ReproError):
    """A checkpointed batch was interrupted but can be resumed.

    Raised by :meth:`repro.runtime.BatchEvaluator.evaluate` after a
    graceful SIGINT/SIGTERM drain: completed jobs are journaled and
    flushed, in-flight futures cancelled, and rerunning the same
    evaluation with the same checkpoint finishes the run.  Carries the
    drain state so callers (the ``roarray`` CLI exits with the distinct
    resumable status :data:`repro.runtime.checkpoint.EXIT_RESUMABLE`)
    can report progress.
    """

    def __init__(self, message: str, *, completed: int = 0, total: int = 0, path=None):
        super().__init__(message)
        self.completed = completed
        self.total = total
        self.path = path


class SolverDivergenceError(SolverError):
    """Every solver in a guardrail fallback chain diverged or failed."""


class ServiceError(ReproError):
    """The streaming localization service was misused.

    Raised by :mod:`repro.serve` for lifecycle violations — running a
    service concurrently with itself, or feeding it after shutdown
    completed.  Per-packet problems (unknown AP, malformed CSI, a full
    queue) are *not* errors: admission control rejects those packets
    with a taxonomized reason and the service keeps running.
    """


class SupervisorError(ServiceError):
    """The service supervisor cannot keep the service alive.

    Raised by :class:`repro.serve.resilience.ServiceSupervisor` when the
    bounded restart budget is exhausted (the service keeps crashing on
    the same input), or when the snapshot directory holds state that
    does not match the stream being replayed.  Carries the last crash as
    ``__cause__`` so operators see *why* restarts kept failing.
    """
