"""Exception hierarchy for the ROArray reproduction.

All exceptions raised deliberately by this package derive from
:class:`ReproError`, so callers can catch the whole family with a single
``except`` clause while still distinguishing subsystems.
"""


class ReproError(Exception):
    """Base class for all errors raised by :mod:`repro`."""


class ConfigurationError(ReproError):
    """A user-supplied configuration value is invalid or inconsistent."""


class SolverError(ReproError):
    """A sparse-recovery solver received bad input or failed to make progress."""


class GeometryError(ReproError):
    """A scene/geometry construction is degenerate (e.g. AP outside room)."""


class CalibrationError(ReproError):
    """Phase calibration could not be performed with the given measurements."""


class ValidationError(ReproError):
    """CSI input failed the validation gate beyond repair.

    Raised by :func:`repro.faults.validate.sanitize_trace` when a trace
    is structurally unusable — wrong shape, empty, or with every packet
    quarantined.  Recoverable defects (a few non-finite packets) are
    quarantined instead and never raise.
    """


class FaultInjectionError(ConfigurationError):
    """A fault injector or chaos scenario is misconfigured."""


class JobTimeoutError(ReproError):
    """A batch job exceeded its per-job wall-clock budget."""


class PoolCrashError(ReproError):
    """A worker process died and its jobs could not be completed.

    Raised (as a tagged :class:`~repro.runtime.jobs.JobFailure`, not an
    exception) once the batch runtime exhausts its pool-respawn budget.
    """


class QuorumError(ReproError):
    """Too few surviving APs to attempt a localization fix."""


class SolverDivergenceError(SolverError):
    """Every solver in a guardrail fallback chain diverged or failed."""
