"""NLOS bias sweep: how consensus localization degrades with bias.

Sweeps the single-AP NLOS bias magnitude and compares the blind
trust-weighted fix (which averages the corrupted bearing in) against
the consensus fix (which detects and excludes it).  The interesting
regime starts at the drill's detectability floor (15°): below that, a
biased bearing is statistically indistinguishable from the honest
AoA-estimation noise of the synthetic pipeline (±8–11° at the high
band), so the sweep anchors at a clean baseline row instead of
sweeping sub-floor biases that no detector could separate.

``format_sweep_table`` renders the markdown table EXPERIMENTS.md
embeds; ``roarray``'s CI ``nlos-smoke`` job regenerates it at reduced
scale to catch drift.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.exceptions import ConfigurationError
from repro.faults.nlos import run_nlos_drill
from repro.obs.tracer import NULL_TRACER

#: Bias magnitudes swept by default — the detectability floor upward.
DEFAULT_BIASES: tuple[float, ...] = (15.0, 18.0, 22.0, 30.0)


@dataclass(frozen=True)
class NlosSweepPoint:
    """One bias magnitude's blind-vs-consensus comparison."""

    bias_deg: float
    clean_median_m: float
    blind_median_m: float
    consensus_median_m: float
    detection_rate: float | None
    false_flag_rate: float | None

    def to_dict(self) -> dict:
        return {
            "bias_deg": self.bias_deg,
            "clean_median_m": self.clean_median_m,
            "blind_median_m": self.blind_median_m,
            "consensus_median_m": self.consensus_median_m,
            "detection_rate": self.detection_rate,
            "false_flag_rate": self.false_flag_rate,
        }


@dataclass
class NlosSweepResult:
    """The full sweep plus the working point it ran at."""

    points: list[NlosSweepPoint] = field(default_factory=list)
    n_trials: int = 0
    seed: int = 0

    def to_dict(self) -> dict:
        return {
            "n_trials": self.n_trials,
            "seed": self.seed,
            "points": [point.to_dict() for point in self.points],
        }


def run_nlos_sweep(
    *,
    biases: tuple[float, ...] = DEFAULT_BIASES,
    n_trials: int = 10,
    seed: int = 0,
    workers: int = 0,
    config=None,
    tracer=NULL_TRACER,
    checkpoint_dir=None,
    **drill_options,
) -> NlosSweepResult:
    """Sweep single-AP NLOS bias and collect blind/consensus medians.

    Each bias point reruns the ``nlos_single_ap`` drill with the same
    seed, so the scenes, SNR draws, and honest measurements are
    identical across the sweep — the only variable is the corruption
    magnitude.  A bias-zero baseline row (clean fix, nothing to
    detect) is prepended from the first drill's clean statistics.
    """
    if not biases:
        raise ConfigurationError("biases must be a non-empty sequence")
    if any(b < 15.0 for b in biases):
        raise ConfigurationError(
            f"swept biases must be >= 15 (the drill's detectability floor), got {biases}"
        )
    result = NlosSweepResult(n_trials=n_trials, seed=seed)
    with tracer.span("experiment", name="nlos_sweep", n_points=len(biases)):
        for bias in biases:
            drill = run_nlos_drill(
                "nlos_single_ap",
                n_trials=n_trials,
                bias_deg=float(bias),
                seed=seed,
                workers=workers,
                config=config,
                tracer=tracer,
                checkpoint_dir=checkpoint_dir,
                **drill_options,
            )
            criteria = drill.criteria
            if not result.points:
                # Baseline: no corruption — blind and consensus both see
                # honest measurements, so both sit at the clean median.
                result.points.append(
                    NlosSweepPoint(
                        bias_deg=0.0,
                        clean_median_m=criteria["clean_median_m"],
                        blind_median_m=criteria["clean_median_m"],
                        consensus_median_m=criteria["clean_median_m"],
                        detection_rate=None,
                        false_flag_rate=None,
                    )
                )
            result.points.append(
                NlosSweepPoint(
                    bias_deg=float(bias),
                    clean_median_m=criteria["clean_median_m"],
                    blind_median_m=criteria["blind_median_m"],
                    consensus_median_m=criteria["consensus_median_m"],
                    detection_rate=criteria["detection_rate"],
                    false_flag_rate=criteria["false_flag_rate"],
                )
            )
    return result


def format_sweep_table(result: NlosSweepResult) -> str:
    """Render the sweep as the markdown table EXPERIMENTS.md embeds."""
    lines = [
        "| Bias (°) | Blind median (m) | Consensus median (m) | Detection | False flags |",
        "| --- | --- | --- | --- | --- |",
    ]
    for point in result.points:
        detection = "—" if point.detection_rate is None else f"{point.detection_rate:.0%}"
        false_flags = (
            "—" if point.false_flag_rate is None else f"{point.false_flag_rate:.0%}"
        )
        label = "0 (clean)" if point.bias_deg == 0.0 else f"{point.bias_deg:g}"
        lines.append(
            f"| {label} | {point.blind_median_m:.2f} | "
            f"{point.consensus_median_m:.2f} | {detection} | {false_flags} |"
        )
    return "\n".join(lines)


def sweep_improvement(result: NlosSweepResult) -> float:
    """Median blind/consensus error ratio over the corrupted points."""
    ratios = [
        point.blind_median_m / point.consensus_median_m
        for point in result.points
        if point.bias_deg > 0.0 and point.consensus_median_m > 0.0
    ]
    return float(np.median(ratios)) if ratios else float("nan")
