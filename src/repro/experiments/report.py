"""Deprecated shim — the report moved to :mod:`repro.experiments.reporting`.

Importing this module keeps working but warns; switch to::

    from repro.experiments.reporting import generate_report
"""

from __future__ import annotations

import warnings

from repro.experiments.reporting.markdown import (  # noqa: F401
    SYSTEMS,
    ReportScale,
    generate_report,
)

warnings.warn(
    "repro.experiments.report is deprecated; import from "
    "repro.experiments.reporting instead",
    DeprecationWarning,
    stacklevel=2,
)

__all__ = ["SYSTEMS", "ReportScale", "generate_report"]
