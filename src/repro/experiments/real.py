"""Experiment driver for real (captured) traces.

Synthetic drivers score against the scene they generated; a real
capture carries its ground truth in the dataset registry instead (site
survey: true client spot, LoS AoA, the capturing AP's mount).  This
driver runs any mix of unified trace sources — ``dataset://`` refs,
``.dat``/``.mat``/``.npz`` files, even ``synthetic://`` specs — through
the same parallel batch runtime and scoring the paper's drivers use,
and optionally fuses dataset-backed observations into a position fix.

The result is deterministic for any worker count and composes with
``checkpoint_dir`` exactly like the synthetic sweeps.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.channel.trace import CsiTrace
from repro.exceptions import ConfigurationError
from repro.obs import NULL_TRACER


@dataclass(frozen=True)
class RealTraceOutcome:
    """One trace's scored analysis."""

    label: str
    ok: bool
    aoa_deg: float | None = None
    toa_s: float | None = None
    n_paths: int = 0
    truth_aoa_deg: float | None = None
    aoa_error_deg: float | None = None
    error: str | None = None

    def to_dict(self) -> dict:
        return {
            "label": self.label,
            "ok": self.ok,
            "aoa_deg": self.aoa_deg,
            "toa_s": self.toa_s,
            "n_paths": self.n_paths,
            "truth_aoa_deg": self.truth_aoa_deg,
            "aoa_error_deg": self.aoa_error_deg,
            "error": self.error,
        }


@dataclass(frozen=True)
class RealTraceResult:
    """Everything one real-trace run produced."""

    system: str
    outcomes: tuple[RealTraceOutcome, ...]
    fix: dict | None
    report: object

    @property
    def ok(self) -> bool:
        return all(outcome.ok for outcome in self.outcomes)

    def to_dict(self) -> dict:
        return {
            "system": self.system,
            "outcomes": [outcome.to_dict() for outcome in self.outcomes],
            "fix": self.fix,
            "report": self.report.to_dict() if hasattr(self.report, "to_dict") else None,
        }


def run_real_trace_experiment(
    sources,
    *,
    system=None,
    registry=None,
    stages="default",
    workers: int = 0,
    seed: int = 0,
    resolution_m: float = 0.1,
    localize: bool = False,
    tracer=NULL_TRACER,
    checkpoint_dir=None,
) -> RealTraceResult:
    """Analyze captured traces and score them against registry truth.

    Parameters
    ----------
    sources:
        Unified trace sources (anything :func:`repro.io.open_traces`
        accepts); each may fan out to several traces.
    system:
        An AP-level estimator; default
        :class:`~repro.core.pipeline.RoArrayEstimator`.
    registry:
        A :class:`~repro.io.DatasetRegistry` or its root path, for
        ``dataset://`` sources.
    stages:
        ``"default"`` applies each format's default preprocessing
        (STO removal for real captures, the quarantine gate always);
        ``None`` analyzes raw; a list of
        :class:`~repro.io.PreprocessingStage` applies verbatim.
    localize:
        Fuse the per-AP estimates into a position fix.  Requires every
        source to be a ``dataset://`` reference whose manifest records
        AP geometry; raises :class:`ConfigurationError` otherwise.
    """
    from repro.experiments.runner import _journal_policy
    from repro.io import DatasetRegistry, open_traces, resolve_source
    from repro.io.stages import default_stages, run_stages
    from repro.runtime.batch import BatchEvaluator

    if system is None:
        from repro.core.pipeline import RoArrayEstimator

        system = RoArrayEstimator(tracer=tracer)

    sources = list(sources)
    reg = registry if isinstance(registry, DatasetRegistry) else None
    labels: list[str] = []
    traces: list[CsiTrace] = []
    entries: list = []  # DatasetEntry | None, aligned with traces
    with tracer.span("experiment", name="real_trace", n_sources=len(sources)):
        for source in sources:
            entry = None
            if not isinstance(source, CsiTrace):
                resolved = resolve_source(str(source))
                if resolved.kind == "dataset":
                    if reg is None:
                        reg = DatasetRegistry(registry)
                    entry = reg.entry(resolved.dataset)
            for label, trace in open_traces(source, registry=reg if reg is not None else registry):
                if stages == "default":
                    trace = run_stages(
                        trace, default_stages(trace.source_format), tracer=tracer
                    )[0]
                elif stages:
                    trace = run_stages(trace, list(stages), tracer=tracer)[0]
                labels.append(label)
                traces.append(trace)
                entries.append(entry)
        if not traces:
            raise ConfigurationError("run_real_trace_experiment needs at least one trace")

        evaluator = BatchEvaluator(system, workers=workers, base_seed=seed, tracer=tracer)
        batch = evaluator.evaluate(
            traces,
            checkpoint=_journal_policy(checkpoint_dir, "real_trace", "real_trace"),
        )

        outcomes = []
        for label, trace, outcome in zip(labels, traces, batch.outcomes):
            truth = None if np.isnan(trace.direct_aoa_deg) else float(trace.direct_aoa_deg)
            if outcome.ok:
                aoa = float(outcome.analysis.direct.aoa_deg)
                toa = outcome.analysis.direct.toa_s
                outcomes.append(
                    RealTraceOutcome(
                        label=label,
                        ok=True,
                        aoa_deg=aoa,
                        toa_s=None if np.isnan(toa) else float(toa),
                        n_paths=int(outcome.analysis.direct.n_paths),
                        truth_aoa_deg=truth,
                        aoa_error_deg=None if truth is None else abs(aoa - truth),
                    )
                )
            else:
                outcomes.append(
                    RealTraceOutcome(
                        label=label,
                        ok=False,
                        truth_aoa_deg=truth,
                        error=f"{outcome.failure.error_type}: {outcome.failure.message}",
                    )
                )

        fix = None
        if localize:
            fix = _fuse_fix(
                entries, traces, batch.outcomes, resolution_m=resolution_m, tracer=tracer
            )
    return RealTraceResult(
        system=system.name, outcomes=tuple(outcomes), fix=fix, report=batch.report
    )


def _fuse_fix(entries, traces, outcomes, *, resolution_m, tracer=NULL_TRACER):
    """Fuse dataset-backed AP estimates into one weighted-AoA fix."""
    from repro.channel.geometry import Room
    from repro.core.localization import ApObservation, localize_weighted_aoa

    observations = []
    room = None
    truth = None
    for entry, trace, outcome in zip(entries, traces, outcomes):
        if entry is None or entry.access_point() is None:
            raise ConfigurationError(
                "localize=True needs every source to be a dataset:// reference "
                "with AP geometry in the registry"
            )
        if not outcome.ok:
            continue
        observations.append(
            ApObservation(
                entry.access_point(),
                float(outcome.analysis.direct.aoa_deg),
                float(trace.rssi_dbm),
            )
        )
        dims = entry.ground_truth.get("room")
        if dims is not None:
            room = Room(width=float(dims[0]), depth=float(dims[1]))
        client = entry.ground_truth.get("client")
        if client is not None:
            truth = (float(client[0]), float(client[1]))
    if len(observations) < 2:
        raise ConfigurationError(
            f"need at least 2 successful AP observations to localize, "
            f"have {len(observations)}"
        )
    with tracer.span("localization", n_aps=len(observations)) as span:
        fix = localize_weighted_aoa(observations, room or Room(), resolution_m=resolution_m)
        payload = {
            "position": [float(fix.position[0]), float(fix.position[1])],
            "n_aps": len(observations),
        }
        if truth is not None:
            payload["truth"] = list(truth)
            payload["error_m"] = float(fix.error_to(truth))
            span.annotate(location_error_m=payload["error_m"])
    return payload
