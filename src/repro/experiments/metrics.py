"""Error statistics: the CDFs, medians and percentiles the paper reports."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.exceptions import ConfigurationError


@dataclass
class ErrorCdf:
    """An empirical error distribution.

    Wraps a sample of non-negative errors (meters or degrees) and
    exposes exactly the statistics the paper's figures use: the
    empirical CDF curve, the median, and arbitrary percentiles (the
    paper quotes medians and 90th percentiles).
    """

    samples: np.ndarray

    def __post_init__(self) -> None:
        self.samples = np.asarray(self.samples, dtype=float).ravel()
        if self.samples.size == 0:
            raise ConfigurationError("an error CDF needs at least one sample")
        if np.any(self.samples < 0) or not np.all(np.isfinite(self.samples)):
            raise ConfigurationError("error samples must be finite and non-negative")

    def __len__(self) -> int:
        return self.samples.size

    @property
    def median(self) -> float:
        return float(np.median(self.samples))

    def percentile(self, q: float) -> float:
        if not 0 <= q <= 100:
            raise ConfigurationError(f"percentile must be in [0, 100], got {q}")
        return float(np.percentile(self.samples, q))

    @property
    def mean(self) -> float:
        return float(np.mean(self.samples))

    def cdf_points(self) -> tuple[np.ndarray, np.ndarray]:
        """(sorted errors, cumulative fractions) — the paper's CDF curves."""
        ordered = np.sort(self.samples)
        fractions = np.arange(1, ordered.size + 1) / ordered.size
        return ordered, fractions

    def fraction_below(self, threshold: float) -> float:
        """P(error ≤ threshold)."""
        return float(np.mean(self.samples <= threshold))

    def to_dict(self) -> dict:
        """JSON-ready view (round-trips through :meth:`from_dict`)."""
        return {"samples": self.samples.tolist()}

    @classmethod
    def from_dict(cls, payload: dict) -> "ErrorCdf":
        return cls(samples=np.asarray(payload["samples"], dtype=float))


def summarize_systems(errors_by_system: dict[str, ErrorCdf], *, unit: str = "m") -> str:
    """A plain-text table of median / 90th percentile per system."""
    lines = [f"{'system':<12} {'median':>10} {'p90':>10}  (n)"]
    for name, cdf in errors_by_system.items():
        lines.append(
            f"{name:<12} {cdf.median:>8.2f} {unit} {cdf.percentile(90):>8.2f} {unit}  ({len(cdf)})"
        )
    return "\n".join(lines)
