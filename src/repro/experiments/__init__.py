"""Evaluation harness reproducing the paper's figures.

* :mod:`~repro.experiments.metrics` — error CDFs, medians, percentiles.
* :mod:`~repro.experiments.scenarios` — the classroom testbed (18 m ×
  12 m room, wall-mounted APs, random client spots and scatterers) and
  the paper's three SNR bands.
* :mod:`~repro.experiments.runner` — per-figure experiment drivers;
  every benchmark in ``benchmarks/`` is a thin wrapper around one of
  these.
* :mod:`~repro.experiments.reporting` — rendering: the markdown
  evaluation report, plain-text tables/series mirroring what the
  paper's figures plot, and CLI output helpers.
"""

from repro.experiments.metrics import ErrorCdf, summarize_systems
from repro.experiments.nlos import (
    NlosSweepPoint,
    NlosSweepResult,
    format_sweep_table,
    run_nlos_sweep,
)
from repro.experiments.real import (
    RealTraceOutcome,
    RealTraceResult,
    run_real_trace_experiment,
)
from repro.experiments.reporting import generate_report
from repro.experiments.runner import (
    LocalizationOutcome,
    SnrBandResult,
    run_ap_density_experiment,
    run_calibration_experiment,
    run_fusion_experiment,
    run_iteration_progress_experiment,
    run_music_snr_experiment,
    run_polarization_experiment,
    run_snr_band_experiment,
)
from repro.experiments.scenarios import (
    SNR_BANDS,
    SnrBand,
    build_random_scene,
    classroom_access_points,
    classroom_room,
)

__all__ = [
    "SNR_BANDS",
    "ErrorCdf",
    "LocalizationOutcome",
    "NlosSweepPoint",
    "NlosSweepResult",
    "RealTraceOutcome",
    "RealTraceResult",
    "SnrBand",
    "SnrBandResult",
    "build_random_scene",
    "classroom_access_points",
    "classroom_room",
    "format_sweep_table",
    "generate_report",
    "run_ap_density_experiment",
    "run_calibration_experiment",
    "run_fusion_experiment",
    "run_iteration_progress_experiment",
    "run_music_snr_experiment",
    "run_nlos_sweep",
    "run_polarization_experiment",
    "run_snr_band_experiment",
    "summarize_systems",
]
