"""Console output for the ``roarray`` CLI.

Every CLI handler routes its output through :func:`emit` /
:func:`emit_json` instead of bare ``print`` calls, so the rendering
(and the ``--json`` escape hatch) lives in one place.
"""

from __future__ import annotations

import json
import sys
from typing import Any, TextIO


def emit(text: str, *, stream: TextIO | None = None) -> None:
    """Write one human-readable block (newline-terminated)."""
    out = sys.stdout if stream is None else stream
    out.write(text if text.endswith("\n") else text + "\n")


def emit_json(payload: Any, *, stream: TextIO | None = None) -> None:
    """Write ``payload`` as indented JSON (``--json`` mode)."""
    out = sys.stdout if stream is None else stream
    json.dump(payload, out, indent=2, sort_keys=True)
    out.write("\n")


def format_cost_table(rollup: dict[str, dict[str, float]]) -> str:
    """Plain-text per-span cost table from :meth:`Tracer.aggregate`."""
    if not rollup:
        return "no spans recorded"
    lines = [f"{'span':<18} {'count':>6} {'wall (s)':>10} {'cpu (s)':>10}"]
    for name in sorted(rollup, key=lambda n: rollup[n]["wall_s"], reverse=True):
        entry = rollup[name]
        lines.append(
            f"{name:<18} {int(entry['count']):>6} {entry['wall_s']:>10.3f} "
            f"{entry['cpu_s']:>10.3f}"
        )
    return "\n".join(lines)
