"""Rendering of experiment results, in one place.

* :mod:`~repro.experiments.reporting.markdown` — the one-command
  evaluation report (``roarray report``).
* :mod:`~repro.experiments.reporting.text` — plain-text tables / CDF
  series / ASCII spectra for benchmark logs.
* :mod:`~repro.experiments.reporting.console` — CLI output helpers
  (``emit`` / ``emit_json`` and the telemetry cost table).

This package replaces the former flat modules
``repro.experiments.report`` (markdown) and
``repro.experiments.reporting`` (text).  The old surfaces still work
but emit :class:`DeprecationWarning`: importing
``repro.experiments.report``, and accessing the text helpers
(``format_cdf_series`` / ``format_comparison`` /
``format_spectrum_ascii``) at this package's top level instead of via
:mod:`~repro.experiments.reporting.text`.
"""

from __future__ import annotations

import warnings

from repro.experiments.reporting.console import emit, emit_json, format_cost_table
from repro.experiments.reporting.markdown import (
    SYSTEMS,
    ReportScale,
    format_degradation_table,
    generate_report,
)

#: Names the flat pre-package module exported, now homed in ``.text``.
_MOVED_TO_TEXT = ("format_cdf_series", "format_comparison", "format_spectrum_ascii")

__all__ = [
    "SYSTEMS",
    "ReportScale",
    "emit",
    "emit_json",
    "format_cost_table",
    "format_degradation_table",
    "generate_report",
    *_MOVED_TO_TEXT,
]


def __getattr__(name: str):
    if name in _MOVED_TO_TEXT:
        warnings.warn(
            f"repro.experiments.reporting.{name} is deprecated; import it "
            f"from repro.experiments.reporting.text",
            DeprecationWarning,
            stacklevel=2,
        )
        from repro.experiments.reporting import text

        return getattr(text, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
