"""Rendering of experiment results, in one place.

* :mod:`~repro.experiments.reporting.markdown` — the one-command
  evaluation report (``roarray report``).
* :mod:`~repro.experiments.reporting.text` — plain-text tables / CDF
  series / ASCII spectra for benchmark logs.
* :mod:`~repro.experiments.reporting.console` — CLI output helpers
  (``emit`` / ``emit_json`` and the telemetry cost table).

This package is the only import surface: the former flat modules
``repro.experiments.report`` (markdown) and the top-level re-exports of
the text helpers (``format_cdf_series`` / ``format_comparison`` /
``format_spectrum_ascii``) went through a deprecation cycle and are
gone — import the text helpers from
:mod:`repro.experiments.reporting.text` directly.
"""

from __future__ import annotations

from repro.experiments.reporting.console import emit, emit_json, format_cost_table
from repro.experiments.reporting.markdown import (
    SYSTEMS,
    ReportScale,
    format_degradation_table,
    generate_report,
)

__all__ = [
    "SYSTEMS",
    "ReportScale",
    "emit",
    "emit_json",
    "format_cost_table",
    "format_degradation_table",
    "generate_report",
]
