"""Plain-text rendering of experiment results.

The benchmarks print these blocks so the regenerated "figures" are
readable in CI logs; EXPERIMENTS.md records them next to the paper's
numbers.
"""

from __future__ import annotations

import numpy as np

from repro.experiments.metrics import ErrorCdf
from repro.spectral.spectrum import AngleSpectrum


def format_cdf_series(cdf: ErrorCdf, *, thresholds: tuple[float, ...], unit: str = "m") -> str:
    """One CDF curve as 'P(err <= t)' rows — the figures' y-axis samples."""
    rows = [f"  P(err <= {t:g} {unit}) = {cdf.fraction_below(t):.2f}" for t in thresholds]
    return "\n".join(rows)


def format_comparison(
    cdfs: dict[str, ErrorCdf], *, unit: str = "m", thresholds: tuple[float, ...] = ()
) -> str:
    """Median/90th table plus optional CDF samples for several systems."""
    lines = []
    for name, cdf in cdfs.items():
        lines.append(
            f"{name:<12} median={cdf.median:.2f} {unit}  p90={cdf.percentile(90):.2f} {unit}  n={len(cdf)}"
        )
        if thresholds:
            lines.append(format_cdf_series(cdf, thresholds=thresholds, unit=unit))
    return "\n".join(lines)


def format_spectrum_ascii(spectrum: AngleSpectrum, *, width: int = 60, height: int = 8) -> str:
    """A small ASCII rendering of an AoA spectrum (for logs, not plots)."""
    normalized = spectrum.normalized()
    n = normalized.power.size
    bins = np.array_split(np.arange(n), width)
    columns = np.array([normalized.power[b].max() if b.size else 0.0 for b in bins])
    rows = []
    for level in range(height, 0, -1):
        threshold = (level - 0.5) / height
        rows.append("".join("#" if c >= threshold else " " for c in columns))
    axis = f"{spectrum.angles_deg[0]:.0f}°{' ' * (width - 10)}{spectrum.angles_deg[-1]:.0f}°"
    return "\n".join(rows + [axis])


def format_checkpoint_status(statuses) -> str:
    """Per-journal progress lines for ``roarray resume``.

    ``statuses`` is what :func:`repro.runtime.checkpoint_status`
    returns; each journal becomes one ``experiment: done/total (pp%)``
    row, with complete journals marked so the user can tell at a glance
    what is left.
    """
    lines = []
    for status in statuses:
        marker = "done" if status.complete else f"{status.percent_complete:.1f}%"
        lines.append(
            f"{status.experiment:<28} {status.n_recorded}/{status.n_jobs} jobs ({marker})"
        )
    return "\n".join(lines)
