"""One-command evaluation report.

:func:`generate_report` runs every experiment the paper's evaluation
contains (at a configurable scale) and renders a single markdown
document with the measured numbers — the programmatic counterpart of
EXPERIMENTS.md.  Used by ``roarray report`` and by the release
check-list; at ``scale=1`` it finishes in a few minutes on a laptop.
"""

from __future__ import annotations

import io
from dataclasses import dataclass

from repro.experiments.runner import (
    run_ap_density_experiment,
    run_calibration_experiment,
    run_fusion_experiment,
    run_iteration_progress_experiment,
    run_music_snr_experiment,
    run_polarization_experiment,
    run_snr_band_experiment,
)
from repro.obs import NULL_TRACER, Tracer

SYSTEMS = ("ROArray", "SpotFi", "ArrayTrack")


@dataclass(frozen=True)
class ReportScale:
    """Sample sizes for one report run.

    ``scale=1`` is the smoke setting; ``scale=5`` approaches the
    paper's 300-location campaign.
    """

    locations_per_band: int = 6
    packets_per_fix: int = 8
    ap_density_locations: int = 5
    calibration_locations: int = 4
    polarization_locations: int = 5

    @classmethod
    def from_factor(cls, scale: int) -> "ReportScale":
        if scale < 1:
            raise ValueError(f"scale must be >= 1, got {scale}")
        return cls(
            locations_per_band=6 * scale,
            packets_per_fix=8,
            ap_density_locations=5 * scale,
            calibration_locations=4 * scale,
            polarization_locations=5 * scale,
        )


def _write_band_sections(out: io.StringIO, scale: ReportScale, seed: int, tracer) -> None:
    out.write("## Figs. 6 & 7 — three-system comparison across SNR bands\n\n")
    out.write("| band | system | loc median (m) | loc p90 (m) | AoA median (°) |\n")
    out.write("|---|---|---|---|---|\n")
    for band in ("high", "medium", "low"):
        result = run_snr_band_experiment(
            band,
            n_locations=scale.locations_per_band,
            n_packets=scale.packets_per_fix,
            seed=seed,
            tracer=tracer,
        )
        for system in SYSTEMS:
            loc = result.cdf(system)
            aoa = result.cdf(system, kind="direct_aoa")
            out.write(
                f"| {band} | {system} | {loc.median:.2f} | {loc.percentile(90):.2f} "
                f"| {aoa.median:.1f} |\n"
            )
    out.write("\n")


def _write_fig2_section(out: io.StringIO, seed: int, tracer) -> None:
    out.write("## Fig. 2 — MUSIC (SpotFi) spectra vs SNR\n\n")
    out.write("| SNR (dB) | closest-peak error (°) | sharpness |\n|---|---|---|\n")
    for point in run_music_snr_experiment(seed=seed, tracer=tracer):
        out.write(
            f"| {point.snr_db:+.0f} | {point.closest_peak_error_deg:.1f} "
            f"| {point.sharpness:.3f} |\n"
        )
    out.write("\n")


def _write_fig3_section(out: io.StringIO, seed: int, tracer) -> None:
    out.write("## Fig. 3 — sparse spectrum vs solver iterations\n\n")
    out.write("| iterations | closest-peak error (°) | sharpness |\n|---|---|---|\n")
    for point in run_iteration_progress_experiment(
        iteration_counts=(3, 10, 30, 100), seed=1, tracer=tracer
    ):
        out.write(
            f"| {point.iterations} | {point.closest_peak_error_deg:.1f} "
            f"| {point.sharpness:.3f} |\n"
        )
    out.write("\n")


def _write_fig4_section(out: io.StringIO, seed: int, tracer) -> None:
    out.write("## Fig. 4 — single packets vs multi-packet fusion\n\n")
    result = run_fusion_experiment(n_packets=20, seed=seed, tracer=tracer)
    for i, (toa, error) in enumerate(
        zip(result.single_direct_toas_s, result.single_direct_aoa_errors_deg)
    ):
        out.write(
            f"- packet {chr(ord('A') + i)}: direct ToA {toa * 1e9:.0f} ns, "
            f"AoA error {error:.1f}°\n"
        )
    out.write(
        f"- fused: AoA error {result.fused_direct_aoa_error_deg:.1f}°, "
        f"sharpness {result.fused_sharpness:.3f}\n\n"
    )


def _write_fig8_sections(out: io.StringIO, scale: ReportScale, seed: int, tracer) -> None:
    out.write("## Fig. 8a — accuracy vs number of APs (ROArray)\n\n")
    out.write("| #APs | median (m) | p90 (m) |\n|---|---|---|\n")
    density = run_ap_density_experiment(
        n_locations=scale.ap_density_locations, seed=seed, tracer=tracer
    )
    for n_aps in sorted(density, reverse=True):
        cdf = density[n_aps]
        out.write(f"| {n_aps} | {cdf.median:.2f} | {cdf.percentile(90):.2f} |\n")
    out.write("\n## Fig. 8b — calibration schemes\n\n")
    out.write("| scheme | median (m) | p90 (m) |\n|---|---|---|\n")
    calibration = run_calibration_experiment(
        n_locations=scale.calibration_locations, seed=seed, tracer=tracer
    )
    for mode, cdf in calibration.items():
        out.write(f"| {mode} | {cdf.median:.2f} | {cdf.percentile(90):.2f} |\n")
    out.write("\n## Fig. 8c — polarization deviation (ROArray)\n\n")
    out.write("| deviation | median (m) | p90 (m) |\n|---|---|---|\n")
    polarization = run_polarization_experiment(
        n_locations=scale.polarization_locations, seed=seed, tracer=tracer
    )
    for deviation_range, cdf in polarization.items():
        label = f"{deviation_range[0]:.0f}–{deviation_range[1]:.0f}°"
        out.write(f"| {label} | {cdf.median:.2f} | {cdf.percentile(90):.2f} |\n")
    out.write("\n")


def format_degradation_table(rows: list[dict]) -> str:
    """Render chaos degradation rows as a markdown table.

    ``rows`` are the plain dicts of
    ``repro.faults.ChaosResult.degradation_rows()`` (duck-typed here so
    the reporting layer needs no ``repro.faults`` import): ``location``,
    ``clean_error_m``, ``degraded_error_m`` (``None`` when the location
    fell below quorum), ``confidence``, ``used_aps``, ``dropped_aps``.
    """
    out = io.StringIO()
    out.write(
        "| location | clean error (m) | degraded error (m) | confidence "
        "| used APs | dropped APs |\n"
    )
    out.write("|---|---|---|---|---|---|\n")
    for row in rows:
        degraded = row.get("degraded_error_m")
        confidence = row.get("confidence")
        out.write(
            f"| {row['location']} "
            f"| {row['clean_error_m']:.2f} "
            f"| {'no fix' if degraded is None else f'{degraded:.2f}'} "
            f"| {'—' if confidence is None else f'{confidence:.2f}'} "
            f"| {', '.join(row.get('used_aps', [])) or '—'} "
            f"| {', '.join(row.get('dropped_aps', [])) or '—'} |\n"
        )
    return out.getvalue()


def _write_telemetry_section(out: io.StringIO, tracer) -> None:
    """Per-span cost rollup (appendix of ``roarray report --telemetry``)."""
    out.write("## Telemetry — where the time went\n\n")
    rollup = tracer.aggregate()
    if not rollup:
        out.write("No spans recorded.\n\n")
        return
    out.write("| span | count | wall (s) | cpu (s) |\n|---|---|---|---|\n")
    for name in sorted(rollup, key=lambda n: rollup[n]["wall_s"], reverse=True):
        entry = rollup[name]
        out.write(
            f"| {name} | {int(entry['count'])} | {entry['wall_s']:.3f} "
            f"| {entry['cpu_s']:.3f} |\n"
        )
    out.write("\n")


def generate_report(
    *,
    scale: int = 1,
    seed: int = 2017,
    sections: tuple[str, ...] | None = None,
    tracer=NULL_TRACER,
    telemetry: bool = False,
) -> str:
    """Run the evaluation and return the markdown report.

    Parameters
    ----------
    scale:
        Location-count multiplier (1 = smoke run).
    seed:
        Master seed; the report is reproducible given (scale, seed).
    sections:
        Optional subset of {"fig2", "fig3", "fig4", "bands", "fig8"};
        all when omitted.
    tracer:
        Optional :class:`repro.obs.Tracer`; spans from every experiment
        driver land in it.  Defaults to the zero-overhead null tracer.
    telemetry:
        When true, append a per-span cost table to the report.  If no
        recording ``tracer`` was passed, a private one is created so the
        table still has data.
    """
    wanted = set(sections) if sections is not None else {"fig2", "fig3", "fig4", "bands", "fig8"}
    unknown = wanted - {"fig2", "fig3", "fig4", "bands", "fig8"}
    if unknown:
        raise ValueError(f"unknown report sections: {sorted(unknown)}")
    report_scale = ReportScale.from_factor(scale)
    if telemetry and not getattr(tracer, "enabled", False):
        tracer = Tracer()

    out = io.StringIO()
    out.write("# ROArray evaluation report\n\n")
    out.write(
        f"Synthetic-testbed reproduction of ICDCS'17 Figs. 2–8 "
        f"(scale={scale}, seed={seed}).  See EXPERIMENTS.md for the "
        "paper-vs-measured discussion.\n\n"
    )
    if "fig2" in wanted:
        _write_fig2_section(out, seed, tracer)
    if "fig3" in wanted:
        _write_fig3_section(out, seed, tracer)
    if "fig4" in wanted:
        _write_fig4_section(out, seed, tracer)
    if "bands" in wanted:
        _write_band_sections(out, report_scale, seed, tracer)
    if "fig8" in wanted:
        _write_fig8_sections(out, report_scale, seed, tracer)
    if telemetry:
        _write_telemetry_section(out, tracer)
    return out.getvalue()
