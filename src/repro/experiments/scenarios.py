"""The synthetic classroom testbed and SNR regimes.

The paper's testbed (Fig. 5) is an 18 m × 12 m classroom with six
3-antenna APs and 300 tested client locations; scenarios are binned by
SNR into high (≥15 dB), medium ((2, 15) dB) and low (≤2 dB) regimes
(§IV-B).  This module generates matching synthetic scenes: APs on the
walls facing inward, clients sampled uniformly inside a safety margin,
and a few random scatterers so every link sees a rich multipath
profile.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.channel.geometry import AccessPoint, Room, Scene
from repro.exceptions import ConfigurationError


def classroom_room(*, reflection_coefficient: float = 0.5) -> Room:
    """The 18 m × 12 m room of paper Fig. 5."""
    return Room(width=18.0, depth=12.0, reflection_coefficient=reflection_coefficient)


def classroom_access_points(n_aps: int = 6, room: Room | None = None) -> list[AccessPoint]:
    """Wall-mounted APs with array axes along their wall, facing inward.

    The first six placements mimic a practical deployment: one AP per
    short wall, two per long wall.  ``n_aps < 6`` keeps a well-spread
    prefix (used by the Fig. 8a AP-density sweep).
    """
    room = room or classroom_room()
    w, d = room.width, room.depth
    placements = [
        AccessPoint(position=(0.0, d / 2), axis_direction_deg=90.0, name="ap-west"),
        AccessPoint(position=(w, d / 2), axis_direction_deg=90.0, name="ap-east"),
        AccessPoint(position=(w / 4, 0.0), axis_direction_deg=0.0, name="ap-south-1"),
        AccessPoint(position=(3 * w / 4, d), axis_direction_deg=0.0, name="ap-north-2"),
        AccessPoint(position=(3 * w / 4, 0.0), axis_direction_deg=0.0, name="ap-south-2"),
        AccessPoint(position=(w / 4, d), axis_direction_deg=0.0, name="ap-north-1"),
    ]
    if not 1 <= n_aps <= len(placements):
        raise ConfigurationError(f"n_aps must be in [1, {len(placements)}], got {n_aps}")
    return placements[:n_aps]


def sample_client_position(rng: np.random.Generator, room: Room, *, margin: float = 1.0) -> tuple[float, float]:
    """A client location uniformly inside the room, away from the walls."""
    if margin * 2 >= min(room.width, room.depth):
        raise ConfigurationError(f"margin {margin} leaves no interior in {room.width}×{room.depth}")
    x = float(rng.uniform(margin, room.width - margin))
    y = float(rng.uniform(margin, room.depth - margin))
    return (x, y)


def sample_scatterers(
    rng: np.random.Generator, room: Room, *, n_scatterers: int = 3, margin: float = 0.5
) -> list[tuple[float, float]]:
    """Random point scatterers (furniture, people) inside the room."""
    return [
        (
            float(rng.uniform(margin, room.width - margin)),
            float(rng.uniform(margin, room.depth - margin)),
        )
        for _ in range(n_scatterers)
    ]


def build_random_scene(
    rng: np.random.Generator,
    *,
    n_aps: int = 6,
    n_scatterers: int = 3,
    room: Room | None = None,
) -> Scene:
    """One random test location in the classroom, with scatterers."""
    room = room or classroom_room()
    return Scene(
        room=room,
        access_points=classroom_access_points(n_aps, room),
        client=sample_client_position(rng, room),
        scatterers=sample_scatterers(rng, room, n_scatterers=n_scatterers),
    )


@dataclass(frozen=True)
class SnrBand:
    """One of the paper's SNR regimes.

    Besides the SNR interval, a band carries the *physical cause* of its
    SNR: low-SNR links are low-SNR because the LoS path is obstructed
    ("far away from APs, serious NLoS, and interference", paper §V), so
    lower bands also draw a direct-path blockage attenuation.  This is
    what makes the regime genuinely hard — reflections rival the direct
    path — rather than merely noisy.
    """

    name: str
    low_db: float
    high_db: float
    blockage_low_db: float = 0.0
    blockage_high_db: float = 0.0

    def __post_init__(self) -> None:
        if self.high_db <= self.low_db:
            raise ConfigurationError(f"empty SNR band [{self.low_db}, {self.high_db}]")
        if self.blockage_low_db < 0 or self.blockage_high_db < self.blockage_low_db:
            raise ConfigurationError(
                f"bad blockage range [{self.blockage_low_db}, {self.blockage_high_db}]"
            )

    def draw(self, rng: np.random.Generator) -> float:
        return float(rng.uniform(self.low_db, self.high_db))

    def draw_blockage(self, rng: np.random.Generator) -> float:
        if self.blockage_high_db == self.blockage_low_db:
            return self.blockage_low_db
        return float(rng.uniform(self.blockage_low_db, self.blockage_high_db))

    def contains(self, snr_db: float) -> bool:
        return self.low_db <= snr_db <= self.high_db


SNR_BANDS: dict[str, SnrBand] = {
    # The paper's bins are high [15, ∞), medium (2, 15), low (−∞, 2];
    # the open ends are truncated to realistic WiFi extremes.  Blockage
    # grows as the SNR drops, reflecting the physical cause.
    "high": SnrBand("high", 15.0, 25.0, 0.0, 2.0),
    "medium": SnrBand("medium", 2.0, 15.0, 2.0, 7.0),
    "low": SnrBand("low", -3.0, 2.0, 6.0, 13.0),
}
