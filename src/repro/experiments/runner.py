"""Per-figure experiment drivers.

Every figure in the paper's evaluation maps to one function here:

====================  ====================================================
paper Fig. 2          :func:`run_music_snr_experiment`
paper Fig. 3          :func:`run_iteration_progress_experiment`
paper Fig. 4          :func:`run_fusion_experiment`
paper Figs. 6 & 7     :func:`run_snr_band_experiment`
paper Fig. 8a         :func:`run_ap_density_experiment`
paper Fig. 8b         :func:`run_calibration_experiment`
paper Fig. 8c         :func:`run_polarization_experiment`
====================  ====================================================

All drivers are deterministic given their ``seed`` and share the same
synthetic classroom substrate; the three systems always see the *same*
traces ("All three methods share the same data", §IV-B).

The spot-sweep drivers (Figs. 6/7, 8a, 8c) accept a ``workers``
argument and fan their per-trace ``analyze`` calls out through
:class:`~repro.runtime.batch.BatchEvaluator`.  Trace synthesis stays on
the driver's single RNG stream (so the data is identical for any worker
count), and the analyses are pure functions of the traces, so every
result is byte-identical to the ``workers=0`` sequential path.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Protocol

import numpy as np

from repro.baselines.arraytrack import ArrayTrackEstimator
from repro.baselines.spotfi import SpotFiEstimator
from repro.channel.array import UniformLinearArray
from repro.channel.csi import CsiSynthesizer
from repro.channel.geometry import Scene
from repro.channel.impairments import ImpairmentModel
from repro.channel.ofdm import intel5300_layout
from repro.channel.trace import CsiTrace
from repro.core.calibration import apply_phase_calibration, calibrate_phase_offsets
from repro.core.config import RoArrayConfig
from repro.core.direct_path import ApAnalysis
from repro.core.grids import AngleGrid, DelayGrid
from repro.core.localization import ApObservation, localize_weighted_aoa
from repro.core.pipeline import RoArrayEstimator
from repro.exceptions import ConfigurationError
from repro.experiments.metrics import ErrorCdf
from repro.experiments.scenarios import SNR_BANDS, SnrBand, build_random_scene
from repro.obs import NULL_TRACER
from repro.spectral.spectrum import AngleSpectrum, JointSpectrum


class ApSystem(Protocol):
    """The interface every compared system implements."""

    name: str

    def analyze(self, trace: CsiTrace) -> ApAnalysis: ...


def evaluation_roarray_config() -> RoArrayConfig:
    """The ROArray working point used throughout the evaluation.

    Matches the paper's reported joint-grid size (§III-C: Nθ = 90,
    Nτ = 50) up to the inclusive endpoint; solver/peak tunables are the
    library defaults (see :class:`repro.core.config.RoArrayConfig`).
    """
    return RoArrayConfig(
        angle_grid=AngleGrid(n_points=91),
        delay_grid=DelayGrid(n_points=50),
    )


def default_systems() -> list[ApSystem]:
    """The paper's three-way comparison set on identical hardware models."""
    return [
        RoArrayEstimator(config=evaluation_roarray_config()),
        SpotFiEstimator(),
        ArrayTrackEstimator(),
    ]


# ---------------------------------------------------------------------------
# Figs. 6 & 7 — localization and AoA error across SNR bands
# ---------------------------------------------------------------------------


@dataclass
class LocalizationOutcome:
    """One system's result at one test location."""

    location_error_m: float
    direct_aoa_errors_deg: list[float]
    closest_aoa_errors_deg: list[float]

    def to_dict(self) -> dict:
        """JSON-ready view (round-trips through :meth:`from_dict`)."""
        return {
            "location_error_m": self.location_error_m,
            "direct_aoa_errors_deg": list(self.direct_aoa_errors_deg),
            "closest_aoa_errors_deg": list(self.closest_aoa_errors_deg),
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "LocalizationOutcome":
        return cls(
            location_error_m=float(payload["location_error_m"]),
            direct_aoa_errors_deg=[float(e) for e in payload["direct_aoa_errors_deg"]],
            closest_aoa_errors_deg=[float(e) for e in payload["closest_aoa_errors_deg"]],
        )


#: The error distributions one band result can produce, keyed by the
#: ``kind`` argument of :meth:`SnrBandResult.cdf`.
CDF_KINDS = ("localization", "aoa", "direct_aoa")


@dataclass
class SnrBandResult:
    """All systems' outcomes over one SNR band's test locations."""

    band: str
    outcomes: dict[str, list[LocalizationOutcome]] = field(default_factory=dict)

    def cdf(self, system: str, kind: str = "localization") -> ErrorCdf:
        """One system's error distribution.

        ``kind`` selects what the paper's figures plot:

        * ``"localization"`` — Fig. 6, location error (meters).
        * ``"aoa"`` — Fig. 7, closest-peak AoA error per AP (degrees).
        * ``"direct_aoa"`` — AoA error of the *chosen* direct path
          (stricter than Fig. 7).
        """
        outcomes = self.outcomes[system]
        if kind == "localization":
            return ErrorCdf(np.array([o.location_error_m for o in outcomes]))
        if kind == "aoa":
            return ErrorCdf(np.array([e for o in outcomes for e in o.closest_aoa_errors_deg]))
        if kind == "direct_aoa":
            return ErrorCdf(np.array([e for o in outcomes for e in o.direct_aoa_errors_deg]))
        raise ConfigurationError(f"kind must be one of {CDF_KINDS}, got {kind!r}")

    def to_dict(self) -> dict:
        """JSON-ready view (round-trips through :meth:`from_dict`)."""
        return {
            "band": self.band,
            "outcomes": {
                system: [o.to_dict() for o in outcomes]
                for system, outcomes in self.outcomes.items()
            },
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "SnrBandResult":
        return cls(
            band=payload["band"],
            outcomes={
                system: [LocalizationOutcome.from_dict(o) for o in outcomes]
                for system, outcomes in payload["outcomes"].items()
            },
        )


def _scene_traces(
    scene: Scene,
    *,
    snr_db_per_ap: list[float],
    n_packets: int,
    impairments: ImpairmentModel,
    rng: np.random.Generator,
    boot_seed: int,
    blockage_db_per_ap: list[float] | None = None,
) -> list[CsiTrace]:
    """Synthesize one trace per AP for a scene (shared by all systems)."""
    array = UniformLinearArray()
    layout = intel5300_layout()
    traces = []
    for index in range(len(scene.access_points)):
        profile = scene.multipath_profile(index, layout.wavelength)
        if blockage_db_per_ap is not None:
            profile = profile.with_direct_attenuation(blockage_db_per_ap[index])
        synthesizer = CsiSynthesizer(array, layout, impairments, seed=boot_seed + index)
        traces.append(
            synthesizer.packets(
                profile, n_packets=n_packets, snr_db=snr_db_per_ap[index], rng=rng
            )
        )
    return traces


def _batch_analyses(
    system: ApSystem,
    traces: list[CsiTrace],
    *,
    workers: int,
    base_seed: int = 0,
    tracer=NULL_TRACER,
    checkpoint=None,
    report_sink: list | None = None,
) -> list[ApAnalysis]:
    """Analyze a flat trace list through the batch runtime.

    ``workers=0`` is in-process sequential; any failure is re-raised
    (matching the old inline-loop semantics, where a solver error
    propagated out of the driver).

    A warm-started estimator (``system.warm_start``) is seeded first:
    the parent cold-solves the first trace once and freezes the
    resulting :class:`~repro.optim.warm.WarmStartState` as the sweep's
    shared seed (:func:`_seed_warm_state`).  The batch runtime resets
    every job to that seed, so each job is a pure function of
    (trace, seed) — warm sweeps run at any worker count and can be
    checkpointed, with results byte-identical across both.

    ``checkpoint`` is a :class:`repro.runtime.CheckpointPolicy`; with
    it, completed analyses are journaled as they finish and a rerun of
    the same driver resumes instead of recomputing (see
    :meth:`repro.runtime.BatchEvaluator.evaluate`).  ``report_sink``,
    when given, receives the batch's
    :class:`~repro.runtime.report.RuntimeReport` (replay counts
    included) so drivers can surface resume progress.
    """
    from repro.runtime.batch import BatchEvaluator

    if getattr(system, "warm_start", False) and traces:
        _seed_warm_state(system, traces[0])
    evaluator = BatchEvaluator(system, workers=workers, base_seed=base_seed, tracer=tracer)
    result = evaluator.evaluate(traces, checkpoint=checkpoint)
    if report_sink is not None:
        report_sink.append(result.report)
    return result.strict_analyses()


def _seed_warm_state(system, trace: CsiTrace) -> None:
    """Freeze a deterministic warm seed onto a warm-started estimator.

    The parent cold-solves ``trace`` once and installs the solution as
    the estimator's :attr:`~repro.core.pipeline.RoArrayEstimator.warm_seed`.
    Every subsequent job — sequential or pooled — resets to this seed
    before solving, which keeps warm-started sweeps deterministic at
    any worker count and sound to checkpoint (the seed rides the
    estimator spec and participates in the journal's config digest).
    """
    if not hasattr(system, "warm_state") or not hasattr(system, "seed_warm_state"):
        return
    system.seed_warm_state(None)
    system.analyze(trace)
    system.seed_warm_state(system.warm_state)


def _journal_policy(checkpoint_dir, name: str, experiment: str, metrics=None):
    """A per-sweep :class:`~repro.runtime.CheckpointPolicy`, or ``None``."""
    if checkpoint_dir is None:
        return None
    from pathlib import Path

    from repro.runtime.checkpoint import CheckpointPolicy

    return CheckpointPolicy(
        path=Path(checkpoint_dir) / f"{name}.jsonl", experiment=experiment, metrics=metrics
    )


def _localize_from_analyses(
    scene: Scene,
    traces: list[CsiTrace],
    analyses: list[ApAnalysis],
    resolution_m: float,
    tracer=NULL_TRACER,
) -> LocalizationOutcome:
    with tracer.span("localization", n_aps=len(traces)) as span:
        observations = [
            ApObservation(
                access_point=scene.access_points[i],
                aoa_deg=analyses[i].direct.aoa_deg,
                rssi_dbm=traces[i].rssi_dbm,
            )
            for i in range(len(traces))
        ]
        located = localize_weighted_aoa(observations, scene.room, resolution_m=resolution_m)
        truths = [scene.ground_truth_aoa(i) for i in range(len(traces))]
        outcome = LocalizationOutcome(
            location_error_m=located.error_to(scene.client),
            direct_aoa_errors_deg=[abs(a.direct.aoa_deg - t) for a, t in zip(analyses, truths)],
            closest_aoa_errors_deg=[a.closest_aoa_error(t) for a, t in zip(analyses, truths)],
        )
        span.annotate(location_error_m=outcome.location_error_m)
    return outcome


def run_snr_band_experiment(
    band: SnrBand | str,
    *,
    n_locations: int = 20,
    n_packets: int = 15,
    n_aps: int = 6,
    seed: int = 0,
    systems: list[ApSystem] | None = None,
    impairments: ImpairmentModel | None = None,
    resolution_m: float = 0.1,
    workers: int = 0,
    warm_start: bool = False,
    tracer=NULL_TRACER,
    checkpoint_dir=None,
) -> SnrBandResult:
    """Paper Figs. 6 & 7: the three-system comparison in one SNR band.

    Every location gets a fresh random scene; all systems analyze the
    *same* traces (15 packets per AP by default, as in §IV-B).  With
    ``workers > 0`` the per-trace analyses fan out over that many
    processes; the result is identical for any worker count.

    With ``warm_start``, estimators that support it seed every trace's
    solve from a shared :class:`~repro.optim.warm.WarmStartState` (the
    first trace's cold solution, frozen by the driver) — the traces
    share grids and statistics, so the solver converges in fewer
    iterations while landing on the same minimizer (results match
    cold-start within solver tolerance).  Because each job warms from
    the same frozen seed, warm sweeps run at any worker count and
    compose with ``checkpoint_dir``, byte-identically.

    ``checkpoint_dir`` makes the sweep durable: each system's batch
    journals its per-trace analyses to
    ``<checkpoint_dir>/snr_band_<band>_<system>.jsonl``, so a killed
    run resumes where it stopped and produces byte-identical results
    (trace synthesis is cheap and deterministic; only the analyses are
    journaled).
    """
    if isinstance(band, str):
        band = SNR_BANDS[band]
    if n_locations < 1:
        raise ConfigurationError(f"n_locations must be >= 1, got {n_locations}")
    systems = systems if systems is not None else default_systems()
    if warm_start:
        for system in systems:
            if hasattr(system, "warm_start"):
                system.warm_start = True
    impairments = impairments or ImpairmentModel()
    rng = np.random.default_rng(seed)

    # Synthesis first, on the single driver RNG stream (order unchanged
    # from the fused loop this replaces), so batching cannot change the
    # data any system sees.
    with tracer.span(
        "experiment", name="snr_band", band=band.name, n_locations=n_locations
    ):
        scenes: list[Scene] = []
        traces_per_location: list[list[CsiTrace]] = []
        with tracer.span("synthesis", n_locations=n_locations, n_aps=n_aps):
            for location in range(n_locations):
                scene = build_random_scene(rng, n_aps=n_aps)
                snrs = [band.draw(rng) for _ in range(n_aps)]
                blockages = [band.draw_blockage(rng) for _ in range(n_aps)]
                scenes.append(scene)
                traces_per_location.append(
                    _scene_traces(
                        scene,
                        snr_db_per_ap=snrs,
                        n_packets=n_packets,
                        impairments=impairments,
                        rng=rng,
                        boot_seed=seed * 10_000 + location * 100,
                        blockage_db_per_ap=blockages,
                    )
                )

        flat_traces = [trace for traces in traces_per_location for trace in traces]
        result = SnrBandResult(band=band.name, outcomes={s.name: [] for s in systems})
        for system in systems:
            with tracer.span("system", name=system.name):
                flat_analyses = _batch_analyses(
                    system,
                    flat_traces,
                    workers=workers,
                    base_seed=seed,
                    tracer=tracer,
                    checkpoint=_journal_policy(
                        checkpoint_dir,
                        f"snr_band_{band.name}_{system.name}",
                        f"snr_band:{band.name}:{system.name}",
                    ),
                )
                for location in range(n_locations):
                    analyses = flat_analyses[location * n_aps : (location + 1) * n_aps]
                    result.outcomes[system.name].append(
                        _localize_from_analyses(
                            scenes[location],
                            traces_per_location[location],
                            analyses,
                            resolution_m,
                            tracer=tracer,
                        )
                    )
    return result


# ---------------------------------------------------------------------------
# Fig. 2 — MUSIC (SpotFi) spectra vs SNR
# ---------------------------------------------------------------------------


@dataclass
class SpectrumSnrPoint:
    """One Fig. 2 panel: a spectrum at one SNR and its quality metrics."""

    snr_db: float
    spectrum: AngleSpectrum
    closest_peak_error_deg: float
    sharpness: float

    def to_dict(self) -> dict:
        """JSON-ready view (round-trips through :meth:`from_dict`)."""
        return {
            "snr_db": self.snr_db,
            "spectrum": self.spectrum.to_dict(),
            "closest_peak_error_deg": self.closest_peak_error_deg,
            "sharpness": self.sharpness,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "SpectrumSnrPoint":
        return cls(
            snr_db=float(payload["snr_db"]),
            spectrum=AngleSpectrum.from_dict(payload["spectrum"]),
            closest_peak_error_deg=float(payload["closest_peak_error_deg"]),
            sharpness=float(payload["sharpness"]),
        )


def snr_coupled_blockage_db(snr_db: float) -> float:
    """Direct-path blockage implied by a link's SNR.

    Low SNR and NLoS obstruction co-occur physically (paper §V); this
    deterministic coupling — 0 dB blockage above 12 dB SNR, growing
    0.8 dB per dB below it, capped at 12 dB — is the single-link
    analogue of the per-band blockage draw in
    :data:`repro.experiments.scenarios.SNR_BANDS`.
    """
    return float(min(max(0.0, (12.0 - snr_db) * 0.8), 12.0))


def run_music_snr_experiment(
    *,
    snrs_db: tuple[float, ...] = (18.0, 7.0, 2.0, -2.0),
    true_aoa_deg: float = 150.0,
    n_packets: int = 15,
    seed: int = 0,
    system: ApSystem | None = None,
    tracer=NULL_TRACER,
) -> list[SpectrumSnrPoint]:
    """Paper Fig. 2: SpotFi's AoA spectrum degrading as SNR drops.

    The direct path is pinned at 150° (as in the paper); the same
    multipath profile is replayed at each SNR, with the SNR-coupled
    direct-path blockage of :func:`snr_coupled_blockage_db` applied so
    the low-SNR panels are low-SNR for the physical reason real links
    are.  Pass ``system`` to replay the experiment with a different
    estimator (e.g. ROArray, for the side-by-side robustness
    demonstration).
    """
    from repro.channel.paths import random_profile

    estimator = system or SpotFiEstimator()
    array = UniformLinearArray()
    layout = intel5300_layout()
    rng = np.random.default_rng(seed)
    profile = random_profile(rng, n_paths=5, direct_aoa_deg=true_aoa_deg)
    synthesizer = CsiSynthesizer(array, layout, seed=seed)

    points = []
    with tracer.span("experiment", name="music_snr", system=estimator.name):
        for snr_db in snrs_db:
            with tracer.span("aoa_spectrum", snr_db=snr_db):
                blocked = profile.with_direct_attenuation(snr_coupled_blockage_db(snr_db))
                trace = synthesizer.packets(blocked, n_packets=n_packets, snr_db=snr_db, rng=rng)
                spectrum = estimator.aoa_spectrum(trace).normalized()
            points.append(
                SpectrumSnrPoint(
                    snr_db=snr_db,
                    spectrum=spectrum,
                    closest_peak_error_deg=spectrum.closest_peak_error(
                        true_aoa_deg, max_peaks=5, min_relative_height=0.2
                    ),
                    sharpness=spectrum.sharpness(),
                )
            )
    return points


# ---------------------------------------------------------------------------
# Fig. 3 — spectrum vs solver iterations
# ---------------------------------------------------------------------------


@dataclass
class IterationProgressPoint:
    """One Fig. 3 panel: the sparse spectrum after a given iteration count."""

    iterations: int
    spectrum: AngleSpectrum
    closest_peak_error_deg: float
    sharpness: float

    def to_dict(self) -> dict:
        """JSON-ready view (round-trips through :meth:`from_dict`)."""
        return {
            "iterations": self.iterations,
            "spectrum": self.spectrum.to_dict(),
            "closest_peak_error_deg": self.closest_peak_error_deg,
            "sharpness": self.sharpness,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "IterationProgressPoint":
        return cls(
            iterations=int(payload["iterations"]),
            spectrum=AngleSpectrum.from_dict(payload["spectrum"]),
            closest_peak_error_deg=float(payload["closest_peak_error_deg"]),
            sharpness=float(payload["sharpness"]),
        )


def run_iteration_progress_experiment(
    *,
    iteration_counts: tuple[int, ...] = (3, 6, 9, 14),
    true_aoa_deg: float = 150.0,
    snr_db: float = 10.0,
    seed: int = 0,
    tracer=NULL_TRACER,
) -> list[IterationProgressPoint]:
    """Paper Fig. 3: the AoA spectrum sharpening as the solver iterates.

    Replays Eq. 7/11 exactly as the figure depicts it: a *single*
    narrowband measurement vector (one subcarrier of one packet) of a
    two-path channel, solved with hard iteration caps.  The iterates are
    feasible throughout, so early caps give blunt-but-usable spectra —
    the property the paper highlights about convex iterative solvers.
    """
    from repro.channel.paths import random_profile
    from repro.core.aoa import estimate_aoa_spectrum

    array = UniformLinearArray()
    layout = intel5300_layout()
    rng = np.random.default_rng(seed)
    profile = random_profile(
        rng, n_paths=2, direct_aoa_deg=true_aoa_deg, reflection_power_db=-6.0
    )
    synthesizer = CsiSynthesizer(array, layout, seed=seed)
    trace = synthesizer.packets(profile, n_packets=1, snr_db=snr_db, rng=rng)
    snapshot = trace.csi[0][:, 0]  # one packet, one subcarrier (Eq. 7)
    grid = evaluation_roarray_config().angle_grid

    points = []
    for count in iteration_counts:
        raw, _ = estimate_aoa_spectrum(
            snapshot, array, grid, max_iterations=count, tracer=tracer
        )
        spectrum = raw.normalized()
        points.append(
            IterationProgressPoint(
                iterations=count,
                spectrum=spectrum,
                closest_peak_error_deg=spectrum.closest_peak_error(
                    true_aoa_deg, max_peaks=5, min_relative_height=0.2
                ),
                sharpness=spectrum.sharpness(),
            )
        )
    return points


# ---------------------------------------------------------------------------
# Fig. 4 — single-packet spectra vs multi-packet fusion
# ---------------------------------------------------------------------------


@dataclass
class FusionExperimentResult:
    """Fig. 4: per-packet joint spectra vs the fused spectrum."""

    single_spectra: list[JointSpectrum]
    single_direct_toas_s: list[float]
    single_direct_aoa_errors_deg: list[float]
    fused_spectrum: JointSpectrum
    fused_direct_aoa_error_deg: float
    single_sharpness: list[float]
    fused_sharpness: float

    def to_dict(self) -> dict:
        """JSON-ready view (round-trips through :meth:`from_dict`)."""
        return {
            "single_spectra": [s.to_dict() for s in self.single_spectra],
            "single_direct_toas_s": list(self.single_direct_toas_s),
            "single_direct_aoa_errors_deg": list(self.single_direct_aoa_errors_deg),
            "fused_spectrum": self.fused_spectrum.to_dict(),
            "fused_direct_aoa_error_deg": self.fused_direct_aoa_error_deg,
            "single_sharpness": list(self.single_sharpness),
            "fused_sharpness": self.fused_sharpness,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "FusionExperimentResult":
        return cls(
            single_spectra=[JointSpectrum.from_dict(s) for s in payload["single_spectra"]],
            single_direct_toas_s=[float(t) for t in payload["single_direct_toas_s"]],
            single_direct_aoa_errors_deg=[
                float(e) for e in payload["single_direct_aoa_errors_deg"]
            ],
            fused_spectrum=JointSpectrum.from_dict(payload["fused_spectrum"]),
            fused_direct_aoa_error_deg=float(payload["fused_direct_aoa_error_deg"]),
            single_sharpness=[float(s) for s in payload["single_sharpness"]],
            fused_sharpness=float(payload["fused_sharpness"]),
        )


def run_fusion_experiment(
    *,
    n_packets: int = 30,
    n_single_examples: int = 2,
    true_aoa_deg: float = 150.0,
    snr_db: float = 8.0,
    seed: int = 0,
    tracer=NULL_TRACER,
    checkpoint_dir=None,
) -> FusionExperimentResult:
    """Paper Fig. 4: detection delay scatters single-packet ToA spectra;
    delay-aligned fusion over all packets sharpens the estimate.

    With ``checkpoint_dir`` every computed spectrum (each single-packet
    solve plus the fused solve) is journaled to
    ``<checkpoint_dir>/fusion.jsonl`` as it completes; a rerun replays
    the journaled spectra and recomputes only the missing ones.  The
    derived metrics are pure functions of the (exactly round-tripping)
    spectra, so a resumed result is byte-identical.
    """
    from repro.channel.paths import random_profile
    from repro.core.direct_path import identify_direct_path

    estimator = RoArrayEstimator(config=evaluation_roarray_config(), tracer=tracer)
    rng = np.random.default_rng(seed)
    profile = random_profile(rng, n_paths=4, direct_aoa_deg=true_aoa_deg)
    # A generous detection-delay range so the per-packet ToA scatter of
    # Fig. 4a/b is visible above the delay-grid quantization (~16 ns).
    impairments = ImpairmentModel(detection_delay_range_s=300e-9)
    synthesizer = CsiSynthesizer(estimator.array, estimator.layout, impairments, seed=seed)
    trace = synthesizer.packets(profile, n_packets=n_packets, snr_db=snr_db, rng=rng)

    n_singles = min(n_single_examples, n_packets)
    journal = None
    payloads: dict[str, dict] = {}
    keys: list[str] = []
    if checkpoint_dir is not None:
        from repro.runtime.checkpoint import (
            CheckpointJournal,
            config_digest,
            job_key,
            trace_fingerprint,
        )

        digest = config_digest(
            estimator.config, seed, n_packets, n_single_examples, true_aoa_deg, snr_db
        )
        fingerprint = trace_fingerprint(trace)
        # Job indices: 0..n_singles-1 are the single-packet solves,
        # index n_singles is the fused solve over all packets.
        keys = [job_key(digest, p, seed, fingerprint) for p in range(n_singles + 1)]
        journal = CheckpointJournal(
            _journal_policy(checkpoint_dir, "fusion", "fusion")
        )
        payloads = journal.open(
            experiment="fusion", config_digest=digest, n_jobs=n_singles + 1
        ).payloads

    def _spectrum(index: int, packet: int | None) -> JointSpectrum:
        if journal is not None:
            record = payloads.get(keys[index])
            if record is not None:
                return JointSpectrum.from_dict(record["payload"]["spectrum"])
        spectrum = estimator.joint_spectrum(trace, packet=packet).normalized()
        if journal is not None:
            journal.append(
                keys[index], {"spectrum": spectrum.to_dict()}, index=index
            )
        return spectrum

    try:
        single_spectra, single_toas, single_errors, single_sharpness = [], [], [], []
        for p in range(n_singles):
            spectrum = _spectrum(p, p)
            direct = identify_direct_path(spectrum)
            single_spectra.append(spectrum)
            single_toas.append(direct.toa_s)
            single_errors.append(abs(direct.aoa_deg - true_aoa_deg))
            single_sharpness.append(spectrum.angle_marginal().sharpness())

        fused = _spectrum(n_singles, None)
        if journal is not None:
            journal.finalize()
    finally:
        if journal is not None:
            journal.close()
    fused_direct = identify_direct_path(fused)
    return FusionExperimentResult(
        single_spectra=single_spectra,
        single_direct_toas_s=single_toas,
        single_direct_aoa_errors_deg=single_errors,
        fused_spectrum=fused,
        fused_direct_aoa_error_deg=abs(fused_direct.aoa_deg - true_aoa_deg),
        single_sharpness=single_sharpness,
        fused_sharpness=fused.angle_marginal().sharpness(),
    )


# ---------------------------------------------------------------------------
# Fig. 8a — AP density
# ---------------------------------------------------------------------------


def run_ap_density_experiment(
    *,
    ap_counts: tuple[int, ...] = (5, 4, 3),
    n_locations: int = 15,
    n_packets: int = 15,
    seed: int = 0,
    band: SnrBand | str = "medium",
    resolution_m: float = 0.1,
    workers: int = 0,
    tracer=NULL_TRACER,
    checkpoint_dir=None,
) -> dict[int, ErrorCdf]:
    """Paper Fig. 8a: ROArray localization error vs number of APs.

    Paired design, as in the paper ("varying the number of APs that can
    hear the client"): each location's full AP set is analyzed once and
    the localizer then uses nested subsets, so the AP-count comparison
    is free of scene-to-scene variance.

    With ``checkpoint_dir`` the per-trace analyses are journaled to
    ``<checkpoint_dir>/ap_density.jsonl`` and a rerun resumes instead
    of recomputing (see :ref:`run_snr_band_experiment`).
    """
    if isinstance(band, str):
        band = SNR_BANDS[band]
    max_aps = max(ap_counts)
    estimator = RoArrayEstimator(config=evaluation_roarray_config())
    rng = np.random.default_rng(seed)

    scenes: list[Scene] = []
    traces_per_location: list[list[CsiTrace]] = []
    for location in range(n_locations):
        scenes.append(build_random_scene(rng, n_aps=max_aps))
        snrs = [band.draw(rng) for _ in range(max_aps)]
        blockages = [band.draw_blockage(rng) for _ in range(max_aps)]
        traces_per_location.append(
            _scene_traces(
                scenes[-1],
                snr_db_per_ap=snrs,
                n_packets=n_packets,
                impairments=ImpairmentModel(),
                rng=rng,
                boot_seed=seed * 3000 + location * 10,
                blockage_db_per_ap=blockages,
            )
        )

    flat_analyses = _batch_analyses(
        estimator,
        [trace for traces in traces_per_location for trace in traces],
        workers=workers,
        base_seed=seed,
        tracer=tracer,
        checkpoint=_journal_policy(checkpoint_dir, "ap_density", "ap_density"),
    )

    errors: dict[int, list[float]] = {count: [] for count in ap_counts}
    for location in range(n_locations):
        scene = scenes[location]
        traces = traces_per_location[location]
        analyses = flat_analyses[location * max_aps : (location + 1) * max_aps]
        for count in ap_counts:
            subset_scene = Scene(
                room=scene.room,
                access_points=scene.access_points[:count],
                client=scene.client,
                scatterers=scene.scatterers,
            )
            outcome = _localize_from_analyses(
                subset_scene, traces[:count], analyses[:count], resolution_m, tracer=tracer
            )
            errors[count].append(outcome.location_error_m)

    return {count: ErrorCdf(np.array(errors[count])) for count in ap_counts}


# ---------------------------------------------------------------------------
# Fig. 8b — phase-calibration schemes
# ---------------------------------------------------------------------------


def run_calibration_experiment(
    *,
    modes: tuple[str, ...] = ("roarray", "music", "none"),
    n_locations: int = 10,
    n_packets: int = 10,
    n_aps: int = 4,
    seed: int = 0,
    calibration_snr_db: float = 18.0,
    band: SnrBand | str = "medium",
    resolution_m: float = 0.1,
    tracer=NULL_TRACER,
) -> dict[str, ErrorCdf]:
    """Paper Fig. 8b: localization with ROArray-driven calibration,
    MUSIC (Phaser) calibration, and no calibration.

    Per-boot phase offsets are injected on every AP; a reference
    transmission from a surveyed location is used to autocalibrate, then
    ROArray localizes test clients with the per-mode corrected CSI.
    """
    if isinstance(band, str):
        band = SNR_BANDS[band]
    impairments = ImpairmentModel(phase_offset_std_rad=1.0)
    array = UniformLinearArray()
    layout = intel5300_layout()
    estimator = RoArrayEstimator(config=evaluation_roarray_config(), tracer=tracer)
    rng = np.random.default_rng(seed)

    room_scene = build_random_scene(rng, n_aps=n_aps)  # Reference geometry / AP layout.
    synthesizers = [
        CsiSynthesizer(array, layout, impairments, seed=seed * 1000 + i)
        for i in range(n_aps)
    ]

    # --- Calibration phase: a known reference transmitter per AP. -----------
    reference_scene = Scene(
        room=room_scene.room,
        access_points=room_scene.access_points,
        client=(room_scene.room.width / 2, room_scene.room.depth / 2),
    )
    offsets_by_mode: dict[str, list[np.ndarray]] = {mode: [] for mode in modes}
    for i in range(n_aps):
        profile = reference_scene.multipath_profile(i, layout.wavelength)
        calibration_trace = synthesizers[i].packets(
            profile, n_packets=5, snr_db=calibration_snr_db, rng=rng
        )
        known = reference_scene.ground_truth_aoa(i)
        for mode in modes:
            if mode == "none":
                offsets_by_mode[mode].append(np.zeros(array.n_antennas))
            else:
                offsets_by_mode[mode].append(
                    calibrate_phase_offsets(
                        calibration_trace.csi, array, estimator=mode, known_aoa_deg=known
                    )
                )

    # --- Test phase: localize with each mode's corrected CSI. ---------------
    errors: dict[str, list[float]] = {mode: [] for mode in modes}
    for location in range(n_locations):
        scene = Scene(
            room=room_scene.room,
            access_points=room_scene.access_points,
            client=build_random_scene(rng, n_aps=n_aps).client,
            scatterers=build_random_scene(rng, n_aps=n_aps).scatterers,
        )
        snrs = [band.draw(rng) for _ in range(n_aps)]
        traces = []
        for i in range(n_aps):
            profile = scene.multipath_profile(i, layout.wavelength)
            traces.append(
                synthesizers[i].packets(profile, n_packets=n_packets, snr_db=snrs[i], rng=rng)
            )
        for mode in modes:
            analyses = []
            for i, trace in enumerate(traces):
                corrected = CsiTrace(
                    csi=apply_phase_calibration(trace.csi, offsets_by_mode[mode][i]),
                    snr_db=trace.snr_db,
                    rssi_dbm=trace.rssi_dbm,
                )
                analyses.append(estimator.analyze(corrected))
            outcome = _localize_from_analyses(scene, traces, analyses, resolution_m, tracer=tracer)
            errors[mode].append(outcome.location_error_m)

    return {mode: ErrorCdf(np.array(errors[mode])) for mode in modes}


# ---------------------------------------------------------------------------
# Fig. 8c — antenna polarization deviation
# ---------------------------------------------------------------------------


def run_polarization_experiment(
    *,
    deviation_ranges_deg: tuple[tuple[float, float], ...] = ((0.0, 0.0), (0.0, 20.0), (20.0, 45.0)),
    n_locations: int = 12,
    n_packets: int = 10,
    n_aps: int = 5,
    seed: int = 0,
    band: SnrBand | str = "medium",
    resolution_m: float = 0.1,
    workers: int = 0,
    tracer=NULL_TRACER,
) -> dict[tuple[float, float], ErrorCdf]:
    """Paper Fig. 8c: ROArray accuracy vs client antenna polarization tilt.

    Each location draws a deviation angle uniformly from the range; the
    tilt both attenuates the links (lower effective SNR) and perturbs
    the per-antenna gains (manifold mismatch) — see
    :mod:`repro.channel.impairments`.
    """
    from repro.channel.impairments import polarization_loss

    if isinstance(band, str):
        band = SNR_BANDS[band]
    results: dict[tuple[float, float], ErrorCdf] = {}
    estimator = RoArrayEstimator(config=evaluation_roarray_config())
    for deviation_range in deviation_ranges_deg:
        rng = np.random.default_rng(seed)
        scenes: list[Scene] = []
        traces_per_location: list[list[CsiTrace]] = []
        for location in range(n_locations):
            deviation = float(rng.uniform(*deviation_range))
            impairments = ImpairmentModel(polarization_deviation_deg=deviation)
            scenes.append(build_random_scene(rng, n_aps=n_aps))
            base_snrs = [band.draw(rng) for _ in range(n_aps)]
            # Tilt reduces received power: shift the link SNR by the
            # polarization power loss (20·log10 of the amplitude factor).
            loss_db = -20.0 * np.log10(polarization_loss(deviation))
            snrs = [snr - loss_db for snr in base_snrs]
            traces_per_location.append(
                _scene_traces(
                    scenes[-1],
                    snr_db_per_ap=snrs,
                    n_packets=n_packets,
                    impairments=impairments,
                    rng=rng,
                    boot_seed=seed * 7000 + location * 10,
                )
            )
        flat_analyses = _batch_analyses(
            estimator,
            [trace for traces in traces_per_location for trace in traces],
            workers=workers,
            base_seed=seed,
            tracer=tracer,
        )
        errors = []
        for location in range(n_locations):
            analyses = flat_analyses[location * n_aps : (location + 1) * n_aps]
            outcome = _localize_from_analyses(
                scenes[location], traces_per_location[location], analyses, resolution_m,
                tracer=tracer,
            )
            errors.append(outcome.location_error_m)
        results[deviation_range] = ErrorCdf(np.array(errors))
    return results
