"""A small metrics registry: counters, gauges, histograms, JSON export.

The registry is the accumulation side of the observability layer — where
spans answer "where did the time go in *this* run", metrics answer "how
many, how large, how spread" across a whole batch or sweep.  Instruments
are created on first use (``registry.counter("jobs_total")``) and export
as one JSON-ready dict, which the ``roarray trace`` CLI writes next to
the span tree.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any

import numpy as np

from repro.exceptions import ConfigurationError


@dataclass
class Counter:
    """A monotonically increasing count."""

    name: str
    value: float = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ConfigurationError(f"counter {self.name!r} cannot decrease (inc {amount})")
        self.value += amount

    def to_dict(self) -> dict[str, Any]:
        return {"type": "counter", "value": self.value}


@dataclass
class Gauge:
    """A point-in-time value (last write wins)."""

    name: str
    value: float = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)

    def to_dict(self) -> dict[str, Any]:
        return {"type": "gauge", "value": self.value}


@dataclass
class Histogram:
    """A sample distribution, summarized on export.

    Stores raw observations (batches here are thousands of jobs, not
    millions of requests) and exports count/sum/min/max/mean plus the
    p50/p90/p99 quantiles the runtime reports quote.
    """

    name: str
    values: list[float] = field(default_factory=list)

    def observe(self, value: float) -> None:
        self.values.append(float(value))

    def to_dict(self) -> dict[str, Any]:
        if not self.values:
            return {"type": "histogram", "count": 0}
        data = np.asarray(self.values)
        return {
            "type": "histogram",
            "count": int(data.size),
            "sum": float(data.sum()),
            "min": float(data.min()),
            "max": float(data.max()),
            "mean": float(data.mean()),
            "p50": float(np.percentile(data, 50)),
            "p90": float(np.percentile(data, 90)),
            "p99": float(np.percentile(data, 99)),
        }


class MetricsRegistry:
    """Get-or-create home for named instruments.

    A name belongs to exactly one instrument kind; asking for the same
    name as a different kind is a configuration error (it would silently
    fork the metric).
    """

    def __init__(self) -> None:
        self._instruments: dict[str, Counter | Gauge | Histogram] = {}

    def _get_or_create(self, name: str, kind):
        instrument = self._instruments.get(name)
        if instrument is None:
            instrument = kind(name)
            self._instruments[name] = instrument
        elif not isinstance(instrument, kind):
            raise ConfigurationError(
                f"metric {name!r} already registered as {type(instrument).__name__}"
            )
        return instrument

    def counter(self, name: str) -> Counter:
        return self._get_or_create(name, Counter)

    def gauge(self, name: str) -> Gauge:
        return self._get_or_create(name, Gauge)

    def histogram(self, name: str) -> Histogram:
        return self._get_or_create(name, Histogram)

    def __len__(self) -> int:
        return len(self._instruments)

    def to_dict(self) -> dict[str, Any]:
        return {
            name: instrument.to_dict()
            for name, instrument in sorted(self._instruments.items())
        }

    def export_json(self, path: str) -> None:
        """Write the registry snapshot to ``path`` (atomic tmp + rename)."""
        from repro.runtime.checkpoint import atomic_write

        atomic_write(path, self.to_dict())
