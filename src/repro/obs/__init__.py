"""Observability: tracing, metrics and solver telemetry (``repro.obs``).

Three building blocks, all opt-in and all zero-cost when unused:

* :class:`Tracer` / :data:`NULL_TRACER` — nested wall/CPU-time spans
  with attributes, serializable across process boundaries (the batch
  runtime merges worker-side spans back into the parent trace).
* :class:`MetricsRegistry` — counters, gauges and histograms with JSON
  export.
* :class:`ConvergenceTrace` — per-iteration objective / residual /
  support telemetry recorded by the :mod:`repro.optim` solvers when a
  trace is passed via their ``telemetry=`` hook.

Entry points: pass ``tracer=Tracer()`` to
:class:`~repro.core.pipeline.RoArrayEstimator`,
:class:`~repro.runtime.batch.BatchEvaluator` or the experiment drivers;
or run any CLI workflow under ``roarray trace <cmd>``.
"""

from repro.obs.convergence import ConvergenceTrace, support_size
from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry
from repro.obs.tracer import NULL_TRACER, NullTracer, Span, Tracer

__all__ = [
    "NULL_TRACER",
    "ConvergenceTrace",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NullTracer",
    "Span",
    "Tracer",
    "support_size",
]
