"""Nested-span tracing with a zero-overhead disabled default.

A :class:`Tracer` records a tree of :class:`Span` records — name, wall
and CPU time, free-form attributes, parent linkage — around whatever
code blocks the caller wraps with :meth:`Tracer.span`.  Everything that
accepts a tracer defaults to :data:`NULL_TRACER`, whose ``span()``
returns one preallocated no-op context manager: with tracing disabled
the cost per instrumented block is a single attribute lookup and a
``with`` on a shared singleton — no Span objects, no clock reads.

Spans serialize to plain dicts (:meth:`Span.to_dict`), which is how the
batch runtime ships worker-side spans across the process boundary;
:meth:`Tracer.adopt` grafts such serialized spans into the parent
tracer's tree under the currently open span.
"""

from __future__ import annotations

import json
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Iterable, Iterator


@dataclass
class Span:
    """One timed, attributed region of execution.

    Attributes
    ----------
    name:
        The region's label (e.g. ``"joint_spectrum"``, ``"solver"``).
    span_id / parent_id:
        Tree linkage within one tracer; ``parent_id`` is ``None`` for
        roots.
    start_s:
        Start offset in seconds relative to the owning tracer's epoch
        (its construction time).  Spans adopted from another process
        keep their own epoch — durations stay meaningful, offsets are
        only comparable within one origin.
    wall_s / cpu_s:
        Wall-clock and process-CPU seconds spent inside the region.
    attributes:
        Free-form JSON-serializable annotations (iteration counts,
        convergence traces, grid sizes, …).
    """

    name: str
    span_id: int
    parent_id: int | None
    start_s: float
    wall_s: float = 0.0
    cpu_s: float = 0.0
    attributes: dict[str, Any] = field(default_factory=dict)

    def annotate(self, **attributes: Any) -> None:
        """Attach attributes to this span (merging over existing keys)."""
        self.attributes.update(attributes)

    def to_dict(self) -> dict[str, Any]:
        return {
            "name": self.name,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "start_s": self.start_s,
            "wall_s": self.wall_s,
            "cpu_s": self.cpu_s,
            "attributes": dict(self.attributes),
        }

    @classmethod
    def from_dict(cls, payload: dict[str, Any]) -> "Span":
        return cls(
            name=payload["name"],
            span_id=int(payload["span_id"]),
            parent_id=None if payload.get("parent_id") is None else int(payload["parent_id"]),
            start_s=float(payload.get("start_s", 0.0)),
            wall_s=float(payload.get("wall_s", 0.0)),
            cpu_s=float(payload.get("cpu_s", 0.0)),
            attributes=dict(payload.get("attributes", {})),
        )


class _NullSpan:
    """The span yielded by a disabled tracer: every operation is a no-op."""

    __slots__ = ()

    def annotate(self, **attributes: Any) -> None:
        pass


class _NullSpanContext:
    """A reusable context manager yielding the shared null span."""

    __slots__ = ()

    def __enter__(self) -> _NullSpan:
        return _NULL_SPAN

    def __exit__(self, *exc_info) -> None:
        return None


_NULL_SPAN = _NullSpan()
_NULL_SPAN_CONTEXT = _NullSpanContext()


class NullTracer:
    """The zero-overhead disabled tracer.

    ``span()`` hands back one preallocated context manager, so code can
    be instrumented unconditionally without paying anything when tracing
    is off.  All recording methods are no-ops; exports are empty.
    """

    __slots__ = ()

    enabled = False

    def span(self, name: str, /, **attributes: Any) -> _NullSpanContext:
        return _NULL_SPAN_CONTEXT

    def annotate(self, **attributes: Any) -> None:
        pass

    def adopt(self, spans: Iterable[dict[str, Any]]) -> None:
        pass

    @property
    def spans(self) -> list[Span]:
        return []

    def to_dict(self) -> dict[str, Any]:
        return {"spans": []}


NULL_TRACER = NullTracer()


class Tracer:
    """Records a tree of nested :class:`Span` records.

    Use as::

        tracer = Tracer()
        with tracer.span("experiment", band="low") as span:
            with tracer.span("solver"):
                ...
            span.annotate(n_locations=20)
        tracer.export_json("trace.json")

    Spans nest by lexical ``with`` scope: the innermost open span is the
    parent of any span opened inside it.  The tracer is not thread-safe;
    the batch runtime gives each worker job its own tracer and merges
    the serialized spans afterwards (:meth:`adopt`).
    """

    enabled = True

    def __init__(self) -> None:
        self.spans: list[Span] = []
        self._stack: list[Span] = []
        self._next_id = 1
        self._epoch = time.perf_counter()

    @contextmanager
    def span(self, name: str, /, **attributes: Any) -> Iterator[Span]:
        """Open a child span of the innermost open span.

        ``name`` is positional-only so spans may carry a ``name=``
        attribute (e.g. ``span("experiment", name="snr_band")``).
        """
        record = Span(
            name=name,
            span_id=self._next_id,
            parent_id=self._stack[-1].span_id if self._stack else None,
            start_s=time.perf_counter() - self._epoch,
            attributes=dict(attributes),
        )
        self._next_id += 1
        self.spans.append(record)
        self._stack.append(record)
        wall_start = time.perf_counter()
        cpu_start = time.process_time()
        try:
            yield record
        finally:
            record.wall_s = time.perf_counter() - wall_start
            record.cpu_s = time.process_time() - cpu_start
            self._stack.pop()

    @property
    def current_span(self) -> Span | None:
        """The innermost open span, or ``None`` outside any span."""
        return self._stack[-1] if self._stack else None

    def annotate(self, **attributes: Any) -> None:
        """Attach attributes to the innermost open span (no-op outside one)."""
        if self._stack:
            self._stack[-1].annotate(**attributes)

    def adopt(self, spans: Iterable[dict[str, Any]]) -> list[Span]:
        """Graft serialized spans (from another tracer/process) into this tree.

        Span ids are remapped onto this tracer's id space; spans whose
        parent is not part of the adopted batch are re-parented under
        the currently open span (or become roots).  Returns the adopted
        spans in their new identity.
        """
        records = [Span.from_dict(payload) for payload in spans]
        id_map: dict[int, int] = {}
        for record in records:
            id_map[record.span_id] = self._next_id
            self._next_id += 1
        local_parent = self._stack[-1].span_id if self._stack else None
        adopted = []
        for record in records:
            if record.parent_id in id_map:
                parent = id_map[record.parent_id]
            else:
                parent = local_parent
            grafted = Span(
                name=record.name,
                span_id=id_map[record.span_id],
                parent_id=parent,
                start_s=record.start_s,
                wall_s=record.wall_s,
                cpu_s=record.cpu_s,
                attributes=record.attributes,
            )
            self.spans.append(grafted)
            adopted.append(grafted)
        return adopted

    # -- queries -----------------------------------------------------------

    def find(self, name: str) -> list[Span]:
        """All recorded spans with the given name."""
        return [span for span in self.spans if span.name == name]

    def total_wall_s(self, name: str) -> float:
        """Summed wall seconds across every span with the given name."""
        return float(sum(span.wall_s for span in self.find(name)))

    def aggregate(self) -> dict[str, dict[str, float]]:
        """Per-name cost rollup: count, total wall/CPU seconds.

        The ``roarray report --telemetry`` cost table renders this.
        """
        rollup: dict[str, dict[str, float]] = {}
        for span in self.spans:
            entry = rollup.setdefault(
                span.name, {"count": 0, "wall_s": 0.0, "cpu_s": 0.0}
            )
            entry["count"] += 1
            entry["wall_s"] += span.wall_s
            entry["cpu_s"] += span.cpu_s
        return rollup

    # -- export ------------------------------------------------------------

    def to_dict(self) -> dict[str, Any]:
        return {"spans": [span.to_dict() for span in self.spans]}

    def export_json(self, path: str) -> None:
        """Write the span tree to ``path`` as a JSON document (atomically)."""
        from repro.runtime.checkpoint import atomic_write

        atomic_write(path, self.to_dict())
