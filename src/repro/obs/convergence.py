"""Per-iteration solver telemetry.

A :class:`ConvergenceTrace` records what a sparse-recovery solver did on
every iteration — objective value, residual norm, support size — when
the caller opts in by passing ``telemetry=ConvergenceTrace(...)`` to any
solver in :mod:`repro.optim`.  With no trace passed (the default) the
solvers skip all telemetry work: no extra matvecs, no objective
evaluations, no recording.

The trace rides back on :attr:`repro.optim.result.SolverResult.convergence`
and, when the pipeline runs under an enabled tracer, lands in the span
tree as a ``convergence`` attribute of the ``solver`` span — which is
how ``roarray trace`` exposes FISTA/ADMM iteration behaviour per solve.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

import numpy as np


def support_size(x: np.ndarray) -> int:
    """Exact nonzero count of a coefficient vector (rows for MMV).

    Proximal solvers produce exact zeros through soft-thresholding, so
    the plain nonzero count is the natural per-iteration sparsity
    measure (contrast :meth:`repro.optim.result.SolverResult.sparsity`,
    which applies a relative floor for peak counting).
    """
    if x.ndim == 1:
        return int(np.count_nonzero(x))
    return int(np.count_nonzero(np.linalg.norm(x, axis=1)))


@dataclass
class ConvergenceTrace:
    """Per-iteration objective / residual / support telemetry.

    Attributes
    ----------
    solver:
        Which solver produced the trace (``"fista"``, ``"mmv_fista"``,
        ``"admm"``, …).
    objectives:
        The solver's objective value after each iteration.
    residual_norms:
        ``‖Ax − y‖`` (Frobenius norm for MMV) after each iteration.
    support_sizes:
        Nonzero count of the iterate after each iteration.
    """

    solver: str = ""
    objectives: list[float] = field(default_factory=list)
    residual_norms: list[float] = field(default_factory=list)
    support_sizes: list[int] = field(default_factory=list)

    def record(self, *, objective: float, residual_norm: float, support_size: int) -> None:
        """Append one iteration's telemetry."""
        self.objectives.append(float(objective))
        self.residual_norms.append(float(residual_norm))
        self.support_sizes.append(int(support_size))

    def __len__(self) -> int:
        return len(self.objectives)

    @property
    def iterations(self) -> int:
        return len(self.objectives)

    def objective_decay(self) -> float:
        """First-to-last objective drop (0 for traces under 2 entries)."""
        if len(self.objectives) < 2:
            return 0.0
        return float(self.objectives[0] - self.objectives[-1])

    def is_monotone(self, *, rtol: float = 1e-12) -> bool:
        """Whether the recorded objective never increases.

        MFISTA guarantees this by construction; plain FISTA may
        transiently overshoot.  ``rtol`` absorbs floating-point noise
        relative to the trace's largest objective.
        """
        if len(self.objectives) < 2:
            return True
        values = np.asarray(self.objectives)
        slack = rtol * float(np.abs(values).max(initial=0.0))
        return bool(np.all(np.diff(values) <= slack))

    def to_dict(self) -> dict[str, Any]:
        return {
            "solver": self.solver,
            "objectives": [float(v) for v in self.objectives],
            "residual_norms": [float(v) for v in self.residual_norms],
            "support_sizes": [int(v) for v in self.support_sizes],
        }

    @classmethod
    def from_dict(cls, payload: dict[str, Any]) -> "ConvergenceTrace":
        return cls(
            solver=str(payload.get("solver", "")),
            objectives=[float(v) for v in payload.get("objectives", [])],
            residual_norms=[float(v) for v in payload.get("residual_norms", [])],
            support_sizes=[int(v) for v in payload.get("support_sizes", [])],
        )
