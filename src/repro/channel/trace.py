"""On-disk / in-memory CSI trace format.

A :class:`CsiTrace` is the unit of data every estimator in this package
consumes: a batch of per-packet CSI matrices from one AP for one client
position, together with the ground truth the simulator knows (true
AoAs/ToAs, injected detection delays and phase offsets) so experiments
can score estimates without a site survey.

Traces can come from the synthesizer (:mod:`repro.channel.csi`) or from
real captures ingested through :mod:`repro.io` (Intel 5300 ``.dat``
logs, SpotFi ``.mat`` captures).  Imported traces carry capture
metadata — per-packet timestamps, the capturing AP's identifier and the
source format — and leave the simulator-only ground-truth fields at
their NaN/empty defaults.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from repro.exceptions import ConfigurationError


@dataclass(eq=False)
class CsiTrace:
    """A batch of CSI packets from one AP/client link.

    Traces are plain dataclasses over numpy arrays, so they pickle
    cleanly — the batch runtime ships them to worker processes as-is.
    Equality is identity (``eq=False``): the generated ``__eq__`` would
    try to truth-test arrays; use :meth:`equals` for exact value
    comparison (parity tests rely on it being bitwise, not tolerant).

    Attributes
    ----------
    csi:
        Complex array of shape ``(n_packets, n_antennas, n_subcarriers)``.
    snr_db:
        The SNR the batch was synthesized at (or measured at, for
        imported traces).
    detection_delays_s:
        Ground-truth per-packet detection delay (seconds).
    antenna_phase_offsets:
        Ground-truth per-boot phase offsets (radians).
    true_aoas_deg / true_toas_s:
        Ground-truth parameters of every path.
    direct_aoa_deg / direct_toa_s:
        Ground truth for the LoS path specifically.
    rssi_dbm:
        RSSI-like received strength for Eq. 19 weighting.
    capture_times_s:
        Per-packet capture timestamps in seconds (hardware clock for
        imported traces, empty for synthetic batches that carry no
        timeline).
    ap_id:
        Identifier of the capturing AP ("" when unknown/synthetic).
    source_format:
        Where the trace came from: ``"synthetic"``, ``"npz"``,
        ``"intel-dat"``, ``"spotfi-mat"`` — or "" for traces predating
        the metadata (old fixture files load with this default).
    """

    csi: np.ndarray
    snr_db: float
    detection_delays_s: np.ndarray = field(default_factory=lambda: np.zeros(0))
    antenna_phase_offsets: np.ndarray = field(default_factory=lambda: np.zeros(0))
    true_aoas_deg: np.ndarray = field(default_factory=lambda: np.zeros(0))
    true_toas_s: np.ndarray = field(default_factory=lambda: np.zeros(0))
    direct_aoa_deg: float = float("nan")
    direct_toa_s: float = float("nan")
    rssi_dbm: float = float("nan")
    capture_times_s: np.ndarray = field(default_factory=lambda: np.zeros(0))
    ap_id: str = ""
    source_format: str = ""

    def __post_init__(self) -> None:
        self.csi = np.asarray(self.csi, dtype=complex)
        if self.csi.ndim != 3:
            raise ConfigurationError(
                f"csi must be (packets, antennas, subcarriers), got shape {self.csi.shape}"
            )
        self.capture_times_s = np.asarray(self.capture_times_s, dtype=float)

    @property
    def n_packets(self) -> int:
        return self.csi.shape[0]

    @property
    def n_antennas(self) -> int:
        return self.csi.shape[1]

    @property
    def n_subcarriers(self) -> int:
        return self.csi.shape[2]

    def equals(self, other: "CsiTrace") -> bool:
        """Exact (bitwise, NaN-aware) value equality with ``other``.

        Used by the batch-runtime parity tests: a trace that survives a
        pickle round trip to a worker process must compare equal.
        """
        if not isinstance(other, CsiTrace):
            return False
        if (self.ap_id, self.source_format) != (other.ap_id, other.source_format):
            return False
        scalars_self = (self.snr_db, self.direct_aoa_deg, self.direct_toa_s, self.rssi_dbm)
        scalars_other = (other.snr_db, other.direct_aoa_deg, other.direct_toa_s, other.rssi_dbm)
        if not all(
            a == b or (np.isnan(a) and np.isnan(b))
            for a, b in zip(scalars_self, scalars_other)
        ):
            return False
        return all(
            np.array_equal(getattr(self, name), getattr(other, name), equal_nan=True)
            for name in (
                "csi",
                "detection_delays_s",
                "antenna_phase_offsets",
                "true_aoas_deg",
                "true_toas_s",
                "capture_times_s",
            )
        )

    def packet(self, index: int) -> np.ndarray:
        """One CSI matrix (paper Eq. 4), shape ``(antennas, subcarriers)``."""
        return self.csi[index]

    def subset(self, n_packets: int) -> "CsiTrace":
        """A trace containing only the first ``n_packets`` packets."""
        if not 1 <= n_packets <= self.n_packets:
            raise ConfigurationError(
                f"n_packets must be in [1, {self.n_packets}], got {n_packets}"
            )
        times = self.capture_times_s
        if times.shape[0] == self.n_packets:
            times = times[:n_packets]
        return CsiTrace(
            csi=self.csi[:n_packets],
            snr_db=self.snr_db,
            detection_delays_s=self.detection_delays_s[:n_packets],
            antenna_phase_offsets=self.antenna_phase_offsets,
            true_aoas_deg=self.true_aoas_deg,
            true_toas_s=self.true_toas_s,
            direct_aoa_deg=self.direct_aoa_deg,
            direct_toa_s=self.direct_toa_s,
            rssi_dbm=self.rssi_dbm,
            capture_times_s=times,
            ap_id=self.ap_id,
            source_format=self.source_format,
        )

    def save(self, path: str | Path) -> None:
        """Persist to a ``.npz`` file (written atomically).

        The write goes through
        :func:`repro.runtime.checkpoint.atomic_write` — tmp file +
        rename — so a crash mid-save leaves the previous file intact
        instead of a truncated archive.  Matching ``np.savez``, a
        ``.npz`` suffix is appended when the path lacks one.
        """
        from repro.runtime.checkpoint import atomic_write

        path = Path(path)
        if path.suffix != ".npz":
            path = path.with_name(path.name + ".npz")
        atomic_write(
            path,
            lambda handle: np.savez_compressed(
                handle,
                csi=self.csi,
                snr_db=self.snr_db,
                detection_delays_s=self.detection_delays_s,
                antenna_phase_offsets=self.antenna_phase_offsets,
                true_aoas_deg=self.true_aoas_deg,
                true_toas_s=self.true_toas_s,
                direct_aoa_deg=self.direct_aoa_deg,
                direct_toa_s=self.direct_toa_s,
                rssi_dbm=self.rssi_dbm,
                capture_times_s=self.capture_times_s,
                ap_id=np.str_(self.ap_id),
                source_format=np.str_(self.source_format),
            ),
        )

    @classmethod
    def load(cls, path: str | Path) -> "CsiTrace":
        """Load a trace from any supported source.

        Delegates to :func:`repro.io.open_trace` — the single trace
        resolution path — so ``CsiTrace.load`` accepts everything
        ``open_trace`` does: ``.npz`` files written by :meth:`save`,
        Intel 5300 ``.dat`` logs, SpotFi ``.mat`` captures and
        ``dataset://`` registry references.  Metadata fields missing
        from pre-metadata ``.npz`` archives default; unknown fields
        warn (see :func:`repro.io.npzio.read_npz_trace`).
        """
        from repro.io import open_trace

        return open_trace(path)
