"""Hardware impairments of the Intel 5300 testbed.

Three effects dominate what makes commodity-NIC CSI hard to use
directly, and all three are modeled here:

* **Packet detection delay** — every packet is time-stamped where the
  correlator fires, which adds a random *common* delay to every path's
  ToA.  This is why the paper's Fig. 4(a)/(b) spectra from two packets
  of the *same* static link sit at different delays, and why raw ToA
  cannot be used as an absolute range on this hardware (§V).
* **Per-boot phase offsets** — each RF chain acquires an unknown
  constant phase every time the channel is (re)tuned; uncorrected, it
  scrambles the inter-antenna phase that AoA estimation depends on.
  This is the effect paper §III-D's calibration (after Phaser [13])
  removes, and Fig. 8b quantifies.
* **Polarization loss** — when the client's antenna tilts out of the
  AP's polarization plane, reception degrades sharply (paper Fig. 8c).
  We model an amplitude factor of cos(deviation) plus per-antenna gain
  ripple growing with the deviation, capturing both the SNR loss and
  the manifold mismatch a tilted antenna causes on a 1-D array.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.exceptions import ConfigurationError


def polarization_loss(deviation_deg: float) -> float:
    """Amplitude factor for a polarization deviation angle (cosine law).

    0° → 1.0 (no loss); 90° → floor of 0.05 (never exactly zero: real
    antennas leak cross-polarized energy).
    """
    if deviation_deg < 0 or deviation_deg > 90:
        raise ConfigurationError(f"deviation must be in [0, 90] degrees, got {deviation_deg}")
    return max(float(np.cos(np.deg2rad(deviation_deg))), 0.05)


@dataclass(frozen=True)
class ImpairmentModel:
    """Configuration of the per-packet and per-boot hardware effects.

    Attributes
    ----------
    detection_delay_range_s:
        Packet detection delay is drawn per packet, uniform in
        ``[0, detection_delay_range_s]``.  ~50-200 ns is typical for the
        Intel 5300; 0 disables the effect.
    phase_offset_std_rad:
        Per-antenna static phase offsets are drawn per *boot* from a
        uniform distribution over ``[−π, π]`` when this is positive
        (the value only gates the effect on/off for antennas after the
        first; the first antenna is the phase reference and stays 0).
    sfo_std_s:
        Residual sampling-frequency-offset jitter: an extra per-packet
        delay perturbation with this standard deviation.
    cfo_residual_rad:
        Residual carrier-frequency-offset phase: each packet acquires a
        random common phase, uniform in ``[−cfo_residual_rad,
        cfo_residual_rad]``.  Common across antennas and subcarriers, it
        is invisible to single-packet spectra (|coefficients| are phase-
        blind) but decorrelates packets, which is why multi-packet
        fusion uses magnitude-preserving ℓ2,1 recovery rather than
        averaging raw CSI.
    polarization_deviation_deg:
        Client antenna tilt out of the AP polarization plane.
    polarization_ripple:
        Relative per-antenna gain ripple at 90° deviation (scales
        linearly with deviation); models the manifold mismatch of a
        tilted antenna on a 1-D array.  The paper attributes the Fig. 8c
        collapse to exactly this effect ("very poor wireless reception
        since the manifold of the antenna array is 1-dimension"), so the
        default is strong: a 30° tilt perturbs each antenna's complex
        gain by ~0.8 rms while a level client is untouched.
    """

    detection_delay_range_s: float = 100e-9
    phase_offset_std_rad: float = 0.0
    sfo_std_s: float = 2e-9
    cfo_residual_rad: float = 0.3
    polarization_deviation_deg: float = 0.0
    polarization_ripple: float = 2.5

    def __post_init__(self) -> None:
        if self.detection_delay_range_s < 0:
            raise ConfigurationError("detection_delay_range_s must be non-negative")
        if self.sfo_std_s < 0:
            raise ConfigurationError("sfo_std_s must be non-negative")
        if self.cfo_residual_rad < 0:
            raise ConfigurationError("cfo_residual_rad must be non-negative")
        if not 0 <= self.polarization_deviation_deg <= 90:
            raise ConfigurationError("polarization_deviation_deg must be in [0, 90]")
        if self.polarization_ripple < 0:
            raise ConfigurationError("polarization_ripple must be non-negative")

    def draw_detection_delay(self, rng: np.random.Generator) -> float:
        """Per-packet common delay (detection + SFO jitter), seconds."""
        delay = float(rng.uniform(0.0, self.detection_delay_range_s))
        if self.sfo_std_s > 0:
            delay += abs(float(rng.normal(0.0, self.sfo_std_s)))
        return delay

    def draw_cfo_phase(self, rng: np.random.Generator) -> float:
        """Per-packet common phase from residual CFO (radians)."""
        if self.cfo_residual_rad == 0:
            return 0.0
        return float(rng.uniform(-self.cfo_residual_rad, self.cfo_residual_rad))

    def draw_phase_offsets(self, rng: np.random.Generator, n_antennas: int) -> np.ndarray:
        """Per-boot phase offsets (radians); antenna 0 is the reference."""
        offsets = np.zeros(n_antennas)
        if self.phase_offset_std_rad > 0:
            offsets[1:] = rng.uniform(-np.pi, np.pi, size=n_antennas - 1)
        return offsets

    def polarization_amplitude(self) -> float:
        return polarization_loss(self.polarization_deviation_deg)

    def draw_polarization_ripple(self, rng: np.random.Generator, n_antennas: int) -> np.ndarray:
        """Per-antenna complex gain ripple caused by antenna tilt.

        Returns a length-``n_antennas`` vector of complex factors near 1;
        the perturbation magnitude scales with deviation/90° ×
        ``polarization_ripple``.
        """
        severity = (self.polarization_deviation_deg / 90.0) * self.polarization_ripple
        if severity == 0:
            return np.ones(n_antennas, dtype=complex)
        real = rng.normal(0.0, severity, size=n_antennas)
        imag = rng.normal(0.0, severity, size=n_antennas)
        return 1.0 + real + 1j * imag
