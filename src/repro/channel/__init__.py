"""Synthetic WiFi CSI substrate.

The paper's evaluation runs on Intel 5300 NICs in an 18 m × 12 m
classroom.  The NIC, the Linux CSI tool and the room are replaced here
by a physics-faithful simulator that produces exactly the object the
algorithms consume: the per-packet CSI matrix ``C`` of paper Eq. 4,
shaped ``(antennas, subcarriers)``, with the phase structure of Eq. 1
(AoA across antennas) and Eq. 12 (ToA across subcarriers), plus the
testbed impairments that make localization hard in practice — additive
noise at a controlled SNR, per-packet detection delay, per-boot phase
offsets, and polarization loss.

Layer map
---------

========================  ====================================================
:mod:`~repro.channel.array`        ULA geometry and steering phases (Eq. 1)
:mod:`~repro.channel.ofdm`         Subcarrier layouts, incl. the Intel 5300's
:mod:`~repro.channel.geometry`     Rooms, walls, image-method multipath
:mod:`~repro.channel.paths`        Propagation-path containers and generators
:mod:`~repro.channel.impairments`  Detection delay, phase offsets, polarization
:mod:`~repro.channel.noise`        AWGN at a target SNR
:mod:`~repro.channel.csi`          CSI synthesis (Eq. 4) and packet batches
:mod:`~repro.channel.trace`        On-disk trace format (save/load)
========================  ====================================================
"""

from repro.channel.array import UniformLinearArray
from repro.channel.array2d import DualPolarizationFeed, PlanarArray
from repro.channel.csi import CsiSynthesizer, synthesize_csi_matrix
from repro.channel.geometry import Room, Scene, reflect_point, trace_paths
from repro.channel.impairments import ImpairmentModel, polarization_loss
from repro.channel.interference import Interferer, add_interference
from repro.channel.mobility import (
    RandomWaypointModel,
    TrajectorySample,
    stationary_track,
    waypoint_walk,
)
from repro.channel.noise import awgn, measured_snr_db
from repro.channel.ofdm import SubcarrierLayout, intel5300_layout
from repro.channel.paths import MultipathProfile, PropagationPath, random_profile
from repro.channel.trace import CsiTrace

__all__ = [
    "CsiSynthesizer",
    "CsiTrace",
    "DualPolarizationFeed",
    "PlanarArray",
    "ImpairmentModel",
    "Interferer",
    "MultipathProfile",
    "RandomWaypointModel",
    "TrajectorySample",
    "add_interference",
    "stationary_track",
    "waypoint_walk",
    "PropagationPath",
    "Room",
    "Scene",
    "SubcarrierLayout",
    "UniformLinearArray",
    "awgn",
    "intel5300_layout",
    "measured_snr_db",
    "polarization_loss",
    "random_profile",
    "reflect_point",
    "synthesize_csi_matrix",
    "trace_paths",
]
