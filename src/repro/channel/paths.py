"""Propagation-path containers and synthetic multipath generators.

Each physical path from transmitter to receiver is summarized by the
triple the algorithms estimate — complex gain ``a_k``, angle of arrival
``θ_k`` and time of arrival ``τ_k`` (paper §II-A) — plus a ground-truth
flag marking the direct (LoS) path.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.exceptions import ConfigurationError


@dataclass(frozen=True)
class PropagationPath:
    """One resolvable propagation path.

    Attributes
    ----------
    aoa_deg:
        Angle of arrival at the receiving array, degrees in [0, 180]
        measured from the array axis (paper Fig. 1).
    toa_s:
        Absolute time of arrival in seconds (path length / c).
    gain:
        Complex attenuation ``a_k`` including the carrier phase.
    is_direct:
        Ground-truth marker for the LoS path.
    """

    aoa_deg: float
    toa_s: float
    gain: complex
    is_direct: bool = False

    def __post_init__(self) -> None:
        if not 0.0 <= self.aoa_deg <= 180.0:
            raise ConfigurationError(f"aoa_deg must be in [0, 180], got {self.aoa_deg}")
        if self.toa_s < 0:
            raise ConfigurationError(f"toa_s must be non-negative, got {self.toa_s}")


@dataclass
class MultipathProfile:
    """The set of dominant paths between one transmitter and one receiver.

    Indoor channels have ~5 dominant paths (paper §I), the sparsity that
    the whole system design rests on.
    """

    paths: list[PropagationPath] = field(default_factory=list)

    def __post_init__(self) -> None:
        if not self.paths:
            raise ConfigurationError("a multipath profile needs at least one path")
        n_direct = sum(p.is_direct for p in self.paths)
        if n_direct > 1:
            raise ConfigurationError(f"at most one direct path allowed, got {n_direct}")

    def __len__(self) -> int:
        return len(self.paths)

    @property
    def aoas_deg(self) -> np.ndarray:
        return np.array([p.aoa_deg for p in self.paths])

    @property
    def toas_s(self) -> np.ndarray:
        return np.array([p.toa_s for p in self.paths])

    @property
    def gains(self) -> np.ndarray:
        return np.array([p.gain for p in self.paths], dtype=complex)

    @property
    def direct_path(self) -> PropagationPath:
        """The LoS path; falls back to the earliest arrival if none is marked."""
        for path in self.paths:
            if path.is_direct:
                return path
        return min(self.paths, key=lambda p: p.toa_s)

    @property
    def total_power(self) -> float:
        """Sum of |a_k|² over all paths."""
        return float(np.sum(np.abs(self.gains) ** 2))

    def normalized(self) -> "MultipathProfile":
        """Rescale gains so the total path power is 1 (convenient for SNR control)."""
        power = self.total_power
        if power == 0:
            raise ConfigurationError("cannot normalize a zero-power profile")
        scale = 1.0 / np.sqrt(power)
        return MultipathProfile(
            paths=[
                PropagationPath(p.aoa_deg, p.toa_s, p.gain * scale, p.is_direct)
                for p in self.paths
            ]
        )

    def sorted_by_toa(self) -> "MultipathProfile":
        """Paths ordered by increasing delay (direct path first physically)."""
        return MultipathProfile(paths=sorted(self.paths, key=lambda p: p.toa_s))

    def with_direct_attenuation(self, blockage_db: float) -> "MultipathProfile":
        """Attenuate the LoS path by ``blockage_db`` (NLoS blockage).

        Low-SNR indoor scenarios are physically low-SNR *because* the
        direct path is obstructed (paper §V: "far away from APs, serious
        NLoS, and interference").  Attenuating only the LoS gain models
        a body/furniture blockage: the link SNR drops and, crucially,
        reflections start to rival the direct path — the regime where
        strongest-peak heuristics and clustering go wrong.
        """
        if blockage_db < 0:
            raise ConfigurationError(f"blockage_db must be non-negative, got {blockage_db}")
        factor = 10.0 ** (-blockage_db / 20.0)
        return MultipathProfile(
            paths=[
                PropagationPath(
                    p.aoa_deg,
                    p.toa_s,
                    p.gain * (factor if p.is_direct else 1.0),
                    p.is_direct,
                )
                for p in self.paths
            ]
        )


def random_profile(
    rng: np.random.Generator,
    *,
    n_paths: int = 5,
    direct_aoa_deg: float | None = None,
    direct_toa_s: float = 20e-9,
    excess_delay_s: float = 200e-9,
    min_aoa_separation_deg: float = 8.0,
    reflection_power_db: float = -6.0,
) -> MultipathProfile:
    """Draw a synthetic indoor multipath profile.

    Produces one direct path plus ``n_paths − 1`` reflections whose
    delays exceed the direct delay by up to ``excess_delay_s`` and whose
    average power sits ``reflection_power_db`` below the direct path —
    the typical indoor regime the paper assumes (≈5 dominant paths with
    the LoS strongest and earliest).

    Parameters
    ----------
    direct_aoa_deg:
        Fix the LoS angle (e.g. the 150° of paper Fig. 2); random in
        [20°, 160°] when ``None``.
    min_aoa_separation_deg:
        Reflections are re-drawn until they are at least this far from
        every already-placed path, keeping the profile resolvable.
    """
    if n_paths < 1:
        raise ConfigurationError(f"n_paths must be >= 1, got {n_paths}")
    if direct_toa_s < 0 or excess_delay_s <= 0:
        raise ConfigurationError("delays must be non-negative (excess strictly positive)")

    if direct_aoa_deg is None:
        direct_aoa_deg = float(rng.uniform(20.0, 160.0))
    direct_phase = np.exp(2j * np.pi * rng.uniform())
    paths = [
        PropagationPath(direct_aoa_deg, direct_toa_s, direct_phase, is_direct=True)
    ]

    placed_aoas = [direct_aoa_deg]
    amplitude = 10.0 ** (reflection_power_db / 20.0)
    for _ in range(n_paths - 1):
        aoa = _draw_separated_angle(rng, placed_aoas, min_aoa_separation_deg)
        placed_aoas.append(aoa)
        toa = direct_toa_s + float(rng.uniform(0.15, 1.0)) * excess_delay_s
        gain = amplitude * float(rng.uniform(0.5, 1.2)) * np.exp(2j * np.pi * rng.uniform())
        paths.append(PropagationPath(aoa, toa, gain))

    return MultipathProfile(paths=paths)


def _draw_separated_angle(
    rng: np.random.Generator, placed: list[float], separation: float, attempts: int = 200
) -> float:
    """Rejection-sample an angle at least ``separation``° from all in ``placed``."""
    for _ in range(attempts):
        candidate = float(rng.uniform(5.0, 175.0))
        if all(abs(candidate - prior) >= separation for prior in placed):
            return candidate
    # Crowded grid: fall back to the candidate farthest from its nearest neighbor.
    candidates = rng.uniform(5.0, 175.0, size=attempts)
    distances = np.array([min(abs(c - p) for p in placed) for c in candidates])
    return float(candidates[np.argmax(distances)])
