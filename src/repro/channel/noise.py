"""Additive white Gaussian noise at a controlled SNR."""

from __future__ import annotations

import numpy as np

from repro.exceptions import ConfigurationError


def awgn(signal: np.ndarray, snr_db: float, rng: np.random.Generator) -> np.ndarray:
    """Add complex AWGN so the result has the requested SNR.

    SNR is defined as mean signal power over noise power per complex
    sample, matching how the paper bins its scenarios into high
    (≥15 dB), medium ((2, 15) dB) and low (≤2 dB) regimes.
    """
    signal = np.asarray(signal)
    signal_power = float(np.mean(np.abs(signal) ** 2))
    if signal_power == 0:
        raise ConfigurationError("cannot set an SNR on an all-zero signal")
    noise_power = signal_power / (10.0 ** (snr_db / 10.0))
    sigma = np.sqrt(noise_power / 2.0)
    noise = rng.normal(0.0, sigma, signal.shape) + 1j * rng.normal(0.0, sigma, signal.shape)
    return signal + noise


def noise_std_for_snr(signal: np.ndarray, snr_db: float) -> float:
    """Per-complex-sample noise standard deviation that yields ``snr_db``.

    Used by the κ-tuning heuristics, which want σ such that each complex
    noise entry has variance σ² (i.e. σ/√2 per real component).
    """
    signal_power = float(np.mean(np.abs(np.asarray(signal)) ** 2))
    if signal_power == 0:
        raise ConfigurationError("cannot derive a noise level from an all-zero signal")
    return float(np.sqrt(signal_power / (10.0 ** (snr_db / 10.0))))


def measured_snr_db(clean: np.ndarray, noisy: np.ndarray) -> float:
    """Empirical SNR (dB) between a clean signal and its noisy version."""
    clean = np.asarray(clean)
    noise = np.asarray(noisy) - clean
    noise_power = float(np.mean(np.abs(noise) ** 2))
    if noise_power == 0:
        return float("inf")
    signal_power = float(np.mean(np.abs(clean) ** 2))
    return 10.0 * np.log10(signal_power / noise_power)
