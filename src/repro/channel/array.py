"""Uniform linear array (ULA) model.

Implements the antenna-array phase model of the paper's Figure 1 and
Eq. 1: a far-field signal arriving from angle θ (measured from the array
axis, θ ∈ [0°, 180°]) induces a per-antenna phase progression

    s(θ) = [1, Λ(θ), …, Λ(θ)^{M−1}]ᵀ,   Λ(θ) = exp(−j·2π·d·cosθ / λ).

To keep the mapping θ ↦ s(θ) unambiguous over [0°, 180°] the element
spacing must satisfy d ≤ λ/2; the constructor enforces this.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.channel.constants import (
    FIVE_GHZ_WAVELENGTH,
    INTEL5300_ANTENNA_SPACING,
)
from repro.exceptions import ConfigurationError


@dataclass(frozen=True)
class UniformLinearArray:
    """An equally spaced linear antenna array.

    Attributes
    ----------
    n_antennas:
        Number of elements ``M`` (3 for the paper's Intel 5300 APs).
    spacing:
        Element spacing ``d`` in meters.
    wavelength:
        Carrier wavelength ``λ`` in meters.
    """

    n_antennas: int = 3
    spacing: float = INTEL5300_ANTENNA_SPACING
    wavelength: float = FIVE_GHZ_WAVELENGTH

    def __post_init__(self) -> None:
        if self.n_antennas < 2:
            raise ConfigurationError(f"an array needs >= 2 antennas, got {self.n_antennas}")
        if self.spacing <= 0:
            raise ConfigurationError(f"antenna spacing must be positive, got {self.spacing}")
        if self.wavelength <= 0:
            raise ConfigurationError(f"wavelength must be positive, got {self.wavelength}")
        if self.spacing > self.wavelength / 2 + 1e-12:
            raise ConfigurationError(
                f"spacing {self.spacing:.4g} m exceeds λ/2 = {self.wavelength / 2:.4g} m; "
                "AoA would be ambiguous over [0°, 180°] (paper Fig. 1)"
            )

    def phase_factor(self, aoa_deg: np.ndarray | float) -> np.ndarray:
        """The adjacent-element phase factor Λ(θ) = exp(−j2πd·cosθ/λ)."""
        theta = np.deg2rad(np.asarray(aoa_deg, dtype=float))
        return np.exp(-2j * np.pi * self.spacing * np.cos(theta) / self.wavelength)

    def steering_vector(self, aoa_deg: float) -> np.ndarray:
        """Paper Eq. 1: phase shifts relative to the first antenna."""
        factor = self.phase_factor(aoa_deg)
        return factor ** np.arange(self.n_antennas)

    def steering_matrix(self, aoas_deg: np.ndarray) -> np.ndarray:
        """Paper Eq. 2/6: one steering vector per angle, shape ``(M, len(aoas))``."""
        aoas_deg = np.asarray(aoas_deg, dtype=float)
        if aoas_deg.ndim != 1:
            raise ConfigurationError(f"aoas_deg must be 1-D, got ndim={aoas_deg.ndim}")
        factors = self.phase_factor(aoas_deg)[None, :]
        exponents = np.arange(self.n_antennas)[:, None]
        return factors**exponents

    @property
    def aperture(self) -> float:
        """Physical aperture (m): distance between the first and last element."""
        return self.spacing * (self.n_antennas - 1)
