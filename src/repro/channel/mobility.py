"""Client mobility models.

The paper's motivation for single-packet operation is mobile clients
(§I): clustering across dozens of packets is useless when the client
moved between them.  This module generates client trajectories through
a room so the tracking experiments and examples can evaluate
localization *along a path* rather than at isolated spots.

Two classic models are provided:

* :func:`waypoint_walk` — straight segments between explicit waypoints
  at constant speed (deterministic; good for reproducible examples).
* :class:`RandomWaypointModel` — the standard random-waypoint mobility
  model: pick a uniform random destination and speed, walk there,
  pause, repeat.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.channel.geometry import Room
from repro.exceptions import ConfigurationError


@dataclass(frozen=True)
class TrajectorySample:
    """One sampled point of a trajectory."""

    time_s: float
    position: tuple[float, float]
    speed_mps: float


def waypoint_walk(
    waypoints: list[tuple[float, float]],
    *,
    speed_mps: float = 1.0,
    sample_interval_s: float = 0.5,
) -> list[TrajectorySample]:
    """Constant-speed walk through explicit waypoints, sampled uniformly.

    Parameters
    ----------
    waypoints:
        At least two (x, y) points; consecutive duplicates are invalid.
    speed_mps:
        Walking speed (≈1 m/s is a pedestrian).
    sample_interval_s:
        Time between emitted samples; one CSI fix per sample.
    """
    if len(waypoints) < 2:
        raise ConfigurationError(f"need >= 2 waypoints, got {len(waypoints)}")
    if speed_mps <= 0 or sample_interval_s <= 0:
        raise ConfigurationError("speed and sample interval must be positive")

    points = [np.asarray(w, dtype=float) for w in waypoints]
    segments = []
    for a, b in zip(points, points[1:]):
        length = float(np.linalg.norm(b - a))
        if length == 0:
            raise ConfigurationError("consecutive duplicate waypoints")
        segments.append((a, b, length))

    total_length = sum(length for *_, length in segments)
    total_time = total_length / speed_mps
    samples = []
    t = 0.0
    while t <= total_time + 1e-9:
        distance = t * speed_mps
        remaining = distance
        for a, b, length in segments:
            if remaining <= length or (a is segments[-1][0] and b is segments[-1][1]):
                fraction = min(remaining / length, 1.0)
                position = a + fraction * (b - a)
                samples.append(
                    TrajectorySample(
                        time_s=t, position=(float(position[0]), float(position[1])),
                        speed_mps=speed_mps,
                    )
                )
                break
            remaining -= length
        t += sample_interval_s
    return samples


def stationary_track(
    position: tuple[float, float],
    *,
    duration_s: float,
    sample_interval_s: float = 0.5,
) -> list[TrajectorySample]:
    """A client that does not move: constant position, zero speed.

    Stationary clients are the degenerate trajectory the streaming load
    generator mixes in (real deployments are mostly people sitting
    still).  ``duration_s=0`` is allowed and yields exactly one sample
    at ``t=0`` — the zero-duration track.
    """
    if duration_s < 0:
        raise ConfigurationError(f"duration must be >= 0, got {duration_s}")
    if sample_interval_s <= 0:
        raise ConfigurationError("sample interval must be positive")
    x, y = float(position[0]), float(position[1])
    samples = []
    t = 0.0
    while t <= duration_s + 1e-9:
        samples.append(TrajectorySample(time_s=t, position=(x, y), speed_mps=0.0))
        t += sample_interval_s
    return samples


@dataclass
class RandomWaypointModel:
    """The random-waypoint mobility model inside a room.

    Attributes
    ----------
    room:
        Movement area; destinations keep ``margin`` meters off the walls.
    speed_range_mps:
        Each leg draws a uniform speed from this range.
    pause_s:
        Dwell time at each destination.
    margin:
        Wall clearance for destinations.
    """

    room: Room
    speed_range_mps: tuple[float, float] = (0.5, 1.5)
    pause_s: float = 1.0
    margin: float = 0.5

    def __post_init__(self) -> None:
        low, high = self.speed_range_mps
        if low <= 0 or high < low:
            raise ConfigurationError(f"bad speed range {self.speed_range_mps}")
        if self.pause_s < 0:
            raise ConfigurationError("pause must be non-negative")
        if 2 * self.margin >= min(self.room.width, self.room.depth):
            raise ConfigurationError("margin leaves no interior")

    def _draw_destination(self, rng: np.random.Generator) -> np.ndarray:
        return np.array(
            [
                rng.uniform(self.margin, self.room.width - self.margin),
                rng.uniform(self.margin, self.room.depth - self.margin),
            ]
        )

    def generate(
        self,
        rng: np.random.Generator,
        *,
        duration_s: float,
        sample_interval_s: float = 0.5,
        start: tuple[float, float] | None = None,
    ) -> list[TrajectorySample]:
        """Sample a trajectory of the given duration."""
        if duration_s <= 0 or sample_interval_s <= 0:
            raise ConfigurationError("duration and sample interval must be positive")
        position = (
            np.asarray(start, dtype=float) if start is not None else self._draw_destination(rng)
        )
        if not self.room.contains(position):
            raise ConfigurationError(f"start {tuple(position)} outside the room")

        samples: list[TrajectorySample] = []
        t = 0.0
        destination = self._draw_destination(rng)
        speed = float(rng.uniform(*self.speed_range_mps))
        pause_left = 0.0
        while t <= duration_s + 1e-9:
            samples.append(
                TrajectorySample(
                    time_s=t,
                    position=(float(position[0]), float(position[1])),
                    speed_mps=0.0 if pause_left > 0 else speed,
                )
            )
            step = sample_interval_s
            if pause_left > 0:
                pause_left = max(0.0, pause_left - step)
            else:
                offset = destination - position
                distance = float(np.linalg.norm(offset))
                travel = speed * step
                if travel >= distance:
                    position = destination
                    destination = self._draw_destination(rng)
                    speed = float(rng.uniform(*self.speed_range_mps))
                    pause_left = self.pause_s
                else:
                    position = position + offset / distance * travel
            t += step
        return samples
