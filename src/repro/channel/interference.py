"""Co-channel interference — the third low-SNR cause the paper names.

Paper §V lists the regimes where prior systems fail: "far away from
APs, serious NLoS, and interference".  Distance and NLoS are modeled by
Friis gains and LoS blockage; this module adds the interference leg: a
co-channel transmitter whose signal arrives at the AP *through its own
multipath channel* and adds to the victim CSI.

Unlike AWGN, interference is spatially and spectrally *structured* — it
looks like extra paths from the interferer's directions.  Subspace
methods are hit hard (the interferer consumes signal-subspace
dimensions); the sparse formulation simply recovers the interferer's
atoms alongside the victim's, and the smallest-ToA rule can still pick
the victim's direct path when the interferer is delayed (asynchronous
transmissions never share a detection instant).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.channel.array import UniformLinearArray
from repro.channel.csi import synthesize_csi_matrix
from repro.channel.ofdm import SubcarrierLayout
from repro.channel.paths import MultipathProfile
from repro.exceptions import ConfigurationError


@dataclass(frozen=True)
class Interferer:
    """One co-channel interference source.

    Attributes
    ----------
    profile:
        The interferer→AP multipath profile (its own AoAs/ToAs).
    power_db:
        Interference power relative to the victim signal (an INR):
        0 dB means interferer and victim arrive equally strong.
    delay_s:
        Timing offset of the interferer's symbol relative to the
        victim's packet (asynchronous networks ⇒ nonzero).
    """

    profile: MultipathProfile
    power_db: float = -3.0
    delay_s: float = 250e-9

    def __post_init__(self) -> None:
        if self.delay_s < 0:
            raise ConfigurationError(f"interferer delay must be non-negative, got {self.delay_s}")


def add_interference(
    csi: np.ndarray,
    interferers: list[Interferer],
    array: UniformLinearArray,
    layout: SubcarrierLayout,
    rng: np.random.Generator,
) -> np.ndarray:
    """Superimpose interferer channels onto a victim CSI batch.

    Parameters
    ----------
    csi:
        Victim CSI of shape ``(P, M, L)`` or ``(M, L)``; the
        interference level is calibrated against its mean power.

    Returns
    -------
    numpy.ndarray
        CSI of the same shape with the structured interference added.
        Each packet draws an independent interferer symbol phase (the
        interferer transmits different data per packet).
    """
    csi = np.asarray(csi, dtype=complex)
    squeeze = csi.ndim == 2
    if squeeze:
        csi = csi[None]
    if csi.ndim != 3:
        raise ConfigurationError(f"csi must be 2-D or 3-D, got shape {csi.shape}")

    victim_power = float(np.mean(np.abs(csi) ** 2))
    if victim_power == 0:
        raise ConfigurationError("cannot calibrate interference against all-zero CSI")

    result = csi.copy()
    for interferer in interferers:
        profile = interferer.profile.normalized()
        template = synthesize_csi_matrix(
            profile, array, layout, extra_delay_s=interferer.delay_s
        )
        template_power = float(np.mean(np.abs(template) ** 2))
        scale = np.sqrt(victim_power / template_power * 10.0 ** (interferer.power_db / 10.0))
        for p in range(result.shape[0]):
            symbol = np.exp(2j * np.pi * rng.uniform())
            result[p] += scale * symbol * template

    return result[0] if squeeze else result


def interference_to_noise_equivalent_db(interferers: list[Interferer]) -> float:
    """Total interference power relative to the victim, in dB.

    Useful for placing an interfered trace on the paper's SNR axis:
    a 0 dB-INR interferer degrades the *effective* SINR to ≈0 dB even
    when the thermal SNR is high.
    """
    if not interferers:
        return float("-inf")
    total = sum(10.0 ** (i.power_db / 10.0) for i in interferers)
    return float(10.0 * np.log10(total))
