"""OFDM subcarrier layouts.

The joint ToA&AoA model (paper §III-B) depends on only two properties of
the OFDM grid: how many subcarriers report CSI and how far apart they
are.  :class:`SubcarrierLayout` captures both plus the carrier
frequency, and :func:`intel5300_layout` builds the layout of the
hardware the paper uses (30 reported subcarriers spaced fδ = 1.25 MHz
on a 40 MHz channel, so τmax = 1/fδ = 800 ns).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.channel.constants import (
    FIVE_GHZ_CENTER,
    INTEL5300_SUBCARRIER_SPACING,
    INTEL5300_SUBCARRIERS,
    SPEED_OF_LIGHT,
)
from repro.exceptions import ConfigurationError


@dataclass(frozen=True)
class SubcarrierLayout:
    """A set of equally spaced CSI-reporting subcarriers.

    Attributes
    ----------
    n_subcarriers:
        Number of subcarriers ``L`` with CSI measurements.
    spacing:
        Spacing fδ in Hz between adjacent *reported* subcarriers (paper
        footnote 7).
    center_frequency:
        Carrier center frequency in Hz; sets the wavelength used for the
        AoA phase model.
    """

    n_subcarriers: int = INTEL5300_SUBCARRIERS
    spacing: float = INTEL5300_SUBCARRIER_SPACING
    center_frequency: float = FIVE_GHZ_CENTER

    def __post_init__(self) -> None:
        if self.n_subcarriers < 1:
            raise ConfigurationError(f"need >= 1 subcarrier, got {self.n_subcarriers}")
        if self.spacing <= 0:
            raise ConfigurationError(f"subcarrier spacing must be positive, got {self.spacing}")
        if self.center_frequency <= 0:
            raise ConfigurationError(f"center frequency must be positive, got {self.center_frequency}")

    @property
    def wavelength(self) -> float:
        """Carrier wavelength λ = c / f_c in meters."""
        return SPEED_OF_LIGHT / self.center_frequency

    @property
    def max_unambiguous_delay(self) -> float:
        """τmax = 1/fδ: delays wrap modulo this (800 ns for Intel 5300)."""
        return 1.0 / self.spacing

    def frequency_offsets(self) -> np.ndarray:
        """Baseband offsets of each reported subcarrier from the first one.

        The ToA phase ramp across subcarriers (paper Eq. 12) depends only
        on these relative offsets: subcarrier ``l`` adds
        ``exp(−j·2π·l·fδ·τ)``.
        """
        return self.spacing * np.arange(self.n_subcarriers, dtype=float)

    def delay_phase_factor(self, toa_s: np.ndarray | float) -> np.ndarray:
        """Paper Eq. 12: Γ(τ) = exp(−j·2π·fδ·τ), the adjacent-subcarrier factor."""
        toa_s = np.asarray(toa_s, dtype=float)
        return np.exp(-2j * np.pi * self.spacing * toa_s)

    def delay_response(self, toa_s: float) -> np.ndarray:
        """Per-subcarrier phase ramp [1, Γ, …, Γ^{L−1}] for one delay."""
        return self.delay_phase_factor(toa_s) ** np.arange(self.n_subcarriers)


def intel5300_layout(bandwidth_40mhz: bool = True) -> SubcarrierLayout:
    """The subcarrier layout of the Intel 5300 CSI tool.

    With a 40 MHz channel (the paper's setting) the NIC reports CSI for
    30 subcarriers spaced 1.25 MHz apart; on a 20 MHz channel the 30
    reported subcarriers are spaced every 2 raw subcarriers, i.e.
    625 kHz.
    """
    spacing = INTEL5300_SUBCARRIER_SPACING if bandwidth_40mhz else 0.625e6
    return SubcarrierLayout(
        n_subcarriers=INTEL5300_SUBCARRIERS,
        spacing=spacing,
        center_frequency=FIVE_GHZ_CENTER,
    )
