"""Physical constants and WiFi band parameters used across the simulator."""

SPEED_OF_LIGHT = 299_792_458.0
"""Speed of light in vacuum, m/s."""

FIVE_GHZ_CENTER = 5.32e9
"""Center frequency (Hz) of the 40 MHz 5 GHz channel used by the testbed.

The paper fixes a non-busy 40 MHz channel in the 5 GHz band for all
tests (2.4 GHz is unusable on the Intel 5300 due to firmware phase
ambiguity).  Channel 64 (5.32 GHz) gives the λ ≈ 5.6 cm the paper's
half-wavelength 2.6 cm antenna spacing corresponds to.
"""

FIVE_GHZ_WAVELENGTH = SPEED_OF_LIGHT / FIVE_GHZ_CENTER
"""Carrier wavelength (m) at :data:`FIVE_GHZ_CENTER` — about 5.6 cm."""

INTEL5300_ANTENNA_SPACING = FIVE_GHZ_WAVELENGTH / 2.0
"""Half-wavelength antenna spacing (m) used by the paper's 3-antenna APs."""

INTEL5300_SUBCARRIERS = 30
"""The Intel 5300 reports CSI for 30 of the 114/116 subcarriers."""

INTEL5300_SUBCARRIER_SPACING = 1.25e6
"""Effective spacing (Hz) between reported subcarriers on a 40 MHz band.

Per the paper's footnote 7: CSI is reported every 4 subcarriers on a
40 MHz band, so fδ = 4 × 312.5 kHz = 1.25 MHz, bounding the unambiguous
ToA range at τmax = 1/fδ = 800 ns.
"""
