"""CSI synthesis — producing the paper's Eq. 4 matrix.

For each packet the Intel 5300 reports a complex matrix
``C ∈ ℂ^{M×L}`` (M antennas × L subcarriers).  The clean channel of a
K-path profile is

    C[i, l] = Σ_k a_k · Λ(θ_k)^i · Γ(τ_k)^l

with Λ from Eq. 1 (AoA phase across antennas) and Γ from Eq. 12 (ToA
phase across subcarriers).  On top of the clean channel the synthesizer
applies, in order: the per-packet detection delay (an extra common
Γ(τ_d)^l ramp), per-boot antenna phase offsets, polarization effects,
and AWGN at the requested SNR.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.channel.array import UniformLinearArray
from repro.channel.impairments import ImpairmentModel
from repro.channel.noise import awgn
from repro.channel.ofdm import SubcarrierLayout
from repro.channel.paths import MultipathProfile
from repro.channel.trace import CsiTrace
from repro.exceptions import ConfigurationError


def synthesize_csi_matrix(
    profile: MultipathProfile,
    array: UniformLinearArray,
    layout: SubcarrierLayout,
    *,
    extra_delay_s: float = 0.0,
    antenna_phase_offsets: np.ndarray | None = None,
    antenna_gains: np.ndarray | None = None,
) -> np.ndarray:
    """The clean (noise-free) CSI matrix for one packet.

    Parameters
    ----------
    extra_delay_s:
        Common delay added to every path (packet detection delay).
    antenna_phase_offsets:
        Optional per-antenna phase offsets in radians (per-boot effect).
    antenna_gains:
        Optional per-antenna complex gain factors (polarization ripple).

    Returns
    -------
    numpy.ndarray
        Complex matrix of shape ``(array.n_antennas, layout.n_subcarriers)``.
    """
    m = array.n_antennas
    length = layout.n_subcarriers

    antenna_index = np.arange(m)[:, None]            # (M, 1)
    subcarrier_index = np.arange(length)[None, :]     # (1, L)

    csi = np.zeros((m, length), dtype=complex)
    for path in profile.paths:
        spatial = array.phase_factor(path.aoa_deg) ** antenna_index
        temporal = layout.delay_phase_factor(path.toa_s + extra_delay_s) ** subcarrier_index
        csi += path.gain * spatial * temporal

    if antenna_phase_offsets is not None:
        offsets = np.asarray(antenna_phase_offsets, dtype=float)
        if offsets.shape != (m,):
            raise ConfigurationError(f"phase offsets must have shape ({m},), got {offsets.shape}")
        csi *= np.exp(1j * offsets)[:, None]

    if antenna_gains is not None:
        gains = np.asarray(antenna_gains, dtype=complex)
        if gains.shape != (m,):
            raise ConfigurationError(f"antenna gains must have shape ({m},), got {gains.shape}")
        csi *= gains[:, None]

    return csi


@dataclass
class CsiSynthesizer:
    """Generates packet batches of impaired, noisy CSI for one link.

    One synthesizer instance corresponds to one AP "boot": the antenna
    phase offsets are drawn once at construction (from ``seed``) and
    shared by every packet, exactly like a real NIC that keeps its RF
    phase until the channel is retuned.  Per-packet randomness
    (detection delay, noise, polarization ripple) is drawn from the
    generator passed to :meth:`packets`.
    """

    array: UniformLinearArray
    layout: SubcarrierLayout
    impairments: ImpairmentModel = ImpairmentModel()
    seed: int = 0

    def __post_init__(self) -> None:
        boot_rng = np.random.default_rng(self.seed)
        self.phase_offsets = self.impairments.draw_phase_offsets(boot_rng, self.array.n_antennas)

    def packets(
        self,
        profile: MultipathProfile,
        *,
        n_packets: int,
        snr_db: float,
        rng: np.random.Generator,
    ) -> CsiTrace:
        """Synthesize ``n_packets`` CSI matrices at the requested SNR.

        The profile is power-normalized first so ``snr_db`` is exact
        regardless of absolute path gains; the polarization amplitude
        factor is then applied *after* normalization so antenna tilt
        lowers the effective SNR as it does physically.
        """
        if n_packets < 1:
            raise ConfigurationError(f"n_packets must be >= 1, got {n_packets}")
        # RSSI reflects the *physical* link strength (Friis gains and
        # polarization loss) even though the profile is then normalized
        # so the synthesized SNR is exact.
        amplitude = self.impairments.polarization_amplitude()
        link_power = profile.total_power * amplitude**2
        profile = profile.normalized()

        matrices = np.empty(
            (n_packets, self.array.n_antennas, self.layout.n_subcarriers), dtype=complex
        )
        delays = np.empty(n_packets)
        for p in range(n_packets):
            delay = self.impairments.draw_detection_delay(rng)
            ripple = self.impairments.draw_polarization_ripple(rng, self.array.n_antennas)
            cfo_phase = self.impairments.draw_cfo_phase(rng)
            clean = synthesize_csi_matrix(
                profile,
                self.array,
                self.layout,
                extra_delay_s=delay,
                antenna_phase_offsets=self.phase_offsets,
                antenna_gains=amplitude * ripple,
            ) * np.exp(1j * cfo_phase)
            matrices[p] = awgn(clean, snr_db, rng)
            delays[p] = delay

        return CsiTrace(
            csi=matrices,
            snr_db=snr_db,
            detection_delays_s=delays,
            antenna_phase_offsets=self.phase_offsets.copy(),
            true_aoas_deg=profile.aoas_deg,
            true_toas_s=profile.toas_s,
            direct_aoa_deg=profile.direct_path.aoa_deg,
            direct_toa_s=profile.direct_path.toa_s,
            rssi_dbm=rssi_from_power(link_power),
            source_format="synthetic",
        )


def rssi_from_power(mean_power: float, *, reference_dbm: float = 40.0) -> float:
    """Map a link power to an RSSI-like dBm figure.

    The multi-AP localizer (paper Eq. 19) only uses RSSI as a *relative*
    weight across APs, so any monotone map works; we use
    ``reference_dbm + 10·log10(power)`` with a floor at −100 dBm.  The
    default reference puts a 5 m Friis link near −40 dBm, a realistic
    indoor figure.
    """
    if mean_power <= 0:
        return -100.0
    return max(reference_dbm + 10.0 * np.log10(mean_power), -100.0)
