"""Planar (2-D) antenna arrays — the paper's §IV-F future-work direction.

Fig. 8c shows the 1-D array's accuracy collapsing when the client
antenna tilts out of the polarization plane; the paper proposes "the
2-dimension antenna array with both vertical and horizontal
polarizations" as the remedy.  This module provides that hardware
model:

* :class:`PlanarArray` — an n_x × n_y rectangular grid of elements in
  the x–y plane.  A far-field signal from azimuth φ / elevation θ
  induces per-element phases through the projection of its direction
  cosines onto the element positions, generalizing paper Eq. 1.
* :class:`DualPolarizationFeed` — a pair of orthogonally polarized
  feeds per element; combining them bounds the polarization loss at
  √½ of the ideal gain regardless of client tilt, instead of the
  cos(deviation) collapse of a single feed.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.channel.constants import FIVE_GHZ_WAVELENGTH
from repro.exceptions import ConfigurationError


@dataclass(frozen=True)
class PlanarArray:
    """A rectangular grid of antennas in the x–y plane.

    Attributes
    ----------
    n_x / n_y:
        Elements along each axis (total ``n_x · n_y``).
    spacing_x / spacing_y:
        Element pitch in meters; each must be ≤ λ/2 to keep the
        azimuth–elevation mapping unambiguous over the upper half-space.
    wavelength:
        Carrier wavelength λ in meters.
    """

    n_x: int = 2
    n_y: int = 2
    spacing_x: float = FIVE_GHZ_WAVELENGTH / 2.0
    spacing_y: float = FIVE_GHZ_WAVELENGTH / 2.0
    wavelength: float = FIVE_GHZ_WAVELENGTH

    def __post_init__(self) -> None:
        if self.n_x < 1 or self.n_y < 1 or self.n_x * self.n_y < 2:
            raise ConfigurationError(
                f"planar array needs >= 2 elements, got {self.n_x}×{self.n_y}"
            )
        if self.spacing_x <= 0 or self.spacing_y <= 0:
            raise ConfigurationError("element spacings must be positive")
        if self.wavelength <= 0:
            raise ConfigurationError("wavelength must be positive")
        half = self.wavelength / 2 + 1e-12
        if self.spacing_x > half or self.spacing_y > half:
            raise ConfigurationError(
                "element spacing exceeds λ/2; azimuth/elevation would be ambiguous"
            )

    @property
    def n_elements(self) -> int:
        return self.n_x * self.n_y

    def element_positions(self) -> np.ndarray:
        """(n_elements, 2) element coordinates in meters, x-fastest."""
        xs = self.spacing_x * np.arange(self.n_x)
        ys = self.spacing_y * np.arange(self.n_y)
        gx, gy = np.meshgrid(xs, ys, indexing="ij")
        return np.column_stack([gx.reshape(-1), gy.reshape(-1)])

    @staticmethod
    def direction_cosines(azimuth_deg: float, elevation_deg: float) -> np.ndarray:
        """In-plane direction cosines (u, v) of an arrival direction.

        Azimuth is measured in the array plane from +x; elevation from
        the plane toward zenith (90° = boresight, phases flat).
        """
        azimuth = np.deg2rad(azimuth_deg)
        elevation = np.deg2rad(elevation_deg)
        return np.array(
            [np.cos(elevation) * np.cos(azimuth), np.cos(elevation) * np.sin(azimuth)]
        )

    def steering_vector(self, azimuth_deg: float, elevation_deg: float) -> np.ndarray:
        """Per-element phases for one arrival direction (generalized Eq. 1)."""
        if not 0.0 <= elevation_deg <= 90.0:
            raise ConfigurationError(f"elevation must be in [0, 90], got {elevation_deg}")
        cosines = self.direction_cosines(azimuth_deg, elevation_deg)
        projections = self.element_positions() @ cosines
        return np.exp(-2j * np.pi * projections / self.wavelength)

    def steering_matrix(
        self, azimuths_deg: np.ndarray, elevations_deg: np.ndarray
    ) -> np.ndarray:
        """Dictionary over an (azimuth × elevation) grid.

        Column ordering is elevation-major: column ``j·Naz + i``
        corresponds to azimuth ``i``, elevation ``j`` (mirroring the
        delay-major layout of the joint ToA&AoA dictionary).
        """
        azimuths_deg = np.asarray(azimuths_deg, dtype=float)
        elevations_deg = np.asarray(elevations_deg, dtype=float)
        columns = []
        for elevation in elevations_deg:
            for azimuth in azimuths_deg:
                columns.append(self.steering_vector(float(azimuth), float(elevation)))
        return np.stack(columns, axis=1)


@dataclass(frozen=True)
class DualPolarizationFeed:
    """Two orthogonally polarized feeds combined per element.

    A single feed receives amplitude ``cos(deviation)`` of a tilted
    client antenna; the orthogonal feed receives ``sin(deviation)``.
    Diversity combining (root-sum-square, i.e. maximum-ratio combining
    of the two feeds) therefore receives the full amplitude at any
    tilt — up to the ``combining_efficiency`` of the combiner.
    """

    combining_efficiency: float = 0.95

    def __post_init__(self) -> None:
        if not 0.0 < self.combining_efficiency <= 1.0:
            raise ConfigurationError(
                f"combining efficiency must be in (0, 1], got {self.combining_efficiency}"
            )

    def amplitude(self, deviation_deg: float) -> float:
        """Received amplitude factor at a given polarization deviation."""
        if not 0.0 <= deviation_deg <= 90.0:
            raise ConfigurationError(f"deviation must be in [0, 90], got {deviation_deg}")
        deviation = np.deg2rad(deviation_deg)
        co = np.cos(deviation)
        cross = np.sin(deviation)
        return self.combining_efficiency * float(np.sqrt(co**2 + cross**2))
