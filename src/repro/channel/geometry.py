"""Room geometry and image-method multipath tracing.

The paper evaluates in an 18 m × 12 m classroom with 6 APs and a mobile
client (Fig. 5).  This module provides the geometric substrate: a
rectangular room, wall-mounted access points with known array
orientation, and a specular ray tracer (method of images) that converts
a transmitter/receiver pair into the :class:`~repro.channel.paths.MultipathProfile`
the CSI synthesizer consumes.  Ground-truth AoA/ToA therefore come from
actual geometry rather than being drawn from a distribution, so the
localization experiments close the loop from CSI to coordinates exactly
the way the testbed does.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.channel.constants import SPEED_OF_LIGHT
from repro.channel.paths import MultipathProfile, PropagationPath
from repro.exceptions import GeometryError


@dataclass(frozen=True)
class Wall:
    """An axis-aligned wall segment.

    ``axis`` is 0 for a vertical wall (constant x) and 1 for a
    horizontal wall (constant y); ``offset`` is that constant coordinate
    and ``(lo, hi)`` bound the other coordinate.
    """

    axis: int
    offset: float
    lo: float
    hi: float

    def __post_init__(self) -> None:
        if self.axis not in (0, 1):
            raise GeometryError(f"wall axis must be 0 or 1, got {self.axis}")
        if self.hi <= self.lo:
            raise GeometryError(f"degenerate wall extent [{self.lo}, {self.hi}]")

    def mirror(self, point: np.ndarray) -> np.ndarray:
        """Reflect ``point`` across the infinite line containing this wall."""
        mirrored = np.array(point, dtype=float)
        mirrored[self.axis] = 2.0 * self.offset - mirrored[self.axis]
        return mirrored

    def contains_projection(self, point: np.ndarray) -> bool:
        """True when ``point`` (already on the wall line) lies on the segment."""
        other = point[1 - self.axis]
        return self.lo - 1e-9 <= other <= self.hi + 1e-9


def reflect_point(point: np.ndarray, wall: Wall) -> np.ndarray:
    """Module-level alias of :meth:`Wall.mirror` (convenient for tests)."""
    return wall.mirror(np.asarray(point, dtype=float))


@dataclass(frozen=True)
class Room:
    """A rectangular room ``[0, width] × [0, depth]`` with four reflecting walls."""

    width: float = 18.0
    depth: float = 12.0
    reflection_coefficient: float = 0.5

    def __post_init__(self) -> None:
        if self.width <= 0 or self.depth <= 0:
            raise GeometryError(f"room dimensions must be positive, got {self.width}×{self.depth}")
        if not 0.0 <= self.reflection_coefficient <= 1.0:
            raise GeometryError(
                f"reflection coefficient must be in [0, 1], got {self.reflection_coefficient}"
            )

    @property
    def walls(self) -> tuple[Wall, ...]:
        return (
            Wall(axis=0, offset=0.0, lo=0.0, hi=self.depth),
            Wall(axis=0, offset=self.width, lo=0.0, hi=self.depth),
            Wall(axis=1, offset=0.0, lo=0.0, hi=self.width),
            Wall(axis=1, offset=self.depth, lo=0.0, hi=self.width),
        )

    def contains(self, point: np.ndarray) -> bool:
        x, y = float(point[0]), float(point[1])
        return 0.0 <= x <= self.width and 0.0 <= y <= self.depth


@dataclass(frozen=True)
class AccessPoint:
    """A wall-mounted AP with a uniform linear array.

    ``axis_direction_deg`` gives the direction of the array axis in
    world coordinates (0° = +x).  AoA is measured between the incoming
    bearing (AP → source) and this axis, so it lands in [0°, 180°] as in
    paper Fig. 1.
    """

    position: tuple[float, float]
    axis_direction_deg: float = 0.0
    name: str = "ap"

    @property
    def position_array(self) -> np.ndarray:
        return np.array(self.position, dtype=float)

    @property
    def axis_unit(self) -> np.ndarray:
        angle = np.deg2rad(self.axis_direction_deg)
        return np.array([np.cos(angle), np.sin(angle)])

    def bearing_to_aoa(self, source: np.ndarray) -> float:
        """AoA in degrees of a signal arriving from ``source``."""
        offset = np.asarray(source, dtype=float) - self.position_array
        distance = np.linalg.norm(offset)
        if distance == 0:
            raise GeometryError(f"source coincides with AP {self.name!r}")
        cosine = float(np.clip(np.dot(offset / distance, self.axis_unit), -1.0, 1.0))
        return float(np.rad2deg(np.arccos(cosine)))

    def aoa_to_bearing_cosine(self, aoa_deg: float) -> float:
        """cos(θ) for consistency checks / localization cost evaluation."""
        return float(np.cos(np.deg2rad(aoa_deg)))


@dataclass
class Scene:
    """A room plus its APs, optional point scatterers, and a client position."""

    room: Room
    access_points: list[AccessPoint]
    client: tuple[float, float]
    scatterers: list[tuple[float, float]] = field(default_factory=list)
    scatterer_power_db: float = -9.0
    max_reflections: int = 1

    def __post_init__(self) -> None:
        if not self.access_points:
            raise GeometryError("scene needs at least one access point")
        client = np.asarray(self.client, dtype=float)
        if not self.room.contains(client):
            raise GeometryError(f"client {self.client} is outside the room")
        for ap in self.access_points:
            if not self.room.contains(ap.position_array):
                raise GeometryError(f"AP {ap.name!r} at {ap.position} is outside the room")

    @property
    def client_array(self) -> np.ndarray:
        return np.array(self.client, dtype=float)

    def ground_truth_aoa(self, ap_index: int) -> float:
        """The LoS AoA at one AP, straight from geometry."""
        return self.access_points[ap_index].bearing_to_aoa(self.client_array)

    def ground_truth_distance(self, ap_index: int) -> float:
        return float(np.linalg.norm(self.client_array - self.access_points[ap_index].position_array))

    def multipath_profile(self, ap_index: int, wavelength: float) -> MultipathProfile:
        """Trace the dominant paths from the client to one AP."""
        ap = self.access_points[ap_index]
        return trace_paths(
            room=self.room,
            transmitter=self.client_array,
            receiver=ap,
            wavelength=wavelength,
            scatterers=self.scatterers,
            scatterer_power_db=self.scatterer_power_db,
            max_reflections=self.max_reflections,
        )


def _friis_amplitude(distance: float, wavelength: float) -> float:
    """Free-space amplitude λ/(4πd), floored at a 10 cm effective distance."""
    return wavelength / (4.0 * np.pi * max(distance, 0.1))


def _path_gain(length: float, wavelength: float, extra_amplitude: float = 1.0) -> complex:
    """Complex gain: Friis amplitude × reflection losses × carrier phase e^{−j2πd/λ}."""
    amplitude = _friis_amplitude(length, wavelength) * extra_amplitude
    phase = -2.0 * np.pi * length / wavelength
    return amplitude * np.exp(1j * phase)


def _specular_bounce(
    image: np.ndarray, target: np.ndarray, wall: Wall
) -> np.ndarray | None:
    """Last bounce point of the ray image→target on ``wall``, or None.

    The image method reduces a reflected path to a straight segment from
    the mirrored source to the target; the physical bounce is where that
    segment crosses the wall plane, and it is valid only when the
    crossing lies on the wall segment.
    """
    direction = target - image
    denom = direction[wall.axis]
    if abs(denom) < 1e-12:
        return None  # Ray parallel to the wall: no specular bounce.
    t = (wall.offset - image[wall.axis]) / denom
    if not 0.0 < t < 1.0:
        return None  # Bounce point not between the endpoints.
    bounce = image + t * direction
    if not wall.contains_projection(bounce):
        return None
    return bounce


def trace_paths(
    room: Room,
    transmitter: np.ndarray,
    receiver: AccessPoint,
    wavelength: float,
    *,
    scatterers: list[tuple[float, float]] | None = None,
    scatterer_power_db: float = -9.0,
    max_reflections: int = 1,
) -> MultipathProfile:
    """Direct path + specular wall reflections (+ scatterer bounces).

    Uses the method of images: mirror the transmitter across a wall (or
    across two walls in sequence for ``max_reflections=2``), intersect
    the mirrored line-of-sight with each wall plane, and accept the
    bounce chain when every intersection lies on its wall segment.
    First-order reflections off four walls plus a handful of scatterer
    paths give the ≈5-dominant-path channels the paper's sparsity
    argument relies on; second-order reflections add the weaker tail of
    a realistic power-delay profile.
    """
    if max_reflections not in (1, 2):
        raise GeometryError(f"max_reflections must be 1 or 2, got {max_reflections}")
    transmitter = np.asarray(transmitter, dtype=float)
    rx = receiver.position_array
    paths: list[PropagationPath] = []

    # Direct (LoS) path.
    direct_length = float(np.linalg.norm(transmitter - rx))
    if direct_length == 0:
        raise GeometryError("transmitter coincides with receiver")
    paths.append(
        PropagationPath(
            aoa_deg=receiver.bearing_to_aoa(transmitter),
            toa_s=direct_length / SPEED_OF_LIGHT,
            gain=_path_gain(direct_length, wavelength),
            is_direct=True,
        )
    )

    # First-order specular reflections via the image method.
    for wall in room.walls:
        image = wall.mirror(transmitter)
        bounce = _specular_bounce(image, rx, wall)
        if bounce is None:
            continue
        length = float(np.linalg.norm(image - rx))  # image distance = unfolded path length
        if length <= direct_length + 1e-9:
            continue  # Degenerate (tx on the wall).
        paths.append(
            PropagationPath(
                aoa_deg=receiver.bearing_to_aoa(bounce),
                toa_s=length / SPEED_OF_LIGHT,
                gain=_path_gain(length, wavelength, extra_amplitude=room.reflection_coefficient),
            )
        )

    # Second-order reflections: mirror across wall A, then across wall B.
    # The unfolded path is double_image → rx; the *last* bounce (on wall
    # B) fixes the arrival direction, and the first bounce must also lie
    # on wall A for the chain to be physical.
    if max_reflections >= 2:
        for first_wall in room.walls:
            first_image = first_wall.mirror(transmitter)
            for second_wall in room.walls:
                if second_wall is first_wall:
                    continue
                double_image = second_wall.mirror(first_image)
                last_bounce = _specular_bounce(double_image, rx, second_wall)
                if last_bounce is None:
                    continue
                first_bounce = _specular_bounce(first_image, last_bounce, first_wall)
                if first_bounce is None:
                    continue
                length = float(np.linalg.norm(double_image - rx))
                if length <= direct_length + 1e-9:
                    continue
                paths.append(
                    PropagationPath(
                        aoa_deg=receiver.bearing_to_aoa(last_bounce),
                        toa_s=length / SPEED_OF_LIGHT,
                        gain=_path_gain(
                            length,
                            wavelength,
                            extra_amplitude=room.reflection_coefficient**2,
                        ),
                    )
                )

    # Point-scatterer bounces (furniture, people).
    scatter_amplitude = 10.0 ** (scatterer_power_db / 20.0)
    for scatterer in scatterers or []:
        sc = np.asarray(scatterer, dtype=float)
        if not room.contains(sc):
            raise GeometryError(f"scatterer {scatterer} is outside the room")
        leg_in = float(np.linalg.norm(transmitter - sc))
        leg_out = float(np.linalg.norm(sc - rx))
        if leg_in == 0 or leg_out == 0:
            continue
        length = leg_in + leg_out
        paths.append(
            PropagationPath(
                aoa_deg=receiver.bearing_to_aoa(sc),
                toa_s=length / SPEED_OF_LIGHT,
                gain=_path_gain(length, wavelength, extra_amplitude=scatter_amplitude),
            )
        )

    return MultipathProfile(paths=paths).sorted_by_toa()
