"""The one front door for trace resolution.

Every way the codebase obtains a :class:`CsiTrace` — a saved ``.npz``,
an Intel 5300 ``.dat`` log, a SpotFi ``.mat`` capture, a registered
``dataset://name``, a ``synthetic://`` scenario — resolves through
:func:`open_trace` / :func:`open_traces`.  ``CsiTrace.load``, every CLI
subcommand and every experiment driver delegate here; no other module
parses trace files.

Resolution rules, in order:

1. A :class:`CsiTrace` instance passes through unchanged.
2. ``dataset://name`` → the registry (checksum-verified, AP geometry
   and ground truth applied).
3. ``synthetic://…`` → the simulator
   (:mod:`repro.io.synthetic`).
4. An existing file path → format sniffing: the extension when it is
   decisive (``.npz``/``.dat``/``.mat``), magic bytes otherwise (npz
   archives are ZIP, v5 ``.mat`` files open with a MATLAB header, a
   plausible bfee record header marks an Intel log).
5. A bare synthetic scenario name (``random``, ``high``, ``medium``,
   ``low``) — only when no such file exists, so files always win.

``format=`` overrides sniffing for files with misleading names.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path

from repro.channel.trace import CsiTrace
from repro.exceptions import IngestError

#: File formats open_trace understands, for the docs/CLI format matrix.
FILE_FORMATS = ("npz", "intel-dat", "spotfi-mat")

#: Spec prefixes for non-file sources.
DATASET_PREFIX = "dataset://"
SYNTHETIC_PREFIX = "synthetic://"


@dataclass(frozen=True)
class TraceSource:
    """A resolved (but not yet loaded) trace source."""

    spec: str
    kind: str  # "file" | "dataset" | "synthetic"
    format: str | None = None  # file kind only
    path: Path | None = None  # file kind only
    dataset: str | None = None  # dataset kind only


def sniff_format(path: str | Path) -> str:
    """Identify a trace file's format from its extension, then magic."""
    path = Path(path)
    suffix = path.suffix.lower()
    if suffix == ".npz":
        return "npz"
    if suffix == ".dat":
        return "intel-dat"
    if suffix == ".mat":
        return "spotfi-mat"
    try:
        with open(path, "rb") as handle:
            head = handle.read(128)
    except OSError as error:
        raise IngestError(f"cannot read {path}: {error}", kind="io") from error
    if head.startswith(b"PK\x03\x04"):
        return "npz"
    if head.startswith(b"MATLAB"):
        return "spotfi-mat"
    if len(head) >= 3:
        field_len = int.from_bytes(head[:2], "big")
        # A plausible first record: sane length prefix and a known code
        # byte (0xBB bfee or 0xC1 beacon-stamp records).
        if 1 <= field_len <= 4096 and head[2] in (0xBB, 0xC1):
            return "intel-dat"
    raise IngestError(
        f"cannot determine the trace format of {path}; pass format= explicitly "
        f"(one of {', '.join(FILE_FORMATS)})",
        kind="unresolved",
    )


def resolve_source(
    source: str | Path,
    *,
    format: str = "auto",
) -> TraceSource:
    """Classify a source spec without loading it (resolution rules above)."""
    spec = str(source)
    if spec.startswith(DATASET_PREFIX):
        name = spec[len(DATASET_PREFIX) :]
        if not name:
            raise IngestError("empty dataset name in 'dataset://'", kind="unresolved")
        return TraceSource(spec=spec, kind="dataset", dataset=name)
    if spec.startswith(SYNTHETIC_PREFIX):
        return TraceSource(spec=spec, kind="synthetic")
    path = Path(spec)
    if path.exists():
        if format == "auto":
            detected = sniff_format(path)
        elif format in FILE_FORMATS:
            detected = format
        else:
            raise IngestError(f"unknown format {format!r} (one of {', '.join(FILE_FORMATS)})")
        return TraceSource(spec=spec, kind="file", format=detected, path=path)
    from repro.io.synthetic import BARE_SCENARIOS

    head = spec.partition("?")[0]
    if head in BARE_SCENARIOS:
        return TraceSource(spec=spec, kind="synthetic")
    raise IngestError(
        f"trace source {spec!r} is neither an existing file, a dataset:// "
        "reference, a synthetic:// spec, nor a known scenario name",
        kind="unresolved",
    )


def _load_file(resolved: TraceSource) -> CsiTrace:
    if resolved.format == "npz":
        from repro.io.npzio import read_npz_trace

        return read_npz_trace(resolved.path)
    if resolved.format == "intel-dat":
        from repro.io.intel import read_intel_dat

        return read_intel_dat(resolved.path)
    from repro.io.matio import read_spotfi_mat

    return read_spotfi_mat(resolved.path)


def open_traces(
    source: str | Path | CsiTrace,
    *,
    format: str = "auto",
    registry=None,
    stages=None,
) -> list[tuple[str, CsiTrace]]:
    """Resolve a source spec into labeled traces.

    Files and datasets yield one trace (labeled by spec); a synthetic
    spec yields as many as its ``n`` parameter asks for.  ``stages``
    (a list of :class:`~repro.io.stages.PreprocessingStage`) is applied
    to every trace when given.
    """
    if isinstance(source, CsiTrace):
        pairs = [("<trace>", source)]
    else:
        resolved = resolve_source(source, format=format)
        if resolved.kind == "file":
            pairs = [(resolved.spec, _load_file(resolved))]
        elif resolved.kind == "dataset":
            from repro.io.registry import DatasetRegistry

            if registry is None:
                registry = DatasetRegistry()
            elif not isinstance(registry, DatasetRegistry):
                registry = DatasetRegistry(registry)
            pairs = [(resolved.spec, registry.load_trace(resolved.dataset))]
        else:
            from repro.io.synthetic import synthesize_from_spec

            pairs = synthesize_from_spec(resolved.spec)
    if stages:
        from repro.io.stages import run_stages

        pairs = [(label, run_stages(trace, stages)[0]) for label, trace in pairs]
    return pairs


def open_trace(
    source: str | Path | CsiTrace,
    *,
    format: str = "auto",
    registry=None,
    stages=None,
) -> CsiTrace:
    """Resolve a source spec into exactly one :class:`CsiTrace`.

    The single-trace front door (``CsiTrace.load`` delegates here).  A
    synthetic spec that expands to several traces is rejected — use
    :func:`open_traces` for fan-out sources.
    """
    pairs = open_traces(source, format=format, registry=registry, stages=stages)
    if len(pairs) != 1:
        raise IngestError(
            f"source {source!r} resolves to {len(pairs)} traces; open_trace "
            "expects exactly one (use open_traces)"
        )
    return pairs[0][1]
