"""Fit the simulator's impairment parameters from a capture.

The synthetic channel (:class:`repro.channel.impairments.ImpairmentModel`)
*assumes* numbers for the Intel 5300's hardware quirks — detection-delay
range, per-boot antenna phase offsets, CFO residue.  This module closes
the loop: given a real (or synthetic) trace it *estimates* those same
parameters, so the assumptions can be checked against hardware and the
simulator re-fit to a specific testbed.

The estimator is the same joint linear-phase model SpotFi's Algorithm 1
removes (:func:`repro.io.stages.fit_phase_slope`): per packet, one
common slope plus per-antenna intercepts.

* The slope is ``−2π·Δf·(detection delay + direct ToA)``.  The static
  ToA part is common to every packet of a static link, so *relative*
  per-packet delays (minimum subtracted) estimate the detection-delay
  jitter — the absolute delay is unobservable on this hardware, which
  is exactly the paper's §V argument for not using raw ToA as range.
* Intercept differences between antennas estimate the per-boot phase
  offsets (antenna 0 as reference, matching
  ``ImpairmentModel.draw_phase_offsets``); their per-packet scatter
  bounds how well a static offset explains the data.
* The packet-to-packet scatter of the reference intercept estimates the
  residual CFO phase.

Everything lands in a :class:`CalibrationReport` that round-trips to
JSON and converts back into an :class:`ImpairmentModel` /
:class:`~repro.io.stages.PhaseOffsetCorrection`, with spans and metrics
via :mod:`repro.obs`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.channel.trace import CsiTrace
from repro.exceptions import CalibrationError
from repro.io.stages import fit_phase_slope
from repro.obs import NULL_TRACER


def _wrap_pi(angle: np.ndarray) -> np.ndarray:
    """Wrap radians into (−π, π]."""
    return np.angle(np.exp(1j * np.asarray(angle, dtype=float)))


@dataclass(frozen=True)
class CalibrationReport:
    """Estimated impairment parameters for one capture.

    Attributes
    ----------
    n_packets / n_antennas:
        Shape of the fitted trace.
    relative_delays_s:
        Per-packet detection delay relative to the luckiest packet
        (minimum subtracted; the absolute delay is unobservable).
    detection_delay_range_s:
        Spread of the relative delays — the direct counterpart of
        ``ImpairmentModel.detection_delay_range_s``.
    sfo_std_s:
        Standard deviation of the relative delays.
    phase_offsets_rad:
        Per-antenna phase offsets, antenna 0 = 0 (reference).
    phase_offset_stability_rad:
        Largest per-antenna circular std of the offset across packets;
        small means "static per-boot offset" is a good model.
    cfo_residual_rad:
        Half-range of the per-packet common phase about its mean.
    source / ap_id:
        Provenance, carried into the JSON report.
    """

    n_packets: int
    n_antennas: int
    relative_delays_s: tuple[float, ...]
    detection_delay_range_s: float
    sfo_std_s: float
    phase_offsets_rad: tuple[float, ...]
    phase_offset_stability_rad: float
    cfo_residual_rad: float
    source: str = ""
    ap_id: str = ""
    metrics: dict[str, float] = field(default_factory=dict)

    def to_dict(self) -> dict:
        return {
            "n_packets": self.n_packets,
            "n_antennas": self.n_antennas,
            "relative_delays_s": list(self.relative_delays_s),
            "detection_delay_range_s": self.detection_delay_range_s,
            "sfo_std_s": self.sfo_std_s,
            "phase_offsets_rad": list(self.phase_offsets_rad),
            "phase_offset_stability_rad": self.phase_offset_stability_rad,
            "cfo_residual_rad": self.cfo_residual_rad,
            "source": self.source,
            "ap_id": self.ap_id,
            "metrics": dict(self.metrics),
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "CalibrationReport":
        return cls(
            n_packets=int(payload["n_packets"]),
            n_antennas=int(payload["n_antennas"]),
            relative_delays_s=tuple(float(v) for v in payload["relative_delays_s"]),
            detection_delay_range_s=float(payload["detection_delay_range_s"]),
            sfo_std_s=float(payload["sfo_std_s"]),
            phase_offsets_rad=tuple(float(v) for v in payload["phase_offsets_rad"]),
            phase_offset_stability_rad=float(payload["phase_offset_stability_rad"]),
            cfo_residual_rad=float(payload["cfo_residual_rad"]),
            source=str(payload.get("source", "")),
            ap_id=str(payload.get("ap_id", "")),
            metrics={k: float(v) for k, v in payload.get("metrics", {}).items()},
        )

    def to_impairment_model(self, **overrides):
        """An :class:`ImpairmentModel` with the fitted parameters.

        The fitted detection-delay range, SFO jitter and CFO residue
        replace the simulator defaults; ``phase_offset_std_rad`` is set
        positive iff a nonzero offset was measured (the model draws
        offsets per boot rather than taking them verbatim — for the
        measured offsets themselves use :meth:`to_correction_stage`).
        """
        from repro.channel.impairments import ImpairmentModel

        fitted = {
            "detection_delay_range_s": self.detection_delay_range_s,
            "sfo_std_s": self.sfo_std_s,
            "cfo_residual_rad": self.cfo_residual_rad,
            "phase_offset_std_rad": (
                1.0 if any(abs(o) > 1e-9 for o in self.phase_offsets_rad) else 0.0
            ),
        }
        fitted.update(overrides)
        return ImpairmentModel(**fitted)

    def to_correction_stage(self):
        """A :class:`~repro.io.stages.PhaseOffsetCorrection` undoing the fit."""
        from repro.io.stages import PhaseOffsetCorrection

        return PhaseOffsetCorrection(offsets_rad=self.phase_offsets_rad)


def fit_calibration(
    trace: CsiTrace,
    *,
    indices: np.ndarray | None = None,
    index_spacing_hz: float = 1.25e6,
    tracer=NULL_TRACER,
    metrics=None,
) -> CalibrationReport:
    """Estimate impairment parameters from a trace.

    ``indices`` / ``index_spacing_hz`` follow the
    :class:`~repro.io.stages.StoRemoval` conventions (uniform synthetic
    grid by default; pass :func:`~repro.io.stages.subcarrier_indices`
    and the raw spacing for real Intel captures).
    """
    if trace.n_packets < 1:
        raise CalibrationError("cannot calibrate an empty trace")
    if trace.n_antennas < 2:
        raise CalibrationError(
            f"phase-offset calibration needs >= 2 antennas, got {trace.n_antennas}"
        )
    if indices is None:
        indices = np.arange(trace.n_subcarriers, dtype=float)
    indices = np.asarray(indices, dtype=float)

    with tracer.span("calibration_fit", n_packets=trace.n_packets) as span:
        slopes = np.empty(trace.n_packets)
        intercepts = np.empty((trace.n_packets, trace.n_antennas))
        for p in range(trace.n_packets):
            slopes[p], intercepts[p] = fit_phase_slope(trace.csi[p], indices)

        delays = -slopes / (2 * np.pi * index_spacing_hz)
        relative = delays - delays.min()

        # Per-antenna offsets relative to antenna 0, averaged on the
        # circle so a packet near the ±π branch cut cannot bias the mean.
        offset_samples = _wrap_pi(intercepts - intercepts[:, :1])
        mean_vectors = np.mean(np.exp(1j * offset_samples), axis=0)
        offsets = np.angle(mean_vectors)
        # Circular std per antenna; 0 when every packet agrees exactly.
        resultants = np.minimum(np.abs(mean_vectors), 1.0)
        stability = float(np.max(np.sqrt(np.maximum(-2.0 * np.log(
            np.where(resultants > 0, resultants, np.finfo(float).tiny)
        ), 0.0))))

        common = _wrap_pi(intercepts[:, 0] - np.angle(np.mean(np.exp(1j * intercepts[:, 0]))))
        cfo = float(np.max(np.abs(common))) if trace.n_packets > 1 else 0.0

        report = CalibrationReport(
            n_packets=trace.n_packets,
            n_antennas=trace.n_antennas,
            relative_delays_s=tuple(float(v) for v in relative),
            detection_delay_range_s=float(np.ptp(relative)),
            sfo_std_s=float(np.std(relative)),
            phase_offsets_rad=tuple(float(v) for v in offsets),
            phase_offset_stability_rad=stability,
            cfo_residual_rad=cfo,
            source=trace.source_format,
            ap_id=trace.ap_id,
            metrics={
                "mean_relative_delay_ns": float(np.mean(relative) * 1e9),
                "max_abs_phase_offset_rad": float(np.max(np.abs(offsets))),
            },
        )
        span.annotate(
            detection_delay_range_ns=report.detection_delay_range_s * 1e9,
            cfo_residual_rad=report.cfo_residual_rad,
        )
    if metrics is not None:
        metrics.counter("io.calibration_fits").inc()
        metrics.gauge("io.calibration_delay_range_ns").set(
            report.detection_delay_range_s * 1e9
        )
    return report
