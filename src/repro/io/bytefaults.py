"""Deterministic, seeded *byte-level* fault injectors.

PR 4 injects faults at the trace level (dead antennas, NaN packets);
this module injects them one layer down, at the wire format, so the
parsers in :mod:`repro.io` can be driven with exactly the damage real
capture files exhibit: logs cut mid-record by a crashed logger, length
fields clobbered by a bad disk, frames duplicated by a retrying copy
job, and random bit rot.

Each injector is a small frozen dataclass with one method,

    apply(data, rng) -> (corrupted_bytes, [ByteFault, ...])

mirroring the :mod:`repro.faults.injectors` convention: inputs are
never mutated, all randomness comes from the ``rng`` argument, and a
zero-work configuration returns the input object unchanged.  The
structured :class:`ByteFault` records are ground truth for the fuzz
harness — every corrupted capture knows what was done to it.

:func:`fuzz_corpus` turns one valid capture into a seeded stream of
corrupted variants (cycling the catalogue with derived seeds), which is
what the differential fuzz tests and the CI ``fuzz-smoke`` job iterate.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Sequence

import numpy as np

from repro.exceptions import FaultInjectionError


@dataclass(frozen=True)
class ByteFault:
    """One byte-level corruption, as ground truth for the fuzz harness."""

    kind: str
    detail: str = ""

    def to_dict(self) -> dict:
        return {"kind": self.kind, "detail": self.detail}


def _require(condition: bool, message: str) -> None:
    if not condition:
        raise FaultInjectionError(message)


@dataclass(frozen=True)
class Truncation:
    """Cut the capture short, as a crashed logger or partial copy would.

    The cut point is drawn uniformly from ``[min_keep, len)`` so the
    result is never empty but can end anywhere — mid-header, mid-CSI,
    or exactly on a record boundary.
    """

    min_keep: int = 1

    kind = "truncation"

    def __post_init__(self) -> None:
        _require(self.min_keep >= 1, f"min_keep must be >= 1, got {self.min_keep}")

    def apply(self, data: bytes, rng: np.random.Generator) -> tuple[bytes, list[ByteFault]]:
        if len(data) <= self.min_keep:
            return data, []
        cut = int(rng.integers(self.min_keep, len(data)))
        return data[:cut], [ByteFault(self.kind, f"cut at byte {cut} of {len(data)}")]


@dataclass(frozen=True)
class BitFlips:
    """Flip ``n_flips`` random bits anywhere in the capture (bit rot)."""

    n_flips: int = 8

    kind = "bit_flips"

    def __post_init__(self) -> None:
        _require(self.n_flips >= 0, f"n_flips must be >= 0, got {self.n_flips}")

    def apply(self, data: bytes, rng: np.random.Generator) -> tuple[bytes, list[ByteFault]]:
        if self.n_flips == 0 or not data:
            return data, []
        corrupted = bytearray(data)
        positions = rng.integers(0, len(data) * 8, size=self.n_flips)
        for position in positions:
            byte, bit = divmod(int(position), 8)
            corrupted[byte] ^= 1 << bit
        detail = ", ".join(str(int(p)) for p in sorted(positions))
        return bytes(corrupted), [ByteFault(self.kind, f"flipped bits {detail}")]


@dataclass(frozen=True)
class LengthFieldCorruption:
    """Overwrite ``n_fields`` aligned 16-bit words with hostile lengths.

    Real length-prefixed formats (the Intel 5300 ``.dat`` framing, ZIP
    local headers inside ``.npz``, MAT element tags) die in
    characteristic ways when a length field lies: zero lengths that can
    spin a naive parser forever, huge lengths that point past EOF, and
    off-by-small lengths that misframe every following record.  The
    overwrite value is drawn from exactly that adversarial menu.
    """

    n_fields: int = 1
    endian: str = ">"

    kind = "length_field"

    def __post_init__(self) -> None:
        _require(self.n_fields >= 0, f"n_fields must be >= 0, got {self.n_fields}")
        _require(self.endian in (">", "<"), f"endian must be '>' or '<', got {self.endian!r}")

    def apply(self, data: bytes, rng: np.random.Generator) -> tuple[bytes, list[ByteFault]]:
        if self.n_fields == 0 or len(data) < 2:
            return data, []
        corrupted = bytearray(data)
        faults: list[ByteFault] = []
        for _ in range(self.n_fields):
            offset = int(rng.integers(0, len(data) - 1))
            menu = (0, 1, 0xFFFF, 0x7FFF, int(rng.integers(0, 0x10000)))
            value = int(menu[int(rng.integers(0, len(menu)))])
            corrupted[offset : offset + 2] = value.to_bytes(2, "big" if self.endian == ">" else "little")
            faults.append(ByteFault(self.kind, f"u16 at byte {offset} := {value:#06x}"))
        return bytes(corrupted), faults


@dataclass(frozen=True)
class FrameDuplication:
    """Duplicate a random slice in place (a stuttering copy/append job)."""

    max_frame: int = 4096

    kind = "frame_duplication"

    def __post_init__(self) -> None:
        _require(self.max_frame >= 1, f"max_frame must be >= 1, got {self.max_frame}")

    def apply(self, data: bytes, rng: np.random.Generator) -> tuple[bytes, list[ByteFault]]:
        if len(data) < 2:
            return data, []
        length = int(rng.integers(1, min(self.max_frame, len(data)) + 1))
        start = int(rng.integers(0, len(data) - length + 1))
        end = start + length
        corrupted = data[:end] + data[start:end] + data[end:]
        return corrupted, [ByteFault(self.kind, f"duplicated bytes [{start}, {end})")]


@dataclass(frozen=True)
class GarbageInsertion:
    """Splice ``n_bytes`` of random garbage at a random offset."""

    n_bytes: int = 64

    kind = "garbage_insertion"

    def __post_init__(self) -> None:
        _require(self.n_bytes >= 0, f"n_bytes must be >= 0, got {self.n_bytes}")

    def apply(self, data: bytes, rng: np.random.Generator) -> tuple[bytes, list[ByteFault]]:
        if self.n_bytes == 0:
            return data, []
        offset = int(rng.integers(0, len(data) + 1))
        garbage = rng.integers(0, 256, size=self.n_bytes, dtype=np.uint8).tobytes()
        corrupted = data[:offset] + garbage + data[offset:]
        return corrupted, [ByteFault(self.kind, f"{self.n_bytes} garbage bytes at {offset}")]


#: The default catalogue, one of each wire-level failure mode.
BYTE_FAULT_CATALOGUE: tuple = (
    Truncation(),
    BitFlips(n_flips=8),
    BitFlips(n_flips=1),
    LengthFieldCorruption(n_fields=1),
    LengthFieldCorruption(n_fields=3),
    FrameDuplication(),
    GarbageInsertion(n_bytes=64),
    GarbageInsertion(n_bytes=3),
)


def corrupt_bytes(
    data: bytes,
    injectors: Sequence,
    *,
    seed: int,
) -> tuple[bytes, list[ByteFault]]:
    """Apply ``injectors`` in order with one seeded generator.

    The same ``(data, injectors, seed)`` triple always produces the
    same corrupted bytes, so every fuzz failure is a replayable test
    case identified by its seed alone.
    """
    rng = np.random.default_rng(seed)
    faults: list[ByteFault] = []
    for injector in injectors:
        data, injected = injector.apply(data, rng)
        faults.extend(injected)
    return data, faults


def fuzz_corpus(
    data: bytes,
    *,
    seed: int,
    n: int,
    injectors: Sequence | None = None,
) -> Iterator[tuple[int, bytes, list[ByteFault]]]:
    """Yield ``n`` seeded corrupted variants of one valid capture.

    Variant ``i`` cycles the injector catalogue and derives its seed as
    ``seed + i``, so corpora are reproducible, individually replayable,
    and cover every injector evenly regardless of ``n``.
    """
    _require(n >= 0, f"n must be >= 0, got {n}")
    catalogue = tuple(injectors) if injectors is not None else BYTE_FAULT_CATALOGUE
    _require(len(catalogue) > 0, "injector catalogue must not be empty")
    for i in range(n):
        injector = catalogue[i % len(catalogue)]
        variant_seed = seed + i
        corrupted, faults = corrupt_bytes(data, [injector], seed=variant_seed)
        yield variant_seed, corrupted, faults
