"""Intel 5300 CSI ``.dat`` log parser (and encoder, for fixtures).

The Linux 802.11n CSI Tool logs a stream of length-prefixed records::

    [u16 big-endian field_len] [u8 code] [field_len - 1 payload bytes]

Code ``0xBB`` is a beamforming-feedback ("bfee") record carrying one
CSI measurement; every other code is metadata and skipped.  Inside a
bfee payload (offsets relative to the byte after the code):

====== ====================================================
0:4    ``timestamp_low`` — µs since NIC power-up (u32 LE)
4:6    ``bfee_count`` (u16 LE)
6:8    reserved
8, 9   ``Nrx``, ``Ntx``
10:13  per-chain RSSI A/B/C (dB, u8)
13     noise floor (dBm, i8; −127 ⇒ unmeasured)
14     AGC gain (dB, u8)
15     ``antenna_sel`` — RX permutation, 2 bits per antenna
16:18  CSI payload length (u16 LE)
18:20  rate/flags (u16 LE)
20:    bit-packed CSI
====== ====================================================

The CSI itself is 30 subcarriers × ``Nrx·Ntx`` complex values, each
component a signed 8-bit integer, packed with a 3-bit skip before every
subcarrier group — hence the reference decoder's
``calc_len = (30·(Nrx·Ntx·8·2 + 3) + 7) // 8``.  Within a subcarrier
the values are transmit-stream-major: value ``j`` belongs to TX stream
``j % Ntx`` on RX antenna ``j // Ntx``.

Two hardware corrections land the raw integers in channel units
(mirroring the reference ``get_scaled_csi`` / ``get_scaled_csi_sm``):

* **Scaling** — the integers are an AGC-scaled quantization; the RSSI
  and AGC fields recover absolute received power, and the noise floor
  plus quantization error normalize to an SNR-like magnitude.
* **Spatial-mapping removal** — with multiple TX streams the NIC mixes
  streams through a unitary spatial-mapping matrix Q before the air;
  right-multiplying by ``Q*`` recovers the physical per-antenna
  channel.  Q is published for 2 streams (both bandwidths) and for
  3 streams at 20 MHz; 3 streams at 40 MHz is left uncorrected with a
  warning.

:func:`write_intel_dat` is the exact inverse of the record layout and
bit packing — it exists so the repository can commit small, *valid*
``.dat`` fixtures generated from the synthetic channel model, and so
the parser is tested against an independent encoder rather than only
against itself.
"""

from __future__ import annotations

import struct
import warnings
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from repro.channel.trace import CsiTrace
from repro.exceptions import IngestError

#: Record code of a beamforming-feedback (CSI) record.
BFEE_CODE = 0xBB

#: Subcarriers reported per bfee record, fixed by the hardware.
N_SUBCARRIERS = 30

#: ``antenna_sel`` for the identity RX permutation (A→0, B→1, C→2).
IDENTITY_ANTENNA_SEL = 0b100100

_SQRT2 = float(np.sqrt(2.0))

# Spatial-mapping matrices Q used by the Intel 5300 transmitter
# (iwlwifi convention; rows index TX streams).  All are unitary — the
# removal below right-multiplies by Q* which is then exactly Q⁻¹.
SM_2_20 = np.array([[1.0, 1.0], [1.0, -1.0]]) / _SQRT2
SM_2_40 = np.array([[1.0, 1.0j], [1.0j, 1.0]]) / _SQRT2
_TWO_PI = 2.0 * np.pi
SM_3_20 = (
    np.exp(
        1j
        * np.array(
            [
                [-_TWO_PI / 16, -_TWO_PI / (80 / 33), _TWO_PI / (80 / 3)],
                [_TWO_PI / (80 / 23), _TWO_PI / (48 / 13), _TWO_PI / (240 / 13)],
                [-_TWO_PI / (80 / 13), _TWO_PI / (240 / 37), _TWO_PI / (48 / 13)],
            ]
        )
    )
    / np.sqrt(3.0)
)


def _dbinv(x: float | np.ndarray) -> float | np.ndarray:
    return 10.0 ** (np.asarray(x, dtype=float) / 10.0)


def _db(x: float) -> float:
    return float(10.0 * np.log10(x))


def _calc_len(n_rx: int, n_tx: int) -> int:
    return (N_SUBCARRIERS * (n_rx * n_tx * 8 * 2 + 3) + 7) // 8


@dataclass(frozen=True)
class BfeeRecord:
    """One decoded beamforming-feedback record.

    ``csi`` is the *raw* integer-valued channel, shape
    ``(n_rx, n_tx, 30)``, already RX-permuted back to physical antenna
    order (``antenna_sel``) but not yet scaled.
    """

    timestamp_low: int
    bfee_count: int
    n_rx: int
    n_tx: int
    rssi: tuple[int, int, int]
    noise: int
    agc: int
    antenna_sel: int
    rate: int
    csi: np.ndarray

    @property
    def rssi_dbm(self) -> float:
        """Total received power in dBm (csitool convention: −44 − AGC)."""
        mag = sum(_dbinv(r) for r in self.rssi if r != 0)
        if mag <= 0:
            return float("-inf")
        return _db(mag) - 44.0 - self.agc

    @property
    def noise_dbm(self) -> float:
        """Measured noise floor, with the −127 sentinel mapped to −92 dBm."""
        return -92.0 if self.noise == -127 else float(self.noise)

    def scaled_csi(self) -> np.ndarray:
        """CSI in absolute channel units (reference ``get_scaled_csi``).

        Scales the quantized integers so ``|csi|²`` measures the
        per-subcarrier SNR: total CSI power is matched to the
        RSSI-derived received power, then normalized by thermal noise
        plus the quantization-error power the integer format introduces.
        """
        csi = self.csi.astype(complex)
        csi_pwr = float(np.sum(np.abs(csi) ** 2))
        if csi_pwr == 0:
            return csi
        rssi_pwr = _dbinv(self.rssi_dbm)
        scale = rssi_pwr / (csi_pwr / 30.0)
        thermal_noise_pwr = _dbinv(self.noise_dbm)
        quant_error_pwr = scale * self.n_rx * self.n_tx
        total_noise_pwr = thermal_noise_pwr + quant_error_pwr
        ret = csi * np.sqrt(scale / total_noise_pwr)
        # The NIC backs off TX power per extra stream; undo it so
        # multi-stream magnitudes are comparable to single-stream.
        if self.n_tx == 2:
            ret *= _SQRT2
        elif self.n_tx == 3:
            ret *= np.sqrt(_dbinv(4.5))
        return ret


def _decode_bfee(payload: bytes) -> BfeeRecord:
    if len(payload) < 20:
        raise IngestError(
            f"bfee record too short: {len(payload)} bytes (need >= 20)", kind="truncated"
        )
    timestamp_low, bfee_count = struct.unpack_from("<IH", payload, 0)
    n_rx, n_tx = payload[8], payload[9]
    rssi = (payload[10], payload[11], payload[12])
    noise = struct.unpack_from("<b", payload, 13)[0]
    agc, antenna_sel = payload[14], payload[15]
    length, rate = struct.unpack_from("<HH", payload, 16)
    if not 1 <= n_rx <= 3 or not 1 <= n_tx <= 3:
        raise IngestError(
            f"bfee record claims {n_rx}×{n_tx} antennas (expected 1..3 each)",
            kind="bad_field",
        )
    expected = _calc_len(n_rx, n_tx)
    if length != expected:
        raise IngestError(
            f"bfee CSI length {length} != expected {expected} for "
            f"{n_rx}×{n_tx}: truncated or corrupt record",
            kind="bad_length",
        )
    if len(payload) < 20 + length:
        raise IngestError(
            f"bfee record truncated: {len(payload) - 20} CSI bytes, need {length}",
            kind="truncated",
        )
    # Two bytes of slack so the sliding 16-bit window below never
    # indexes past the end on the final value.
    bits = payload[20 : 20 + length] + b"\x00\x00"

    csi = np.empty((n_rx, n_tx, N_SUBCARRIERS), dtype=complex)
    index = 0
    for subcarrier in range(N_SUBCARRIERS):
        index += 3
        remainder = index % 8
        for j in range(n_rx * n_tx):
            byte = index // 8
            if remainder:
                real = ((bits[byte] >> remainder) | (bits[byte + 1] << (8 - remainder))) & 0xFF
                imag = (
                    (bits[byte + 1] >> remainder) | (bits[byte + 2] << (8 - remainder))
                ) & 0xFF
            else:
                real = bits[byte]
                imag = bits[byte + 1]
            value = complex(real - 256 if real >= 128 else real, imag - 256 if imag >= 128 else imag)
            csi[j // n_tx, j % n_tx, subcarrier] = value
            index += 16

    if n_rx == 3:
        perm = [(antenna_sel >> (2 * k)) & 0x3 for k in range(n_rx)]
        if sorted(perm) == list(range(n_rx)):
            permuted = np.empty_like(csi)
            permuted[perm, :, :] = csi
            csi = permuted
        else:
            warnings.warn(
                f"invalid antenna_sel permutation {perm}; leaving RX order as captured",
                RuntimeWarning,
                stacklevel=3,
            )
    return BfeeRecord(
        timestamp_low=timestamp_low,
        bfee_count=bfee_count,
        n_rx=n_rx,
        n_tx=n_tx,
        rssi=rssi,
        noise=noise,
        agc=agc,
        antenna_sel=antenna_sel,
        rate=rate,
        csi=csi,
    )


def _plausible_bfee_at(raw: bytes, pos: int) -> bool:
    """O(1) check: does a well-framed bfee record plausibly start at ``pos``?

    Used by resynchronization after corrupt framing.  Demands full
    internal consistency — code byte, antenna counts in range, and the
    in-payload CSI length matching both ``_calc_len`` and the outer
    ``field_len`` — so random garbage essentially never matches.
    """
    if pos + 3 + 20 > len(raw):
        return False
    (field_len,) = struct.unpack_from(">H", raw, pos)
    if raw[pos + 2] != BFEE_CODE:
        return False
    n_rx, n_tx = raw[pos + 3 + 8], raw[pos + 3 + 9]
    if not (1 <= n_rx <= 3 and 1 <= n_tx <= 3):
        return False
    (length,) = struct.unpack_from("<H", raw, pos + 3 + 16)
    return length == _calc_len(n_rx, n_tx) and field_len == 21 + length


def _resync(raw: bytes, start: int, budget: int) -> int | None:
    """Scan forward (at most ``budget`` bytes) for the next plausible bfee.

    Each candidate test is O(1), so the scan is a single bounded forward
    pass — a corrupted length field costs linear work, never a quadratic
    rescan, and the returned offset is always > the corrupt one.
    """
    limit = min(len(raw), start + budget)
    for pos in range(start, limit):
        if _plausible_bfee_at(raw, pos):
            return pos
    return None


def read_bfee_records(path: str | Path, *, max_resync_bytes: int = 1 << 16) -> list[BfeeRecord]:
    """Decode every bfee record in an Intel 5300 ``.dat`` log.

    Non-bfee records are skipped; a torn final record (the logger was
    killed mid-write) is dropped with a warning rather than rejected,
    matching how the reference MATLAB reader treats truncated logs.

    Corrupt framing — a zero/self-referential length field, a length
    pointing past EOF with data still behind it, or a bfee whose header
    lies about its payload — does not abort the file: the parser skips
    the damaged record and resynchronizes on the next internally
    consistent bfee header.  Resynchronization is a bounded single
    forward pass (``max_resync_bytes`` total across the file), and the
    cursor advances strictly monotonically, so hostile bytes can force
    neither an infinite loop nor quadratic work.  Files yielding no
    decodable record raise :class:`IngestError` (kind ``"empty"``).
    """
    try:
        raw = Path(path).read_bytes()
    except OSError as error:
        raise IngestError(f"cannot read {path}: {error}", kind="io") from error
    records: list[BfeeRecord] = []
    offset = 0
    resync_budget = max_resync_bytes
    n_skipped = 0

    def try_resync(start: int, why: str) -> int | None:
        nonlocal resync_budget, n_skipped
        if resync_budget <= 0:
            return None
        found = _resync(raw, start, resync_budget)
        if found is None:
            resync_budget = 0
            return None
        resync_budget -= found - start
        n_skipped += 1
        warnings.warn(
            f"skipping corrupt record at byte {start - 1} of {path} ({why}); "
            f"resynchronized at byte {found}",
            RuntimeWarning,
            stacklevel=3,
        )
        return found

    while offset + 3 <= len(raw):
        (field_len,) = struct.unpack_from(">H", raw, offset)
        code = raw[offset + 2]
        if field_len < 1:
            resumed = try_resync(offset + 1, "zero field_len")
            if resumed is None:
                break
            offset = resumed
            continue
        end = offset + 2 + field_len
        if end > len(raw):
            resumed = try_resync(offset + 1, f"field_len {field_len} past EOF")
            if resumed is None:
                warnings.warn(
                    f"dropping torn final record at byte {offset} of {path}",
                    RuntimeWarning,
                    stacklevel=2,
                )
                break
            offset = resumed
            continue
        if code == BFEE_CODE:
            try:
                records.append(_decode_bfee(raw[offset + 3 : end]))
            except IngestError as error:
                # The framing may be lying about where this record ends;
                # don't trust `end` — rescan from just past the header.
                resumed = try_resync(offset + 1, str(error))
                if resumed is None:
                    break
                offset = resumed
                continue
        offset = end
    if offset < len(raw) and offset + 3 > len(raw):
        warnings.warn(
            f"dropping {len(raw) - offset} trailing bytes of {path}",
            RuntimeWarning,
            stacklevel=2,
        )
    if not records:
        raise IngestError(
            f"no bfee records in {path}: not an Intel 5300 CSI log?", kind="empty"
        )
    return records


def remove_spatial_mapping(csi: np.ndarray, n_tx: int, *, bandwidth_mhz: int) -> np.ndarray:
    """Undo the transmitter's spatial-mapping matrix on the TX axis.

    ``csi`` has shape ``(..., n_tx)`` on its last axis (per RX antenna
    and subcarrier).  The measured channel is ``H·Qᵀ`` for unitary Q, so
    right-multiplying by ``conj(Q)`` recovers H.  Single-stream captures
    pass through; 3 streams at 40 MHz is returned uncorrected with a
    warning because that Q is not reliably documented.
    """
    if n_tx == 1:
        return csi
    if n_tx == 2:
        q = SM_2_20 if bandwidth_mhz == 20 else SM_2_40
    elif n_tx == 3 and bandwidth_mhz == 20:
        q = SM_3_20
    else:
        warnings.warn(
            f"no spatial-mapping matrix for {n_tx} streams at {bandwidth_mhz} MHz; "
            "returning the mixed-stream channel",
            RuntimeWarning,
            stacklevel=2,
        )
        return csi
    return csi @ np.conj(q)


def read_intel_dat(
    path: str | Path,
    *,
    stream: int = 0,
    bandwidth_mhz: int = 40,
    scale: bool = True,
    ap_id: str = "",
) -> CsiTrace:
    """Parse an Intel 5300 ``.dat`` log into a :class:`CsiTrace`.

    Every bfee record becomes one packet: scaled (unless ``scale`` is
    false), spatial-mapping-corrected, and reduced to TX stream
    ``stream`` so the result is the paper's ``(antennas, subcarriers)``
    per-packet matrix.  ``snr_db`` and ``rssi_dbm`` are measured from
    the RSSI/AGC/noise fields (means across packets); ground-truth
    fields stay at their unknown defaults — a registry entry or site
    survey supplies those.
    """
    records = read_bfee_records(path)
    shapes = {(r.n_rx, r.n_tx) for r in records}
    if len(shapes) != 1:
        raise IngestError(
            f"mixed antenna configurations in {path}: {sorted(shapes)}", kind="bad_shape"
        )
    ((n_rx, n_tx),) = shapes
    if not 0 <= stream < n_tx:
        raise IngestError(
            f"stream {stream} out of range for {n_tx} TX stream(s)", kind="bad_field"
        )

    matrices = np.empty((len(records), n_rx, N_SUBCARRIERS), dtype=complex)
    times = np.empty(len(records))
    for p, record in enumerate(records):
        csi = record.scaled_csi() if scale else record.csi.astype(complex)
        # (n_rx, n_tx, 30) → (n_rx, 30, n_tx) so the TX axis is last
        # for spatial-mapping removal, then select the requested stream.
        csi = remove_spatial_mapping(
            np.moveaxis(csi, 1, 2), n_tx, bandwidth_mhz=bandwidth_mhz
        )
        matrices[p] = csi[:, :, stream]
        times[p] = record.timestamp_low * 1e-6

    rssi = float(np.mean([r.rssi_dbm for r in records]))
    noise = float(np.mean([r.noise_dbm for r in records]))
    return CsiTrace(
        csi=matrices,
        snr_db=rssi - noise,
        rssi_dbm=rssi,
        capture_times_s=times,
        ap_id=ap_id,
        source_format="intel-dat",
    )


def _encode_bfee_payload(csi_int: np.ndarray) -> bytes:
    """Bit-pack one record's integer CSI, shape ``(n_rx, n_tx, 30)``."""
    n_rx, n_tx, _ = csi_int.shape
    length = _calc_len(n_rx, n_tx)
    buffer = bytearray(length)

    def put(bit_offset: int, value: int) -> None:
        raw = int(value) & 0xFF
        byte, remainder = divmod(bit_offset, 8)
        buffer[byte] |= (raw << remainder) & 0xFF
        if remainder:
            buffer[byte + 1] |= raw >> (8 - remainder)

    index = 0
    for subcarrier in range(N_SUBCARRIERS):
        index += 3
        for j in range(n_rx * n_tx):
            value = csi_int[j // n_tx, j % n_tx, subcarrier]
            put(index, int(value.real))
            put(index + 8, int(value.imag))
            index += 16
    return bytes(buffer)


def write_intel_dat(
    path: str | Path,
    csi_int: np.ndarray,
    *,
    timestamps_us: np.ndarray | None = None,
    rssi: tuple[int, int, int] = (33, 32, 34),
    noise: int = -92,
    agc: int = 40,
    antenna_sel: int = IDENTITY_ANTENNA_SEL,
    rate: int = 0x1101,
) -> Path:
    """Encode integer CSI as a valid Intel 5300 ``.dat`` log.

    ``csi_int`` is complex with integer-valued components in
    ``[−128, 127]``, shape ``(packets, n_rx, 30)`` for single-stream or
    ``(packets, n_rx, n_tx, 30)``.  The encoder writes bit-exact bfee
    records — :func:`read_bfee_records` on the result returns the same
    integers — which is what makes committed fixtures trustworthy: the
    parser is exercised against an independent implementation of the
    packing, not a copy of itself.
    """
    csi_int = np.asarray(csi_int)
    if csi_int.ndim == 3:
        csi_int = csi_int[:, :, None, :]
    if csi_int.ndim != 4 or csi_int.shape[3] != N_SUBCARRIERS:
        raise IngestError(
            f"csi_int must be (packets, n_rx[, n_tx], {N_SUBCARRIERS}), got {csi_int.shape}"
        )
    components = np.concatenate([csi_int.real.ravel(), csi_int.imag.ravel()])
    if not np.allclose(components, np.round(components)):
        raise IngestError("csi_int components must be integer-valued")
    if components.min() < -128 or components.max() > 127:
        raise IngestError("csi_int components must fit in int8")
    n_packets, n_rx, n_tx, _ = csi_int.shape
    if timestamps_us is None:
        timestamps_us = np.arange(n_packets, dtype=np.int64) * 10_000
    timestamps_us = np.asarray(timestamps_us, dtype=np.int64)
    if timestamps_us.shape != (n_packets,):
        raise IngestError(
            f"timestamps_us must have shape ({n_packets},), got {timestamps_us.shape}"
        )

    chunks: list[bytes] = []
    for p in range(n_packets):
        bits = _encode_bfee_payload(csi_int[p])
        body = (
            struct.pack("<IHH", int(timestamps_us[p]) & 0xFFFFFFFF, p + 1, 0)
            + bytes([n_rx, n_tx, rssi[0], rssi[1], rssi[2]])
            + struct.pack("<b", noise)
            + bytes([agc, antenna_sel])
            + struct.pack("<HH", len(bits), rate)
            + bits
        )
        chunks.append(struct.pack(">H", len(body) + 1) + bytes([BFEE_CODE]) + body)

    from repro.runtime.checkpoint import atomic_write

    return atomic_write(Path(path), b"".join(chunks))
