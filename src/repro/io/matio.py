"""SpotFi-style ``.mat`` CSI captures.

The SpotFi authors distribute captures as MATLAB v5 files holding one
complex CSI variable — canonically ``sample_csi_trace``, a flat
``(90,)`` vector that reshapes antenna-major to ``(3, 30)`` — but
per-packet ``(packets, antennas, subcarriers)`` stacks and transposed
2-D layouts exist in the wild.  :func:`read_spotfi_mat` normalizes all
of these into the :class:`CsiTrace` packet layout.

Only the v5 format is supported (``scipy.io.loadmat``); v7.3 files are
HDF5 and need ``h5py``, which this environment does not ship — they are
rejected with a clear error instead of a backtrace.
"""

from __future__ import annotations

import struct
import zlib
from pathlib import Path

import numpy as np

from repro.channel.trace import CsiTrace
from repro.exceptions import IngestError, ReproError

#: Variable names probed, in order, when none is given.
CSI_VARIABLE_CANDIDATES = ("sample_csi_trace", "csi_trace", "csi", "csi_data")

#: Subcarriers per capture, fixed by the Intel 5300 hardware SpotFi uses.
N_SUBCARRIERS = 30

#: Largest plausible antenna count; disambiguates axis roles.
MAX_ANTENNAS = 8


def _load_mat(path: Path) -> dict:
    try:
        from scipy.io import loadmat
    except ImportError as error:  # pragma: no cover - scipy is a core dep
        raise IngestError(
            "reading .mat captures requires scipy, which is not importable here"
        ) from error
    from scipy.io.matlab import MatReadError

    try:
        return loadmat(path)
    except NotImplementedError as error:
        raise IngestError(
            f"{path} looks like a MATLAB v7.3 (HDF5) file; re-save it with "
            "-v5 or convert it to .npz — h5py is not available",
            kind="unsupported",
        ) from error
    except OSError as error:
        raise IngestError(
            f"cannot parse {path} as a MATLAB file: {error}", kind="io"
        ) from error
    except (MatReadError, ValueError, TypeError, KeyError, EOFError, struct.error,
            zlib.error, OverflowError, MemoryError, IndexError) as error:
        # scipy's miobase/mio5 raise a zoo of low-level exceptions on
        # hostile bytes; all of them mean the same thing here.
        raise IngestError(
            f"cannot parse {path} as a MATLAB file: {type(error).__name__}: {error}",
            kind="invalid",
        ) from error


def _pick_variable(data: dict, variable: str | None, path: Path) -> tuple[str, np.ndarray]:
    if variable is not None:
        if variable not in data:
            available = sorted(k for k in data if not k.startswith("__"))
            raise IngestError(
                f"{path} has no variable {variable!r} (found {available})",
                kind="bad_field",
            )
        return variable, np.asarray(data[variable])
    for name in CSI_VARIABLE_CANDIDATES:
        if name in data:
            return name, np.asarray(data[name])
    arrays = {
        k: np.asarray(v)
        for k, v in data.items()
        if not k.startswith("__") and np.asarray(v).size >= N_SUBCARRIERS
    }
    if len(arrays) == 1:
        return next(iter(arrays.items()))
    raise IngestError(
        f"{path}: cannot identify the CSI variable (candidates "
        f"{sorted(arrays) or 'none'}); pass variable= explicitly",
        kind="empty" if not arrays else "bad_field",
    )


def _normalize_layout(values: np.ndarray, name: str, path: Path) -> np.ndarray:
    """Coerce a raw ``.mat`` array to ``(packets, antennas, subcarriers)``."""
    values = np.squeeze(values)
    if values.ndim == 1:
        if values.size == 0 or values.size % N_SUBCARRIERS != 0:
            raise IngestError(
                f"{path}:{name} has {values.size} values, not a multiple of {N_SUBCARRIERS}",
                kind="bad_shape",
            )
        # SpotFi's sample_csi_trace: antenna-major flat vector.
        return values.reshape(1, values.size // N_SUBCARRIERS, N_SUBCARRIERS)
    if values.ndim == 2:
        rows, cols = values.shape
        if rows <= MAX_ANTENNAS < cols or cols == N_SUBCARRIERS:
            return values[None, :, :]
        if cols <= MAX_ANTENNAS < rows or rows == N_SUBCARRIERS:
            return values.T[None, :, :]
        raise IngestError(
            f"{path}:{name} shape {values.shape}: cannot tell antennas from subcarriers",
            kind="bad_shape",
        )
    if values.ndim == 3:
        _, a, b = values.shape
        if a <= MAX_ANTENNAS < b:
            return values
        if b <= MAX_ANTENNAS < a:
            return np.swapaxes(values, 1, 2)
        raise IngestError(
            f"{path}:{name} shape {values.shape}: cannot tell antennas from subcarriers",
            kind="bad_shape",
        )
    raise IngestError(
        f"{path}:{name} has unsupported rank {values.ndim}", kind="bad_shape"
    )


def read_spotfi_mat(
    path: str | Path, *, variable: str | None = None, ap_id: str = ""
) -> CsiTrace:
    """Load a SpotFi-style ``.mat`` capture as a :class:`CsiTrace`.

    The CSI variable is found by name (``variable``, else the
    well-known candidates, else the single plausible array).  Optional
    ``timestamps`` / ``snr_db`` / ``rssi_dbm`` variables, when present,
    populate the matching trace fields; everything else defaults to
    unknown, as for any real capture.
    """
    path = Path(path)
    data = _load_mat(path)
    name, values = _pick_variable(data, variable, path)
    try:
        values_c = values.astype(complex)
    except (TypeError, ValueError) as error:
        raise IngestError(
            f"{path}:{name} is not numeric CSI: {error}", kind="bad_field"
        ) from error
    csi = _normalize_layout(values_c, name, path)
    if not np.iscomplexobj(values):
        import warnings

        warnings.warn(
            f"{path}:{name} is real-valued; phase-based estimation will be degenerate",
            RuntimeWarning,
            stacklevel=2,
        )

    def scalar(key: str) -> float:
        if key in data:
            try:
                value = np.asarray(data[key], dtype=float).ravel()
            except (TypeError, ValueError):
                return float("nan")
            if value.size == 1:
                return float(value[0])
        return float("nan")

    times = np.zeros(0)
    if "timestamps" in data:
        try:
            times = np.asarray(data["timestamps"], dtype=float).ravel()
        except (TypeError, ValueError):
            times = np.zeros(0)
    try:
        return CsiTrace(
            csi=csi,
            snr_db=scalar("snr_db"),
            rssi_dbm=scalar("rssi_dbm"),
            capture_times_s=times,
            ap_id=ap_id,
            source_format="spotfi-mat",
        )
    except ReproError as error:
        raise IngestError(
            f"{path}:{name} does not form a valid trace: {error}", kind="bad_shape"
        ) from error
