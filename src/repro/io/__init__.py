"""``repro.io`` — real-capture ingestion and unified trace sources.

This package is the only way traces enter the system:

* :func:`open_trace` / :func:`open_traces` — the front door.  One
  source spec grammar (file path, ``dataset://name``,
  ``synthetic://scenario?params``) resolves everywhere a trace is
  accepted: ``CsiTrace.load``, every CLI subcommand, every experiment
  driver.
* Format parsers — Intel 5300 ``.dat`` logs (:mod:`repro.io.intel`,
  scaled-CSI + spatial-mapping correction), SpotFi ``.mat`` captures
  (:mod:`repro.io.matio`) and the native ``.npz`` archives
  (:mod:`repro.io.npzio`).
* Preprocessing stages (:mod:`repro.io.stages`) — the
  ``PreprocessingStage`` protocol with SpotFi STO/phase-slope removal,
  phase-offset correction and the PR-4 quarantine gate as composable
  stages.
* The dataset registry (:mod:`repro.io.registry`) — named, checksummed
  captures with AP geometry and site-survey ground truth.
* Calibration fitting (:mod:`repro.io.calibration`) — estimate the
  impairment parameters the simulator assumes, as a JSON-round-tripping
  :class:`CalibrationReport`.
* The ingestion pipeline (:mod:`repro.io.ingest`) behind ``roarray
  ingest``: parse → stages → validate → calibrate → normalized ``.npz``
  → registry, checkpointable and fully spanned.
* Byte-level fault injection (:mod:`repro.io.bytefaults`) — seeded
  wire-format corruption (truncation, bit rot, hostile length fields,
  duplicated/garbage frames) driving the adversarial-ingestion fuzz
  harness that proves every parser fails closed with a taxonomized
  :class:`~repro.exceptions.IngestError`.
"""

from repro.io.bytefaults import (
    BYTE_FAULT_CATALOGUE,
    BitFlips,
    ByteFault,
    FrameDuplication,
    GarbageInsertion,
    LengthFieldCorruption,
    Truncation,
    corrupt_bytes,
    fuzz_corpus,
)
from repro.io.calibration import CalibrationReport, fit_calibration
from repro.io.ingest import IngestRecord, IngestResult, ingest_sources
from repro.io.intel import read_intel_dat, write_intel_dat
from repro.io.matio import read_spotfi_mat
from repro.io.npzio import read_npz_trace
from repro.io.registry import DatasetEntry, DatasetRegistry, file_sha256
from repro.io.source import (
    FILE_FORMATS,
    TraceSource,
    open_trace,
    open_traces,
    resolve_source,
    sniff_format,
)
from repro.io.stages import (
    PhaseOffsetCorrection,
    PreprocessingStage,
    QuarantineGate,
    StageReport,
    StoRemoval,
    default_stages,
    remove_sto,
    run_stages,
    subcarrier_indices,
)
from repro.io.synthetic import scenario_band, synthesize_from_spec

__all__ = [
    "BYTE_FAULT_CATALOGUE",
    "BitFlips",
    "ByteFault",
    "CalibrationReport",
    "DatasetEntry",
    "DatasetRegistry",
    "FILE_FORMATS",
    "FrameDuplication",
    "GarbageInsertion",
    "IngestRecord",
    "IngestResult",
    "LengthFieldCorruption",
    "PhaseOffsetCorrection",
    "PreprocessingStage",
    "QuarantineGate",
    "StageReport",
    "StoRemoval",
    "TraceSource",
    "Truncation",
    "corrupt_bytes",
    "default_stages",
    "fuzz_corpus",
    "file_sha256",
    "fit_calibration",
    "ingest_sources",
    "open_trace",
    "open_traces",
    "read_intel_dat",
    "read_npz_trace",
    "read_spotfi_mat",
    "remove_sto",
    "resolve_source",
    "scenario_band",
    "sniff_format",
    "subcarrier_indices",
    "synthesize_from_spec",
    "write_intel_dat",
]
