"""The ingestion pipeline behind ``roarray ingest``.

One call takes raw capture sources end to end: parse → preprocessing
stages (STO removal for real formats) → quarantine gate → calibration
fit → normalized ``.npz`` artifact (atomically written) → optional
registry registration.  Every step is spanned and counted via
:mod:`repro.obs`, and the per-source results are journaled through the
PR-5 checkpoint store, so a killed bulk ingestion resumes without
re-parsing finished captures.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from pathlib import Path

from repro.exceptions import ReproError
from repro.obs import NULL_TRACER


@dataclass(frozen=True)
class IngestRecord:
    """Outcome of ingesting one trace from one source."""

    label: str
    source: str
    ok: bool
    n_packets: int = 0
    n_antennas: int = 0
    n_subcarriers: int = 0
    source_format: str = ""
    snr_db: float | None = None
    output_path: str | None = None
    dataset: str | None = None
    stage_reports: list[dict] = field(default_factory=list)
    calibration: dict | None = None
    error: str | None = None
    error_kind: str | None = None

    def to_dict(self) -> dict:
        return {
            "label": self.label,
            "source": self.source,
            "ok": self.ok,
            "n_packets": self.n_packets,
            "n_antennas": self.n_antennas,
            "n_subcarriers": self.n_subcarriers,
            "source_format": self.source_format,
            "snr_db": self.snr_db,
            "output_path": self.output_path,
            "dataset": self.dataset,
            "stage_reports": list(self.stage_reports),
            "calibration": self.calibration,
            "error": self.error,
            "error_kind": self.error_kind,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "IngestRecord":
        return cls(
            label=str(payload["label"]),
            source=str(payload["source"]),
            ok=bool(payload["ok"]),
            n_packets=int(payload.get("n_packets", 0)),
            n_antennas=int(payload.get("n_antennas", 0)),
            n_subcarriers=int(payload.get("n_subcarriers", 0)),
            source_format=str(payload.get("source_format", "")),
            snr_db=payload.get("snr_db"),
            output_path=payload.get("output_path"),
            dataset=payload.get("dataset"),
            stage_reports=list(payload.get("stage_reports", [])),
            calibration=payload.get("calibration"),
            error=payload.get("error"),
            error_kind=payload.get("error_kind"),
        )


@dataclass(frozen=True)
class IngestResult:
    """Everything one ingestion run produced."""

    records: tuple[IngestRecord, ...]
    n_replayed: int = 0

    @property
    def ok(self) -> bool:
        return all(record.ok for record in self.records)

    @property
    def n_failed(self) -> int:
        return sum(1 for record in self.records if not record.ok)

    def failure_summary(self) -> list[dict]:
        """Failures deduplicated by ``(fault kind, normalized message)``.

        A bulk ingestion of 500 captures from one broken logger fails
        500 times with the same story; the summary tells it once, with a
        count and the first few offending source paths.  Source/label
        substrings inside messages are masked so per-path messages from
        the same defect still collapse into one group.
        """
        groups: dict[tuple[str, str], dict] = {}
        for record in self.records:
            if record.ok:
                continue
            message = record.error or ""
            for token in (record.source, record.label):
                if token:
                    message = message.replace(token, "<source>")
            key = (record.error_kind or "unknown", message)
            entry = groups.setdefault(
                key,
                {"error_kind": key[0], "error": message, "count": 0, "sources": []},
            )
            entry["count"] += 1
            if len(entry["sources"]) < 5:
                entry["sources"].append(record.source)
        return sorted(
            groups.values(), key=lambda e: (-e["count"], e["error_kind"], e["error"])
        )

    def to_dict(self) -> dict:
        return {
            "records": [record.to_dict() for record in self.records],
            "n_replayed": self.n_replayed,
            "ok": self.ok,
            "n_failed": self.n_failed,
            "failure_summary": self.failure_summary(),
        }


def _fault_kind(error: ReproError) -> str:
    """Classify a per-source failure for the ingest record/summary.

    :class:`~repro.exceptions.IngestError` carries its own taxonomized
    kind; other ``ReproError`` subclasses (validation gate, calibration,
    configuration) classify by subsystem name.
    """
    kind = getattr(error, "kind", None)
    if isinstance(kind, str) and kind:
        return kind
    name = type(error).__name__
    if name.endswith("Error"):
        name = name[: -len("Error")]
    return name.lower()


def _slug(label: str) -> str:
    slug = re.sub(r"[^A-Za-z0-9._-]+", "_", label).strip("_")
    return slug or "trace"


def _artifact_name(label: str, source: str) -> str:
    """A short artifact/dataset name for one ingested trace.

    File sources are labeled by their full spec path; artifacts take
    the file's stem.  Dataset sources drop the scheme.  Synthetic
    labels (``synthetic[0]`` …) are already short and just get slugged.
    """
    if label == source and "://" not in label:
        return _slug(Path(label).stem)
    if label.startswith("dataset://"):
        return _slug(label[len("dataset://") :])
    return _slug(label)


def ingest_sources(
    sources,
    *,
    out_dir: str | Path | None = None,
    stages=None,
    calibrate: bool = True,
    expected_shape: tuple[int, int] | None = None,
    registry=None,
    register_prefix: str | None = None,
    overwrite: bool = False,
    checkpoint_dir: str | Path | None = None,
    tracer=NULL_TRACER,
    metrics=None,
) -> IngestResult:
    """Ingest every trace each source yields.

    Parameters
    ----------
    sources:
        Source specs (anything :func:`repro.io.open_traces` accepts).
    out_dir:
        Where normalized ``.npz`` artifacts go; ``None`` skips writing.
    stages:
        Preprocessing stages; ``None`` picks
        :func:`repro.io.stages.default_stages` per trace (STO removal
        for real formats, quarantine gate always).
    calibrate:
        Fit a :class:`~repro.io.calibration.CalibrationReport` per
        trace (needs >= 2 antennas; skipped with a note otherwise).
    registry / register_prefix:
        When both are given, each written artifact is registered as
        ``{register_prefix}{label}`` and the manifest saved.
    checkpoint_dir:
        Journal per-source outcomes under this directory; a rerun
        replays finished sources from the journal.

    A source that fails to parse or validate produces a failed record;
    the run continues (bulk ingestion must not die on one bad capture).
    """
    source_list = [str(s) for s in sources]
    out_dir = Path(out_dir) if out_dir is not None else None
    if out_dir is not None:
        out_dir.mkdir(parents=True, exist_ok=True)

    journal = None
    payloads: dict[str, dict] = {}
    keys: list[str] = []
    if checkpoint_dir is not None:
        from repro.runtime.checkpoint import (
            CheckpointJournal,
            CheckpointPolicy,
            config_digest,
            job_key,
        )

        digest = config_digest(
            "ingest", source_list, str(out_dir), calibrate, expected_shape, register_prefix
        )
        keys = [job_key(digest, index, 0, source) for index, source in enumerate(source_list)]
        journal = CheckpointJournal(
            CheckpointPolicy(
                path=Path(checkpoint_dir) / "ingest.jsonl",
                experiment="ingest",
                metrics=metrics,
            )
        )
        payloads = journal.open(
            experiment="ingest", config_digest=digest, n_jobs=len(source_list)
        ).payloads

    records: list[IngestRecord] = []
    n_replayed = 0
    counter = metrics.counter("io.ingested_traces") if metrics is not None else None
    failures = metrics.counter("io.ingest_failures") if metrics is not None else None
    try:
        with tracer.span("ingest", n_sources=len(source_list)):
            for index, source in enumerate(source_list):
                if journal is not None:
                    cached = payloads.get(keys[index])
                    if cached is not None:
                        for item in cached["payload"]["records"]:
                            records.append(IngestRecord.from_dict(item))
                        n_replayed += 1
                        continue
                source_records = _ingest_one(
                    source,
                    out_dir=out_dir,
                    stages=stages,
                    calibrate=calibrate,
                    expected_shape=expected_shape,
                    registry=registry,
                    register_prefix=register_prefix,
                    overwrite=overwrite,
                    tracer=tracer,
                )
                for record in source_records:
                    records.append(record)
                    if counter is not None and record.ok:
                        counter.inc()
                    if failures is not None and not record.ok:
                        failures.inc()
                if journal is not None:
                    journal.append(
                        keys[index],
                        {"records": [r.to_dict() for r in source_records]},
                        index=index,
                    )
        if journal is not None:
            journal.finalize()
    finally:
        if journal is not None:
            journal.close()

    if registry is not None and register_prefix is not None:
        registry.save()
    return IngestResult(records=tuple(records), n_replayed=n_replayed)


def _ingest_one(
    source: str,
    *,
    out_dir,
    stages,
    calibrate,
    expected_shape,
    registry,
    register_prefix,
    overwrite,
    tracer,
) -> list["IngestRecord"]:
    """Ingest one source spec; never raises for per-source problems."""
    from repro.io.calibration import fit_calibration
    from repro.io.source import open_traces
    from repro.io.stages import QuarantineGate, default_stages, run_stages

    try:
        pairs = open_traces(source)
    except ReproError as error:
        return [
            IngestRecord(
                label=source,
                source=source,
                ok=False,
                error=f"{type(error).__name__}: {error}",
                error_kind=_fault_kind(error),
            )
        ]

    records: list[IngestRecord] = []
    for label, trace in pairs:
        with tracer.span("ingest_source", source=label) as span:
            try:
                pipeline = (
                    list(stages)
                    if stages is not None
                    else default_stages(trace.source_format)
                )
                if expected_shape is not None:
                    # The shape check must reach the gate even when the
                    # pipeline already carries a default (shapeless) one.
                    pipeline = [
                        s for s in pipeline if not isinstance(s, QuarantineGate)
                    ]
                    pipeline.append(QuarantineGate(expected_shape=expected_shape))
                cleaned, reports = run_stages(trace, pipeline, tracer=tracer)

                # Calibration characterizes the capture as recorded —
                # fit the raw trace, not the cleaned one (the stages
                # remove exactly the impairments being measured).
                calibration = None
                if calibrate and trace.n_antennas >= 2 and trace.n_packets >= 1:
                    calibration = fit_calibration(trace, tracer=tracer).to_dict()

                output_path = None
                dataset = None
                if out_dir is not None:
                    output_path = str(out_dir / f"{_artifact_name(label, source)}.npz")
                    cleaned.save(output_path)
                    if registry is not None and register_prefix is not None:
                        dataset = f"{register_prefix}{_artifact_name(label, source)}"
                        registry.register(
                            dataset,
                            output_path,
                            format="npz",
                            description=f"ingested from {source}",
                            overwrite=overwrite,
                        )
                span.annotate(ok=True, n_packets=cleaned.n_packets)
                records.append(
                    IngestRecord(
                        label=label,
                        source=source,
                        ok=True,
                        n_packets=cleaned.n_packets,
                        n_antennas=cleaned.n_antennas,
                        n_subcarriers=cleaned.n_subcarriers,
                        source_format=trace.source_format,
                        snr_db=None if _isnan(cleaned.snr_db) else float(cleaned.snr_db),
                        output_path=output_path,
                        dataset=dataset,
                        stage_reports=[report.to_dict() for report in reports],
                        calibration=calibration,
                    )
                )
            except ReproError as error:
                span.annotate(ok=False)
                records.append(
                    IngestRecord(
                        label=label,
                        source=source,
                        ok=False,
                        source_format=trace.source_format,
                        error=f"{type(error).__name__}: {error}",
                        error_kind=_fault_kind(error),
                    )
                )
    return records


def _isnan(value: float) -> bool:
    return value != value
