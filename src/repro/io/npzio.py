"""The native ``.npz`` trace format.

This module owns the single ``np.load``-for-traces call site in the
package: everything that reads a saved :class:`CsiTrace` — including
``CsiTrace.load`` itself — funnels through
:func:`repro.io.open_trace` into :func:`read_npz_trace`.

The format is append-only across releases: archives written before the
capture-metadata fields existed load with those fields at their
defaults, and fields written by a *newer* release than this reader are
skipped with a warning instead of an error, so fixture files never
bit-rot in either direction.
"""

from __future__ import annotations

import warnings
import zipfile
import zlib
from pathlib import Path

import numpy as np

from repro.channel.trace import CsiTrace
from repro.exceptions import IngestError, ReproError

# np.load on hostile bytes surfaces zip-container and npy-header damage
# through this zoo; inside the archive, member decompression adds
# zlib.error and short reads add EOFError.
_ARCHIVE_ERRORS = (
    OSError,
    ValueError,
    TypeError,
    KeyError,
    EOFError,
    IndexError,
    OverflowError,
    MemoryError,
    zipfile.BadZipFile,
    zlib.error,
)

#: Every field a trace archive may carry, by CsiTrace attribute name.
KNOWN_FIELDS = frozenset(
    {
        "csi",
        "snr_db",
        "detection_delays_s",
        "antenna_phase_offsets",
        "true_aoas_deg",
        "true_toas_s",
        "direct_aoa_deg",
        "direct_toa_s",
        "rssi_dbm",
        "capture_times_s",
        "ap_id",
        "source_format",
    }
)

_ARRAY_FIELDS = (
    "detection_delays_s",
    "antenna_phase_offsets",
    "true_aoas_deg",
    "true_toas_s",
    "capture_times_s",
)
_SCALAR_FIELDS = ("direct_aoa_deg", "direct_toa_s", "rssi_dbm")


def read_npz_trace(path: str | Path) -> CsiTrace:
    """Load a ``.npz`` archive written by :meth:`CsiTrace.save`.

    Missing optional fields default (old fixtures stay loadable);
    unknown fields warn and are ignored (new fixtures degrade
    gracefully on old readers).  Only ``csi`` and ``snr_db`` are
    mandatory.
    """
    path = Path(path)
    try:
        archive = np.load(path)
    except _ARCHIVE_ERRORS as error:
        kind = "io" if isinstance(error, (FileNotFoundError, PermissionError)) else "invalid"
        raise IngestError(
            f"cannot read {path} as a trace archive: {error}", kind=kind
        ) from error
    with archive:
        try:
            fields = set(archive.files)
            unknown = sorted(fields - KNOWN_FIELDS)
            if unknown:
                warnings.warn(
                    f"{path} carries unknown trace fields {unknown} "
                    "(written by a newer version?); ignoring them",
                    RuntimeWarning,
                    stacklevel=2,
                )
            missing = {"csi", "snr_db"} - fields
            if missing:
                raise IngestError(
                    f"{path} is not a trace archive: missing {sorted(missing)}",
                    kind="bad_field",
                )

            kwargs: dict = {
                "csi": np.asarray(archive["csi"]),
                "snr_db": float(archive["snr_db"]),
            }
            for name in _ARRAY_FIELDS:
                if name in fields:
                    kwargs[name] = np.asarray(archive[name])
            for name in _SCALAR_FIELDS:
                if name in fields:
                    kwargs[name] = float(archive[name])
            for name in ("ap_id", "source_format"):
                if name in fields:
                    kwargs[name] = str(archive[name])
        except _ARCHIVE_ERRORS as error:
            # The container opened but a member is damaged (short
            # deflate stream, corrupt npy header, non-scalar scalar).
            raise IngestError(
                f"{path} holds a damaged trace archive member: "
                f"{type(error).__name__}: {error}",
                kind="truncated",
            ) from error
    # source_format is preserved verbatim (a synthesized-then-saved
    # trace stays "synthetic"); archives predating the field load as ""
    # — "origin unknown" — rather than being retroactively relabeled.
    try:
        return CsiTrace(**kwargs)
    except ReproError as error:
        raise IngestError(
            f"{path} does not form a valid trace: {error}", kind="bad_shape"
        ) from error
