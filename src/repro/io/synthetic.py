"""Synthetic trace sources: ``synthetic://`` specs.

The unified source API treats the simulator as just another place
traces come from, addressed by URL-style specs so CLI commands and
drivers need no per-command synthesis branching:

``synthetic://random?n=4&packets=10&snr=10&seed=0``
    Seeded random classroom links — byte-identical to what ``roarray
    batch --synthetic 4`` has always generated (the old flag is now
    sugar for this spec).
``synthetic://band/medium?n=4&packets=10&seed=0``
    Links drawn from one of the paper's SNR regimes
    (:data:`repro.experiments.scenarios.SNR_BANDS`), blockage included.
``synthetic://fixed?aoa=150&packets=10&snr=12&paths=4&seed=0``
    One link with a pinned direct-path AoA (deterministic regression
    workloads).

Bare band/scenario names (``random``, ``high``, ``medium``, ``low``)
are accepted where a source spec is expected, provided no file of that
name exists.
"""

from __future__ import annotations

from urllib.parse import parse_qsl, urlsplit

import numpy as np

from repro.channel.trace import CsiTrace
from repro.exceptions import IngestError

#: Scenario names usable without the ``synthetic://`` prefix.
BARE_SCENARIOS = ("random", "fixed", "high", "medium", "low")

#: The paper's SNR regimes (a subset of the scenarios).
BAND_SCENARIOS = ("high", "medium", "low")


def scenario_band(spec: str) -> str:
    """Normalize a band argument to its bare name.

    CLI commands and drivers that take an SNR regime accept either the
    bare name (``medium``) or the unified-source spelling
    (``synthetic://band/medium`` / ``synthetic://medium``).
    """
    if "://" in spec:
        scenario, params = parse_synthetic_spec(spec)
        if params:
            raise IngestError(
                f"band argument {spec!r} must not carry parameters "
                "(n/packets/seed come from the command's own flags)"
            )
    else:
        scenario = spec
    if scenario not in BAND_SCENARIOS:
        raise IngestError(
            f"not an SNR band: {spec!r} (known: {', '.join(BAND_SCENARIOS)})"
        )
    return scenario


def parse_synthetic_spec(spec: str) -> tuple[str, dict[str, str]]:
    """Split a spec into ``(scenario, params)``.

    ``synthetic://band/medium?...`` and the shorthand
    ``synthetic://medium?...`` both yield scenario ``"medium"``.
    """
    if "://" in spec:
        parts = urlsplit(spec)
        if parts.scheme != "synthetic":
            raise IngestError(f"not a synthetic spec: {spec!r}")
        scenario = parts.netloc
        if parts.path.strip("/"):
            tail = parts.path.strip("/")
            scenario = tail if scenario == "band" else f"{scenario}/{tail}"
        params = dict(parse_qsl(parts.query))
    else:
        scenario, _, query = spec.partition("?")
        params = dict(parse_qsl(query))
    if scenario not in BARE_SCENARIOS:
        raise IngestError(
            f"unknown synthetic scenario {scenario!r} (known: {', '.join(BARE_SCENARIOS)})"
        )
    return scenario, params


def _int(params: dict, key: str, default: int) -> int:
    try:
        return int(params.get(key, default))
    except ValueError:
        raise IngestError(f"synthetic spec parameter {key}={params[key]!r} is not an int") from None


def _float(params: dict, key: str, default: float) -> float:
    try:
        return float(params.get(key, default))
    except ValueError:
        raise IngestError(f"synthetic spec parameter {key}={params[key]!r} is not a number") from None


def synthesize_from_spec(spec: str) -> list[tuple[str, CsiTrace]]:
    """Generate the labeled traces a ``synthetic://`` spec describes."""
    from repro.channel.array import UniformLinearArray
    from repro.channel.csi import CsiSynthesizer
    from repro.channel.impairments import ImpairmentModel
    from repro.channel.ofdm import intel5300_layout
    from repro.channel.paths import random_profile

    scenario, params = parse_synthetic_spec(spec)
    known = {"n", "packets", "snr", "seed", "paths", "aoa"}
    unknown = set(params) - known
    if unknown:
        raise IngestError(f"unknown synthetic spec parameter(s) {sorted(unknown)} in {spec!r}")
    n = _int(params, "n", 1)
    packets = _int(params, "packets", 10)
    seed = _int(params, "seed", 0)
    if n < 1 or packets < 1:
        raise IngestError(f"synthetic spec needs n >= 1 and packets >= 1, got {spec!r}")

    rng = np.random.default_rng(seed)
    synthesizer = CsiSynthesizer(
        UniformLinearArray(), intel5300_layout(), ImpairmentModel(), seed=seed
    )

    if scenario == "random":
        # Generation order matches the historical `roarray batch
        # --synthetic N` loop exactly, so existing checkpoints,
        # goldens and CI parity baselines replay bit-for-bit.
        snr = _float(params, "snr", 10.0)
        out = []
        for index in range(n):
            profile = random_profile(rng, n_paths=4, direct_aoa_deg=float(rng.uniform(20, 160)))
            trace = synthesizer.packets(profile, n_packets=packets, snr_db=snr, rng=rng)
            out.append((f"synthetic[{index}]", trace))
        return out

    if scenario == "fixed":
        snr = _float(params, "snr", 10.0)
        aoa = _float(params, "aoa", 150.0)
        paths = _int(params, "paths", 4)
        out = []
        for index in range(n):
            profile = random_profile(rng, n_paths=paths, direct_aoa_deg=aoa)
            trace = synthesizer.packets(profile, n_packets=packets, snr_db=snr, rng=rng)
            out.append((f"fixed[{aoa:g}deg][{index}]", trace))
        return out

    # SNR-band scenarios: draw the regime's SNR and LoS blockage per
    # link, the same physics the Fig. 6/7 drivers use.
    from repro.experiments.scenarios import SNR_BANDS

    band = SNR_BANDS[scenario]
    out = []
    for index in range(n):
        profile = random_profile(rng, n_paths=4, direct_aoa_deg=float(rng.uniform(20, 160)))
        blockage = band.draw_blockage(rng)
        if blockage > 0:
            profile = profile.with_direct_attenuation(blockage)
        trace = synthesizer.packets(
            profile, n_packets=packets, snr_db=band.draw(rng), rng=rng
        )
        out.append((f"{scenario}[{index}]", trace))
    return out
