"""Named, checksummed capture datasets.

A real-capture workflow needs more than files: which AP recorded a
trace, where that AP stood, where the client truly was — none of it is
in the bits the NIC logs.  The registry binds those together: a JSON
manifest (``registry.json``) mapping names to
:class:`DatasetEntry` records — file path, format, SHA-256, optional AP
geometry and ground truth — so ``dataset://name`` is a complete,
integrity-checked trace source anywhere a path is accepted.

Conventions (anticipating multi-AP capture campaigns à la WiCAL):

* Paths inside the manifest are relative to the manifest's directory,
  so a dataset tree can be committed, moved or mounted wholesale.
* The checksum is verified on every open; a silently replaced or
  corrupted capture raises :class:`~repro.exceptions.DatasetError`
  rather than producing subtly wrong fixes.
* Ground truth recorded by a site survey (true client position, LoS
  AoA/ToA) is *applied* to the loaded trace's ground-truth fields, so
  real captures score through exactly the same experiment code paths
  as synthetic ones.

The default registry location is ``$REPRO_DATA_DIR/registry.json``
(falling back to ``./datasets/registry.json``), overridable per call.
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import dataclass, field, replace
from pathlib import Path

import numpy as np

from repro.channel.geometry import AccessPoint
from repro.channel.trace import CsiTrace
from repro.exceptions import DatasetError

#: Manifest file name inside a dataset root.
MANIFEST_NAME = "registry.json"

#: Manifest format version.
REGISTRY_VERSION = 1

#: Environment variable naming the default dataset root.
DATA_DIR_ENV = "REPRO_DATA_DIR"

#: Trace formats a dataset entry may declare.
DATASET_FORMATS = ("npz", "intel-dat", "spotfi-mat")


def file_sha256(path: str | Path) -> str:
    """SHA-256 of a file's bytes, streamed."""
    digest = hashlib.sha256()
    with open(path, "rb") as handle:
        for chunk in iter(lambda: handle.read(1 << 20), b""):
            digest.update(chunk)
    return digest.hexdigest()


@dataclass(frozen=True)
class DatasetEntry:
    """One named capture in a registry manifest."""

    name: str
    path: str
    format: str
    sha256: str
    description: str = ""
    ap: dict | None = None
    ground_truth: dict = field(default_factory=dict)
    meta: dict = field(default_factory=dict)

    def to_dict(self) -> dict:
        payload = {
            "path": self.path,
            "format": self.format,
            "sha256": self.sha256,
            "description": self.description,
            "ground_truth": dict(self.ground_truth),
            "meta": dict(self.meta),
        }
        if self.ap is not None:
            payload["ap"] = dict(self.ap)
        return payload

    @classmethod
    def from_dict(cls, name: str, payload: dict) -> "DatasetEntry":
        try:
            return cls(
                name=name,
                path=str(payload["path"]),
                format=str(payload["format"]),
                sha256=str(payload["sha256"]),
                description=str(payload.get("description", "")),
                ap=payload.get("ap"),
                ground_truth=dict(payload.get("ground_truth", {})),
                meta=dict(payload.get("meta", {})),
            )
        except KeyError as error:
            raise DatasetError(f"dataset {name!r}: manifest entry missing {error}") from None

    def access_point(self) -> AccessPoint | None:
        """The capturing AP's geometry, when the manifest records it."""
        if self.ap is None:
            return None
        try:
            return AccessPoint(
                position=tuple(float(v) for v in self.ap["position"]),
                axis_direction_deg=float(self.ap.get("axis_direction_deg", 0.0)),
                name=str(self.ap.get("name", self.name)),
            )
        except (KeyError, TypeError, ValueError) as error:
            raise DatasetError(f"dataset {self.name!r}: bad AP geometry: {error}") from None


def default_data_dir() -> Path:
    """``$REPRO_DATA_DIR``, else ``./datasets``."""
    return Path(os.environ.get(DATA_DIR_ENV, "datasets"))


class DatasetRegistry:
    """A manifest of named captures rooted at one directory."""

    def __init__(self, root: str | Path | None = None):
        root = Path(root) if root is not None else default_data_dir()
        # Accept either the dataset root directory or the manifest file.
        if root.suffix == ".json":
            self.manifest_path = root
            self.root = root.parent
        else:
            self.root = root
            self.manifest_path = root / MANIFEST_NAME
        self.entries: dict[str, DatasetEntry] = {}
        if self.manifest_path.exists():
            self._load()

    # -- manifest I/O ---------------------------------------------------

    def _load(self) -> None:
        try:
            payload = json.loads(self.manifest_path.read_text())
        except (OSError, json.JSONDecodeError) as error:
            raise DatasetError(f"unreadable registry {self.manifest_path}: {error}") from None
        version = payload.get("version")
        if version != REGISTRY_VERSION:
            raise DatasetError(
                f"registry {self.manifest_path} has version {version!r}; "
                f"this reader supports {REGISTRY_VERSION}"
            )
        self.entries = {
            name: DatasetEntry.from_dict(name, entry)
            for name, entry in payload.get("datasets", {}).items()
        }

    def save(self) -> Path:
        """Write the manifest atomically."""
        from repro.runtime.checkpoint import atomic_write

        self.manifest_path.parent.mkdir(parents=True, exist_ok=True)
        return atomic_write(
            self.manifest_path,
            {
                "version": REGISTRY_VERSION,
                "datasets": {
                    name: self.entries[name].to_dict() for name in sorted(self.entries)
                },
            },
        )

    # -- queries --------------------------------------------------------

    def __contains__(self, name: str) -> bool:
        return name in self.entries

    def names(self) -> list[str]:
        return sorted(self.entries)

    def entry(self, name: str) -> DatasetEntry:
        if name not in self.entries:
            known = ", ".join(self.names()) or "none registered"
            raise DatasetError(f"unknown dataset {name!r} (known: {known})")
        return self.entries[name]

    def resolve_path(self, entry: DatasetEntry) -> Path:
        path = Path(entry.path)
        if not path.is_absolute():
            path = self.manifest_path.parent / path
        if not path.exists():
            raise DatasetError(f"dataset {entry.name!r}: file {path} is missing")
        return path

    def verify(self, name: str) -> Path:
        """Resolve a dataset's file and check its checksum."""
        entry = self.entry(name)
        path = self.resolve_path(entry)
        actual = file_sha256(path)
        if actual != entry.sha256:
            raise DatasetError(
                f"dataset {name!r}: checksum mismatch for {path} "
                f"(manifest {entry.sha256[:12]}…, file {actual[:12]}…): "
                "the capture was modified or corrupted"
            )
        return path

    # -- registration ---------------------------------------------------

    def register(
        self,
        name: str,
        path: str | Path,
        *,
        format: str,
        description: str = "",
        ap: dict | None = None,
        ground_truth: dict | None = None,
        meta: dict | None = None,
        overwrite: bool = False,
    ) -> DatasetEntry:
        """Add (or replace, with ``overwrite``) one dataset entry.

        The file is checksummed now; the stored path is made relative
        to the manifest directory when possible so the tree relocates
        cleanly.
        """
        if name in self.entries and not overwrite:
            raise DatasetError(f"dataset {name!r} already registered (pass overwrite=True)")
        if format not in DATASET_FORMATS:
            raise DatasetError(f"unknown dataset format {format!r} (known: {DATASET_FORMATS})")
        path = Path(path)
        if not path.exists():
            raise DatasetError(f"cannot register missing file {path}")
        try:
            stored = str(path.resolve().relative_to(self.manifest_path.parent.resolve()))
        except ValueError:
            stored = str(path.resolve())
        entry = DatasetEntry(
            name=name,
            path=stored,
            format=format,
            sha256=file_sha256(path),
            description=description,
            ap=ap,
            ground_truth=dict(ground_truth or {}),
            meta=dict(meta or {}),
        )
        self.entries[name] = entry
        return entry

    # -- loading --------------------------------------------------------

    def load_trace(self, name: str) -> CsiTrace:
        """Open a registered capture: verify, parse, apply ground truth."""
        entry = self.entry(name)
        path = self.verify(name)
        ap = entry.access_point()
        ap_id = ap.name if ap is not None else ""
        if entry.format == "npz":
            from repro.io.npzio import read_npz_trace

            trace = read_npz_trace(path)
            if ap_id and not trace.ap_id:
                trace = replace(trace, ap_id=ap_id)
        elif entry.format == "intel-dat":
            from repro.io.intel import read_intel_dat

            trace = read_intel_dat(
                path,
                ap_id=ap_id,
                bandwidth_mhz=int(entry.meta.get("bandwidth_mhz", 40)),
                stream=int(entry.meta.get("stream", 0)),
            )
        elif entry.format == "spotfi-mat":
            from repro.io.matio import read_spotfi_mat

            trace = read_spotfi_mat(
                path, variable=entry.meta.get("variable"), ap_id=ap_id
            )
        else:  # pragma: no cover - register() gates formats
            raise DatasetError(f"dataset {name!r}: unknown format {entry.format!r}")
        return self._apply_ground_truth(trace, entry)

    @staticmethod
    def _apply_ground_truth(trace: CsiTrace, entry: DatasetEntry) -> CsiTrace:
        truth = entry.ground_truth
        updates: dict = {}
        for key in ("direct_aoa_deg", "direct_toa_s", "rssi_dbm", "snr_db"):
            value = truth.get(key)
            current = getattr(trace, key)
            if value is not None and (current is None or np.isnan(current)):
                updates[key] = float(value)
        return replace(trace, **updates) if updates else trace
