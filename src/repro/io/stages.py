"""Pluggable trace preprocessing stages.

Real CSI needs conditioning before any estimator can use it, and which
conditioning depends on the capture: Intel logs want SpotFi's
sampling-time-offset (STO) removal, known-bad boots want a phase
recalibration, everything wants the quarantine gate.  Rather than
baking a fixed cleanup into each parser, preprocessing is a list of
:class:`PreprocessingStage` objects, each mapping ``trace → (trace,
StageReport)``, composed by :func:`run_stages` with one
:mod:`repro.obs` span per stage.

The first-class stages:

* :class:`StoRemoval` — SpotFi Algorithm 1 (SIGCOMM'15): per packet,
  fit one linear phase ramp (slope + intercept) jointly across all
  antennas against the subcarrier index, and subtract it.  The slope is
  the STO/detection-delay ramp that randomizes raw per-packet ToA; the
  intercept removes common phase (CFO residue).  AoA information —
  *differences* between antennas — is untouched because the fit is
  common to all antennas.
* :class:`PhaseOffsetCorrection` — apply known per-antenna offsets
  (e.g. from a :class:`repro.io.calibration.CalibrationReport`).
* :class:`QuarantineGate` — the PR-4 validation gate
  (:func:`repro.faults.validate.sanitize_trace`) as a stage, so
  "parse → despike → validate" is one composable list.

Subcarrier indexing: the Intel 5300 reports 30 of the OFDM grid's raw
subcarriers, non-uniformly grouped.  :func:`subcarrier_indices` gives
the raw index set for a bandwidth/grouping (the 802.11n Ng values), and
:class:`StoRemoval` accepts it so slopes are fitted against the true
frequency positions; synthetic traces use the uniform default.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Protocol, runtime_checkable

import numpy as np

from repro.channel.trace import CsiTrace
from repro.exceptions import ConfigurationError
from repro.obs import NULL_TRACER

#: Frequency step of one *raw* 802.11n subcarrier index (Hz).
RAW_SUBCARRIER_SPACING_HZ = 312.5e3


def subcarrier_indices(bandwidth_mhz: int = 40, grouping: int | None = None) -> np.ndarray:
    """Raw subcarrier indices the Intel 5300 reports CSI for.

    With 802.11n grouping Ng (2 at 20 MHz, 4 at 40 MHz) the NIC reports
    every Ng-th data subcarrier plus the band edges — 30 indices total,
    spaced Ng raw bins apart except at the DC gap and edges.
    """
    if bandwidth_mhz == 20:
        grouping = 2 if grouping is None else grouping
        if grouping != 2:
            raise ConfigurationError(f"20 MHz grouping must be 2, got {grouping}")
        return np.concatenate(
            [np.arange(-28, 0, 2), [-1], np.arange(1, 28, 2), [28]]
        ).astype(float)
    if bandwidth_mhz == 40:
        grouping = 4 if grouping is None else grouping
        if grouping != 4:
            raise ConfigurationError(f"40 MHz grouping must be 4, got {grouping}")
        return np.concatenate(
            [np.arange(-58, -2, 4), [-2], np.arange(2, 58, 4), [58]]
        ).astype(float)
    raise ConfigurationError(f"bandwidth must be 20 or 40 MHz, got {bandwidth_mhz}")


@dataclass(frozen=True)
class StageReport:
    """What one preprocessing stage did to one trace."""

    stage: str
    changed: bool
    metrics: dict[str, float] = field(default_factory=dict)
    details: dict = field(default_factory=dict)

    def to_dict(self) -> dict:
        return {
            "stage": self.stage,
            "changed": self.changed,
            "metrics": dict(self.metrics),
            "details": dict(self.details),
        }


@runtime_checkable
class PreprocessingStage(Protocol):
    """The stage contract: a pure ``trace → (trace, report)`` map.

    Stages never mutate their input trace; a stage that finds nothing
    to do returns the input object itself with ``report.changed``
    false, so a clean pipeline is a guaranteed no-op (the same
    invariant the PR-4 quarantine gate keeps).
    """

    name: str

    def apply(self, trace: CsiTrace) -> tuple[CsiTrace, StageReport]: ...


def _unwrap_phases(csi: np.ndarray) -> np.ndarray:
    """Per-antenna unwrapped phase, anchored within π of antenna 0.

    Unwrapping runs along the subcarrier axis; each antenna's whole
    curve is then shifted by a multiple of 2π so its first subcarrier
    lands within π of the first antenna's — the cross-antenna branch
    alignment SpotFi's reference implementation applies before the
    joint fit.
    """
    phases = np.unwrap(np.angle(csi), axis=-1)
    anchor = phases[0, 0]
    shift = np.round((phases[:, 0] - anchor) / (2 * np.pi)) * 2 * np.pi
    return phases - shift[:, None]


def fit_phase_slope(
    csi: np.ndarray, indices: np.ndarray
) -> tuple[float, np.ndarray]:
    """Joint LS fit of one common slope + per-antenna intercepts.

    ``csi`` is one packet, shape ``(antennas, subcarriers)``; the model
    is ``phase[m, l] = slope·indices[l] + intercept[m]``.  Returns
    ``(slope, intercepts)`` in radians (per raw index, and absolute).
    """
    phases = _unwrap_phases(csi)
    centered_idx = indices - indices.mean()
    # With per-antenna intercepts free, the joint-LS slope decouples:
    # it is the pooled covariance over centered indices.
    slope = float(
        np.sum((phases - phases.mean(axis=1, keepdims=True)) * centered_idx)
        / (phases.shape[0] * np.sum(centered_idx**2))
    )
    intercepts = phases.mean(axis=1) - slope * indices.mean()
    return slope, intercepts


@dataclass(frozen=True)
class StoRemoval:
    """SpotFi Algorithm 1: remove the common linear phase ramp.

    Attributes
    ----------
    indices:
        Raw subcarrier indices of each reported subcarrier (see
        :func:`subcarrier_indices`); ``None`` means a uniform grid,
        correct for synthetic traces and ``.npz`` fixtures.
    index_spacing_hz:
        Frequency step of one index unit — converts fitted slopes to
        delays for the report.  The uniform default matches the
        synthetic Intel layout (1.25 MHz between reported subcarriers);
        raw-index sets use :data:`RAW_SUBCARRIER_SPACING_HZ`.
    remove_intercept:
        Also subtract the per-packet common phase (CFO residue).  The
        subtraction is antenna-common either way, so AoA is unaffected.
    """

    indices: np.ndarray | None = None
    index_spacing_hz: float = 1.25e6
    remove_intercept: bool = True
    name: str = "sto-removal"

    @classmethod
    def for_bandwidth(cls, bandwidth_mhz: int, **kwargs) -> "StoRemoval":
        """The stage for a real Intel capture at 20 or 40 MHz."""
        return cls(
            indices=subcarrier_indices(bandwidth_mhz),
            index_spacing_hz=RAW_SUBCARRIER_SPACING_HZ,
            **kwargs,
        )

    def _indices_for(self, trace: CsiTrace) -> np.ndarray:
        if self.indices is None:
            return np.arange(trace.n_subcarriers, dtype=float)
        indices = np.asarray(self.indices, dtype=float)
        if indices.shape != (trace.n_subcarriers,):
            raise ConfigurationError(
                f"stage has {indices.size} subcarrier indices but the trace "
                f"has {trace.n_subcarriers} subcarriers"
            )
        return indices

    def apply(self, trace: CsiTrace) -> tuple[CsiTrace, StageReport]:
        from dataclasses import replace

        indices = self._indices_for(trace)
        cleaned = np.empty_like(trace.csi)
        slopes = np.empty(trace.n_packets)
        changed = False
        for p in range(trace.n_packets):
            slope, intercepts = fit_phase_slope(trace.csi[p], indices)
            ramp = slope * indices
            if self.remove_intercept:
                ramp = ramp + float(intercepts.mean())
            changed = changed or bool(np.any(ramp != 0.0))
            cleaned[p] = trace.csi[p] * np.exp(-1j * ramp)
            slopes[p] = slope
        delays_ns = -slopes / (2 * np.pi * self.index_spacing_hz) * 1e9
        report = StageReport(
            stage=self.name,
            changed=changed,
            metrics={
                "max_abs_slope_rad": float(np.max(np.abs(slopes), initial=0.0)),
                "mean_delay_ns": float(np.mean(delays_ns)) if slopes.size else 0.0,
                "delay_spread_ns": float(np.ptp(delays_ns)) if slopes.size else 0.0,
            },
            details={"slopes_rad": slopes.tolist(), "delays_ns": delays_ns.tolist()},
        )
        if not report.changed:
            return trace, report
        return replace(trace, csi=cleaned), report


def remove_sto(
    csi: np.ndarray, *, bandwidth_mhz: int = 20, remove_intercept: bool = True
) -> np.ndarray:
    """Functional SpotFi Algorithm 1 for one packet matrix.

    Convenience wrapper over :class:`StoRemoval` for code (and tests)
    that holds a bare ``(antennas, subcarriers)`` matrix rather than a
    trace — the shape the SpotFi reference operates on.
    """
    trace = CsiTrace(csi=np.asarray(csi, dtype=complex)[None, :, :], snr_db=float("nan"))
    stage = StoRemoval.for_bandwidth(bandwidth_mhz, remove_intercept=remove_intercept)
    cleaned, _ = stage.apply(trace)
    return cleaned.csi[0]


@dataclass(frozen=True)
class PhaseOffsetCorrection:
    """Undo known per-antenna phase offsets (paper §III-D calibration)."""

    offsets_rad: tuple[float, ...]
    name: str = "phase-offset-correction"

    def apply(self, trace: CsiTrace) -> tuple[CsiTrace, StageReport]:
        from dataclasses import replace

        from repro.core.calibration import apply_phase_calibration

        offsets = np.asarray(self.offsets_rad, dtype=float)
        report = StageReport(
            stage=self.name,
            changed=bool(np.any(offsets != 0.0)),
            metrics={"max_abs_offset_rad": float(np.max(np.abs(offsets), initial=0.0))},
            details={"offsets_rad": offsets.tolist()},
        )
        if not report.changed:
            return trace, report
        return replace(trace, csi=apply_phase_calibration(trace.csi, offsets)), report


@dataclass(frozen=True)
class QuarantineGate:
    """The PR-4 validation gate as a composable stage."""

    expected_shape: tuple[int, int] | None = None
    name: str = "quarantine-gate"

    def apply(self, trace: CsiTrace) -> tuple[CsiTrace, StageReport]:
        from repro.faults.validate import sanitize_trace

        cleaned, validation = sanitize_trace(trace, expected_shape=self.expected_shape)
        report = StageReport(
            stage=self.name,
            changed=cleaned is not trace,
            metrics={
                "n_quarantined": float(validation.n_quarantined),
                "n_defects": float(len(validation.defects)),
            },
            details=validation.to_dict(),
        )
        return cleaned, report


def run_stages(
    trace: CsiTrace,
    stages: Iterable[PreprocessingStage],
    *,
    tracer=NULL_TRACER,
) -> tuple[CsiTrace, list[StageReport]]:
    """Apply ``stages`` in order, spanning each one.

    Returns the final trace and one report per stage.  An empty stage
    list is the identity (the input object comes back untouched).
    """
    reports: list[StageReport] = []
    for stage in stages:
        with tracer.span("preprocess", stage=stage.name) as span:
            trace, report = stage.apply(trace)
            span.annotate(changed=report.changed, **report.metrics)
        reports.append(report)
    return trace, reports


def default_stages(source_format: str) -> list[PreprocessingStage]:
    """The recommended pipeline for a trace of the given provenance.

    Real captures get STO removal (raw-index grid for Intel logs,
    SpotFi's 20 MHz convention for ``.mat`` samples) followed by the
    quarantine gate; synthetic/unknown traces get the gate only, since
    the simulator's detection delay is itself part of what experiments
    study.
    """
    if source_format == "intel-dat":
        return [StoRemoval.for_bandwidth(40), QuarantineGate()]
    if source_format == "spotfi-mat":
        return [StoRemoval.for_bandwidth(20), QuarantineGate()]
    return [QuarantineGate()]
