"""ROArray — the paper's primary contribution.

The estimation chain, bottom-up:

1. :mod:`~repro.core.grids` / :mod:`~repro.core.steering` — the sparse
   sampling grids over angle and delay and the linearized steering
   dictionaries of paper Eq. 6 (AoA only) and Eq. 13/16 (joint
   AoA&ToA), with cached Lipschitz constants for fast re-solves.
2. :mod:`~repro.core.aoa` — sparse AoA estimation (Eq. 11).
3. :mod:`~repro.core.joint` — joint ToA&AoA sparse recovery (Eq. 18).
4. :mod:`~repro.core.fusion` — multi-packet SVD reduction + joint-sparse
   recovery (§III-D, after Malioutov et al. [25]).
5. :mod:`~repro.core.direct_path` — smallest-ToA direct-path rule.
6. :mod:`~repro.core.calibration` — Phaser-style phase autocalibration
   driven by ROArray's own spectra.
7. :mod:`~repro.core.localization` — RSSI-weighted multi-AP AoA
   triangulation over a 10 cm grid (Eq. 19).
8. :mod:`~repro.core.pipeline` — :class:`RoArrayEstimator`, the
   packaged end-to-end system.
"""

from repro.core.aoa import estimate_aoa_spectrum
from repro.core.aoa2d import AzimuthElevationGrid, PlanarSpectrum, estimate_aoa2d_spectrum
from repro.core.calibration import calibrate_phase_offsets
from repro.core.config import RoArrayConfig
from repro.core.direct_path import DirectPathEstimate, identify_direct_path
from repro.core.fusion import fuse_packets, svd_reduce_snapshots
from repro.core.grids import AngleGrid, DelayGrid
from repro.core.joint import estimate_joint_spectrum
from repro.core.localization import (
    TRUST_THRESHOLD,
    ApEvidence,
    ApTrustScore,
    ConsensusResult,
    DegradedResult,
    DroppedAp,
    localize_consensus,
    localize_robust,
    localize_weighted_aoa,
    peak_dispersion,
    score_ap_trust,
)
from repro.core.pipeline import RoArrayEstimator
from repro.core.steering import SteeringCache, joint_steering_dictionary
from repro.core.tracking import KalmanTracker, TrackState, track_fixes

__all__ = [
    "TRUST_THRESHOLD",
    "AngleGrid",
    "ApEvidence",
    "ApTrustScore",
    "AzimuthElevationGrid",
    "ConsensusResult",
    "DegradedResult",
    "DelayGrid",
    "DroppedAp",
    "PlanarSpectrum",
    "estimate_aoa2d_spectrum",
    "DirectPathEstimate",
    "KalmanTracker",
    "RoArrayConfig",
    "TrackState",
    "track_fixes",
    "RoArrayEstimator",
    "SteeringCache",
    "calibrate_phase_offsets",
    "estimate_aoa_spectrum",
    "estimate_joint_spectrum",
    "fuse_packets",
    "identify_direct_path",
    "joint_steering_dictionary",
    "localize_consensus",
    "localize_robust",
    "localize_weighted_aoa",
    "peak_dispersion",
    "score_ap_trust",
]
