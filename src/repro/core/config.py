"""Configuration of the ROArray estimator."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.grids import AngleGrid, DelayGrid
from repro.exceptions import ConfigurationError
from repro.optim.guard import GuardrailPolicy


@dataclass(frozen=True)
class RoArrayConfig:
    """Tunables of the end-to-end ROArray pipeline.

    Attributes
    ----------
    angle_grid / delay_grid:
        The linearization grids (paper §III-A/B).  The joint grid
        defaults to the working point the paper reports timing for
        (Nθ = 91 ≈ 2°-spaced angles, Nτ = 50 delays over 800 ns).
    kappa_fraction:
        Sparsity weight as a fraction of ‖2Aᴴy‖_∞ (the smallest κ that
        zeroes the solution); see :func:`repro.optim.tuning.residual_kappa`.
        The default of 0.15 realizes the noise tolerance of paper
        Eq. 10 across the whole SNR range: large enough that noise
        ripple cannot spawn spurious early peaks (which would hijack the
        smallest-ToA direct-path rule), small enough to keep a
        blockage-attenuated LoS path alive.
    max_iterations:
        FISTA iteration cap for each solve.
    svd_rank:
        Maximum number of singular vectors kept by multi-packet fusion
        (§III-D); bounded by the expected path count.
    max_paths:
        Cap on peaks read from a spectrum (the sparsity assumption:
        ~5 dominant indoor paths).
    peak_floor:
        Minimum relative height for a spectrum peak to count as a path.
    refine_off_grid:
        Polish the recovered peaks on the continuous (θ, τ) manifold
        (:mod:`repro.core.refinement`) before direct-path selection —
        removes the grid-quantization floor at the cost of extra
        least-squares solves per fix.
    warm_start:
        Seed each solve with the estimator's previous solution on the
        same grids (see :class:`~repro.core.pipeline.RoArrayEstimator`).
        Off by default: warm chaining makes results depend on call
        order, so the batch runtime resets it per job to preserve
        worker-count-independent determinism; sequential sweeps opt in
        for the iteration savings.
    guardrails:
        Optional :class:`~repro.optim.guard.GuardrailPolicy`.  When set,
        every sparse solve runs through
        :func:`~repro.optim.guard.solve_guarded` — divergence detection
        plus the FISTA→ADMM→OMP fallback chain — and any fallback usage
        is surfaced on the estimator (see
        :meth:`~repro.core.pipeline.RoArrayEstimator.drain_fallback_events`).
        ``None`` (the default) calls the primary solvers directly; a
        healthy guarded solve is byte-identical to an unguarded one, so
        enabling guardrails never changes a clean result.
    """

    angle_grid: AngleGrid = field(default_factory=lambda: AngleGrid(n_points=91))
    delay_grid: DelayGrid = field(default_factory=lambda: DelayGrid(n_points=50))
    kappa_fraction: float = 0.15
    max_iterations: int = 250
    svd_rank: int = 6
    max_paths: int = 6
    peak_floor: float = 0.3
    refine_off_grid: bool = False
    warm_start: bool = False
    guardrails: GuardrailPolicy | None = None

    def __post_init__(self) -> None:
        if not 0 < self.kappa_fraction < 1:
            raise ConfigurationError(f"kappa_fraction must be in (0, 1), got {self.kappa_fraction}")
        if self.max_iterations < 1:
            raise ConfigurationError(f"max_iterations must be >= 1, got {self.max_iterations}")
        if self.svd_rank < 1:
            raise ConfigurationError(f"svd_rank must be >= 1, got {self.svd_rank}")
        if self.max_paths < 1:
            raise ConfigurationError(f"max_paths must be >= 1, got {self.max_paths}")
        if not 0 < self.peak_floor < 1:
            raise ConfigurationError(f"peak_floor must be in (0, 1), got {self.peak_floor}")
