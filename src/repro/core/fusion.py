"""Multi-packet fusion (paper §III-D).

Two obstacles keep packets from being averaged naively:

1. **Per-packet detection delay** — every packet's ToAs are shifted by
   an unknown common delay (paper Fig. 4a vs. 4b), so the joint-sparse
   assumption (all packets share the same active grid cells) only holds
   *after* the packets are delay-aligned.  :func:`estimate_relative_delay`
   recovers each packet's delay relative to the first by matched
   filtering the inter-packet phase ramp, and
   :func:`align_packet_delays` compensates it.
2. **Problem size** — P packets multiply the snapshot dimension.  After
   the method of Malioutov et al. [25], :func:`svd_reduce_snapshots`
   projects the snapshot matrix onto its top singular vectors (the
   signal subspace), keeping the joint-sparse structure while shrinking
   the MMV problem to at most ``rank`` columns.

:func:`fuse_packets` chains align → vectorize → SVD-reduce → ℓ2,1 solve
and returns the fused 2-D spectrum of paper Fig. 4c.
"""

from __future__ import annotations

import numpy as np

from repro.channel.ofdm import SubcarrierLayout
from repro.core.joint import coefficients_to_joint_power
from repro.core.steering import SteeringCache, vectorize_csi_matrix
from repro.exceptions import SolverError
from repro.obs import NULL_TRACER, ConvergenceTrace
from repro.optim import solve_mmv_fista
from repro.optim.guard import GuardrailPolicy, solve_guarded
from repro.optim.result import SolverResult
from repro.optim.tuning import mmv_residual_kappa
from repro.spectral.spectrum import JointSpectrum


def estimate_relative_delay(
    reference: np.ndarray,
    packet: np.ndarray,
    layout: SubcarrierLayout,
    *,
    search_range_s: float = 400e-9,
    resolution_s: float = 1e-9,
) -> float:
    """Delay of ``packet`` relative to ``reference`` (seconds).

    Both inputs are CSI matrices of the *same static link*; their
    element-wise cross term ``packet · reference*`` carries a pure phase
    ramp ``exp(−j2π·fδ·Δτ·l)`` across subcarriers.  We matched-filter
    that ramp over a fine delay grid, which is robust at low SNR where
    phase unwrapping fails.
    """
    reference = np.asarray(reference)
    packet = np.asarray(packet)
    if reference.shape != packet.shape:
        raise SolverError(f"packet shapes differ: {reference.shape} vs {packet.shape}")
    cross = np.mean(packet * reference.conj(), axis=0)  # (L,) averaged over antennas

    candidates = np.arange(-search_range_s, search_range_s + resolution_s, resolution_s)
    subcarriers = np.arange(cross.size)
    ramps = np.exp(2j * np.pi * layout.spacing * candidates[:, None] * subcarriers[None, :])
    scores = np.abs(ramps @ cross)
    return float(candidates[int(np.argmax(scores))])


def align_packet_delays(
    csi: np.ndarray, layout: SubcarrierLayout, *, search_range_s: float = 400e-9
) -> tuple[np.ndarray, np.ndarray]:
    """Remove per-packet detection delay relative to the first packet.

    Parameters
    ----------
    csi:
        Packet batch of shape ``(P, M, L)``.

    Returns
    -------
    (aligned, delays)
        The delay-compensated batch and the estimated relative delays
        (``delays[0]`` is 0 by construction).
    """
    csi = np.asarray(csi, dtype=complex)
    if csi.ndim != 3:
        raise SolverError(f"csi batch must be 3-D (packets, antennas, subcarriers), got {csi.shape}")
    n_packets = csi.shape[0]
    aligned = csi.copy()
    delays = np.zeros(n_packets)
    subcarriers = np.arange(csi.shape[2])
    for p in range(1, n_packets):
        delay = estimate_relative_delay(csi[0], csi[p], layout, search_range_s=search_range_s)
        delays[p] = delay
        compensation = np.exp(2j * np.pi * layout.spacing * delay * subcarriers)
        aligned[p] = csi[p] * compensation[None, :]
    return aligned, delays


def svd_reduce_snapshots(snapshots: np.ndarray, rank: int) -> np.ndarray:
    """Project a snapshot matrix onto its dominant singular vectors.

    Following Malioutov et al. [25]: for ``Y ∈ ℂ^{m×P}`` with SVD
    ``Y = UΣVᴴ``, return ``Y V_r = U_r Σ_r`` of shape ``(m, r)`` with
    ``r = min(rank, P, m)``.  The retained columns span the signal
    subspace, so the jointly sparse representation is preserved while
    the MMV width drops from P to r.
    """
    snapshots = np.asarray(snapshots)
    if snapshots.ndim != 2:
        raise SolverError(f"snapshots must be 2-D, got shape {snapshots.shape}")
    if rank < 1:
        raise SolverError(f"rank must be >= 1, got {rank}")
    effective = min(rank, *snapshots.shape)
    if snapshots.shape[1] <= effective:
        return snapshots
    _, _, vh = np.linalg.svd(snapshots, full_matrices=False)
    return snapshots @ vh[:effective].conj().T


def fuse_packets(
    csi: np.ndarray,
    cache: SteeringCache,
    *,
    kappa: float | None = None,
    kappa_fraction: float = 0.05,
    max_iterations: int = 300,
    svd_rank: int = 6,
    align_delays: bool = True,
    x0: np.ndarray | None = None,
    tracer=NULL_TRACER,
    telemetry: ConvergenceTrace | None = None,
    guard: GuardrailPolicy | None = None,
) -> tuple[JointSpectrum, SolverResult]:
    """Coherent multi-packet joint (AoA, ToA) spectrum (paper Fig. 4c).

    The ℓ2,1 solve runs on the cache's structured
    :attr:`~repro.core.steering.SteeringCache.joint_operator`.

    Parameters
    ----------
    csi:
        Packet batch ``(P, M, L)``.
    align_delays:
        Compensate per-packet detection delay first (on by default; the
        ablation benchmark turns it off to show why it matters).
    x0:
        Optional ``(Nθ·Nτ, r)`` warm start — a previous fusion's
        coefficient matrix on the same grids with the same retained
        rank; ignored if the snapshot width differs.
    tracer / telemetry:
        As in :func:`~repro.core.joint.estimate_joint_spectrum` — the
        delay alignment, SVD reduction and ℓ2,1 solve each get a span,
        and the solve records a per-iteration
        :class:`~repro.obs.ConvergenceTrace` when tracing is enabled.
    guard:
        Optional :class:`~repro.optim.guard.GuardrailPolicy`; the ℓ2,1
        solve then runs through
        :func:`~repro.optim.guard.solve_guarded` with the policy's MMV
        chain (single-measurement fallbacks see the principal singular
        column).  A healthy solve is byte-identical to the unguarded
        path.

    Returns
    -------
    (JointSpectrum, SolverResult)
        The fused spectrum on the cache's grids.  Its ToA axis carries
        the first packet's (unknown, common) detection delay — harmless
        for direct-path identification, which only ranks delays.
    """
    csi = np.asarray(csi, dtype=complex)
    if csi.ndim == 2:
        csi = csi[None]
    expected = (cache.array.n_antennas, cache.layout.n_subcarriers)
    if csi.ndim != 3 or csi.shape[1:] != expected:
        raise SolverError(
            f"csi batch has shape {csi.shape}, expected (packets, {expected[0]}, {expected[1]})"
        )
    if not np.all(np.isfinite(csi)):
        raise SolverError("csi batch contains non-finite entries")
    if align_delays and csi.shape[0] > 1:
        with tracer.span("delay_alignment", n_packets=int(csi.shape[0])):
            csi, _ = align_packet_delays(csi, cache.layout)

    with tracer.span("svd_reduction", rank=svd_rank):
        snapshots = np.stack([vectorize_csi_matrix(packet) for packet in csi], axis=1)
        snapshots = svd_reduce_snapshots(snapshots, svd_rank)

    dictionary = cache.joint_operator
    if kappa is None:
        try:
            kappa = mmv_residual_kappa(dictionary, snapshots, fraction=kappa_fraction)
        except SolverError:
            raise SolverError("packets are orthogonal to every steering vector") from None
    if x0 is not None and x0.shape != (dictionary.shape[1], snapshots.shape[1]):
        x0 = None
    if telemetry is None and tracer.enabled:
        telemetry = ConvergenceTrace(solver="mmv_fista")
    with tracer.span("solver", solver="mmv_fista", stage="fusion") as span:
        if guard is not None:
            result = solve_guarded(
                dictionary,
                snapshots,
                kappa=kappa,
                kappa_fraction=kappa_fraction,
                policy=guard,
                max_iterations=max_iterations,
                lipschitz=cache.joint_lipschitz,
                x0=x0,
                telemetry=telemetry,
            )
            if result.solver != guard.mmv_chain[0] or result.fallbacks:
                span.annotate(solver=result.solver, fallbacks=list(result.fallbacks))
        else:
            result = solve_mmv_fista(
                dictionary,
                snapshots,
                kappa,
                max_iterations=max_iterations,
                lipschitz=cache.joint_lipschitz,
                x0=x0,
                telemetry=telemetry,
            )
        span.annotate(iterations=result.iterations, converged=result.converged)
        if telemetry is not None:
            span.annotate(convergence=telemetry.to_dict())

    power = coefficients_to_joint_power(
        result.x, cache.angle_grid.n_points, cache.delay_grid.n_points
    )
    spectrum = JointSpectrum(cache.angle_grid.angles_deg, cache.delay_grid.toas_s, power)
    return spectrum, result
