"""Multi-AP localization (paper §III-D, Eq. 19).

Given one direct-path AoA estimate per AP, ROArray searches a 10 cm
candidate grid over the room and picks the location minimizing the
RSSI-weighted squared AoA deviation

    min_p  Σᵢ Rᵢ · (ϕᵢ(p) − ϕ̂ᵢ)²

where ``ϕᵢ(p)`` is the angle AP *i* would see for a client at ``p``.
RSSI enters as a *relative* weight — stronger links are trusted more —
so we map dBm to linear received power and normalize; any monotone map
preserves the paper's intent.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.channel.geometry import AccessPoint, Room
from repro.exceptions import ConfigurationError, QuorumError


@dataclass(frozen=True)
class ApObservation:
    """One AP's contribution to localization."""

    access_point: AccessPoint
    aoa_deg: float
    rssi_dbm: float = -50.0

    def __post_init__(self) -> None:
        if not 0.0 <= self.aoa_deg <= 180.0:
            raise ConfigurationError(f"aoa_deg must be in [0, 180], got {self.aoa_deg}")


@dataclass(frozen=True)
class LocalizationResult:
    """The located position and the residual cost at the optimum."""

    position: tuple[float, float]
    cost: float

    def error_to(self, true_position: tuple[float, float]) -> float:
        """Euclidean localization error in meters."""
        dx = self.position[0] - true_position[0]
        dy = self.position[1] - true_position[1]
        return float(np.hypot(dx, dy))


def rssi_weights(rssi_dbm: np.ndarray) -> np.ndarray:
    """Normalized linear-power weights from dBm RSSIs.

    The strongest AP gets the largest weight; weights sum to 1.  RSSIs
    are first clipped to a 30 dB dynamic range below the best link so a
    single deeply faded AP cannot be assigned a numerically zero weight.
    """
    rssi_dbm = np.asarray(rssi_dbm, dtype=float)
    if rssi_dbm.size == 0:
        raise ConfigurationError("need at least one RSSI")
    clipped = np.maximum(rssi_dbm, rssi_dbm.max() - 30.0)
    linear = 10.0 ** (clipped / 10.0)
    return linear / linear.sum()


def predicted_aoa_grid(
    access_point: AccessPoint, xs: np.ndarray, ys: np.ndarray
) -> np.ndarray:
    """AoA (degrees) AP would observe for a client at each (x, y) grid cell.

    Returns an array of shape ``(len(xs), len(ys))``.
    """
    gx, gy = np.meshgrid(xs, ys, indexing="ij")
    dx = gx - access_point.position[0]
    dy = gy - access_point.position[1]
    distance = np.hypot(dx, dy)
    distance = np.where(distance == 0, np.finfo(float).eps, distance)
    axis = access_point.axis_unit
    cosine = np.clip((dx * axis[0] + dy * axis[1]) / distance, -1.0, 1.0)
    return np.rad2deg(np.arccos(cosine))


def localize_weighted_aoa(
    observations: list[ApObservation],
    room: Room,
    *,
    resolution_m: float = 0.1,
) -> LocalizationResult:
    """Paper Eq. 19: weighted AoA grid search over the room.

    Parameters
    ----------
    observations:
        Direct-path AoA + RSSI per AP; at least two APs are required for
        an unambiguous fix with a 1-D angle each.
    resolution_m:
        Candidate grid pitch (the paper uses 10 cm).
    """
    if len(observations) < 2:
        raise ConfigurationError(f"localization needs >= 2 APs, got {len(observations)}")
    if resolution_m <= 0:
        raise ConfigurationError(f"resolution must be positive, got {resolution_m}")

    xs = np.arange(0.0, room.width + resolution_m / 2, resolution_m)
    ys = np.arange(0.0, room.depth + resolution_m / 2, resolution_m)

    weights = rssi_weights(np.array([obs.rssi_dbm for obs in observations]))
    cost = np.zeros((xs.size, ys.size))
    for weight, obs in zip(weights, observations):
        predicted = predicted_aoa_grid(obs.access_point, xs, ys)
        cost += weight * (predicted - obs.aoa_deg) ** 2

    best = int(np.argmin(cost))
    i, j = np.unravel_index(best, cost.shape)
    return LocalizationResult(position=(float(xs[i]), float(ys[j])), cost=float(cost[i, j]))


# ---------------------------------------------------------------------------
# Degraded-mode localization
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class DroppedAp:
    """One AP excluded from a fix, with the reason it was dropped."""

    name: str
    reason: str

    def to_dict(self) -> dict:
        return {"name": self.name, "reason": self.reason}


#: Angular-consistency scale (degrees) for the confidence score: a fix
#: whose RSSI-weighted RMS AoA deviation reaches this is trusted half
#: as much as a perfectly consistent one.
_CONFIDENCE_ANGLE_SCALE_DEG = 10.0


@dataclass(frozen=True)
class DegradedResult:
    """A localization fix that survived AP loss — data, not an exception.

    Attributes
    ----------
    position / cost:
        As in :class:`LocalizationResult` (Eq. 19 on the survivors,
        with the RSSI weights renormalized over them).
    confidence:
        A score in (0, 1]: the surviving-AP fraction times an
        angular-consistency factor (how well the survivors' AoAs agree
        at the optimum).  A full-quorum, self-consistent fix scores
        near 1; losing APs or disagreeing survivors pull it down.
    used_aps / dropped_aps:
        Which APs contributed and which were excluded (with reasons).
    quorum:
        The minimum surviving-AP count this fix was required to meet.
    degraded:
        ``True`` when any AP was dropped.
    """

    position: tuple[float, float]
    cost: float
    confidence: float
    used_aps: tuple[str, ...]
    dropped_aps: tuple[DroppedAp, ...]
    quorum: int
    degraded: bool

    def error_to(self, true_position: tuple[float, float]) -> float:
        """Euclidean localization error in meters."""
        dx = self.position[0] - true_position[0]
        dy = self.position[1] - true_position[1]
        return float(np.hypot(dx, dy))

    def to_dict(self) -> dict:
        return {
            "position": [self.position[0], self.position[1]],
            "cost": self.cost,
            "confidence": self.confidence,
            "used_aps": list(self.used_aps),
            "dropped_aps": [ap.to_dict() for ap in self.dropped_aps],
            "quorum": self.quorum,
            "degraded": self.degraded,
        }


def localize_robust(
    observations: list[ApObservation],
    room: Room,
    *,
    dropped: list[DroppedAp] | tuple[DroppedAp, ...] = (),
    min_quorum: int = 2,
    resolution_m: float = 0.1,
) -> DegradedResult:
    """Eq. 19 over the surviving APs, returning a scored fix.

    ``observations`` holds the APs that survived (outages, validation
    rejections and solver failures already removed — ``dropped``
    documents those).  RSSI weights renormalize over the survivors
    automatically, so the strongest remaining links dominate exactly as
    in the full-quorum fix.

    Raises
    ------
    QuorumError
        When fewer than ``min_quorum`` observations remain (and never
        otherwise — below-quorum is the *only* condition degraded-mode
        localization treats as fatal).
    """
    if min_quorum < 2:
        raise ConfigurationError(f"min_quorum must be >= 2, got {min_quorum}")
    dropped = tuple(dropped)
    n_total = len(observations) + len(dropped)
    if len(observations) < min_quorum:
        reasons = ", ".join(f"{ap.name}: {ap.reason}" for ap in dropped) or "none dropped"
        raise QuorumError(
            f"{len(observations)} of {n_total} APs survived, below quorum "
            f"{min_quorum} ({reasons})"
        )
    located = localize_weighted_aoa(observations, room, resolution_m=resolution_m)
    survival = len(observations) / n_total if n_total else 1.0
    # located.cost is the RSSI-weighted mean squared AoA deviation
    # (weights sum to 1), so its square root is an RMS angle in degrees.
    consistency = 1.0 / (1.0 + np.sqrt(max(located.cost, 0.0)) / _CONFIDENCE_ANGLE_SCALE_DEG)
    confidence = float(np.clip(survival * consistency, 0.0, 1.0))
    return DegradedResult(
        position=located.position,
        cost=located.cost,
        confidence=confidence,
        used_aps=tuple(obs.access_point.name for obs in observations),
        dropped_aps=dropped,
        quorum=min_quorum,
        degraded=bool(dropped),
    )
