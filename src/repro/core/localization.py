"""Multi-AP localization (paper §III-D, Eq. 19).

Given one direct-path AoA estimate per AP, ROArray searches a 10 cm
candidate grid over the room and picks the location minimizing the
RSSI-weighted squared AoA deviation

    min_p  Σᵢ Rᵢ · (ϕᵢ(p) − ϕ̂ᵢ)²

where ``ϕᵢ(p)`` is the angle AP *i* would see for a client at ``p``.
RSSI enters as a *relative* weight — stronger links are trusted more —
so we map dBm to linear received power and normalize; any monotone map
preserves the paper's intent.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.channel.geometry import AccessPoint, Room
from repro.exceptions import ConfigurationError


@dataclass(frozen=True)
class ApObservation:
    """One AP's contribution to localization."""

    access_point: AccessPoint
    aoa_deg: float
    rssi_dbm: float = -50.0

    def __post_init__(self) -> None:
        if not 0.0 <= self.aoa_deg <= 180.0:
            raise ConfigurationError(f"aoa_deg must be in [0, 180], got {self.aoa_deg}")


@dataclass(frozen=True)
class LocalizationResult:
    """The located position and the residual cost at the optimum."""

    position: tuple[float, float]
    cost: float

    def error_to(self, true_position: tuple[float, float]) -> float:
        """Euclidean localization error in meters."""
        dx = self.position[0] - true_position[0]
        dy = self.position[1] - true_position[1]
        return float(np.hypot(dx, dy))


def rssi_weights(rssi_dbm: np.ndarray) -> np.ndarray:
    """Normalized linear-power weights from dBm RSSIs.

    The strongest AP gets the largest weight; weights sum to 1.  RSSIs
    are first clipped to a 30 dB dynamic range below the best link so a
    single deeply faded AP cannot be assigned a numerically zero weight.
    """
    rssi_dbm = np.asarray(rssi_dbm, dtype=float)
    if rssi_dbm.size == 0:
        raise ConfigurationError("need at least one RSSI")
    clipped = np.maximum(rssi_dbm, rssi_dbm.max() - 30.0)
    linear = 10.0 ** (clipped / 10.0)
    return linear / linear.sum()


def predicted_aoa_grid(
    access_point: AccessPoint, xs: np.ndarray, ys: np.ndarray
) -> np.ndarray:
    """AoA (degrees) AP would observe for a client at each (x, y) grid cell.

    Returns an array of shape ``(len(xs), len(ys))``.
    """
    gx, gy = np.meshgrid(xs, ys, indexing="ij")
    dx = gx - access_point.position[0]
    dy = gy - access_point.position[1]
    distance = np.hypot(dx, dy)
    distance = np.where(distance == 0, np.finfo(float).eps, distance)
    axis = access_point.axis_unit
    cosine = np.clip((dx * axis[0] + dy * axis[1]) / distance, -1.0, 1.0)
    return np.rad2deg(np.arccos(cosine))


def localize_weighted_aoa(
    observations: list[ApObservation],
    room: Room,
    *,
    resolution_m: float = 0.1,
) -> LocalizationResult:
    """Paper Eq. 19: weighted AoA grid search over the room.

    Parameters
    ----------
    observations:
        Direct-path AoA + RSSI per AP; at least two APs are required for
        an unambiguous fix with a 1-D angle each.
    resolution_m:
        Candidate grid pitch (the paper uses 10 cm).
    """
    if len(observations) < 2:
        raise ConfigurationError(f"localization needs >= 2 APs, got {len(observations)}")
    if resolution_m <= 0:
        raise ConfigurationError(f"resolution must be positive, got {resolution_m}")

    xs = np.arange(0.0, room.width + resolution_m / 2, resolution_m)
    ys = np.arange(0.0, room.depth + resolution_m / 2, resolution_m)

    weights = rssi_weights(np.array([obs.rssi_dbm for obs in observations]))
    cost = np.zeros((xs.size, ys.size))
    for weight, obs in zip(weights, observations):
        predicted = predicted_aoa_grid(obs.access_point, xs, ys)
        cost += weight * (predicted - obs.aoa_deg) ** 2

    best = int(np.argmin(cost))
    i, j = np.unravel_index(best, cost.shape)
    return LocalizationResult(position=(float(xs[i]), float(ys[j])), cost=float(cost[i, j]))
