"""Multi-AP localization (paper §III-D, Eq. 19).

Given one direct-path AoA estimate per AP, ROArray searches a 10 cm
candidate grid over the room and picks the location minimizing the
RSSI-weighted squared AoA deviation

    min_p  Σᵢ Rᵢ · (ϕᵢ(p) − ϕ̂ᵢ)²

where ``ϕᵢ(p)`` is the angle AP *i* would see for a client at ``p``.
RSSI enters as a *relative* weight — stronger links are trusted more —
so we map dBm to linear received power and normalize; any monotone map
preserves the paper's intent.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Mapping

import numpy as np

from repro.channel.geometry import AccessPoint, Room
from repro.exceptions import ConfigurationError, QuorumError


@dataclass(frozen=True)
class ApObservation:
    """One AP's contribution to localization."""

    access_point: AccessPoint
    aoa_deg: float
    rssi_dbm: float = -50.0

    def __post_init__(self) -> None:
        if not 0.0 <= self.aoa_deg <= 180.0:
            raise ConfigurationError(f"aoa_deg must be in [0, 180], got {self.aoa_deg}")


@dataclass(frozen=True)
class LocalizationResult:
    """The located position and the residual cost at the optimum."""

    position: tuple[float, float]
    cost: float

    def error_to(self, true_position: tuple[float, float]) -> float:
        """Euclidean localization error in meters."""
        dx = self.position[0] - true_position[0]
        dy = self.position[1] - true_position[1]
        return float(np.hypot(dx, dy))


def rssi_weights(rssi_dbm: np.ndarray) -> np.ndarray:
    """Normalized linear-power weights from dBm RSSIs.

    The strongest AP gets the largest weight; weights sum to 1.  RSSIs
    are first clipped to a 30 dB dynamic range below the best link so a
    single deeply faded AP cannot be assigned a numerically zero weight.
    """
    rssi_dbm = np.asarray(rssi_dbm, dtype=float)
    if rssi_dbm.size == 0:
        raise ConfigurationError("need at least one RSSI")
    clipped = np.maximum(rssi_dbm, rssi_dbm.max() - 30.0)
    linear = 10.0 ** (clipped / 10.0)
    return linear / linear.sum()


def predicted_aoa_grid(
    access_point: AccessPoint, xs: np.ndarray, ys: np.ndarray
) -> np.ndarray:
    """AoA (degrees) AP would observe for a client at each (x, y) grid cell.

    Returns an array of shape ``(len(xs), len(ys))``.
    """
    gx, gy = np.meshgrid(xs, ys, indexing="ij")
    dx = gx - access_point.position[0]
    dy = gy - access_point.position[1]
    distance = np.hypot(dx, dy)
    distance = np.where(distance == 0, np.finfo(float).eps, distance)
    axis = access_point.axis_unit
    cosine = np.clip((dx * axis[0] + dy * axis[1]) / distance, -1.0, 1.0)
    return np.rad2deg(np.arccos(cosine))


def localize_weighted_aoa(
    observations: list[ApObservation],
    room: Room,
    *,
    resolution_m: float = 0.1,
    weights: np.ndarray | list[float] | None = None,
) -> LocalizationResult:
    """Paper Eq. 19: weighted AoA grid search over the room.

    Parameters
    ----------
    observations:
        Direct-path AoA + RSSI per AP; at least two APs are required for
        an unambiguous fix with a 1-D angle each.
    resolution_m:
        Candidate grid pitch (the paper uses 10 cm).
    weights:
        Optional per-observation weights replacing the default RSSI
        weighting — non-negative with a positive sum, normalized
        internally.  :func:`localize_consensus` passes RSSI × trust
        products through here.
    """
    if len(observations) < 2:
        raise ConfigurationError(f"localization needs >= 2 APs, got {len(observations)}")
    if resolution_m <= 0:
        raise ConfigurationError(f"resolution must be positive, got {resolution_m}")

    xs = np.arange(0.0, room.width + resolution_m / 2, resolution_m)
    ys = np.arange(0.0, room.depth + resolution_m / 2, resolution_m)

    if weights is None:
        weights = rssi_weights(np.array([obs.rssi_dbm for obs in observations]))
    else:
        weights = np.asarray(weights, dtype=float)
        if weights.shape != (len(observations),):
            raise ConfigurationError(
                f"weights must have shape ({len(observations)},), got {weights.shape}"
            )
        if np.any(weights < 0) or not np.all(np.isfinite(weights)):
            raise ConfigurationError("weights must be finite and non-negative")
        total = weights.sum()
        if total <= 0:
            raise ConfigurationError("weights must have a positive sum")
        weights = weights / total
    cost = np.zeros((xs.size, ys.size))
    for weight, obs in zip(weights, observations):
        predicted = predicted_aoa_grid(obs.access_point, xs, ys)
        cost += weight * (predicted - obs.aoa_deg) ** 2

    best = int(np.argmin(cost))
    i, j = np.unravel_index(best, cost.shape)
    return LocalizationResult(position=(float(xs[i]), float(ys[j])), cost=float(cost[i, j]))


# ---------------------------------------------------------------------------
# Degraded-mode localization
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class DroppedAp:
    """One AP excluded from a fix, with the reason it was dropped."""

    name: str
    reason: str

    def to_dict(self) -> dict:
        return {"name": self.name, "reason": self.reason}


#: Angular-consistency scale (degrees) for the confidence score: a fix
#: whose RSSI-weighted RMS AoA deviation reaches this is trusted half
#: as much as a perfectly consistent one.
_CONFIDENCE_ANGLE_SCALE_DEG = 10.0


@dataclass(frozen=True)
class DegradedResult:
    """A localization fix that survived AP loss — data, not an exception.

    Attributes
    ----------
    position / cost:
        As in :class:`LocalizationResult` (Eq. 19 on the survivors,
        with the RSSI weights renormalized over them).
    confidence:
        A score in (0, 1]: the surviving-AP fraction times an
        angular-consistency factor (how well the survivors' AoAs agree
        at the optimum).  A full-quorum, self-consistent fix scores
        near 1; losing APs or disagreeing survivors pull it down.
    used_aps / dropped_aps:
        Which APs contributed and which were excluded (with reasons).
    quorum:
        The minimum surviving-AP count this fix was required to meet.
    degraded:
        ``True`` when any AP was dropped.
    """

    position: tuple[float, float]
    cost: float
    confidence: float
    used_aps: tuple[str, ...]
    dropped_aps: tuple[DroppedAp, ...]
    quorum: int
    degraded: bool

    def error_to(self, true_position: tuple[float, float]) -> float:
        """Euclidean localization error in meters."""
        dx = self.position[0] - true_position[0]
        dy = self.position[1] - true_position[1]
        return float(np.hypot(dx, dy))

    def to_dict(self) -> dict:
        return {
            "position": [self.position[0], self.position[1]],
            "cost": self.cost,
            "confidence": self.confidence,
            "used_aps": list(self.used_aps),
            "dropped_aps": [ap.to_dict() for ap in self.dropped_aps],
            "quorum": self.quorum,
            "degraded": self.degraded,
        }


def localize_robust(
    observations: list[ApObservation],
    room: Room,
    *,
    dropped: list[DroppedAp] | tuple[DroppedAp, ...] = (),
    min_quorum: int = 2,
    resolution_m: float = 0.1,
    trust: Mapping[str, float] | None = None,
) -> DegradedResult:
    """Eq. 19 over the surviving APs, returning a scored fix.

    ``observations`` holds the APs that survived (outages, validation
    rejections and solver failures already removed — ``dropped``
    documents those).  RSSI weights renormalize over the survivors
    automatically, so the strongest remaining links dominate exactly as
    in the full-quorum fix.

    ``trust`` optionally scales each AP's RSSI weight by a per-AP trust
    factor in [0, 1] (APs missing from the mapping keep factor 1).  This
    is the soft counterpart of ``dropped``: a drop removes an AP from
    the fix entirely and is documented with a reason, while a low trust
    keeps the AP in quorum but shrinks its influence — consensus
    localization (:func:`localize_consensus`) computes these factors
    from NLOS/corruption evidence.

    Raises
    ------
    QuorumError
        When fewer than ``min_quorum`` observations remain (and never
        otherwise — below-quorum is the *only* condition degraded-mode
        localization treats as fatal).
    """
    if min_quorum < 2:
        raise ConfigurationError(f"min_quorum must be >= 2, got {min_quorum}")
    dropped = tuple(dropped)
    n_total = len(observations) + len(dropped)
    if len(observations) < min_quorum:
        reasons = ", ".join(f"{ap.name}: {ap.reason}" for ap in dropped) or "none dropped"
        raise QuorumError(
            f"{len(observations)} of {n_total} APs survived, below quorum "
            f"{min_quorum} ({reasons})"
        )
    weights = None
    if trust is not None:
        factors = np.array(
            [float(trust.get(obs.access_point.name, 1.0)) for obs in observations]
        )
        if np.any(factors < 0) or not np.all(np.isfinite(factors)):
            raise ConfigurationError("trust factors must be finite and non-negative")
        base = rssi_weights(np.array([obs.rssi_dbm for obs in observations]))
        weights = base * factors
        if weights.sum() <= 0:
            # Every AP fully distrusted: fall back to plain RSSI weights
            # rather than failing — quorum, not trust, is the fatal line.
            weights = base
    located = localize_weighted_aoa(
        observations, room, resolution_m=resolution_m, weights=weights
    )
    survival = len(observations) / n_total if n_total else 1.0
    # located.cost is the RSSI-weighted mean squared AoA deviation
    # (weights sum to 1), so its square root is an RMS angle in degrees.
    consistency = 1.0 / (1.0 + np.sqrt(max(located.cost, 0.0)) / _CONFIDENCE_ANGLE_SCALE_DEG)
    confidence = float(np.clip(survival * consistency, 0.0, 1.0))
    return DegradedResult(
        position=located.position,
        cost=located.cost,
        confidence=confidence,
        used_aps=tuple(obs.access_point.name for obs in observations),
        dropped_aps=dropped,
        quorum=min_quorum,
        degraded=bool(dropped),
    )


# ---------------------------------------------------------------------------
# NLOS/corruption-aware consensus localization
# ---------------------------------------------------------------------------


#: Trust below this flags an AP as NLOS/corrupted in consensus fixes.
TRUST_THRESHOLD = 0.5

#: Consensus-disagreement scale (degrees): an AP whose AoA sits this far
#: from the consensus prediction loses ~63% of its trust (e^{-1}).
_TRUST_ANGLE_SCALE_DEG = 10.0

#: Outlier-fraction slack: solver-attributed corruption energy below
#: this fraction of the measurement is treated as noise, not evidence.
_OUTLIER_FRACTION_FLOOR = 0.1
_OUTLIER_FRACTION_GAIN = 2.0

#: Peak-dispersion slack: spectra keep this much energy outside the
#: direct-path lobe even in clean multipath, so only the excess counts.
_DISPERSION_FLOOR = 0.35
_DISPERSION_GAIN = 2.0


def peak_dispersion(
    angles_deg: np.ndarray, power: np.ndarray, *, window_deg: float = 10.0
) -> float:
    """Fraction of spectrum energy outside ±``window_deg`` of the peak.

    Near zero for a clean single-lobe spectrum; grows toward one as
    multipath/NLOS smears energy across the angle grid.  An identically
    zero spectrum is maximally uninformative and scores 1.
    """
    angles_deg = np.asarray(angles_deg, dtype=float)
    power = np.asarray(power, dtype=float)
    if angles_deg.shape != power.shape or angles_deg.ndim != 1:
        raise ConfigurationError(
            f"angle grid {angles_deg.shape} and power {power.shape} must be equal 1-D shapes"
        )
    if window_deg <= 0:
        raise ConfigurationError(f"window_deg must be positive, got {window_deg}")
    total = float(power.sum())
    if total <= 0:
        return 1.0
    peak_angle = angles_deg[int(np.argmax(power))]
    inside = float(power[np.abs(angles_deg - peak_angle) <= window_deg].sum())
    return float(np.clip(1.0 - inside / total, 0.0, 1.0))


@dataclass(frozen=True)
class ApEvidence:
    """Per-AP solver-side corruption evidence feeding trust scoring.

    Attributes
    ----------
    outlier_fraction:
        ``‖e‖²/‖y‖²`` from the outlier-augmented solve
        (:class:`~repro.optim.robust.RobustSolverResult`); near zero on
        clean links.
    peak_dispersion:
        Angle-spectrum energy spread from :func:`peak_dispersion`;
        NLOS-smeared spectra score high.
    """

    outlier_fraction: float = 0.0
    peak_dispersion: float = 0.0

    def __post_init__(self) -> None:
        for label, value in (
            ("outlier_fraction", self.outlier_fraction),
            ("peak_dispersion", self.peak_dispersion),
        ):
            if not np.isfinite(value) or value < 0:
                raise ConfigurationError(f"{label} must be finite and >= 0, got {value}")

    def to_dict(self) -> dict:
        return {
            "outlier_fraction": float(self.outlier_fraction),
            "peak_dispersion": float(self.peak_dispersion),
        }


@dataclass(frozen=True)
class ApTrustScore:
    """Fused trust verdict for one AP against a consensus fix."""

    name: str
    trust: float
    consensus_residual_deg: float
    outlier_fraction: float
    peak_dispersion: float

    @property
    def trusted(self) -> bool:
        return self.trust >= TRUST_THRESHOLD

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "trust": self.trust,
            "consensus_residual_deg": self.consensus_residual_deg,
            "outlier_fraction": self.outlier_fraction,
            "peak_dispersion": self.peak_dispersion,
            "trusted": self.trusted,
        }


def score_ap_trust(
    consensus_residual_deg: float, evidence: ApEvidence | None = None
) -> float:
    """Fuse consensus disagreement with solver evidence into trust ∈ (0, 1].

    Three multiplicative factors, each 1 when its signal is clean:

    * ``exp(−(r/10°)²)`` — AoA-vs-consensus disagreement (the dominant
      signal; crosses :data:`TRUST_THRESHOLD` near 8.3°);
    * ``exp(−2·max(0, outlier_fraction − 0.1))`` — corruption energy the
      augmented solver pulled out of the measurement;
    * ``exp(−2·max(0, dispersion − 0.35))`` — NLOS-style spectrum smear.
    """
    if evidence is None:
        evidence = ApEvidence()
    residual = abs(float(consensus_residual_deg)) / _TRUST_ANGLE_SCALE_DEG
    agreement = np.exp(-(residual**2))
    outlier = np.exp(
        -_OUTLIER_FRACTION_GAIN
        * max(0.0, evidence.outlier_fraction - _OUTLIER_FRACTION_FLOOR)
    )
    dispersion = np.exp(
        -_DISPERSION_GAIN * max(0.0, evidence.peak_dispersion - _DISPERSION_FLOOR)
    )
    return float(np.clip(agreement * outlier * dispersion, 0.0, 1.0))


@dataclass(frozen=True)
class ConsensusResult:
    """A consensus fix with per-AP trust diagnostics.

    Field-compatible with :class:`DegradedResult` (position, cost,
    confidence, used/dropped APs, quorum, degraded) plus the
    contamination diagnostics consensus localization adds.

    Attributes
    ----------
    trust_scores:
        One :class:`ApTrustScore` per *input* observation (including APs
        excluded from the final fix), in input order.
    contaminated:
        ``True`` when any AP scored below :data:`TRUST_THRESHOLD` or
        fewer than three APs (all of them, with only two) mutually
        supported any hypothesis.
    consensus_rms_deg:
        Unweighted RMS AoA deviation of the winning hypothesis' inlier
        set at that hypothesis' optimum — the RANSAC consistency the
        fix was built on.
    n_subsets_searched:
        How many minimal-sample hypotheses (AP pairs) the search
        evaluated.
    """

    position: tuple[float, float]
    cost: float
    confidence: float
    used_aps: tuple[str, ...]
    dropped_aps: tuple[DroppedAp, ...]
    quorum: int
    degraded: bool
    trust_scores: tuple[ApTrustScore, ...]
    contaminated: bool
    consensus_rms_deg: float
    n_subsets_searched: int

    def error_to(self, true_position: tuple[float, float]) -> float:
        """Euclidean localization error in meters."""
        dx = self.position[0] - true_position[0]
        dy = self.position[1] - true_position[1]
        return float(np.hypot(dx, dy))

    def trust_for(self, name: str) -> float:
        for score in self.trust_scores:
            if score.name == name:
                return score.trust
        raise KeyError(name)

    def to_dict(self) -> dict:
        return {
            "position": [self.position[0], self.position[1]],
            "cost": self.cost,
            "confidence": self.confidence,
            "used_aps": list(self.used_aps),
            "dropped_aps": [ap.to_dict() for ap in self.dropped_aps],
            "quorum": self.quorum,
            "degraded": self.degraded,
            "trust_scores": [score.to_dict() for score in self.trust_scores],
            "contaminated": self.contaminated,
            "consensus_rms_deg": self.consensus_rms_deg,
            "n_subsets_searched": self.n_subsets_searched,
        }


def localize_consensus(
    observations: list[ApObservation],
    room: Room,
    *,
    evidence: Mapping[str, ApEvidence] | None = None,
    dropped: list[DroppedAp] | tuple[DroppedAp, ...] = (),
    min_quorum: int = 2,
    resolution_m: float = 0.1,
    inlier_rms_deg: float = 8.0,
    trust_threshold: float = TRUST_THRESHOLD,
) -> ConsensusResult:
    """RANSAC-style consensus fix that survives NLOS-biased APs.

    A single NLOS AP reports a *plausible* AoA — shifted, not garbage —
    so the RSSI-weighted fix absorbs the bias instead of rejecting it.
    Consensus localization searches AP subsets for mutual consistency,
    scores every AP's trust against the fix its peers agree on (fusing
    disagreement with the solver evidence in ``evidence``), and
    re-weights the final fix by RSSI × trust.

    Procedure (fully deterministic — hypotheses are enumerated, not
    sampled):

    1. *Hypothesis search*: every AP pair is a minimal sample — two
       bearing rays pin a position.  Each pair's Eq. 19 optimum is
       scored by *support*: how many APs (pair included) land within
       ``inlier_rms_deg`` of it.  The best-supported hypothesis wins
       (ties: smaller inlier RMS, then enumeration order).  Scoring
       support against minimal fits is what defeats leverage: a fix
       computed *with* the biased AP absorbs even a 15° bias into a few
       degrees of residual spread, but a biased AP can only win support
       by dragging a two-ray intersection somewhere the honest majority
       happens to agree with — which an 8° gate makes geometrically
       implausible.
    2. *Detection*: refit over the winning inlier set and score every
       AP's :func:`score_ap_trust` against that fix, fusing the
       residual with the solver evidence in ``evidence``.
    3. *Restoration + final fix*: refit with weights RSSI × trust over
       the trusted APs (the inlier set when fewer than ``min_quorum``
       remain), re-score everyone against that fix, and iterate the
       selection to a fixed point — an honest AP the gate clipped
       recovers, the biased AP stays excluded.

    APs excluded from the final fix are documented as ``dropped_aps``
    with an ``untrusted`` reason alongside any upstream ``dropped``
    (hard failures: outages, validation, solver errors).

    Raises
    ------
    QuorumError
        When fewer than ``min_quorum`` observations remain.
    """
    if min_quorum < 2:
        raise ConfigurationError(f"min_quorum must be >= 2, got {min_quorum}")
    if inlier_rms_deg <= 0:
        raise ConfigurationError(f"inlier_rms_deg must be positive, got {inlier_rms_deg}")
    dropped = tuple(dropped)
    n_total = len(observations) + len(dropped)
    if len(observations) < min_quorum:
        reasons = ", ".join(f"{ap.name}: {ap.reason}" for ap in dropped) or "none dropped"
        raise QuorumError(
            f"{len(observations)} of {n_total} APs survived, below quorum "
            f"{min_quorum} ({reasons})"
        )
    evidence = dict(evidence or {})

    xs = np.arange(0.0, room.width + resolution_m / 2, resolution_m)
    ys = np.arange(0.0, room.depth + resolution_m / 2, resolution_m)
    # Each AP's squared AoA deviation over the whole candidate grid,
    # computed once; every subset cost is then a cheap weighted sum.
    squared_dev = [
        (predicted_aoa_grid(obs.access_point, xs, ys) - obs.aoa_deg) ** 2
        for obs in observations
    ]
    base_weights = rssi_weights(np.array([obs.rssi_dbm for obs in observations]))

    n = len(observations)
    evidence_per_ap = [evidence.get(obs.access_point.name) for obs in observations]

    def trust_from_residuals(residuals: np.ndarray) -> np.ndarray:
        return np.array(
            [
                score_ap_trust(residuals[index], evidence_per_ap[index])
                for index in range(n)
            ]
        )

    def refit(indices: list[int], trust: np.ndarray) -> tuple[tuple[int, int], float]:
        weights = np.array(
            [base_weights[index] * max(trust[index], 1e-12) for index in indices]
        )
        weights = weights / weights.sum()
        cost = np.zeros((xs.size, ys.size))
        for weight, index in zip(weights, indices):
            cost += weight * squared_dev[index]
        i, j = np.unravel_index(int(np.argmin(cost)), cost.shape)
        return (int(i), int(j)), float(cost[i, j])

    def residuals_at(cell: tuple[int, int]) -> np.ndarray:
        return np.array(
            [float(np.sqrt(squared_dev[index][cell])) for index in range(n)]
        )

    # Stage 1 — hypothesis search over minimal samples.  Two bearing
    # rays intersect at one point, so every AP pair proposes a fix.
    # Judging each AP against fixes it took no part in is what defeats
    # leverage: the full-set grid optimum absorbs even a 15° single-AP
    # bias into a few degrees of residual spread across all APs, hiding
    # the culprit.  A hypothesis' support is the sum of its inliers'
    # evidence priors (trust at zero residual): an AP whose own trace
    # already shows corruption (outlier energy, spectrum smear) cannot
    # recruit a coalition on equal terms with clean APs — the decisive
    # tie-breaker when honest APs split across the gate.  The gate is
    # deliberately *hard*: graded (MSAC-style) scoring was tried and
    # re-admits leverage, because a compromise fix that pulls the
    # corrupted AP's residual below saturation can beat the honest fix
    # on total cost.
    ones = np.ones(n)
    priors = np.array(
        [score_ap_trust(0.0, evidence_per_ap[index]) for index in range(n)]
    )
    n_searched = 0
    best_inliers: list[int] | None = None
    best_support = -1.0
    best_rms = float("inf")
    for pair in itertools.combinations(range(n), 2):
        cell, _ = refit(list(pair), ones)
        residuals = residuals_at(cell)
        inliers = [index for index in range(n) if residuals[index] <= inlier_rms_deg]
        support = float(priors[inliers].sum())
        rms = (
            float(np.sqrt(np.mean(residuals[inliers] ** 2)))
            if inliers
            else float("inf")
        )
        n_searched += 1
        if best_inliers is None or (support, -rms) > (best_support, -best_rms):
            best_inliers, best_support, best_rms = inliers, support, rms
    if not best_inliers:
        # Not even a pair agrees with its own fit (intersections forced
        # outside the room): degrade to the full set instead of failing.
        best_inliers = list(range(n))
        best_rms = float("inf")
    chosen = best_inliers
    support = len(chosen)
    # Fewer than three mutually consistent APs means the "consensus" is
    # just a pair agreeing with itself — with more APs available, that
    # is contamination, not consensus.
    no_consensus = support < min(n, min_quorum + 1)

    # Stage 2 — detection: score everyone against the fix the inlier
    # set agrees on, fusing residuals with the solver evidence.
    cell, final_cost = refit(chosen, ones)
    final_residuals = residuals_at(cell)
    trust = trust_from_residuals(final_residuals)

    # Stage 3 — restoration and the final fix: refit over the trusted
    # set and re-score everyone against that fix, iterating the
    # selection to a fixed point.  An honest AP the inlier gate clipped
    # sits close to the trusted-set fix and recovers; a biased AP's
    # full residual keeps it excluded.
    selection: list[int] | None = None
    keep = list(chosen)
    for _ in range(4):
        keep = [index for index in range(n) if trust[index] >= trust_threshold]
        if len(keep) < min_quorum:
            keep = list(chosen)
        cell, final_cost = refit(keep, trust)
        final_residuals = residuals_at(cell)
        trust = trust_from_residuals(final_residuals)
        if keep == selection:
            break
        selection = keep

    final_indices = keep
    trust_scores = tuple(
        ApTrustScore(
            name=observations[index].access_point.name,
            trust=float(trust[index]),
            consensus_residual_deg=float(final_residuals[index]),
            outlier_fraction=(
                evidence_per_ap[index].outlier_fraction if evidence_per_ap[index] else 0.0
            ),
            peak_dispersion=(
                evidence_per_ap[index].peak_dispersion if evidence_per_ap[index] else 0.0
            ),
        )
        for index in range(n)
    )
    final_obs = [observations[index] for index in final_indices]
    located = LocalizationResult(
        position=(float(xs[cell[0]]), float(ys[cell[1]])), cost=final_cost
    )

    excluded = [
        DroppedAp(
            name=trust_scores[index].name,
            reason=f"untrusted (trust={trust_scores[index].trust:.2f})",
        )
        for index in range(n)
        if index not in final_indices
    ]
    all_dropped = dropped + tuple(excluded)
    used = tuple(obs.access_point.name for obs in final_obs)
    survival = len(final_obs) / n_total if n_total else 1.0
    consistency = 1.0 / (
        1.0 + np.sqrt(max(located.cost, 0.0)) / _CONFIDENCE_ANGLE_SCALE_DEG
    )
    mean_trust = float(np.mean([trust_scores[index].trust for index in final_indices]))
    confidence = float(np.clip(survival * consistency * mean_trust, 0.0, 1.0))
    contaminated = no_consensus or any(not score.trusted for score in trust_scores)
    return ConsensusResult(
        position=located.position,
        cost=located.cost,
        confidence=confidence,
        used_aps=used,
        dropped_aps=all_dropped,
        quorum=min_quorum,
        degraded=bool(all_dropped),
        trust_scores=trust_scores,
        contaminated=contaminated,
        consensus_rms_deg=best_rms,
        n_subsets_searched=n_searched,
    )
