"""Phase autocalibration (paper §III-D, after Phaser [13]).

Every channel (re)tune leaves each RF chain with an unknown constant
phase offset; uncorrected, the inter-antenna phase that AoA estimation
relies on is scrambled.  Phaser's autocalibration searches candidate
offsets for the spectrum that is most *plausible* — sharply
concentrated and, when a reference transmitter at a known bearing is
available, peaked at that bearing.  The paper's twist (Fig. 8b) is to
drive that search with ROArray's sparse-recovery spectrum instead of
MUSIC's: a sharper objective landscape finds better offsets.

The search is coordinate descent over the offsets of antennas 1..M−1
(antenna 0 is the reference), coarse-to-fine, with the spectrum
objective evaluated on SVD-compressed snapshots so each candidate costs
one small solve.
"""

from __future__ import annotations

from typing import Callable, Literal

import numpy as np

from repro.baselines.music import forward_backward_average, music_pseudospectrum, sample_covariance
from repro.channel.array import UniformLinearArray
from repro.core.grids import AngleGrid
from repro.core.steering import angle_steering_dictionary
from repro.exceptions import CalibrationError
from repro.optim import solve_mmv_fista
from repro.optim.linalg import estimate_lipschitz
from repro.optim.tuning import residual_kappa
from repro.spectral.spectrum import AngleSpectrum

EstimatorName = Literal["roarray", "music"]


def apply_phase_calibration(csi: np.ndarray, offsets_rad: np.ndarray) -> np.ndarray:
    """Remove per-antenna phase offsets from a packet batch.

    ``csi`` is ``(P, M, L)`` or ``(M, L)``; ``offsets_rad`` has length M
    and holds the offsets to *remove* (i.e. the estimated hardware
    offsets).
    """
    csi = np.asarray(csi, dtype=complex)
    offsets_rad = np.asarray(offsets_rad, dtype=float)
    if csi.ndim == 2:
        return csi * np.exp(-1j * offsets_rad)[:, None]
    if csi.ndim == 3:
        return csi * np.exp(-1j * offsets_rad)[None, :, None]
    raise CalibrationError(f"csi must be 2-D or 3-D, got shape {csi.shape}")


def _snapshots_from_batch(csi: np.ndarray, max_columns: int = 6) -> np.ndarray:
    """Collapse a (P, M, L) batch into an (M, r) snapshot matrix via SVD."""
    if csi.ndim == 2:
        csi = csi[None]
    m = csi.shape[1]
    snapshots = np.moveaxis(csi, 1, 0).reshape(m, -1)  # (M, P·L)
    if snapshots.shape[1] <= max_columns:
        return snapshots
    _, _, vh = np.linalg.svd(snapshots, full_matrices=False)
    return snapshots @ vh[: min(max_columns, m)].conj().T


def _roarray_spectrum_factory(
    array: UniformLinearArray, grid: AngleGrid
) -> Callable[[np.ndarray], AngleSpectrum]:
    dictionary = angle_steering_dictionary(array, grid)
    lipschitz = estimate_lipschitz(dictionary)

    def spectrum(snapshots: np.ndarray) -> AngleSpectrum:
        kappa = residual_kappa(dictionary, snapshots[:, 0], fraction=0.1)
        result = solve_mmv_fista(
            dictionary, snapshots, kappa, max_iterations=120, lipschitz=lipschitz
        )
        return AngleSpectrum(grid.angles_deg, np.linalg.norm(result.x, axis=1))

    return spectrum


def _music_spectrum_factory(
    array: UniformLinearArray, grid: AngleGrid
) -> Callable[[np.ndarray], AngleSpectrum]:
    dictionary = angle_steering_dictionary(array, grid)
    n_sources = max(1, array.n_antennas - 1)

    def spectrum(snapshots: np.ndarray) -> AngleSpectrum:
        covariance = forward_backward_average(sample_covariance(snapshots))
        eigenvalues, eigenvectors = np.linalg.eigh(covariance)
        basis = eigenvectors[:, : array.n_antennas - n_sources]
        return AngleSpectrum(grid.angles_deg, music_pseudospectrum(basis, dictionary))

    return spectrum


def _objective(
    spectrum: AngleSpectrum, known_aoa_deg: float | None, bearing_weight: float
) -> float:
    """Higher is better.

    With a surveyed reference bearing, the score is the fraction of
    spectrum energy concentrated at (±1 cell around) that bearing —
    only the true offsets make the corrected snapshots coherently
    explainable by the reference steering vector, so this objective has
    no spurious optima from multipath, unlike raw sharpness.  Without a
    reference, fall back to spectrum sharpness (pure Phaser-style
    autocalibration).  A sharper spectrum estimator makes either score
    more discriminative — the Fig. 8b mechanism.
    """
    total = float(spectrum.power.sum())
    if known_aoa_deg is None or total == 0.0:
        return spectrum.sharpness()
    index = int(np.argmin(np.abs(spectrum.angles_deg - known_aoa_deg)))
    lo, hi = max(index - 1, 0), min(index + 2, spectrum.power.size)
    concentration = float(spectrum.power[lo:hi].sum()) / total
    return bearing_weight * concentration + spectrum.sharpness()


def calibrate_phase_offsets(
    csi: np.ndarray,
    array: UniformLinearArray,
    *,
    estimator: EstimatorName = "roarray",
    known_aoa_deg: float | None = None,
    grid: AngleGrid | None = None,
    coarse_steps: int = 16,
    refinement_rounds: int = 2,
    bearing_weight: float = 2.0,
) -> np.ndarray:
    """Estimate per-antenna phase offsets from a calibration batch.

    Parameters
    ----------
    csi:
        Packet batch ``(P, M, L)`` (or one matrix) from a stationary
        transmitter, recorded on the uncalibrated AP.
    estimator:
        ``"roarray"`` scores candidates with the sparse-recovery
        spectrum; ``"music"`` reproduces Phaser's original objective —
        the Fig. 8b comparison.
    known_aoa_deg:
        Bearing of the calibration transmitter, when surveyed; biases
        the objective toward spectra peaked there.
    coarse_steps:
        Number of offset candidates per coordinate sweep in the first
        round (spanning [−π, π)); each refinement round narrows the
        bracket ×4 around the incumbent.

    Returns
    -------
    numpy.ndarray
        Estimated offsets (radians), length M, first entry 0 — pass to
        :func:`apply_phase_calibration`.
    """
    csi = np.asarray(csi, dtype=complex)
    if csi.ndim == 2:
        csi = csi[None]
    if csi.ndim != 3:
        raise CalibrationError(f"csi must be (packets, antennas, subcarriers), got {csi.shape}")
    if csi.shape[1] != array.n_antennas:
        raise CalibrationError(
            f"csi has {csi.shape[1]} antennas but the array has {array.n_antennas}"
        )
    if coarse_steps < 4:
        raise CalibrationError(f"coarse_steps must be >= 4, got {coarse_steps}")

    grid = grid or AngleGrid()
    factory = _roarray_spectrum_factory if estimator == "roarray" else _music_spectrum_factory
    spectrum_of = factory(array, grid)

    offsets = np.zeros(array.n_antennas)

    def score(candidate_offsets: np.ndarray) -> float:
        corrected = apply_phase_calibration(csi, candidate_offsets)
        snapshots = _snapshots_from_batch(corrected)
        return _objective(spectrum_of(snapshots), known_aoa_deg, bearing_weight)

    best_score = score(offsets)

    # Coordinate descent.  Early rounds sweep the FULL circle for every
    # antenna: while other antennas are still uncorrected the score
    # landscape for this one is unreliable, so narrowing the bracket too
    # soon locks in a bad basin.  Only after two full-circle passes do
    # the brackets shrink around the incumbent.
    full_rounds = 2
    span = np.pi
    for round_index in range(full_rounds + refinement_rounds):
        if round_index >= full_rounds:
            span /= 4.0
        for antenna in range(1, array.n_antennas):
            candidates = offsets[antenna] + np.linspace(-span, span, coarse_steps, endpoint=False)
            for candidate in candidates:
                trial = offsets.copy()
                trial[antenna] = _wrap_phase(candidate)
                trial_score = score(trial)
                if trial_score > best_score:
                    best_score = trial_score
                    offsets = trial

    return offsets


def _wrap_phase(phi: float) -> float:
    """Wrap an angle to (−π, π]."""
    return float(np.angle(np.exp(1j * phi)))
