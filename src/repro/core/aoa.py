"""Sparse AoA estimation (paper §III-A, Eq. 11).

Casts the narrowband array equation ``y = S a`` into the grid-linearized
LASSO ``min ‖y − S̃ã‖₂² + κ‖ã‖₁`` and reads the AoA spectrum off the
recovered coefficient magnitudes.  Accepts either a single snapshot
(one subcarrier of one packet) or a snapshot matrix (e.g. all 30
subcarriers), in which case the joint-sparse MMV solver produces one
coherent spectrum instead of 30 independent ones.
"""

from __future__ import annotations

import numpy as np

from repro.channel.array import UniformLinearArray
from repro.core.grids import AngleGrid
from repro.core.steering import angle_steering_dictionary
from repro.exceptions import SolverError
from repro.obs import NULL_TRACER, ConvergenceTrace
from repro.optim import solve_lasso_fista, solve_mmv_fista
from repro.optim.linalg import estimate_lipschitz
from repro.optim.result import SolverResult
from repro.optim.tuning import mmv_residual_kappa, residual_kappa
from repro.spectral.spectrum import AngleSpectrum


def estimate_aoa_spectrum(
    snapshots: np.ndarray,
    array: UniformLinearArray,
    grid: AngleGrid | None = None,
    *,
    kappa: float | None = None,
    kappa_fraction: float = 0.05,
    max_iterations: int = 300,
    dictionary=None,
    lipschitz: float | None = None,
    x0: np.ndarray | None = None,
    tracer=NULL_TRACER,
    telemetry: ConvergenceTrace | None = None,
) -> tuple[AngleSpectrum, SolverResult]:
    """Sparse-recovery AoA spectrum from one or more array snapshots.

    Parameters
    ----------
    snapshots:
        Shape ``(M,)`` for a single snapshot or ``(M, N)`` for N
        snapshots (subcarriers and/or packets).
    grid:
        Angle grid; defaults to 1°-spaced [0°, 180°].
    kappa:
        Explicit sparsity weight; derived from ``kappa_fraction`` of the
        zero-solution gradient when omitted (robust without an SNR
        estimate).
    dictionary / lipschitz:
        Optional precomputed Eq. 6 dictionary (dense ndarray or
        :class:`~repro.optim.operators.DictionaryOperator`) and its
        ‖S̃ᴴS̃‖₂ — pass both when solving repeatedly on the same grid.
    x0:
        Optional warm start forwarded to the FISTA solve (shape
        matching the coefficient vector/matrix).
    tracer / telemetry:
        As in :func:`~repro.core.joint.estimate_joint_spectrum` — the
        solve runs inside a ``"solver"`` span and records a
        per-iteration :class:`~repro.obs.ConvergenceTrace` when tracing
        is enabled.

    Returns
    -------
    (AngleSpectrum, SolverResult)
        The spectrum is the recovered coefficient magnitude profile
        (row ℓ2 norms in the multi-snapshot case); peaks are AoA
        estimates (paper Fig. 3).
    """
    snapshots = np.asarray(snapshots, dtype=complex)
    if snapshots.ndim not in (1, 2):
        raise SolverError(f"snapshots must be 1-D or 2-D, got ndim={snapshots.ndim}")
    if grid is None:
        grid = AngleGrid()

    if dictionary is None:
        dictionary = angle_steering_dictionary(array, grid)
    if dictionary.shape[0] != snapshots.shape[0]:
        raise SolverError(
            f"snapshots have {snapshots.shape[0]} sensors but dictionary expects {dictionary.shape[0]}"
        )
    if lipschitz is None:
        lipschitz = estimate_lipschitz(dictionary)

    solver_name = "fista" if snapshots.ndim == 1 else "mmv_fista"
    if telemetry is None and tracer.enabled:
        telemetry = ConvergenceTrace(solver=solver_name)
    with tracer.span("solver", solver=solver_name, stage="aoa_spectrum") as span:
        if snapshots.ndim == 1:
            if kappa is None:
                kappa = residual_kappa(dictionary, snapshots, fraction=kappa_fraction)
            result = solve_lasso_fista(
                dictionary,
                snapshots,
                kappa,
                max_iterations=max_iterations,
                lipschitz=lipschitz,
                x0=x0,
                telemetry=telemetry,
            )
            power = np.abs(result.x)
        else:
            if kappa is None:
                try:
                    kappa = mmv_residual_kappa(dictionary, snapshots, fraction=kappa_fraction)
                except SolverError:
                    raise SolverError("snapshots are orthogonal to every steering vector") from None
            result = solve_mmv_fista(
                dictionary,
                snapshots,
                kappa,
                max_iterations=max_iterations,
                lipschitz=lipschitz,
                x0=x0,
                telemetry=telemetry,
            )
            power = np.linalg.norm(result.x, axis=1)
        span.annotate(iterations=result.iterations, converged=result.converged)
        if telemetry is not None:
            span.annotate(convergence=telemetry.to_dict())

    return AngleSpectrum(grid.angles_deg, power), result
