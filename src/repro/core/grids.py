"""Sampling grids over angle and delay.

The linearization step of paper §III-A replaces the unknown continuous
path parameters with a dense, *known* grid: Nθ angles spanning
[0°, 180°] and (for the joint estimator) Nτ delays spanning
[0, τmax = 1/fδ].  Grid density trades resolution against the
O((NθNτ)³) solve cost the paper's §III-C discusses; the defaults below
match the paper's reported working point (Nθ = 90, Nτ = 50 for the
joint spectrum, 1°-spaced angles for the spatial-only spectrum).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.exceptions import ConfigurationError


@dataclass(frozen=True)
class AngleGrid:
    """Equally spaced AoA candidates over [start, stop] degrees."""

    start_deg: float = 0.0
    stop_deg: float = 180.0
    n_points: int = 181

    def __post_init__(self) -> None:
        if not 0.0 <= self.start_deg < self.stop_deg <= 180.0:
            raise ConfigurationError(
                f"angle grid must satisfy 0 <= start < stop <= 180, got [{self.start_deg}, {self.stop_deg}]"
            )
        if self.n_points < 2:
            raise ConfigurationError(f"angle grid needs >= 2 points, got {self.n_points}")

    @property
    def angles_deg(self) -> np.ndarray:
        return np.linspace(self.start_deg, self.stop_deg, self.n_points)

    @property
    def spacing_deg(self) -> float:
        return (self.stop_deg - self.start_deg) / (self.n_points - 1)


@dataclass(frozen=True)
class DelayGrid:
    """Equally spaced ToA candidates over [start, stop] seconds.

    ``stop_s`` defaults to the Intel 5300's unambiguous range
    τmax = 1/fδ = 800 ns; delays beyond it alias (paper §III-B).
    """

    start_s: float = 0.0
    stop_s: float = 800e-9
    n_points: int = 50

    def __post_init__(self) -> None:
        if not 0.0 <= self.start_s < self.stop_s:
            raise ConfigurationError(
                f"delay grid must satisfy 0 <= start < stop, got [{self.start_s}, {self.stop_s}]"
            )
        if self.n_points < 2:
            raise ConfigurationError(f"delay grid needs >= 2 points, got {self.n_points}")

    @property
    def toas_s(self) -> np.ndarray:
        return np.linspace(self.start_s, self.stop_s, self.n_points)

    @property
    def spacing_s(self) -> float:
        return (self.stop_s - self.start_s) / (self.n_points - 1)
