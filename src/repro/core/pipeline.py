"""The end-to-end ROArray estimator.

:class:`RoArrayEstimator` packages the full per-AP chain — joint sparse
recovery (single packet) or delay-aligned multi-packet fusion, followed
by smallest-ToA direct-path identification — behind the same
``estimate_direct_path(trace)`` interface the baselines implement, so
the evaluation harness treats all three systems uniformly.
"""

from __future__ import annotations

import numpy as np

from repro.channel.array import UniformLinearArray
from repro.channel.ofdm import SubcarrierLayout, intel5300_layout
from repro.channel.trace import CsiTrace
from repro.core.aoa import estimate_aoa_spectrum
from repro.core.config import RoArrayConfig
from repro.core.direct_path import ApAnalysis, DirectPathEstimate, identify_direct_path
from repro.core.fusion import fuse_packets
from repro.core.joint import estimate_joint_spectrum
from repro.core.steering import SteeringCache
from repro.obs import NULL_TRACER
from repro.optim.warm import WarmStartState
from repro.spectral.spectrum import AngleSpectrum, JointSpectrum


class RoArrayEstimator:
    """ROArray's per-AP estimation pipeline.

    Parameters
    ----------
    array / layout:
        The receiver hardware model; defaults to the paper's 3-antenna
        half-wavelength ULA on the Intel 5300 subcarrier layout.
    config:
        Grids and solver tunables (:class:`~repro.core.config.RoArrayConfig`).
    tracer:
        Optional :class:`~repro.obs.Tracer`.  When enabled, every stage
        (steering warmup, joint/fused spectrum, direct-path selection)
        runs inside a named span and the sparse solves record
        per-iteration :class:`~repro.obs.ConvergenceTrace` telemetry.
        The default is the shared no-op tracer, which adds no work and
        leaves every numerical output byte-identical.

    Examples
    --------
    >>> import numpy as np
    >>> from repro.channel import CsiSynthesizer, UniformLinearArray
    >>> from repro.channel import intel5300_layout, random_profile
    >>> rng = np.random.default_rng(0)
    >>> synthesizer = CsiSynthesizer(UniformLinearArray(), intel5300_layout())
    >>> profile = random_profile(rng, direct_aoa_deg=150.0)
    >>> trace = synthesizer.packets(profile, n_packets=1, snr_db=10, rng=rng)
    >>> estimate = RoArrayEstimator().estimate_direct_path(trace)
    >>> abs(estimate.aoa_deg - 150.0) < 10
    True
    """

    name = "ROArray"

    def __init__(
        self,
        array: UniformLinearArray | None = None,
        layout: SubcarrierLayout | None = None,
        config: RoArrayConfig | None = None,
        tracer=NULL_TRACER,
    ) -> None:
        self.array = array or UniformLinearArray()
        self.layout = layout or intel5300_layout()
        self.config = config or RoArrayConfig()
        self.tracer = tracer
        self.cache = SteeringCache(
            self.array, self.layout, self.config.angle_grid, self.config.delay_grid
        )
        #: Chain solutions across consecutive calls (see RoArrayConfig).
        self.warm_start = self.config.warm_start
        # Single-packet (Nθ·Nτ,) and fused (Nθ·Nτ, r) solutions are
        # shaped differently, so they warm independent slots of one
        # first-class, serializable WarmStartState.
        self.warm_state = WarmStartState()
        #: Frozen state reset_warm_state() restores to.  The batch
        #: runtime resets before every job, so with a seed installed
        #: every job warms from the same state — a pure function of
        #: (trace, seed) at any worker count.
        self.warm_seed: WarmStartState | None = None
        # Guardrail fallback usage since the last drain (see
        # drain_fallback_events); empty unless config.guardrails is set
        # and a solve actually fell back.
        self._fallback_events: list[dict] = []

    def reset_warm_state(self) -> None:
        """Restore the warm state to its seed (or drop it entirely).

        The batch runtime calls this before every job so warm chaining
        can never leak state across jobs — results stay byte-identical
        for any worker count regardless of ``warm_start``.  With a
        :attr:`warm_seed` installed the reset restores that frozen
        state instead of clearing, which is what makes warm-started
        sweeps parallel- and checkpoint-safe.
        """
        self.warm_state = (
            self.warm_seed.copy() if self.warm_seed is not None else WarmStartState()
        )

    def seed_warm_state(self, seed: WarmStartState | None) -> None:
        """Install (or remove) the frozen seed and reset to it."""
        self.warm_seed = seed.copy() if seed is not None else None
        self.reset_warm_state()

    def drain_fallback_events(self) -> list[dict]:
        """Return and clear the guardrail fallback events recorded so far.

        Each event is ``{"stage", "solver", "fallbacks"}`` — which solve
        fell back, which solver finally produced the answer, and which
        were rejected first.  The batch runtime drains this per job so
        fallback usage lands on the job's
        :class:`~repro.runtime.jobs.JobOutcome`.
        """
        events, self._fallback_events = self._fallback_events, []
        return events

    def _record_fallbacks(self, stage: str, result) -> None:
        if getattr(result, "fallbacks", ()):
            self._fallback_events.append(
                {
                    "stage": stage,
                    "solver": result.solver,
                    "fallbacks": list(result.fallbacks),
                }
            )

    def warm_cache(self) -> None:
        """Build the steering-cache artifacts inside a traced span.

        Memoized — the second call is free — so callers (the batch
        runtime's workers, the experiment drivers) can invoke it
        unconditionally; the ``steering_warmup`` span records the
        amortized (near-zero) cost on every call after the first.
        """
        with self.tracer.span("steering_warmup") as span:
            self.cache.warmup()
            span.annotate(warmup_s=self.cache.warmup_seconds)

    # -- spectra -----------------------------------------------------------

    def aoa_spectrum(
        self,
        trace: CsiTrace,
        *,
        max_iterations: int | None = None,
        method: str = "joint",
    ) -> AngleSpectrum:
        """ROArray's AoA spectrum.

        ``method="joint"`` (default) collapses the fused joint (AoA, ToA)
        spectrum onto the angle axis — the full coherent treatment, and
        what the system's accuracy rests on.  ``method="spatial"`` runs
        the narrowband sparse recovery of §III-A alone (every subcarrier
        of every packet as a snapshot), which is what the iteration-
        progress figure (Fig. 3) illustrates.
        """
        if method == "joint":
            return self.joint_spectrum(trace).angle_marginal()
        if method != "spatial":
            raise ValueError(f"method must be 'joint' or 'spatial', got {method!r}")
        with self.tracer.span("aoa_spectrum", method=method):
            snapshots = np.moveaxis(trace.csi, 1, 0).reshape(trace.n_antennas, -1)
            spectrum, _ = estimate_aoa_spectrum(
                snapshots,
                self.array,
                self.config.angle_grid,
                kappa_fraction=self.config.kappa_fraction,
                max_iterations=max_iterations or self.config.max_iterations,
                dictionary=self.cache.angle_dictionary,
                lipschitz=self.cache.angle_lipschitz,
                tracer=self.tracer,
            )
        return spectrum

    def joint_spectrum(self, trace: CsiTrace, *, packet: int | None = None) -> JointSpectrum:
        """Joint (AoA, ToA) spectrum (paper §III-B / Fig. 4).

        With ``packet`` given, estimates from that single packet;
        otherwise fuses all packets coherently (delay alignment + SVD +
        ℓ2,1 recovery, §III-D).
        """
        if packet is not None:
            with self.tracer.span("joint_spectrum", packet=packet):
                spectrum, result = estimate_joint_spectrum(
                    trace.packet(packet),
                    self.cache,
                    kappa_fraction=self.config.kappa_fraction,
                    max_iterations=self.config.max_iterations,
                    x0=self.warm_state.get("single") if self.warm_start else None,
                    tracer=self.tracer,
                    guard=self.config.guardrails,
                )
            self._record_fallbacks("joint_spectrum", result)
            if self.warm_start:
                self.warm_state.put("single", result.x)
            return spectrum
        with self.tracer.span("fusion", n_packets=trace.n_packets):
            spectrum, result = fuse_packets(
                trace.csi,
                self.cache,
                kappa_fraction=self.config.kappa_fraction,
                max_iterations=self.config.max_iterations,
                svd_rank=self.config.svd_rank,
                x0=self.warm_state.get("fused") if self.warm_start else None,
                tracer=self.tracer,
                guard=self.config.guardrails,
            )
        self._record_fallbacks("fusion", result)
        if self.warm_start:
            self.warm_state.put("fused", result.x)
        return spectrum

    # -- direct path -------------------------------------------------------

    def analyze(self, trace: CsiTrace) -> ApAnalysis:
        """Full per-AP analysis: fused joint spectrum → paths → direct path.

        With ``config.refine_off_grid`` set, the spectrum peaks are
        polished on the continuous (θ, τ) manifold before the
        smallest-ToA selection, removing the grid-quantization floor.
        """
        return self.analysis_from_spectrum(self.joint_spectrum(trace), trace)

    def analysis_from_spectrum(self, spectrum: JointSpectrum, trace: CsiTrace) -> ApAnalysis:
        """The peak-picking half of :meth:`analyze`.

        Split out so callers that already hold the fused spectrum (the
        batch runtime, which times the solve and peak stages separately)
        can finish the analysis without re-solving; ``analyze(trace)``
        is exactly ``analysis_from_spectrum(joint_spectrum(trace), trace)``.
        """
        with self.tracer.span("direct_path") as span:
            peaks = spectrum.peaks(
                max_peaks=self.config.max_paths, min_relative_height=self.config.peak_floor
            )
            direct = identify_direct_path(
                spectrum, max_paths=self.config.max_paths, peak_floor=self.config.peak_floor
            )
            candidate_aoas = tuple(peak.aoa_deg for peak in peaks)

            if self.config.refine_off_grid and peaks:
                from repro.core.refinement import refine_spectrum_peaks
                from repro.core.steering import vectorize_csi_matrix

                y = vectorize_csi_matrix(trace.packet(0))
                refined = refine_spectrum_peaks(
                    y,
                    spectrum,
                    self.array,
                    self.layout,
                    max_paths=self.config.max_paths,
                    peak_floor=self.config.peak_floor,
                )
                earliest = min(refined, key=lambda p: p.toa_s)
                direct = DirectPathEstimate(
                    aoa_deg=earliest.aoa_deg,
                    toa_s=earliest.toa_s,
                    power=abs(earliest.gain),
                    n_paths=len(refined),
                )
                candidate_aoas = tuple(p.aoa_deg for p in refined)
            span.annotate(n_paths=direct.n_paths, aoa_deg=direct.aoa_deg)

        return ApAnalysis(direct=direct, candidate_aoas_deg=candidate_aoas)

    def estimate_direct_path(self, trace: CsiTrace) -> DirectPathEstimate:
        """Full chain: fused joint spectrum → smallest-ToA peak."""
        return self.analyze(trace).direct
