"""Linearized steering dictionaries (paper Eq. 6 and Eq. 13/16).

The sparse-recovery formulation needs a *known* dictionary whose
columns are steering vectors evaluated on the sampling grid:

* **Spatial-only** (Eq. 6): ``S̃ ∈ ℂ^{M×Nθ}``, column i = s(θ̃_i) of
  Eq. 1.
* **Joint AoA&ToA** (Eq. 13/16): each column stacks the per-antenna,
  per-subcarrier phases ``Λ(θ)^m · Γ(τ)^l``.  With the measurement
  vectorized antenna-fastest (Eq. 15: csi₁,₁ csi₂,₁ csi₃,₁ … per
  subcarrier) the joint column is exactly the Kronecker product
  ``g(τ) ⊗ s(θ)``, so the full dictionary is ``kron(G, S̃)`` with
  ``G ∈ ℂ^{L×Nτ}`` the delay ramps — delay-major column ordering, as
  written in Eq. 16.

Dictionaries and their Lipschitz constants are cached per
configuration, because the evaluation sweeps re-solve against the same
dictionary thousands of times.
"""

from __future__ import annotations

import time

import numpy as np

from repro.channel.array import UniformLinearArray
from repro.channel.ofdm import SubcarrierLayout
from repro.core.grids import AngleGrid, DelayGrid
from repro.optim.backend import normalize_precision, resolve_backend
from repro.optim.linalg import estimate_lipschitz
from repro.optim.operators import KroneckerJointOperator


def angle_steering_dictionary(array: UniformLinearArray, grid: AngleGrid) -> np.ndarray:
    """Paper Eq. 6: ``(M, Nθ)`` dictionary of spatial steering vectors."""
    return array.steering_matrix(grid.angles_deg)


def delay_ramp_dictionary(layout: SubcarrierLayout, grid: DelayGrid) -> np.ndarray:
    """``(L, Nτ)`` dictionary of per-subcarrier delay phase ramps (Eq. 12)."""
    factors = layout.delay_phase_factor(grid.toas_s)[None, :]
    exponents = np.arange(layout.n_subcarriers)[:, None]
    return factors**exponents


def joint_steering_dictionary(
    array: UniformLinearArray,
    layout: SubcarrierLayout,
    angle_grid: AngleGrid,
    delay_grid: DelayGrid,
) -> np.ndarray:
    """Paper Eq. 16: the ``(M·L, Nθ·Nτ)`` joint dictionary.

    Rows are ordered antenna-fastest (matching
    :func:`vectorize_csi_matrix`); columns are ordered delay-major:
    column ``j·Nθ + i`` corresponds to angle ``i``, delay ``j``.
    """
    spatial = angle_steering_dictionary(array, angle_grid)
    temporal = delay_ramp_dictionary(layout, delay_grid)
    return np.kron(temporal, spatial)


def vectorize_csi_matrix(csi: np.ndarray) -> np.ndarray:
    """Paper Eq. 15: stack a CSI matrix antenna-fastest into a vector.

    For ``csi`` of shape ``(M, L)`` returns ``y`` of length ``M·L`` with
    ``y[l·M + m] = csi[m, l]``.
    """
    csi = np.asarray(csi)
    if csi.ndim != 2:
        raise ValueError(f"csi must be 2-D (antennas × subcarriers), got shape {csi.shape}")
    return csi.T.reshape(-1)


class SteeringCache:
    """Precomputed dictionaries + Lipschitz constants for one configuration.

    The cache is the unit of amortization for the evaluation harness: a
    single :class:`SteeringCache` serves every packet, every AP and
    every location that shares the (array, layout, grids) tuple.
    """

    def __init__(
        self,
        array: UniformLinearArray,
        layout: SubcarrierLayout,
        angle_grid: AngleGrid,
        delay_grid: DelayGrid,
    ) -> None:
        self.array = array
        self.layout = layout
        self.angle_grid = angle_grid
        self.delay_grid = delay_grid

        self._angle_dictionary: np.ndarray | None = None
        self._angle_lipschitz: float | None = None
        self._joint_dictionary: np.ndarray | None = None
        self._joint_operator: KroneckerJointOperator | None = None
        self._joint_lipschitz: float | None = None
        self._backend_operators: dict[tuple, KroneckerJointOperator] = {}
        #: Seconds spent building each artifact, keyed by artifact name.
        #: Empty until the corresponding property is first accessed; the
        #: batch runtime reads this to report per-worker warmup cost.
        self.build_seconds: dict[str, float] = {}

    def _timed(self, name: str, build):
        start = time.perf_counter()
        artifact = build()
        self.build_seconds[name] = time.perf_counter() - start
        return artifact

    @property
    def angle_dictionary(self) -> np.ndarray:
        if self._angle_dictionary is None:
            self._angle_dictionary = self._timed(
                "angle_dictionary",
                lambda: angle_steering_dictionary(self.array, self.angle_grid),
            )
        return self._angle_dictionary

    @property
    def angle_lipschitz(self) -> float:
        if self._angle_lipschitz is None:
            self._angle_lipschitz = self._timed(
                "angle_lipschitz", lambda: estimate_lipschitz(self.angle_dictionary)
            )
        return self._angle_lipschitz

    @property
    def joint_dictionary(self) -> np.ndarray:
        if self._joint_dictionary is None:
            self._joint_dictionary = self._timed(
                "joint_dictionary",
                lambda: joint_steering_dictionary(
                    self.array, self.layout, self.angle_grid, self.delay_grid
                ),
            )
        return self._joint_dictionary

    @property
    def joint_operator(self) -> KroneckerJointOperator:
        """The Eq. 16 dictionary as an unmaterialized Kronecker operator.

        Numerically interchangeable with :attr:`joint_dictionary` (it
        represents the same matrix) but applies in two small matmuls —
        the form the hot solve paths use.
        """
        if self._joint_operator is None:
            self._joint_operator = self._timed(
                "joint_operator",
                lambda: KroneckerJointOperator(
                    delay_ramp_dictionary(self.layout, self.delay_grid),
                    self.angle_dictionary,
                ),
            )
        return self._joint_operator

    @property
    def joint_lipschitz(self) -> float:
        if self._joint_lipschitz is None:
            # Power iteration through the operator: identical math to the
            # dense estimate (same seed, same iterates up to rounding),
            # without materializing the Kronecker product.
            self._joint_lipschitz = self._timed(
                "joint_lipschitz", lambda: estimate_lipschitz(self.joint_operator)
            )
        return self._joint_lipschitz

    def joint_operator_on(
        self, backend, *, device: str | None = None, dtype=None
    ) -> KroneckerJointOperator:
        """The joint operator converted to another array backend.

        Conversions are cached per ``(backend, device, precision)`` so a
        batched sweep pays the host→device transfer once, and the
        Lipschitz constant computed on the numpy reference rides along —
        it is a property of the matrix, not of where it lives.

        ``backend`` is a name (``"numpy"``/``"torch"``/``"cupy"``) or an
        :class:`~repro.optim.backend.ArrayBackend` instance; ``dtype``
        selects the precision (e.g. ``"complex64"`` for the
        mixed-precision path).
        """
        target = resolve_backend(backend, device=device)
        precision = normalize_precision(dtype) if dtype is not None else "double"
        key = (target.name, target.device, precision)
        cached = self._backend_operators.get(key)
        if cached is None:
            source = self.joint_operator
            _ = self.joint_lipschitz  # computed once on numpy, carried over
            source._lipschitz = self._joint_lipschitz
            cached = self._timed(
                f"joint_operator[{target.name}:{target.device}:{precision}]",
                lambda: source.to_backend(target, dtype=dtype),
            )
            self._backend_operators[key] = cached
        return cached

    def warmup(self) -> "SteeringCache":
        """Build every artifact now (one-time per-process warmup).

        The batch runtime calls this from its worker initializer so the
        dictionaries and Lipschitz constants are built once per worker
        process rather than lazily inside the first job.  The dense
        joint dictionary is *not* built — the solve paths run on
        :attr:`joint_operator`, and the dense form stays lazy for
        callers that still want it.  Returns ``self`` for chaining.
        """
        _ = self.angle_dictionary
        _ = self.angle_lipschitz
        _ = self.joint_operator
        _ = self.joint_lipschitz
        return self

    @property
    def warmup_seconds(self) -> float:
        """Total seconds spent building artifacts so far."""
        return float(sum(self.build_seconds.values()))
