"""Joint ToA&AoA sparse recovery (paper §III-B, Eq. 14–18).

Stacks all subcarrier measurements of one packet into the 90-element
vector of Eq. 15, and solves the LASSO against the joint dictionary of
Eq. 16.  The recovered coefficient magnitudes, reshaped onto the
(angle × delay) grid, are the 2-D spectrum of paper Fig. 4; its
smallest-ToA peak is the direct path.

The aperture argument of §III-B falls out of the shapes: the stacked
measurement has M·L = 90 entries instead of M = 3, so many more than
M − 1 paths are resolvable.
"""

from __future__ import annotations

import numpy as np

from repro.core.steering import SteeringCache, vectorize_csi_matrix
from repro.exceptions import SolverError
from repro.obs import NULL_TRACER, ConvergenceTrace
from repro.optim import solve_lasso_fista
from repro.optim.guard import GuardrailPolicy, solve_guarded
from repro.optim.result import SolverResult
from repro.optim.tuning import residual_kappa
from repro.spectral.spectrum import JointSpectrum


def coefficients_to_joint_power(coefficients: np.ndarray, n_angles: int, n_toas: int) -> np.ndarray:
    """Reshape a delay-major coefficient vector into an (angle, delay) grid.

    Column ``j·Nθ + i`` of the Eq. 16 dictionary corresponds to angle
    ``i`` and delay ``j``, so the magnitude vector reshapes to
    ``(Nτ, Nθ)`` and transposes into the ``(Nθ, Nτ)`` layout of
    :class:`~repro.spectral.spectrum.JointSpectrum`.
    """
    magnitudes = np.abs(np.asarray(coefficients))
    if magnitudes.ndim == 2:
        magnitudes = np.linalg.norm(magnitudes, axis=1)
    if magnitudes.size != n_angles * n_toas:
        raise SolverError(
            f"coefficient vector has {magnitudes.size} entries, expected {n_angles}×{n_toas}"
        )
    return magnitudes.reshape(n_toas, n_angles).T


def estimate_joint_spectrum(
    csi_matrix: np.ndarray,
    cache: SteeringCache,
    *,
    kappa: float | None = None,
    kappa_fraction: float = 0.05,
    max_iterations: int = 300,
    x0: np.ndarray | None = None,
    tracer=NULL_TRACER,
    telemetry: ConvergenceTrace | None = None,
    guard: GuardrailPolicy | None = None,
) -> tuple[JointSpectrum, SolverResult]:
    """Single-packet joint (AoA, ToA) spectrum (paper Eq. 18).

    The solve runs on the cache's structured
    :attr:`~repro.core.steering.SteeringCache.joint_operator` — the
    Kronecker form of the Eq. 16 dictionary — so the dense ``(M·L) ×
    (Nθ·Nτ)`` matrix is never materialized.

    Parameters
    ----------
    csi_matrix:
        One packet's CSI, shape ``(M, L)`` (paper Eq. 4).
    cache:
        The steering cache providing the Eq. 16 dictionary; its grids
        define the spectrum axes.
    x0:
        Optional warm start (a previous packet's coefficient vector on
        the same grids).
    tracer:
        Optional :class:`~repro.obs.Tracer`; when enabled the solve runs
        inside a ``"solver"`` span carrying iteration counts and (unless
        a ``telemetry`` trace was passed explicitly) a freshly recorded
        per-iteration :class:`~repro.obs.ConvergenceTrace`.  The default
        no-op tracer adds no work.
    telemetry:
        Optional :class:`~repro.obs.ConvergenceTrace` forwarded to the
        solver and attached to the returned
        :class:`~repro.optim.result.SolverResult`.
    guard:
        Optional :class:`~repro.optim.guard.GuardrailPolicy`.  When set
        the solve runs through
        :func:`~repro.optim.guard.solve_guarded` (divergence detection
        + fallback chain); a healthy solve is byte-identical to the
        unguarded path.

    Returns
    -------
    (JointSpectrum, SolverResult)
    """
    csi_matrix = np.asarray(csi_matrix, dtype=complex)
    expected = (cache.array.n_antennas, cache.layout.n_subcarriers)
    if csi_matrix.shape != expected:
        raise SolverError(f"csi matrix has shape {csi_matrix.shape}, expected {expected}")

    y = vectorize_csi_matrix(csi_matrix)
    dictionary = cache.joint_operator
    if kappa is None:
        kappa = residual_kappa(dictionary, y, fraction=kappa_fraction)
    if telemetry is None and tracer.enabled:
        telemetry = ConvergenceTrace(solver="fista")
    with tracer.span("solver", solver="fista", stage="joint_spectrum") as span:
        if guard is not None:
            result = solve_guarded(
                dictionary,
                y,
                kappa=kappa,
                kappa_fraction=kappa_fraction,
                policy=guard,
                max_iterations=max_iterations,
                lipschitz=cache.joint_lipschitz,
                x0=x0,
                telemetry=telemetry,
            )
            if result.solver != guard.fallback_chain[0] or result.fallbacks:
                span.annotate(solver=result.solver, fallbacks=list(result.fallbacks))
        else:
            result = solve_lasso_fista(
                dictionary,
                y,
                kappa,
                max_iterations=max_iterations,
                lipschitz=cache.joint_lipschitz,
                x0=x0,
                telemetry=telemetry,
            )
        span.annotate(iterations=result.iterations, converged=result.converged)
        if telemetry is not None:
            span.annotate(convergence=telemetry.to_dict())

    power = coefficients_to_joint_power(
        result.x, cache.angle_grid.n_points, cache.delay_grid.n_points
    )
    spectrum = JointSpectrum(cache.angle_grid.angles_deg, cache.delay_grid.toas_s, power)
    return spectrum, result
