"""Position tracking over per-fix localization estimates.

ROArray produces an independent position fix per packet burst; a moving
client benefits from fusing consecutive fixes with a motion model.
This module implements a constant-velocity Kalman filter over the 2-D
fix stream — the standard downstream smoother a deployment would put
behind the localizer — plus an innovation gate that rejects the gross
outliers low-SNR fixes occasionally produce.

State: ``[x, y, vx, vy]``; measurements: raw (x, y) fixes.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.exceptions import ConfigurationError


@dataclass
class TrackState:
    """Posterior state after one tracker update."""

    time_s: float
    position: tuple[float, float]
    velocity: tuple[float, float]
    accepted: bool
    reinitialized: bool = False


@dataclass
class KalmanTracker:
    """Constant-velocity Kalman filter with innovation gating.

    Attributes
    ----------
    process_noise:
        Acceleration noise density (m/s²); ~0.5 suits pedestrians.
    measurement_noise_m:
        Standard deviation of a localization fix (meters).  ROArray's
        medium-SNR fixes are ~0.5 m.
    gate_sigmas:
        Mahalanobis gate: fixes farther than this many standard
        deviations from the prediction are rejected (the filter coasts).
    reinit_after_rejects:
        After this many *consecutive* gate rejections the filter
        concludes the track is lost (the client genuinely moved — e.g.
        an elevator ride, or a long NLOS episode ended with the client
        somewhere else) and reinitializes on the next fix instead of
        coasting forever on a stale prediction.  Without this, a gated
        filter that diverges once rejects every subsequent honest fix:
        the covariance stops growing through measurement updates slower
        than the true position drifts away.
    """

    process_noise: float = 0.5
    measurement_noise_m: float = 0.7
    gate_sigmas: float = 4.0
    reinit_after_rejects: int = 5

    _state: np.ndarray | None = field(default=None, repr=False)
    _covariance: np.ndarray | None = field(default=None, repr=False)
    _last_time: float = field(default=0.0, repr=False)
    _reject_streak: int = field(default=0, repr=False)

    def __post_init__(self) -> None:
        if self.process_noise <= 0 or self.measurement_noise_m <= 0:
            raise ConfigurationError("noise parameters must be positive")
        if self.gate_sigmas <= 0:
            raise ConfigurationError("gate_sigmas must be positive")
        if int(self.reinit_after_rejects) != self.reinit_after_rejects or (
            self.reinit_after_rejects < 1
        ):
            raise ConfigurationError("reinit_after_rejects must be a positive integer")
        self.reinit_after_rejects = int(self.reinit_after_rejects)

    @property
    def initialized(self) -> bool:
        return self._state is not None

    def state_dict(self) -> dict:
        """The filter's exact state for service snapshots.

        Floats round-trip exactly through JSON (Python's ``repr`` is
        lossless for float64), so a restored tracker continues the
        track bit-for-bit — which is what makes supervised crash
        recovery byte-identical.
        """
        return {
            "process_noise": self.process_noise,
            "measurement_noise_m": self.measurement_noise_m,
            "gate_sigmas": self.gate_sigmas,
            "reinit_after_rejects": self.reinit_after_rejects,
            "state": None if self._state is None else [float(v) for v in self._state],
            "covariance": (
                None
                if self._covariance is None
                else [[float(v) for v in row] for row in self._covariance]
            ),
            "last_time": self._last_time,
            "reject_streak": self._reject_streak,
        }

    @classmethod
    def from_state_dict(cls, payload: dict) -> "KalmanTracker":
        tracker = cls(
            process_noise=float(payload["process_noise"]),
            measurement_noise_m=float(payload["measurement_noise_m"]),
            gate_sigmas=float(payload["gate_sigmas"]),
            # Snapshots written before the reject-streak reset existed
            # lack these keys; restore with the defaults.
            reinit_after_rejects=int(payload.get("reinit_after_rejects", 5)),
        )
        if payload["state"] is not None:
            tracker._state = np.array(payload["state"], dtype=float)
            tracker._covariance = np.array(payload["covariance"], dtype=float)
        tracker._last_time = float(payload["last_time"])
        tracker._reject_streak = int(payload.get("reject_streak", 0))
        return tracker

    def update(self, time_s: float, fix: tuple[float, float]) -> TrackState:
        """Ingest one localization fix; returns the posterior state.

        The first fix initializes the track (zero velocity, wide
        covariance).  Later fixes are gated: an implausible fix is
        rejected and the filter returns the coasted prediction — unless
        the last ``reinit_after_rejects`` fixes were all rejected, in
        which case the measurements have outvoted the model and the
        track reinitializes at this fix.
        """
        measurement = np.asarray(fix, dtype=float)
        if measurement.shape != (2,):
            raise ConfigurationError(f"fix must be (x, y), got shape {measurement.shape}")

        if self._state is None:
            return self._reinitialize(time_s, measurement, reinitialized=False)

        dt = time_s - self._last_time
        if dt < 0:
            raise ConfigurationError(f"time went backwards: {self._last_time} → {time_s}")
        dt = max(dt, 1e-6)
        self._last_time = time_s

        # Predict.
        transition = np.eye(4)
        transition[0, 2] = transition[1, 3] = dt
        q = self.process_noise**2
        process = np.array(
            [
                [dt**4 / 4, 0, dt**3 / 2, 0],
                [0, dt**4 / 4, 0, dt**3 / 2],
                [dt**3 / 2, 0, dt**2, 0],
                [0, dt**3 / 2, 0, dt**2],
            ]
        ) * q
        state = transition @ self._state
        covariance = transition @ self._covariance @ transition.T + process

        # Gate.
        observation = np.zeros((2, 4))
        observation[0, 0] = observation[1, 1] = 1.0
        innovation = measurement - observation @ state
        innovation_cov = (
            observation @ covariance @ observation.T
            + self.measurement_noise_m**2 * np.eye(2)
        )
        mahalanobis = float(innovation @ np.linalg.solve(innovation_cov, innovation))
        accepted = mahalanobis <= self.gate_sigmas**2

        if accepted:
            self._reject_streak = 0
            gain = covariance @ observation.T @ np.linalg.inv(innovation_cov)
            state = state + gain @ innovation
            covariance = (np.eye(4) - gain @ observation) @ covariance
        else:
            self._reject_streak += 1
            if self._reject_streak >= self.reinit_after_rejects:
                return self._reinitialize(time_s, measurement, reinitialized=True)

        self._state = state
        self._covariance = covariance
        return TrackState(
            time_s=time_s,
            position=(float(state[0]), float(state[1])),
            velocity=(float(state[2]), float(state[3])),
            accepted=accepted,
        )

    def _reinitialize(
        self, time_s: float, measurement: np.ndarray, *, reinitialized: bool
    ) -> TrackState:
        """Start (or restart) the track at ``measurement``."""
        self._state = np.array([measurement[0], measurement[1], 0.0, 0.0])
        self._covariance = np.diag(
            [self.measurement_noise_m**2, self.measurement_noise_m**2, 4.0, 4.0]
        )
        self._last_time = time_s
        self._reject_streak = 0
        return TrackState(
            time_s,
            (float(measurement[0]), float(measurement[1])),
            (0.0, 0.0),
            accepted=True,
            reinitialized=reinitialized,
        )


def track_fixes(
    fixes: list[tuple[float, tuple[float, float]]],
    *,
    tracker: KalmanTracker | None = None,
) -> list[TrackState]:
    """Run a tracker over a (time, fix) sequence and return all states."""
    tracker = tracker or KalmanTracker()
    return [tracker.update(t, fix) for t, fix in fixes]
