"""Off-grid peak refinement — continuous (θ, τ) polish.

The grid-linearized program (paper §III-A/B) quantizes path parameters
to grid cells; Chi et al. [19] (cited in the paper) show the resulting
basis-mismatch error.  Off-grid DOA methods (Yang et al. [31], Hyder &
Mahata [32], also cited) remove it by re-optimizing the recovered peaks
on the *continuous* manifold.  This module implements the standard
cyclic refinement:

1. take the K peaks of a joint spectrum as initial path parameters,
2. re-fit the complex gains by least squares on the exact steering
   vectors s(θ_k, τ_k) (Eq. 13, evaluated off-grid),
3. for each path in turn, line-search θ_k then τ_k within ± one grid
   cell for the residual-minimizing value (gains re-fit at each probe),
4. sweep until the residual stops improving.

The result is a list of refined paths whose accuracy is limited by SNR,
not by the grid pitch.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.channel.array import UniformLinearArray
from repro.channel.ofdm import SubcarrierLayout
from repro.exceptions import SolverError
from repro.spectral.spectrum import JointSpectrum


@dataclass(frozen=True)
class RefinedPath:
    """One path after continuous-parameter refinement."""

    aoa_deg: float
    toa_s: float
    gain: complex


def continuous_steering_vector(
    array: UniformLinearArray, layout: SubcarrierLayout, aoa_deg: float, toa_s: float
) -> np.ndarray:
    """Eq. 13 evaluated at arbitrary (θ, τ): kron(delay ramp, spatial)."""
    spatial = array.steering_vector(aoa_deg)
    temporal = layout.delay_response(toa_s)
    return np.kron(temporal, spatial)


def _fit_gains(
    array: UniformLinearArray,
    layout: SubcarrierLayout,
    paths: list[tuple[float, float]],
    y: np.ndarray,
) -> tuple[np.ndarray, float]:
    """Least-squares gains for the current path parameters and the residual."""
    basis = np.stack(
        [continuous_steering_vector(array, layout, aoa, toa) for aoa, toa in paths], axis=1
    )
    gains, *_ = np.linalg.lstsq(basis, y, rcond=None)
    residual = float(np.linalg.norm(y - basis @ gains))
    return gains, residual


def _line_search(
    probe_values: np.ndarray,
    evaluate,
    current_value: float,
    current_residual: float,
) -> tuple[float, float]:
    """Pick the probe (or the incumbent) with the smallest residual."""
    best_value, best_residual = current_value, current_residual
    for value in probe_values:
        residual = evaluate(value)
        if residual < best_residual:
            best_value, best_residual = float(value), residual
    return best_value, best_residual


def refine_paths(
    y: np.ndarray,
    initial_paths: list[tuple[float, float]],
    array: UniformLinearArray,
    layout: SubcarrierLayout,
    *,
    angle_halfwidth_deg: float = 2.0,
    delay_halfwidth_s: float = 16e-9,
    probes: int = 9,
    sweeps: int = 3,
) -> list[RefinedPath]:
    """Cyclically refine (θ, τ) of each path on the continuous manifold.

    Parameters
    ----------
    y:
        The vectorized measurement (Eq. 15), length M·L.
    initial_paths:
        (aoa_deg, toa_s) per path — typically the joint-spectrum peaks.
    angle_halfwidth_deg / delay_halfwidth_s:
        Search bracket around each parameter; set them to one grid cell.
    probes:
        Probe count per line search (the bracket shrinks ×2 per sweep).
    sweeps:
        Full passes over all paths and both coordinates.
    """
    y = np.asarray(y, dtype=complex)
    expected = array.n_antennas * layout.n_subcarriers
    if y.shape != (expected,):
        raise SolverError(f"measurement has shape {y.shape}, expected ({expected},)")
    if not initial_paths:
        raise SolverError("need at least one initial path")
    if probes < 3 or sweeps < 1:
        raise SolverError("need probes >= 3 and sweeps >= 1")

    paths = [(float(a), float(t)) for a, t in initial_paths]
    _, residual = _fit_gains(array, layout, paths, y)

    angle_width = angle_halfwidth_deg
    delay_width = delay_halfwidth_s
    for _ in range(sweeps):
        for k in range(len(paths)):
            aoa_k, toa_k = paths[k]

            def residual_at_angle(aoa: float, k=k) -> float:
                trial = list(paths)
                trial[k] = (float(np.clip(aoa, 0.0, 180.0)), trial[k][1])
                return _fit_gains(array, layout, trial, y)[1]

            angle_probes = np.clip(
                aoa_k + np.linspace(-angle_width, angle_width, probes), 0.0, 180.0
            )
            aoa_k, residual = _line_search(angle_probes, residual_at_angle, aoa_k, residual)
            paths[k] = (aoa_k, toa_k)

            def residual_at_delay(toa: float, k=k) -> float:
                trial = list(paths)
                trial[k] = (trial[k][0], float(max(toa, 0.0)))
                return _fit_gains(array, layout, trial, y)[1]

            delay_probes = np.maximum(
                toa_k + np.linspace(-delay_width, delay_width, probes), 0.0
            )
            toa_k, residual = _line_search(delay_probes, residual_at_delay, toa_k, residual)
            paths[k] = (aoa_k, toa_k)
        angle_width /= 2.0
        delay_width /= 2.0

    gains, _ = _fit_gains(array, layout, paths, y)
    return [
        RefinedPath(aoa_deg=aoa, toa_s=toa, gain=complex(g))
        for (aoa, toa), g in zip(paths, gains)
    ]


def refine_spectrum_peaks(
    y: np.ndarray,
    spectrum: JointSpectrum,
    array: UniformLinearArray,
    layout: SubcarrierLayout,
    *,
    max_paths: int = 6,
    peak_floor: float = 0.3,
    **refine_kwargs,
) -> list[RefinedPath]:
    """Convenience wrapper: spectrum peaks → :func:`refine_paths`.

    The search brackets default to one grid cell of the spectrum's axes.
    """
    peaks = spectrum.peaks(max_peaks=max_paths, min_relative_height=peak_floor)
    if not peaks:
        best = spectrum.direct_path_peak(max_peaks=max_paths, min_relative_height=peak_floor)
        peaks = [best]
    angle_cell = float(np.mean(np.diff(spectrum.angles_deg))) if spectrum.angles_deg.size > 1 else 2.0
    delay_cell = float(np.mean(np.diff(spectrum.toas_s))) if spectrum.toas_s.size > 1 else 16e-9
    refine_kwargs.setdefault("angle_halfwidth_deg", angle_cell)
    refine_kwargs.setdefault("delay_halfwidth_s", delay_cell)
    return refine_paths(
        y,
        [(p.aoa_deg, p.toa_s) for p in peaks],
        array,
        layout,
        **refine_kwargs,
    )
