"""Direct-path identification (paper §III-B).

ROArray's rule is geometric and needs no motion or clustering: the
line-of-sight path is the shortest one, so among the joint spectrum's
peaks the one with the **smallest ToA** is the direct path.  (The
per-packet detection delay shifts all ToAs equally, so the ranking
survives it.)
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.spectral.spectrum import JointSpectrum, SpectrumPeak


@dataclass(frozen=True)
class DirectPathEstimate:
    """The per-AP output of ROArray's estimation chain.

    Attributes
    ----------
    aoa_deg:
        Direct-path angle of arrival — the quantity localization uses.
    toa_s:
        Direct-path ToA *including* the residual detection delay; usable
        only for ranking, not absolute ranging (paper §V).
    power:
        Spectrum power of the chosen peak.
    n_paths:
        How many paths the spectrum resolved (for diagnostics and the
        sparsity ablations).
    """

    aoa_deg: float
    toa_s: float
    power: float
    n_paths: int

    def __post_init__(self) -> None:
        if np.isnan(self.aoa_deg):
            raise ValueError("direct-path AoA is NaN")

    def to_dict(self) -> dict:
        """JSON-ready view (round-trips exactly through :meth:`from_dict`)."""
        return {
            "aoa_deg": float(self.aoa_deg),
            "toa_s": float(self.toa_s),
            "power": float(self.power),
            "n_paths": int(self.n_paths),
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "DirectPathEstimate":
        return cls(
            aoa_deg=float(payload["aoa_deg"]),
            toa_s=float(payload["toa_s"]),
            power=float(payload["power"]),
            n_paths=int(payload["n_paths"]),
        )


@dataclass(frozen=True)
class ApAnalysis:
    """Everything a system extracts from one AP's trace.

    ``direct`` feeds localization; ``candidate_aoas_deg`` (all resolved
    path angles) feeds the closest-peak AoA-error metric of paper
    Fig. 7.
    """

    direct: DirectPathEstimate
    candidate_aoas_deg: tuple[float, ...]

    def closest_aoa_error(self, true_aoa_deg: float) -> float:
        """Paper Fig. 7 metric: |truth − closest resolved angle|."""
        if not self.candidate_aoas_deg:
            return abs(self.direct.aoa_deg - true_aoa_deg)
        return min(abs(aoa - true_aoa_deg) for aoa in self.candidate_aoas_deg)

    def to_dict(self) -> dict:
        """JSON-ready view (round-trips exactly through :meth:`from_dict`).

        Floats survive byte-exactly: ``json`` serializes Python floats
        with ``repr``, which round-trips every IEEE-754 double — the
        property the checkpoint journal's replayed-equals-recomputed
        guarantee rests on.
        """
        return {
            "direct": self.direct.to_dict(),
            "candidate_aoas_deg": [float(a) for a in self.candidate_aoas_deg],
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "ApAnalysis":
        return cls(
            direct=DirectPathEstimate.from_dict(payload["direct"]),
            candidate_aoas_deg=tuple(float(a) for a in payload["candidate_aoas_deg"]),
        )


def identify_direct_path(
    spectrum: JointSpectrum,
    *,
    max_paths: int = 8,
    peak_floor: float = 0.1,
) -> DirectPathEstimate:
    """Pick the smallest-ToA peak of a joint (AoA, ToA) spectrum.

    Parameters
    ----------
    max_paths:
        Peak-count cap — the sparsity prior (~5 dominant indoor paths).
    peak_floor:
        Minimum relative height for a local maximum to count as a path;
        keeps solver ripple from becoming phantom early arrivals.
    """
    peaks = spectrum.peaks(max_peaks=max_paths, min_relative_height=peak_floor)
    if not peaks:
        best = spectrum.direct_path_peak(max_peaks=max_paths, min_relative_height=peak_floor)
        return DirectPathEstimate(best.aoa_deg, best.toa_s, best.power, n_paths=1)
    chosen = min(peaks, key=_toa_key)
    return DirectPathEstimate(chosen.aoa_deg, chosen.toa_s, chosen.power, n_paths=len(peaks))


def _toa_key(peak: SpectrumPeak) -> float:
    return peak.toa_s
