"""2-D (azimuth, elevation) sparse AoA estimation — §IV-F extension.

Runs the same grid-linearized ℓ1 program as :mod:`repro.core.aoa`, but
against a :class:`~repro.channel.array2d.PlanarArray` dictionary over an
azimuth × elevation grid.  With both angles resolved, a client's
bearing survives antenna tilt — the remedy the paper sketches for the
polarization sensitivity of Fig. 8c.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.channel.array2d import PlanarArray
from repro.exceptions import ConfigurationError, SolverError
from repro.optim import solve_lasso_fista, solve_mmv_fista
from repro.optim.linalg import estimate_lipschitz
from repro.optim.result import SolverResult
from repro.optim.tuning import residual_kappa
from repro.spectral.peaks import find_peaks_2d


@dataclass(frozen=True)
class AzimuthElevationGrid:
    """Sampling grid over azimuth [0°, 360°) × elevation [0°, 90°]."""

    n_azimuths: int = 73
    n_elevations: int = 10
    max_elevation_deg: float = 90.0

    def __post_init__(self) -> None:
        if self.n_azimuths < 2 or self.n_elevations < 2:
            raise ConfigurationError("need >= 2 grid points per axis")
        if not 0.0 < self.max_elevation_deg <= 90.0:
            raise ConfigurationError("max elevation must be in (0, 90]")

    @property
    def azimuths_deg(self) -> np.ndarray:
        return np.linspace(0.0, 360.0, self.n_azimuths, endpoint=False)

    @property
    def elevations_deg(self) -> np.ndarray:
        return np.linspace(0.0, self.max_elevation_deg, self.n_elevations)


@dataclass
class PlanarSpectrum:
    """A 2-D spectrum over (azimuth, elevation)."""

    azimuths_deg: np.ndarray
    elevations_deg: np.ndarray
    power: np.ndarray

    def __post_init__(self) -> None:
        expected = (self.azimuths_deg.size, self.elevations_deg.size)
        if self.power.shape != expected:
            raise ConfigurationError(
                f"power shape {self.power.shape} does not match grids {expected}"
            )

    def strongest_direction(self) -> tuple[float, float]:
        """(azimuth, elevation) of the global maximum."""
        i, j = np.unravel_index(int(np.argmax(self.power)), self.power.shape)
        return float(self.azimuths_deg[i]), float(self.elevations_deg[j])

    def peaks(self, *, max_peaks: int = 6, min_relative_height: float = 0.2):
        cells = find_peaks_2d(
            self.power, max_peaks=max_peaks, min_relative_height=min_relative_height
        )
        return [
            (float(self.azimuths_deg[i]), float(self.elevations_deg[j]), float(self.power[i, j]))
            for i, j in cells
        ]

    def closest_azimuth_error(self, true_azimuth_deg: float, **peak_kwargs) -> float:
        """Wrap-aware azimuth error to the nearest peak."""
        peaks = self.peaks(**peak_kwargs)
        if not peaks:
            peaks = [(*self.strongest_direction(), 1.0)]
        deltas = [abs((az - true_azimuth_deg + 180.0) % 360.0 - 180.0) for az, _, _ in peaks]
        return min(deltas)


def estimate_aoa2d_spectrum(
    snapshots: np.ndarray,
    array: PlanarArray,
    grid: AzimuthElevationGrid | None = None,
    *,
    kappa_fraction: float = 0.15,
    max_iterations: int = 250,
    dictionary: np.ndarray | None = None,
    lipschitz: float | None = None,
) -> tuple[PlanarSpectrum, SolverResult]:
    """Sparse 2-D AoA spectrum from planar-array snapshots.

    Parameters
    ----------
    snapshots:
        ``(n_elements,)`` for one snapshot or ``(n_elements, N)`` for N
        snapshots (jointly sparse across them).
    dictionary / lipschitz:
        Optional precomputed steering dictionary (elevation-major
        columns, from :meth:`PlanarArray.steering_matrix`) and its
        ``‖AᴴA‖₂``.
    """
    snapshots = np.asarray(snapshots, dtype=complex)
    if snapshots.ndim not in (1, 2):
        raise SolverError(f"snapshots must be 1-D or 2-D, got ndim={snapshots.ndim}")
    if snapshots.shape[0] != array.n_elements:
        raise SolverError(
            f"snapshots have {snapshots.shape[0]} sensors but the array has {array.n_elements}"
        )
    grid = grid or AzimuthElevationGrid()

    if dictionary is None:
        dictionary = array.steering_matrix(grid.azimuths_deg, grid.elevations_deg)
    if lipschitz is None:
        lipschitz = estimate_lipschitz(dictionary)

    if snapshots.ndim == 1:
        kappa = residual_kappa(dictionary, snapshots, fraction=kappa_fraction)
        result = solve_lasso_fista(
            dictionary, snapshots, kappa, max_iterations=max_iterations, lipschitz=lipschitz
        )
        magnitudes = np.abs(result.x)
    else:
        gradient = 2.0 * np.linalg.norm(dictionary.conj().T @ snapshots, axis=1)
        peak = float(gradient.max(initial=0.0))
        if peak == 0.0:
            raise SolverError("snapshots are orthogonal to every steering vector")
        result = solve_mmv_fista(
            dictionary,
            snapshots,
            kappa_fraction * peak,
            max_iterations=max_iterations,
            lipschitz=lipschitz,
        )
        magnitudes = np.linalg.norm(result.x, axis=1)

    power = magnitudes.reshape(grid.n_elevations, grid.n_azimuths).T
    return PlanarSpectrum(grid.azimuths_deg, grid.elevations_deg, power), result
