"""Orthogonal matching pursuit (OMP).

A greedy baseline for the same sparse systems the ℓ1 solvers handle.
The paper motivates ℓ1 over greedy/subspace methods by robustness at low
SNR; we keep OMP around so the ablation benchmarks can show that
trade-off on identical scenes.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.exceptions import SolverError
from repro.obs.convergence import ConvergenceTrace
from repro.optim.linalg import validate_system
from repro.optim.operators import as_operator
from repro.optim.result import SolverResult
from repro.optim.retired import reject_retired_kwargs


def solve_omp(
    matrix,
    rhs: np.ndarray,
    *,
    sparsity: int,
    tolerance: float = 0.0,
    telemetry: ConvergenceTrace | None = None,
    callback: Callable[[int, np.ndarray, float], None] | None = None,
    **retired,
) -> SolverResult:
    """Greedy recovery of at most ``sparsity`` atoms.

    At each step the atom most correlated with the current residual is
    added to the support and the coefficients are re-fit by least
    squares on the selected columns.

    Parameters
    ----------
    matrix:
        Dictionary ``A`` — a dense ndarray or any
        :class:`~repro.optim.operators.DictionaryOperator`.  Only the
        selected columns are ever materialized, so a structured operator
        never pays for the full dense dictionary.
    sparsity:
        Maximum number of atoms to select (the model order ``K``).  OMP —
        unlike the paper's ℓ1 program — *needs* this parameter, which is
        exactly the sensitivity to model order that §III-A credits
        ROArray with avoiding.
    tolerance:
        Stop early once ``‖residual‖₂ ≤ tolerance``.  (The pre-1.0
        ``residual_tolerance`` alias is retired and raises ``TypeError``.)
    telemetry / callback:
        Per-greedy-step hooks as in
        :func:`~repro.optim.fista.solve_lasso_fista`: objective is the
        squared residual norm, support size the atoms selected so far.
    """
    if retired:
        reject_retired_kwargs("solve_omp", retired, {"residual_tolerance": "tolerance"})

    validate_system(matrix, rhs)
    if rhs.ndim != 1:
        raise SolverError("solve_omp expects a 1-D measurement vector")
    if sparsity < 1:
        raise SolverError(f"sparsity must be >= 1, got {sparsity}")

    operator = as_operator(matrix)
    bk = operator.backend
    cdtype = bk.complex_dtype(operator.precision)
    m, n = operator.shape
    sparsity = min(sparsity, m, n)
    column_norms = operator.column_norms()
    usable = column_norms > 0

    rhs = bk.asarray(rhs, dtype=cdtype)
    residual = bk.copy(rhs)
    support: list[int] = []
    coefficients = bk.zeros(0, cdtype)

    iterations = 0
    for iterations in range(1, sparsity + 1):
        correlations = bk.abs(operator.rmatvec(residual))
        with bk.errstate():
            correlations = bk.where(
                usable, correlations / bk.where(usable, column_norms, 1.0), -1.0
            )
        correlations[support] = -1.0
        best = bk.argmax(correlations)
        if float(correlations[best]) <= 0:
            break
        support.append(best)

        submatrix = operator.columns(support)
        coefficients = bk.lstsq(submatrix, rhs)
        residual = rhs - submatrix @ coefficients
        if telemetry is not None or callback is not None:
            residual_norm = bk.norm(residual)
            if telemetry is not None:
                telemetry.record(
                    objective=residual_norm**2,
                    residual_norm=residual_norm,
                    support_size=len(support),
                )
            if callback is not None:
                snapshot = bk.zeros(n, cdtype)
                snapshot[support] = coefficients
                callback(iterations, snapshot, residual_norm**2)
        if bk.norm(residual) <= tolerance:
            break

    x = bk.zeros(n, cdtype)
    x[support] = coefficients
    return SolverResult(
        x=x,
        objective=bk.norm(residual) ** 2,
        iterations=iterations,
        converged=True,
        convergence=telemetry,
    )
