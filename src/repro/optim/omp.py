"""Orthogonal matching pursuit (OMP).

A greedy baseline for the same sparse systems the ℓ1 solvers handle.
The paper motivates ℓ1 over greedy/subspace methods by robustness at low
SNR; we keep OMP around so the ablation benchmarks can show that
trade-off on identical scenes.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import SolverError
from repro.optim.linalg import validate_system
from repro.optim.result import SolverResult


def solve_omp(
    matrix: np.ndarray,
    rhs: np.ndarray,
    *,
    sparsity: int,
    residual_tolerance: float = 0.0,
) -> SolverResult:
    """Greedy recovery of at most ``sparsity`` atoms.

    At each step the atom most correlated with the current residual is
    added to the support and the coefficients are re-fit by least
    squares on the selected columns.

    Parameters
    ----------
    sparsity:
        Maximum number of atoms to select (the model order ``K``).  OMP —
        unlike the paper's ℓ1 program — *needs* this parameter, which is
        exactly the sensitivity to model order that §III-A credits
        ROArray with avoiding.
    residual_tolerance:
        Stop early once ``‖residual‖₂ ≤ residual_tolerance``.
    """
    validate_system(matrix, rhs)
    if rhs.ndim != 1:
        raise SolverError("solve_omp expects a 1-D measurement vector")
    if sparsity < 1:
        raise SolverError(f"sparsity must be >= 1, got {sparsity}")

    m, n = matrix.shape
    sparsity = min(sparsity, m, n)
    column_norms = np.linalg.norm(matrix, axis=0)
    usable = column_norms > 0

    residual = rhs.astype(complex).copy()
    support: list[int] = []
    coefficients = np.zeros(0, dtype=complex)

    iterations = 0
    for iterations in range(1, sparsity + 1):
        correlations = np.abs(matrix.conj().T @ residual)
        with np.errstate(invalid="ignore", divide="ignore"):
            correlations = np.where(usable, correlations / np.where(usable, column_norms, 1.0), -1.0)
        correlations[support] = -1.0
        best = int(np.argmax(correlations))
        if correlations[best] <= 0:
            break
        support.append(best)

        submatrix = matrix[:, support]
        coefficients, *_ = np.linalg.lstsq(submatrix, rhs, rcond=None)
        residual = rhs - submatrix @ coefficients
        if np.linalg.norm(residual) <= residual_tolerance:
            break

    x = np.zeros(n, dtype=complex)
    x[support] = coefficients
    return SolverResult(
        x=x,
        objective=float(np.linalg.norm(residual) ** 2),
        iterations=iterations,
        converged=True,
    )
