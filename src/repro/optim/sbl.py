"""Sparse Bayesian learning (SBL) for single- and multi-snapshot recovery.

The paper's related work cites off-grid sparse Bayesian DOA (Yang,
Xie & Zhang [31]); SBL is the inference engine behind it.  Each atom
gets an independent prior variance γ_i; evidence maximization (EM)
drives most γ_i to zero, which is automatic-relevance-determination
sparsity — no κ to tune, at the price of iterative posterior updates.

Model (complex-valued):

    y = A x + n,   x_i ~ CN(0, γ_i),   n ~ CN(0, σ²I)

E-step posterior:  Σ = (AᴴA/σ² + Γ⁻¹)⁻¹,  μ = Σ Aᴴ y / σ²
M-step update:     γ_i ← |μ_i|² + Σ_ii     (per snapshot average)

The implementation works on a snapshot matrix (columns share γ), so the
single-vector case is just one column.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.exceptions import SolverError
from repro.obs.convergence import ConvergenceTrace
from repro.optim.linalg import validate_system
from repro.optim.operators import as_operator
from repro.optim.result import SolverResult


def solve_sbl(
    matrix,
    rhs: np.ndarray,
    *,
    noise_variance: float | None = None,
    max_iterations: int = 60,
    tolerance: float = 1e-4,
    prune_threshold: float = 1e-6,
    telemetry: ConvergenceTrace | None = None,
    callback: Callable[[int, np.ndarray, float], None] | None = None,
) -> SolverResult:
    """Sparse Bayesian learning via EM evidence maximization.

    Parameters
    ----------
    matrix:
        Dictionary ``A`` of shape (m, n).
    rhs:
        Measurement vector (m,) or snapshot matrix (m, p).
    noise_variance:
        σ² of the observation noise.  Estimated alongside γ when
        omitted (initialized from the measurement power, updated by the
        standard EM rule).
    max_iterations:
        EM iteration cap.
    tolerance:
        Relative change of the γ vector below which EM stops.
    prune_threshold:
        Atoms whose γ falls below ``prune_threshold × max(γ)`` are
        zeroed in the returned posterior mean.
    telemetry / callback:
        Per-EM-iteration hooks as in
        :func:`~repro.optim.fista.solve_lasso_fista`: objective is the
        squared residual norm of the current posterior mean, support
        size the number of atoms above the prune threshold.

    Returns
    -------
    SolverResult
        ``x`` is the posterior mean (same trailing shape as ``rhs``);
        ``history`` records ‖γ‖₁ per iteration.
    """
    validate_system(matrix, rhs)
    # EM needs per-column posterior variances of the full dictionary, so
    # structured operators are materialized once here.
    matrix = as_operator(matrix).to_dense()
    rhs_matrix = rhs[:, None] if rhs.ndim == 1 else rhs
    m, n = matrix.shape
    p = rhs_matrix.shape[1]
    if p == 0:
        raise SolverError("snapshot matrix has zero columns")
    if noise_variance is not None and noise_variance <= 0:
        raise SolverError(f"noise_variance must be positive, got {noise_variance}")

    signal_power = float(np.mean(np.abs(rhs_matrix) ** 2))
    if signal_power == 0.0:
        x = np.zeros((n, p), dtype=complex)
        result_x = x[:, 0] if rhs.ndim == 1 else x
        return SolverResult(x=result_x, objective=0.0, iterations=0, converged=True,
                            convergence=telemetry)

    sigma2 = noise_variance if noise_variance is not None else 0.1 * signal_power
    estimate_noise = noise_variance is None
    gamma = np.full(n, signal_power)

    gram = matrix.conj().T @ matrix
    atb = matrix.conj().T @ rhs_matrix

    history: list[float] = []
    converged = False
    iterations = 0
    mean = np.zeros((n, p), dtype=complex)
    for iterations in range(1, max_iterations + 1):
        # E-step (woodbury on the m×m system keeps it cheap for m ≪ n).
        gamma_safe = np.maximum(gamma, 1e-18)
        scaled = matrix * gamma_safe[None, :]
        core = sigma2 * np.eye(m) + scaled @ matrix.conj().T
        solve_y = np.linalg.solve(core, rhs_matrix)
        mean = gamma_safe[:, None] * (matrix.conj().T @ solve_y)
        # Posterior variances: Σ_ii = γ_i − γ_i² aᵢᴴ C⁻¹ aᵢ.
        core_inv_a = np.linalg.solve(core, matrix)
        quadratic = np.real(np.sum(matrix.conj() * core_inv_a, axis=0))
        posterior_var = gamma_safe - gamma_safe**2 * quadratic
        posterior_var = np.maximum(posterior_var, 0.0)

        gamma_next = np.mean(np.abs(mean) ** 2, axis=1) + posterior_var

        if estimate_noise:
            residual = rhs_matrix - matrix @ mean
            residual_power = float(np.mean(np.abs(residual) ** 2))
            smear = float(np.sum(quadratic * gamma_safe * sigma2)) / m
            sigma2 = max(residual_power + smear * sigma2, 1e-12 * signal_power)

        change = np.linalg.norm(gamma_next - gamma) / max(np.linalg.norm(gamma), 1e-18)
        gamma = gamma_next
        history.append(float(np.sum(gamma)))
        if telemetry is not None or callback is not None:
            em_residual = rhs_matrix - matrix @ mean
            residual_norm = float(np.linalg.norm(em_residual))
            current = residual_norm**2
            active = int(np.count_nonzero(gamma > prune_threshold * gamma.max(initial=0.0)))
            if telemetry is not None:
                telemetry.record(
                    objective=current,
                    residual_norm=residual_norm,
                    support_size=active,
                )
            if callback is not None:
                snapshot = mean[:, 0] if rhs.ndim == 1 else mean
                callback(iterations, snapshot, current)
        if change < tolerance:
            converged = True
            break

    keep = gamma > prune_threshold * gamma.max(initial=0.0)
    mean[~keep] = 0.0

    residual = rhs_matrix - matrix @ mean
    objective = float(np.vdot(residual, residual).real)
    result_x = mean[:, 0] if rhs.ndim == 1 else mean
    return SolverResult(
        x=result_x,
        objective=objective,
        iterations=iterations,
        converged=converged,
        history=history,
        convergence=telemetry,
    )
