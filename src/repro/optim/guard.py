"""Solver guardrails: divergence detection, budgets, and a fallback chain.

:func:`solve_guarded` wraps :func:`repro.optim.facade.solve` with three
protections a long-running service needs:

* **Divergence detection** — the accepted objective must beat (a
  multiple of) the zero-solution baseline ``‖y‖²`` and be finite.  The
  check is O(1) on the final result, so the clean path pays nothing
  per iteration and the accepted :class:`~repro.optim.result.SolverResult`
  is byte-identical to an unguarded solve.
* **Iteration / time budgets** — a per-policy ``max_iterations``
  override, plus an optional wall-clock budget enforced through the
  solvers' per-iteration ``callback`` hook (only wired when a budget is
  set, so it costs nothing otherwise).
* **Fallback chain** — FISTA → ADMM → OMP by default: when a solver
  diverges, raises, or runs out of budget, the next one gets the same
  system.  Which solver finally produced the answer — and which were
  rejected on the way — is surfaced on ``SolverResult.solver`` /
  ``SolverResult.fallbacks`` so degraded solves are visible, never
  silent.

For MMV (2-D) measurements the primary method sees the full snapshot
matrix; single-measurement fallbacks get the principal singular column
(the rank-1 signal subspace), preserving the joint-sparse structure
while staying solvable by the 1-D chain.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, replace

import numpy as np

from repro.exceptions import SolverDivergenceError, SolverError
from repro.optim.facade import _METHODS, solve
from repro.optim.result import SolverResult

#: Options meaningful per solver; anything else is dropped when falling
#: back so e.g. a FISTA ``lipschitz`` hint never reaches OMP.
_METHOD_OPTION_KEYS = {
    "fista": ("max_iterations", "tolerance", "x0", "lipschitz", "telemetry", "callback"),
    "mmv": ("max_iterations", "tolerance", "x0", "lipschitz", "telemetry", "callback"),
    "admm": ("max_iterations", "tolerance", "rho", "factors", "telemetry", "callback"),
    "omp": ("sparsity", "tolerance", "telemetry", "callback"),
    "reweighted": ("max_iterations", "tolerance", "telemetry", "callback"),
    "sbl": ("max_iterations", "tolerance", "telemetry", "callback"),
}


class _TimeBudgetExceeded(SolverError):
    """Internal: raised from the per-iteration deadline callback."""


@dataclass(frozen=True)
class GuardrailPolicy:
    """Knobs of :func:`solve_guarded`.

    Attributes
    ----------
    fallback_chain:
        Solver names tried in order for 1-D measurements.
    mmv_chain:
        Solver names tried in order for 2-D snapshot matrices; non-MMV
        entries run on the principal singular column.
    divergence_factor:
        A result is accepted only if ``objective <= factor · ‖y‖²``
        (and finite).  The default 1.0 means "must beat the zero
        solution" — every healthy solve does, so clean inputs are
        unaffected.
    time_budget_s:
        Optional wall-clock budget across the whole chain.  Solvers
        with a ``callback`` hook are aborted mid-iteration once the
        budget expires; the chain stops either way.
    max_iterations:
        Optional per-solve iteration cap overriding the caller's.
    omp_sparsity:
        Model order handed to OMP when the caller did not pass one (the
        greedy fallback needs it; the ℓ1 solvers do not).
    """

    fallback_chain: tuple[str, ...] = ("fista", "admm", "omp")
    mmv_chain: tuple[str, ...] = ("mmv", "fista", "admm", "omp")
    divergence_factor: float = 1.0
    time_budget_s: float | None = None
    max_iterations: int | None = None
    omp_sparsity: int = 8

    def __post_init__(self) -> None:
        for chain_name, chain in (("fallback_chain", self.fallback_chain), ("mmv_chain", self.mmv_chain)):
            if not chain:
                raise SolverError(f"{chain_name} must name at least one solver")
            unknown = [method for method in chain if method not in _METHODS]
            if unknown:
                raise SolverError(f"{chain_name} names unknown solvers {unknown}")
        if self.divergence_factor <= 0:
            raise SolverError(f"divergence_factor must be positive, got {self.divergence_factor}")
        if self.time_budget_s is not None and self.time_budget_s <= 0:
            raise SolverError(f"time_budget_s must be positive, got {self.time_budget_s}")
        if self.omp_sparsity < 1:
            raise SolverError(f"omp_sparsity must be >= 1, got {self.omp_sparsity}")


def _principal_column(snapshots: np.ndarray) -> np.ndarray:
    """Rank-1 signal-subspace reduction of an ``(m, p)`` snapshot matrix."""
    if snapshots.shape[1] == 1:
        return snapshots[:, 0]
    _, _, vh = np.linalg.svd(snapshots, full_matrices=False)
    return snapshots @ vh[0].conj()


def _method_options(method: str, options: dict, policy: GuardrailPolicy, deadline: float | None) -> dict:
    allowed = _METHOD_OPTION_KEYS[method]
    kwargs = {key: value for key, value in options.items() if key in allowed and value is not None}
    if policy.max_iterations is not None and "max_iterations" in allowed:
        kwargs["max_iterations"] = policy.max_iterations
    if method == "omp":
        kwargs.setdefault("sparsity", policy.omp_sparsity)
    if deadline is not None and "callback" in allowed:
        caller_callback = kwargs.get("callback")

        def _deadline_callback(iteration, x, objective):
            if caller_callback is not None:
                caller_callback(iteration, x, objective)
            if time.monotonic() > deadline:
                raise _TimeBudgetExceeded(
                    f"{method} exceeded the {policy.time_budget_s:g} s solve budget "
                    f"at iteration {iteration}"
                )

        kwargs["callback"] = _deadline_callback
    return kwargs


def solve_guarded(
    matrix,
    rhs: np.ndarray,
    *,
    kappa: float | None = None,
    kappa_fraction: float = 0.05,
    policy: GuardrailPolicy | None = None,
    **options,
) -> SolverResult:
    """Sparse recovery with divergence detection and solver fallback.

    Runs the policy's chain in order; the first solver whose result is
    finite and beats the divergence bound wins, and the returned
    :class:`~repro.optim.result.SolverResult` records it in ``.solver``
    with the rejected attempts in ``.fallbacks``.  An explicit
    ``kappa`` is forwarded to the primary method only — fallbacks
    re-derive their own from ``kappa_fraction``, because a κ tuned for
    a healthy solve can be meaningless on the degenerate input that
    triggered the fallback.

    Raises
    ------
    SolverDivergenceError
        When every solver in the chain diverged or failed.
    SolverError
        When the time budget expires before any solver finished.
    """
    policy = policy or GuardrailPolicy()
    rhs_array = np.asarray(rhs)
    is_mmv = rhs_array.ndim == 2
    chain = policy.mmv_chain if is_mmv else policy.fallback_chain
    baseline = float(np.sum(np.abs(rhs_array) ** 2))
    bound = policy.divergence_factor * baseline + 1e-12 * max(baseline, 1.0)
    deadline = None
    if policy.time_budget_s is not None:
        deadline = time.monotonic() + policy.time_budget_s

    rejected: list[str] = []
    errors: list[str] = []
    reduced: np.ndarray | None = None
    for position, method in enumerate(chain):
        if deadline is not None and time.monotonic() > deadline:
            raise SolverError(
                f"solve budget of {policy.time_budget_s:g} s exhausted after "
                f"trying {rejected or ['nothing']}"
            )
        method_rhs = rhs_array
        method_options = dict(options)
        if is_mmv and method != "mmv":
            if reduced is None:
                reduced = _principal_column(rhs_array)
            method_rhs = reduced
            # A 2-D warm start cannot seed a 1-D fallback solve.
            method_options.pop("x0", None)
        method_kappa = kappa if position == 0 else None
        if not _METHODS[method][1]:
            method_kappa = None
        try:
            result = solve(
                matrix,
                method_rhs,
                method=method,
                kappa=method_kappa,
                kappa_fraction=kappa_fraction,
                **_method_options(method, method_options, policy, deadline),
            )
        except SolverError as error:
            rejected.append(method)
            errors.append(f"{method}: {error}")
            continue
        if not np.isfinite(result.objective) or result.objective > bound:
            rejected.append(method)
            errors.append(
                f"{method}: diverged (objective {result.objective:.3g} > bound {bound:.3g})"
            )
            continue
        return replace(result, solver=method, fallbacks=tuple(rejected))

    raise SolverDivergenceError(
        f"every solver in chain {list(chain)} failed: " + "; ".join(errors)
    )
