"""Hard errors for retired keyword spellings.

The PR 2 compatibility shims (``solve_omp(residual_tolerance=)``,
``solve_reweighted_lasso(inner_iterations=)``) went through one
deprecation cycle as warning-emitting aliases.  They are now removed;
the solvers route unknown keywords through
:func:`reject_retired_kwargs` so a caller still using the old spelling
gets a ``TypeError`` that names the replacement instead of a bare
"unexpected keyword argument".
"""

from __future__ import annotations

from typing import Mapping, NoReturn


def reject_retired_kwargs(
    function: str, kwargs: Mapping[str, object], renames: Mapping[str, str]
) -> NoReturn:
    """Raise ``TypeError`` for the first unexpected keyword in ``kwargs``.

    Keywords listed in ``renames`` get a pointer to the new spelling;
    anything else fails like a normal unknown keyword.
    """
    for old, new in renames.items():
        if old in kwargs:
            raise TypeError(
                f"{function}() no longer accepts {old!r} "
                f"(the deprecated alias was removed); use {new!r} instead"
            )
    unexpected = next(iter(kwargs))
    raise TypeError(f"{function}() got an unexpected keyword argument {unexpected!r}")
