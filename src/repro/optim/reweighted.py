"""Iteratively reweighted ℓ1 minimization (Candès–Wakin–Boyd).

The plain ℓ1 penalty is biased: large coefficients pay more than small
ones, so recovered peaks are shrunk and faint paths can be drowned by
the bias of strong ones.  Reweighted ℓ1 alternates LASSO solves with
per-atom weights ``w_i = 1 / (|x_i| + ε)``, which approximates the ℓ0
penalty and yields visibly sharper spectra — a standard upgrade for
sparse DOA estimation built directly on the machinery the paper uses
(ref. [23] is Candès & Wakin).

Implementation note: a weighted LASSO ``min ‖Ax−y‖² + κ‖Wx‖₁`` is the
plain LASSO in the variables ``z = Wx`` with columns of ``A`` scaled by
``1/w_i``, so each outer iteration reuses :func:`solve_lasso_fista`.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.exceptions import SolverError
from repro.obs.convergence import ConvergenceTrace, support_size
from repro.optim.fista import lasso_objective, solve_lasso_fista
from repro.optim.linalg import validate_system
from repro.optim.operators import as_operator
from repro.optim.result import SolverResult
from repro.optim.retired import reject_retired_kwargs


def solve_reweighted_lasso(
    matrix,
    rhs: np.ndarray,
    kappa: float,
    *,
    reweight_iterations: int = 3,
    epsilon: float | None = None,
    max_iterations: int = 200,
    tolerance: float = 1e-6,
    telemetry: ConvergenceTrace | None = None,
    callback: Callable[[int, np.ndarray, float], None] | None = None,
    **retired,
) -> SolverResult:
    """Reweighted-ℓ1 sparse recovery.

    Parameters
    ----------
    matrix / rhs / kappa:
        As in :func:`repro.optim.fista.solve_lasso_fista`; κ applies to
        the *first* (unweighted) pass.  Operator dictionaries are
        materialized once — the reweighting scales individual columns,
        which destroys any separable structure anyway.
    reweight_iterations:
        Number of reweighting passes after the initial solve.  2–4 is
        the standard range; returns diminish quickly.
    epsilon:
        Stability floor in the weight ``1/(|x| + ε)``.  Defaults to 10%
        of the first pass's peak magnitude — large enough that zero
        coefficients get a finite (not crushing) weight, small enough
        that strong atoms become nearly free.
    max_iterations / tolerance:
        Passed to the inner FISTA solves (per pass).  (The pre-1.0
        ``inner_iterations`` alias is retired and raises ``TypeError``.)
    telemetry / callback:
        Per-*outer-pass* hooks as in
        :func:`~repro.optim.fista.solve_lasso_fista` (the unweighted
        objective after the initial solve and after each reweighting
        pass) — one entry per pass, not per inner FISTA iteration.

    Returns
    -------
    SolverResult
        ``iterations`` counts the total inner FISTA iterations across
        all passes; ``history`` holds the objective after each outer
        pass (measured with the *unweighted* κ‖x‖₁ for comparability).
    """
    if retired:
        reject_retired_kwargs(
            "solve_reweighted_lasso", retired, {"inner_iterations": "max_iterations"}
        )

    validate_system(matrix, rhs)
    if rhs.ndim != 1:
        raise SolverError("solve_reweighted_lasso expects a 1-D measurement vector")
    if reweight_iterations < 0:
        raise SolverError(f"reweight_iterations must be >= 0, got {reweight_iterations}")
    if epsilon is not None and epsilon <= 0:
        raise SolverError(f"epsilon must be positive, got {epsilon}")

    matrix = as_operator(matrix).to_dense()
    first = solve_lasso_fista(
        matrix, rhs, kappa, max_iterations=max_iterations, tolerance=tolerance
    )
    x = first.x
    total_inner = first.iterations
    history = [lasso_objective(matrix, rhs, x, kappa)]

    def _observe(pass_index: int) -> None:
        if telemetry is None and callback is None:
            return
        residual_norm = float(np.linalg.norm(matrix @ x - rhs))
        if telemetry is not None:
            telemetry.record(
                objective=history[-1],
                residual_norm=residual_norm,
                support_size=support_size(x),
            )
        if callback is not None:
            callback(pass_index, x, history[-1])

    _observe(0)
    peak = float(np.abs(x).max(initial=0.0))
    if peak == 0.0:
        # Everything thresholded away on the first pass; reweighting
        # cannot resurrect it.
        return SolverResult(x=x, objective=history[0], iterations=total_inner,
                            converged=first.converged, history=history,
                            convergence=telemetry)
    floor = epsilon if epsilon is not None else 0.1 * peak

    for outer in range(reweight_iterations):
        weights = 1.0 / (np.abs(x) + floor)
        # Normalize so atoms currently at zero keep the original κ while
        # strong atoms become nearly penalty-free (the debiasing effect).
        weights /= weights.max()
        scaled_matrix = matrix / weights[None, :]
        inner = solve_lasso_fista(
            scaled_matrix, rhs, kappa, max_iterations=max_iterations, tolerance=tolerance
        )
        x = inner.x / weights
        total_inner += inner.iterations
        history.append(lasso_objective(matrix, rhs, x, kappa))
        _observe(outer + 1)

    return SolverResult(
        x=x,
        objective=history[-1],
        iterations=total_inner,
        converged=True,
        history=history,
        convergence=telemetry,
    )
