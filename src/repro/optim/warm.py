"""First-class warm-start state for the sparse solvers.

Warm starting — seeding a solve with a previous solution — used to live
as private ndarray slots inside :class:`~repro.core.pipeline.RoArrayEstimator`,
which made it a ``workers=0``-only hack: the state could not cross a
process boundary, could not be journaled, and silently coupled each
result to whatever the estimator solved before it.

:class:`WarmStartState` promotes that state to a real object:

* **Keyed slots** — each slot holds one prior solution under a caller
  chosen key (``"single"`` / ``"fused"`` for the estimator pipeline,
  ``"<client>:<ap>"`` for the streaming service), so independent
  problem streams warm independently.
* **Shape-checked reads** — :meth:`get` returns ``None`` (a cold start)
  when the stored solution does not match the requested shape, so a
  changed grid or snapshot width can never poison a solve.
* **Serializable** — :meth:`to_dict` / :meth:`from_dict` round-trip the
  state byte-exactly through JSON, which is what lets the batch runtime
  ship a warm seed to worker processes and lets the streaming service
  snapshot per-client state.
* **Accounted** — ``hits`` / ``misses`` count how often a solve actually
  warmed, feeding the service metrics.

:func:`repro.optim.batch.solve_batch` accepts a state plus per-problem
keys (``warm_state=`` / ``warm_keys=``) for cross-batch carry-over, and
the estimator carries one as ``.warm_state`` with an optional frozen
``.warm_seed`` it resets to (see
:meth:`repro.core.pipeline.RoArrayEstimator.reset_warm_state`).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.exceptions import ConfigurationError


@dataclass
class WarmStartState:
    """Keyed, serializable store of prior solutions for warm starts."""

    slots: dict[str, np.ndarray] = field(default_factory=dict)

    def __post_init__(self) -> None:
        # Counters are bookkeeping, not identity: they stay out of the
        # dataclass fields so equality, pickling for the worker pool and
        # the checkpoint config digest all see only the solutions.
        self.hits = 0
        self.misses = 0

    # -- access ------------------------------------------------------------

    def get(self, key: str, shape: tuple[int, ...] | None = None) -> np.ndarray | None:
        """The stored solution for ``key``, or ``None`` for a cold start.

        With ``shape`` given, a stored solution of any other shape is a
        miss — warming a solve with an incompatible iterate would crash
        it (or worse, silently corrupt it).
        """
        solution = self.slots.get(key)
        if solution is None or (shape is not None and solution.shape != tuple(shape)):
            self.misses += 1
            return None
        self.hits += 1
        return solution

    def put(self, key: str, solution: np.ndarray) -> None:
        """Store ``solution`` (copied) as the warm start for ``key``.

        Zeros are canonicalized (``-0.0`` becomes ``+0.0``: adding zero
        flips only the sign of zeros).  Soft-thresholding leaves ``-0.0``
        in most shrunk entries, which would make sparse-recovery
        solutions look dense to the snapshot codec's bit-level nonzero
        test; canonicalizing at the single write point keeps stored
        slots identical on the clean path and after a snapshot restore.
        """
        stored = np.array(solution, copy=True)
        if stored.dtype.kind in "fc":
            stored += 0
        self.slots[key] = stored

    def drop(self, key: str) -> None:
        """Forget one key (e.g. an evicted client session)."""
        self.slots.pop(key, None)

    def clear(self) -> None:
        self.slots.clear()

    def copy(self) -> "WarmStartState":
        """An independent deep copy (counters reset — it is new state)."""
        return WarmStartState(
            slots={key: np.array(value, copy=True) for key, value in self.slots.items()}
        )

    # -- introspection -----------------------------------------------------

    def __len__(self) -> int:
        return len(self.slots)

    def __contains__(self, key: str) -> bool:
        return key in self.slots

    @property
    def nbytes(self) -> int:
        return sum(value.nbytes for value in self.slots.values())

    # -- serialization -----------------------------------------------------

    def to_dict(self) -> dict:
        """JSON-ready view; floats survive byte-exactly via ``repr``."""
        return {
            "slots": {
                key: {
                    "shape": list(value.shape),
                    "real": np.asarray(value, dtype=complex).real.ravel().tolist(),
                    "imag": np.asarray(value, dtype=complex).imag.ravel().tolist(),
                }
                for key, value in self.slots.items()
            }
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "WarmStartState":
        slots: dict[str, np.ndarray] = {}
        for key, record in payload.get("slots", {}).items():
            shape = tuple(int(s) for s in record["shape"])
            real = np.asarray(record["real"], dtype=float)
            imag = np.asarray(record["imag"], dtype=float)
            if real.shape != imag.shape:
                raise ConfigurationError(
                    f"warm slot {key!r} has mismatched real/imag lengths"
                )
            slots[key] = (real + 1j * imag).reshape(shape)
        return cls(slots=slots)
