"""Structured dictionary operators for the sparse solvers.

Every solver in :mod:`repro.optim` needs only four things from a
dictionary ``A``: forward products ``A @ x``, adjoint products
``Aᴴ @ r``, the shape, and the gradient Lipschitz constant ``‖AᴴA‖₂``.
:class:`DictionaryOperator` abstracts exactly that quadruple so a
dictionary with exploitable structure never has to be materialized.

The payoff case is the paper's Eq. 16 joint dictionary: it is by
construction a Kronecker product ``kron(G, S̃)`` of the delay phase
ramps ``G ∈ ℂ^{L×Nτ}`` and the angle steering matrix ``S̃ ∈ ℂ^{M×Nθ}``
(see :mod:`repro.core.steering`).  :class:`KroneckerJointOperator`
applies it as two small matmuls over the ``Nθ × Nτ`` grid instead of one
dense ``(M·L) × (Nθ·Nτ)`` GEMM — the separable-dictionary trick of
multidimensional OMP (Palacios et al.) applied to the ℓ1/ℓ2,1 path —
and its Lipschitz constant factorizes exactly as
``λmax(S̃ᴴS̃)·λmax(GᴴG)``.

:func:`as_operator` adapts plain arrays, so solver internals are written
once against the operator interface and accept either form.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Sequence

import numpy as np

from repro.exceptions import SolverError
from repro.optim.linalg import estimate_lipschitz


class DictionaryOperator(ABC):
    """Abstract dictionary: matvec / rmatvec / shape / Lipschitz / dense.

    Subclasses must set ``shape = (m, n)`` and implement the abstract
    methods below; ``matvec`` and ``rmatvec`` must accept both a vector
    (1-D) and a snapshot matrix (2-D, one column per snapshot) and
    return the matching shape.  ``A @ x`` is sugar for ``matvec``.
    """

    shape: tuple[int, int]

    @abstractmethod
    def matvec(self, x: np.ndarray) -> np.ndarray:
        """``A @ x`` for ``x`` of shape ``(n,)`` or ``(n, p)``."""

    @abstractmethod
    def rmatvec(self, r: np.ndarray) -> np.ndarray:
        """``Aᴴ @ r`` for ``r`` of shape ``(m,)`` or ``(m, p)``."""

    @abstractmethod
    def to_dense(self) -> np.ndarray:
        """The materialized ``(m, n)`` dictionary (for tests / fallbacks)."""

    @abstractmethod
    def lipschitz(self) -> float:
        """``‖AᴴA‖₂``, the Lipschitz constant of ``x ↦ Aᴴ(Ax)``."""

    def column_norms(self) -> np.ndarray:
        """Per-column ℓ2 norms (used by OMP and the κ heuristics)."""
        return np.linalg.norm(self.to_dense(), axis=0)

    def columns(self, indices: Sequence[int]) -> np.ndarray:
        """Materialize the selected columns as a dense ``(m, k)`` block."""
        return self.to_dense()[:, list(indices)]

    def __matmul__(self, x: np.ndarray) -> np.ndarray:
        return self.matvec(x)


class DenseOperator(DictionaryOperator):
    """Adapter giving a plain ndarray the operator interface."""

    def __init__(self, matrix: np.ndarray, *, lipschitz: float | None = None) -> None:
        matrix = np.asarray(matrix)
        if matrix.ndim != 2:
            raise SolverError(f"dictionary must be 2-D, got ndim={matrix.ndim}")
        self.matrix = matrix
        self.shape = matrix.shape
        self._lipschitz = lipschitz

    def matvec(self, x: np.ndarray) -> np.ndarray:
        return self.matrix @ x

    def rmatvec(self, r: np.ndarray) -> np.ndarray:
        return self.matrix.conj().T @ r

    def to_dense(self) -> np.ndarray:
        return self.matrix

    def lipschitz(self) -> float:
        if self._lipschitz is None:
            self._lipschitz = estimate_lipschitz(self.matrix)
        return self._lipschitz

    def column_norms(self) -> np.ndarray:
        return np.linalg.norm(self.matrix, axis=0)

    def columns(self, indices: Sequence[int]) -> np.ndarray:
        return self.matrix[:, list(indices)]


class KroneckerJointOperator(DictionaryOperator):
    """The Eq. 16 joint dictionary ``kron(temporal, spatial)``, unmaterialized.

    Parameters
    ----------
    temporal:
        Delay phase ramps ``G`` of shape ``(L, Nτ)``
        (:func:`repro.core.steering.delay_ramp_dictionary`).
    spatial:
        Angle steering matrix ``S̃`` of shape ``(M, Nθ)``
        (:func:`repro.core.steering.angle_steering_dictionary`).

    The represented dictionary is ``kron(G, S̃)`` of shape
    ``(M·L, Nθ·Nτ)`` with rows ordered antenna-fastest (Eq. 15) and
    columns delay-major (column ``j·Nθ + i`` ↔ angle ``i``, delay ``j``)
    — identical to :func:`repro.core.steering.joint_steering_dictionary`.
    A matvec costs two small matmuls, ``O(Nθ·Nτ·(M + L))`` instead of
    the dense ``O(M·L·Nθ·Nτ)``.
    """

    def __init__(self, temporal: np.ndarray, spatial: np.ndarray) -> None:
        temporal = np.asarray(temporal)
        spatial = np.asarray(spatial)
        if temporal.ndim != 2 or spatial.ndim != 2:
            raise SolverError("KroneckerJointOperator factors must be 2-D")
        if not (np.all(np.isfinite(temporal)) and np.all(np.isfinite(spatial))):
            raise SolverError("KroneckerJointOperator factors contain non-finite entries")
        self.temporal = temporal
        self.spatial = spatial
        self.n_subcarriers, self.n_delays = temporal.shape
        self.n_antennas, self.n_angles = spatial.shape
        self.shape = (
            self.n_antennas * self.n_subcarriers,
            self.n_angles * self.n_delays,
        )
        self._lipschitz: float | None = None

    def matvec(self, x: np.ndarray) -> np.ndarray:
        x = np.asarray(x)
        if x.ndim == 1:
            # Delay-major coefficients → (Nτ, Nθ) grid; the product
            # S̃ Xᵀ Gᵀ is the (M, L) CSI matrix, re-vectorized
            # antenna-fastest exactly like vectorize_csi_matrix.
            grid = x.reshape(self.n_delays, self.n_angles)
            csi = self.spatial @ grid.T @ self.temporal.T
            return csi.T.reshape(-1)
        if x.ndim == 2:
            grid = x.reshape(self.n_delays, self.n_angles, x.shape[1])
            partial = np.tensordot(self.spatial, grid, axes=([1], [1]))  # (M, Nτ, p)
            full = np.tensordot(self.temporal, partial, axes=([1], [1]))  # (L, M, p)
            return full.reshape(self.shape[0], x.shape[1])
        raise SolverError(f"matvec operand must be 1-D or 2-D, got ndim={x.ndim}")

    def rmatvec(self, r: np.ndarray) -> np.ndarray:
        r = np.asarray(r)
        if r.ndim == 1:
            csi = r.reshape(self.n_subcarriers, self.n_antennas).T  # (M, L)
            grid = self.spatial.conj().T @ csi @ self.temporal.conj()  # (Nθ, Nτ)
            return grid.T.reshape(-1)
        if r.ndim == 2:
            stacked = r.reshape(self.n_subcarriers, self.n_antennas, r.shape[1])
            partial = np.tensordot(self.spatial.conj(), stacked, axes=([0], [1]))  # (Nθ, L, p)
            grid = np.tensordot(self.temporal.conj(), partial, axes=([0], [1]))  # (Nτ, Nθ, p)
            return grid.reshape(self.shape[1], r.shape[1])
        raise SolverError(f"rmatvec operand must be 1-D or 2-D, got ndim={r.ndim}")

    def to_dense(self) -> np.ndarray:
        return np.kron(self.temporal, self.spatial)

    def lipschitz(self) -> float:
        """Exact: ``‖AᴴA‖₂ = λmax(S̃ᴴS̃)·λmax(GᴴG)`` for Kronecker products."""
        if self._lipschitz is None:
            spatial_top = float(
                np.linalg.eigvalsh(self.spatial.conj().T @ self.spatial)[-1]
            )
            temporal_top = float(
                np.linalg.eigvalsh(self.temporal.conj().T @ self.temporal)[-1]
            )
            self._lipschitz = spatial_top * temporal_top
        return self._lipschitz

    def column_norms(self) -> np.ndarray:
        spatial_norms = np.linalg.norm(self.spatial, axis=0)
        temporal_norms = np.linalg.norm(self.temporal, axis=0)
        return np.outer(temporal_norms, spatial_norms).reshape(-1)

    def columns(self, indices: Sequence[int]) -> np.ndarray:
        block = np.empty((self.shape[0], len(list(indices))), dtype=complex)
        for k, index in enumerate(indices):
            delay, angle = divmod(int(index), self.n_angles)
            block[:, k] = np.outer(self.temporal[:, delay], self.spatial[:, angle]).reshape(-1)
        return block


def as_operator(matrix) -> DictionaryOperator:
    """Adapt ``matrix`` (ndarray or operator) to the operator interface."""
    if isinstance(matrix, DictionaryOperator):
        return matrix
    return DenseOperator(matrix)
