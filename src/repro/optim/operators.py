"""Structured dictionary operators for the sparse solvers.

Every solver in :mod:`repro.optim` needs only four things from a
dictionary ``A``: forward products ``A @ x``, adjoint products
``Aᴴ @ r``, the shape, and the gradient Lipschitz constant ``‖AᴴA‖₂``.
:class:`DictionaryOperator` abstracts exactly that quadruple so a
dictionary with exploitable structure never has to be materialized.

The payoff case is the paper's Eq. 16 joint dictionary: it is by
construction a Kronecker product ``kron(G, S̃)`` of the delay phase
ramps ``G ∈ ℂ^{L×Nτ}`` and the angle steering matrix ``S̃ ∈ ℂ^{M×Nθ}``
(see :mod:`repro.core.steering`).  :class:`KroneckerJointOperator`
applies it as two small matmuls over the ``Nθ × Nτ`` grid instead of one
dense ``(M·L) × (Nθ·Nτ)`` GEMM — the separable-dictionary trick of
multidimensional OMP (Palacios et al.) applied to the ℓ1/ℓ2,1 path —
and its Lipschitz constant factorizes exactly as
``λmax(S̃ᴴS̃)·λmax(GᴴG)``.

Operators are bound to an :class:`~repro.optim.backend.ArrayBackend`
(numpy by default) and expose :meth:`~DictionaryOperator.to_backend` to
re-home their factors on torch/cupy, plus batched products
``matmul_batch``/``rmatmul_batch`` that apply the dictionary to a whole
stack of problems in one backend GEMM — the seam
:func:`repro.optim.solve_batch` is built on.

:func:`as_operator` adapts plain arrays, so solver internals are written
once against the operator interface and accept either form.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Sequence

import numpy as np

from repro.exceptions import SolverError
from repro.optim.backend import ArrayBackend, normalize_precision, resolve_backend
from repro.optim.linalg import estimate_lipschitz


class DictionaryOperator(ABC):
    """Abstract dictionary: matvec / rmatvec / shape / Lipschitz / dense.

    Subclasses must set ``shape = (m, n)``, bind ``backend`` (an
    :class:`~repro.optim.backend.ArrayBackend`), and implement the
    abstract methods below; ``matvec`` and ``rmatvec`` must accept both
    a vector (1-D) and a snapshot matrix (2-D, one column per snapshot)
    and return the matching shape.  ``A @ x`` is sugar for ``matvec``.
    """

    shape: tuple[int, int]
    backend: ArrayBackend

    @abstractmethod
    def matvec(self, x):
        """``A @ x`` for ``x`` of shape ``(n,)`` or ``(n, p)``."""

    @abstractmethod
    def rmatvec(self, r):
        """``Aᴴ @ r`` for ``r`` of shape ``(m,)`` or ``(m, p)``."""

    @abstractmethod
    def to_dense(self):
        """The materialized ``(m, n)`` dictionary (for tests / fallbacks)."""

    @abstractmethod
    def lipschitz(self) -> float:
        """``‖AᴴA‖₂``, the Lipschitz constant of ``x ↦ Aᴴ(Ax)``."""

    @abstractmethod
    def to_backend(self, backend, *, dtype=None) -> "DictionaryOperator":
        """This dictionary re-homed on ``backend`` (optionally recast).

        ``dtype`` accepts ``"complex64"``/``"complex128"`` (or the
        ``"single"``/``"double"`` precision tokens); ``None`` keeps the
        source precision.  Converting to the operator's own backend and
        precision returns ``self`` unchanged.
        """

    @property
    def precision(self) -> str:
        """``"single"`` or ``"double"``, from the stored factors."""
        return self.backend.precision_of(self.to_dense())

    @property
    def dtype_name(self) -> str:
        return self.backend.dtype_name(self.to_dense())

    def column_norms(self):
        """Per-column ℓ2 norms (used by OMP and the κ heuristics)."""
        return self.backend.norms(self.to_dense(), axis=0)

    def columns(self, indices: Sequence[int]):
        """Materialize the selected columns as a dense ``(m, k)`` block."""
        return self.to_dense()[:, list(indices)]

    def matmul_batch(self, x):
        """``A`` applied to a stack of problems in one batched product.

        ``x`` of shape ``(B, n)`` → ``(B, m)``; for MMV problems,
        ``(B, n, p)`` → ``(B, m, p)``.  The stack is folded into the
        2-D ``matvec`` path, so one GEMM (or one pair of factor GEMMs
        for the Kronecker operator) covers the whole batch.
        """
        bk = self.backend
        if x.ndim == 2:
            return bk.moveaxis(self.matvec(bk.moveaxis(x, 0, 1)), 0, 1)
        if x.ndim == 3:
            batch, n, p = x.shape
            folded = bk.moveaxis(x, 0, 1).reshape(n, batch * p)
            product = self.matvec(folded)
            return bk.moveaxis(product.reshape(self.shape[0], batch, p), 0, 1)
        raise SolverError(f"matmul_batch operand must be 2-D or 3-D, got ndim={x.ndim}")

    def rmatmul_batch(self, r):
        """Adjoint of :meth:`matmul_batch`: ``(B, m[, p]) → (B, n[, p])``."""
        bk = self.backend
        if r.ndim == 2:
            return bk.moveaxis(self.rmatvec(bk.moveaxis(r, 0, 1)), 0, 1)
        if r.ndim == 3:
            batch, m, p = r.shape
            folded = bk.moveaxis(r, 0, 1).reshape(m, batch * p)
            product = self.rmatvec(folded)
            return bk.moveaxis(product.reshape(self.shape[1], batch, p), 0, 1)
        raise SolverError(f"rmatmul_batch operand must be 2-D or 3-D, got ndim={r.ndim}")

    def __matmul__(self, x):
        return self.matvec(x)


class DenseOperator(DictionaryOperator):
    """Adapter giving a plain (numpy/torch/cupy) 2-D array the operator interface."""

    def __init__(self, matrix, *, lipschitz: float | None = None, backend=None) -> None:
        self.backend = resolve_backend(backend, array=matrix)
        matrix = self.backend.ensure(matrix) if backend is None else self.backend.asarray(matrix)
        if matrix.ndim != 2:
            raise SolverError(f"dictionary must be 2-D, got ndim={matrix.ndim}")
        self.matrix = matrix
        self.shape = tuple(matrix.shape)
        self._lipschitz = lipschitz

    def matvec(self, x):
        return self.matrix @ self.backend.ensure(x, like=self.matrix)

    def rmatvec(self, r):
        return self.backend.conj_transpose(self.matrix) @ self.backend.ensure(
            r, like=self.matrix
        )

    def to_dense(self):
        return self.matrix

    def lipschitz(self) -> float:
        if self._lipschitz is None:
            self._lipschitz = estimate_lipschitz(
                self.matrix if self.backend.name == "numpy" else self
            )
        return self._lipschitz

    def column_norms(self):
        return self.backend.norms(self.matrix, axis=0)

    def columns(self, indices: Sequence[int]):
        return self.matrix[:, list(indices)]

    def to_backend(self, backend, *, dtype=None) -> "DenseOperator":
        target = resolve_backend(backend)
        precision = normalize_precision(dtype)
        if target is self.backend and precision in (None, self.precision):
            return self
        if precision is None:
            precision = self.precision
        host = self.backend.to_numpy(self.matrix)
        target_dtype = (
            target.complex_dtype(precision)
            if np.iscomplexobj(host)
            else target.real_dtype(precision)
        )
        converted = target.asarray(host, dtype=target_dtype)
        # ‖AᴴA‖₂ is a property of the values, not the backend; carry a
        # computed constant over instead of re-estimating it.
        return DenseOperator(converted, lipschitz=self._lipschitz, backend=target)


class KroneckerJointOperator(DictionaryOperator):
    """The Eq. 16 joint dictionary ``kron(temporal, spatial)``, unmaterialized.

    Parameters
    ----------
    temporal:
        Delay phase ramps ``G`` of shape ``(L, Nτ)``
        (:func:`repro.core.steering.delay_ramp_dictionary`).
    spatial:
        Angle steering matrix ``S̃`` of shape ``(M, Nθ)``
        (:func:`repro.core.steering.angle_steering_dictionary`).
    backend:
        Optional :class:`~repro.optim.backend.ArrayBackend` (or name) to
        hold the factors; inferred from the factor arrays by default.

    The represented dictionary is ``kron(G, S̃)`` of shape
    ``(M·L, Nθ·Nτ)`` with rows ordered antenna-fastest (Eq. 15) and
    columns delay-major (column ``j·Nθ + i`` ↔ angle ``i``, delay ``j``)
    — identical to :func:`repro.core.steering.joint_steering_dictionary`.
    A matvec costs two small matmuls, ``O(Nθ·Nτ·(M + L))`` instead of
    the dense ``O(M·L·Nθ·Nτ)`` — and the 2-D path doubles as the batched
    engine: :meth:`matmul_batch` folds a whole stack of problems into
    the same two factor GEMMs.
    """

    def __init__(self, temporal, spatial, *, backend=None) -> None:
        self.backend = resolve_backend(backend, array=temporal)
        temporal = (
            self.backend.ensure(temporal) if backend is None else self.backend.asarray(temporal)
        )
        spatial = (
            self.backend.ensure(spatial) if backend is None else self.backend.asarray(spatial)
        )
        if temporal.ndim != 2 or spatial.ndim != 2:
            raise SolverError("KroneckerJointOperator factors must be 2-D")
        if not (
            self.backend.isfinite_all(temporal) and self.backend.isfinite_all(spatial)
        ):
            raise SolverError("KroneckerJointOperator factors contain non-finite entries")
        self.temporal = temporal
        self.spatial = spatial
        # Adjoint factors, materialized once for the batched 2-D paths
        # (the 1-D paths conjugate per call, matching the reference
        # expressions bit for bit).
        self._temporal_adjoint = self.backend.conj_transpose(temporal)
        self._spatial_adjoint = self.backend.conj_transpose(spatial)
        self.n_subcarriers, self.n_delays = tuple(temporal.shape)
        self.n_antennas, self.n_angles = tuple(spatial.shape)
        self.shape = (
            self.n_antennas * self.n_subcarriers,
            self.n_angles * self.n_delays,
        )
        self._lipschitz: float | None = None

    @property
    def precision(self) -> str:
        return self.backend.precision_of(self.temporal)

    @property
    def dtype_name(self) -> str:
        return self.backend.dtype_name(self.temporal)

    def matvec(self, x):
        bk = self.backend
        x = bk.ensure(x, like=self.temporal)
        if x.ndim == 1:
            # Delay-major coefficients → (Nτ, Nθ) grid; the product
            # S̃ Xᵀ Gᵀ is the (M, L) CSI matrix, re-vectorized
            # antenna-fastest exactly like vectorize_csi_matrix.
            grid = x.reshape(self.n_delays, self.n_angles)
            csi = self.spatial @ grid.T @ self.temporal.T
            return csi.T.reshape(-1)
        if x.ndim == 2:
            # Contract the wide angle axis first (Nθ → M shrinks ~30×,
            # Nτ → L only ~2×): an order-of-magnitude fewer MACs than
            # the opposite order at the evaluation grid, and every
            # intermediate stays C-contiguous — no transpose copies.
            p = tuple(x.shape)[1]
            grid = x.reshape(self.n_delays, self.n_angles, p)
            partial = self.spatial[None] @ grid  # (Nτ, M, p) batched GEMM
            full = self.temporal @ partial.reshape(self.n_delays, self.n_antennas * p)
            return full.reshape(self.shape[0], p)
        raise SolverError(f"matvec operand must be 1-D or 2-D, got ndim={x.ndim}")

    def rmatvec(self, r):
        bk = self.backend
        r = bk.ensure(r, like=self.temporal)
        if r.ndim == 1:
            csi = r.reshape(self.n_subcarriers, self.n_antennas).T  # (M, L)
            grid = bk.conj_transpose(self.spatial) @ csi @ bk.conj(self.temporal)  # (Nθ, Nτ)
            return grid.T.reshape(-1)
        if r.ndim == 2:
            # Adjoint of the 2-D matvec, same axis-order reasoning:
            # contract subcarriers first (L → Nτ), then expand angles.
            p = tuple(r.shape)[1]
            inner = self._temporal_adjoint @ r.reshape(
                self.n_subcarriers, self.n_antennas * p
            )  # (Nτ, M·p)
            inner = inner.reshape(self.n_delays, self.n_antennas, p)
            grid = self._spatial_adjoint[None] @ inner  # (Nτ, Nθ, p) batched GEMM
            return grid.reshape(self.shape[1], p)
        raise SolverError(f"rmatvec operand must be 1-D or 2-D, got ndim={r.ndim}")

    def to_dense(self):
        return self.backend.kron(self.temporal, self.spatial)

    def lipschitz(self) -> float:
        """Exact: ``‖AᴴA‖₂ = λmax(S̃ᴴS̃)·λmax(GᴴG)`` for Kronecker products."""
        if self._lipschitz is None:
            bk = self.backend
            spatial_top = bk.eigvalsh_max(bk.conj_transpose(self.spatial) @ self.spatial)
            temporal_top = bk.eigvalsh_max(bk.conj_transpose(self.temporal) @ self.temporal)
            self._lipschitz = spatial_top * temporal_top
        return self._lipschitz

    def column_norms(self):
        bk = self.backend
        spatial_norms = bk.norms(self.spatial, axis=0)
        temporal_norms = bk.norms(self.temporal, axis=0)
        return (temporal_norms.reshape(-1, 1) * spatial_norms.reshape(1, -1)).reshape(-1)

    def columns(self, indices: Sequence[int]):
        cols = []
        for index in indices:
            delay, angle = divmod(int(index), self.n_angles)
            cols.append(
                (
                    self.temporal[:, delay].reshape(-1, 1)
                    * self.spatial[:, angle].reshape(1, -1)
                ).reshape(-1)
            )
        return self.backend.stack(cols, axis=1)

    def to_backend(self, backend, *, dtype=None) -> "KroneckerJointOperator":
        target = resolve_backend(backend)
        precision = normalize_precision(dtype)
        if target is self.backend and precision in (None, self.precision):
            return self
        if precision is None:
            precision = self.precision
        target_dtype = target.complex_dtype(precision)
        converted = KroneckerJointOperator(
            target.asarray(self.backend.to_numpy(self.temporal), dtype=target_dtype),
            target.asarray(self.backend.to_numpy(self.spatial), dtype=target_dtype),
            backend=target,
        )
        converted._lipschitz = self._lipschitz
        return converted


def as_operator(matrix, *, backend=None, dtype=None) -> DictionaryOperator:
    """Adapt ``matrix`` (ndarray or operator) to the operator interface.

    With ``backend``/``dtype`` given, the result is re-homed via
    :meth:`DictionaryOperator.to_backend` (a no-op when it already
    matches); without them, operators pass through untouched and arrays
    are wrapped on their native backend.
    """
    if isinstance(matrix, DictionaryOperator):
        if backend is None and dtype is None:
            return matrix
        return matrix.to_backend(
            resolve_backend(backend) if backend is not None else matrix.backend,
            dtype=dtype,
        )
    operator = DenseOperator(matrix)
    if backend is None and dtype is None:
        return operator
    return operator.to_backend(
        resolve_backend(backend) if backend is not None else operator.backend,
        dtype=dtype,
    )
