"""Joint-sparse (MMV) recovery for multi-packet fusion.

The multi-packet model of the paper's §III-D stacks one measurement
vector per packet into a matrix ``Y = [y₁ … y_P]`` and requires the
coefficient *rows* to share a common support across packets — every
packet sees the same physical paths.  Following Malioutov et al. [25]
this is the ℓ2,1 program

    min_X  ‖A X − Y‖_F² + κ Σ_i ‖X_{i,:}‖₂,

solved here by FISTA with the row-wise group soft-threshold.  The SVD
reduction that keeps the snapshot dimension small lives in
:mod:`repro.core.fusion`; this module is the pure solver.
"""

from __future__ import annotations

import math
from typing import Callable

import numpy as np

from repro.exceptions import SolverError
from repro.obs.convergence import ConvergenceTrace, support_size
from repro.optim.linalg import validate_system
from repro.optim.operators import as_operator
from repro.optim.result import SolverResult


def mmv_objective(
    matrix, rhs: np.ndarray, x: np.ndarray, kappa: float, *, penalty_weights=None
) -> float:
    """``‖AX − Y‖_F² + κ·Σᵢ‖Xᵢ,:‖₂`` (``κ·Σᵢ wᵢ‖Xᵢ,:‖₂`` when weighted)."""
    operator = as_operator(matrix)
    bk = operator.backend
    product = operator.matvec(x)
    residual = product - bk.ensure(rhs, like=product)
    data_term = bk.vdot_real(residual, residual)
    row_norms = bk.norms(x, axis=1)
    if penalty_weights is not None:
        weights = bk.asarray(penalty_weights, dtype=bk.real_dtype(operator.precision))
        row_norms = weights * row_norms
    return data_term + kappa * bk.sum_float(row_norms)


def solve_mmv_fista(
    matrix,
    rhs: np.ndarray,
    kappa: float,
    *,
    max_iterations: int = 200,
    tolerance: float = 1e-6,
    x0: np.ndarray | None = None,
    lipschitz: float | None = None,
    penalty_weights: np.ndarray | None = None,
    track_history: bool = False,
    telemetry: ConvergenceTrace | None = None,
    callback: Callable[[int, np.ndarray, float], None] | None = None,
) -> SolverResult:
    """Solve the ℓ2,1 joint-sparse program by FISTA.

    Parameters
    ----------
    matrix:
        Dictionary ``A`` of shape ``(m, n)`` — a dense ndarray or any
        :class:`~repro.optim.operators.DictionaryOperator`.
    rhs:
        Snapshot matrix ``Y`` of shape ``(m, p)`` — one column per packet
        (or per retained singular vector after SVD reduction).
    kappa:
        Row-sparsity weight.
    x0:
        Optional ``(n, p)`` warm start; a previous solution of a nearby
        problem reaches the shared minimizer in fewer iterations.
    lipschitz:
        Optional precomputed ``‖AᴴA‖₂``; operator dictionaries default
        to ``matrix.lipschitz()``.
    penalty_weights:
        Optional per-row ℓ2,1 weights ``w ≥ 0`` of shape ``(n,)``: the
        penalty becomes ``κ·Σᵢ wᵢ‖Xᵢ,:‖₂`` (the outlier-augmented
        program of :mod:`repro.optim.robust` prices its identity rows
        this way).
    telemetry / callback:
        Per-iteration hooks as in
        :func:`~repro.optim.fista.solve_lasso_fista` — objective,
        Frobenius residual norm and active-row count per iteration,
        recorded only when requested (one extra dictionary multiply per
        iteration when enabled, nothing otherwise).

    Returns
    -------
    SolverResult
        ``result.x`` has shape ``(n, p)``; the row ℓ2 norms form the
        fused spectrum.
    """
    validate_system(matrix, rhs)
    if rhs.ndim != 2:
        raise SolverError("solve_mmv_fista expects a 2-D snapshot matrix; use solve_lasso_fista for vectors")
    if kappa < 0:
        raise SolverError(f"kappa must be non-negative, got {kappa}")

    operator = as_operator(matrix)
    bk = operator.backend
    cdtype = bk.complex_dtype(operator.precision)
    # Cast to the operator's precision so a complex64 dictionary keeps
    # the whole iteration in complex64 (no-op for the default path).
    rhs = bk.asarray(rhs, dtype=cdtype)
    n = operator.shape[1]
    p = rhs.shape[1]
    if p == 0:
        raise SolverError("snapshot matrix has zero columns")
    weight_column = None
    if penalty_weights is not None:
        weights_host = np.asarray(penalty_weights, dtype=np.float64)
        if weights_host.shape != (n,):
            raise SolverError(
                f"penalty_weights must have shape ({n},), got {weights_host.shape}"
            )
        if np.any(weights_host < 0) or not np.all(np.isfinite(weights_host)):
            raise SolverError("penalty_weights must be finite and non-negative")
        penalty_weights = bk.asarray(weights_host, dtype=bk.real_dtype(operator.precision))
        weight_column = penalty_weights.reshape(n, 1)

    if lipschitz is None:
        lipschitz = 2.0 * operator.lipschitz()
    else:
        lipschitz = 2.0 * float(lipschitz)
    if lipschitz <= 0:
        x = bk.zeros((n, p), cdtype)
        return SolverResult(
            x=x,
            objective=mmv_objective(
                operator, rhs, x, kappa, penalty_weights=penalty_weights
            ),
            iterations=0,
            converged=True,
            convergence=telemetry,
        )

    step = 1.0 / lipschitz
    threshold = kappa * step

    x = bk.zeros((n, p), cdtype) if x0 is None else bk.copy(bk.asarray(x0, dtype=cdtype))
    if tuple(x.shape) != (n, p):
        raise SolverError(f"x0 has shape {tuple(x.shape)}, expected ({n}, {p})")
    momentum_point = bk.copy(x)
    t = 1.0

    history: list[float] = []
    converged = False
    iterations = 0
    for iterations in range(1, max_iterations + 1):
        gradient = 2.0 * operator.rmatvec(operator.matvec(momentum_point) - rhs)
        point = momentum_point - step * gradient
        if weight_column is None:
            x_next = bk.row_soft_threshold(point, threshold)
        else:
            # Per-row thresholds (the weighted ℓ2,1 prox): same shrinkage
            # as row_soft_threshold with threshold·wᵢ on row i.
            row_norms = bk.norms(point, axis=1, keepdims=True)
            shrunk = bk.maximum(row_norms - threshold * weight_column, 0.0)
            with bk.errstate():
                factors = bk.where(
                    row_norms > 0, shrunk / bk.where(row_norms > 0, row_norms, 1.0), 0.0
                )
            x_next = point * factors

        # math.sqrt keeps t a python float — a np.float64 scalar would
        # promote complex64 iterates to complex128 under NEP 50.
        t_next = 0.5 * (1.0 + math.sqrt(1.0 + 4.0 * t * t))
        momentum_point = x_next + ((t - 1.0) / t_next) * (x_next - x)

        delta = bk.norm(x_next - x)
        scale = max(1.0, bk.norm(x))
        x, t = x_next, t_next

        if track_history:
            history.append(
                mmv_objective(operator, rhs, x, kappa, penalty_weights=penalty_weights)
            )
        if telemetry is not None or callback is not None:
            residual = operator.matvec(x) - rhs
            residual_norm = bk.norm(residual)
            row_norms = bk.norms(x, axis=1)
            if penalty_weights is not None:
                row_norms = penalty_weights * row_norms
            current = residual_norm**2 + kappa * bk.sum_float(row_norms)
            if telemetry is not None:
                telemetry.record(
                    objective=current,
                    residual_norm=residual_norm,
                    support_size=support_size(x),
                )
            if callback is not None:
                callback(iterations, x, current)
        if delta <= tolerance * scale:
            converged = True
            break

    return SolverResult(
        x=x,
        objective=mmv_objective(operator, rhs, x, kappa, penalty_weights=penalty_weights),
        iterations=iterations,
        converged=converged,
        history=history,
        convergence=telemetry,
    )
