"""Outlier-augmented sparse recovery (measurement-domain robustness).

A single interference burst, a saturated RF chain, or an extractor bug
puts *gross* errors on a few measurement entries; the plain LASSO has no
place to absorb them, so they leak into the recovered spectrum and bias
the direct-path estimate.  The classic fix (Wright & Ma, "Dense error
correction via ℓ1-minimization") augments the dictionary with an
identity block and gives the corruption its own sparse variable:

    min_{x,e}  ‖y − [Ã | I]·[x; e]‖₂² + κ‖x‖₁ + λ‖e‖₁

The spectrum ``x`` stays sparse over the angle-delay grid while gross
per-antenna/subcarrier corruption lands in ``e``; entries the corruption
did not touch keep ``e = 0`` because λ prices them out.

The split penalty is an ordinary *weighted* LASSO over the augmented
variable ``z = [x; e]``:

    min_z  ‖y − [Ã | I]·z‖₂² + κ·Σⱼ wⱼ|zⱼ|,   w = [1…1 | λ/κ … λ/κ]

so every existing solver (:func:`~repro.optim.fista.solve_lasso_fista`,
:func:`~repro.optim.mmv.solve_mmv_fista`, the lockstep batched engine)
applies unchanged through their ``penalty_weights`` hook.  (The textbook
alternative — folding λ into a column scaling ``[Ã | (κ/λ)·I]`` with a
uniform κ — is mathematically identical but numerically poor: for
``κ ≪ λ`` the shrunken identity columns make FISTA crawl on the error
block.  Unit-scale columns plus per-coordinate thresholds keep the
augmented system as well conditioned as the original.)

:class:`OutlierAugmentedOperator` implements ``[Ã | c·I]`` as a thin
wrapper over any :class:`~repro.optim.operators.DictionaryOperator`:
the identity block costs ``O(m)`` per product, so a structured base
(e.g. :class:`~repro.optim.operators.KroneckerJointOperator`) keeps its
fast two-GEMM path, its batched ``matmul_batch`` folding, and an *exact*
Lipschitz constant ``‖AᴴA‖₂ + c²`` (because ``MMᴴ = AAᴴ + c²I`` shares
eigenvectors with ``AAᴴ``).

:func:`solve_huber_irls` is the smooth-loss alternative: iteratively
reweighted least squares on the *residual* with Huber weights, each pass
an ordinary LASSO over a row-weighted operator — the measurement-side
mirror of the column reweighting in :mod:`repro.optim.reweighted`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from repro.exceptions import SolverError
from repro.obs.convergence import ConvergenceTrace
from repro.optim.backend import normalize_precision, resolve_backend
from repro.optim.fista import solve_lasso_fista
from repro.optim.mmv import solve_mmv_fista
from repro.optim.operators import DictionaryOperator, as_operator


class OutlierAugmentedOperator(DictionaryOperator):
    """The augmented dictionary ``[Ã | c·I]`` over any base operator.

    Parameters
    ----------
    base:
        The clean dictionary ``Ã`` of shape ``(m, n)`` — dense array or
        any :class:`~repro.optim.operators.DictionaryOperator`.
    outlier_scale:
        The identity-column scale ``c > 0``.  The robust solvers use the
        default ``c = 1`` and price the error block through
        ``penalty_weights`` instead (see the module docstring for why);
        other scales remain available for the uniform-κ formulation.
    """

    def __init__(self, base, *, outlier_scale: float = 1.0, backend=None) -> None:
        self.base = as_operator(base, backend=backend)
        self.backend = self.base.backend
        if not np.isfinite(outlier_scale) or outlier_scale <= 0:
            raise SolverError(f"outlier_scale must be positive, got {outlier_scale}")
        self.outlier_scale = float(outlier_scale)
        m, n = self.base.shape
        self.shape = (m, n + m)

    @property
    def n_dictionary(self) -> int:
        """Columns of the clean dictionary (the spectrum block)."""
        return self.base.shape[1]

    @property
    def precision(self) -> str:
        return self.base.precision

    @property
    def dtype_name(self) -> str:
        return self.base.dtype_name

    def split(self, z):
        """Split an augmented solution into ``(x, e)`` in original units.

        ``z`` is the raw solver iterate over ``[Ã | c·I]``; the error
        block is rescaled by ``c`` so ``Ã x + e ≈ y``.
        """
        n = self.n_dictionary
        return z[:n], self.outlier_scale * z[n:]

    def matvec(self, x):
        bk = self.backend
        x = bk.ensure(x, like=None)
        n = self.n_dictionary
        return self.base.matvec(x[:n]) + self.outlier_scale * x[n:]

    def rmatvec(self, r):
        bk = self.backend
        return bk.concat([self.base.rmatvec(r), self.outlier_scale * r], axis=0)

    def to_dense(self):
        bk = self.backend
        m = self.shape[0]
        identity = bk.asarray(
            np.eye(m), dtype=bk.complex_dtype(self.precision)
        )
        return bk.concat([self.base.to_dense(), self.outlier_scale * identity], axis=1)

    def lipschitz(self) -> float:
        # Exact: ‖MᴴM‖₂ = ‖MMᴴ‖₂ = ‖AAᴴ + c²I‖₂ = ‖AᴴA‖₂ + c².
        return self.base.lipschitz() + self.outlier_scale**2

    def column_norms(self):
        bk = self.backend
        identity_norms = bk.asarray(
            np.full(self.shape[0], self.outlier_scale),
            dtype=bk.real_dtype(self.precision),
        )
        return bk.concat([self.base.column_norms(), identity_norms], axis=0)

    def columns(self, indices: Sequence[int]):
        bk = self.backend
        n = self.n_dictionary
        cols = []
        for index in indices:
            index = int(index)
            if index < n:
                cols.append(self.base.columns([index])[:, 0])
            else:
                unit = np.zeros(self.shape[0], dtype=np.complex128)
                unit[index - n] = self.outlier_scale
                cols.append(bk.asarray(unit, dtype=bk.complex_dtype(self.precision)))
        return bk.stack(cols, axis=1)

    def to_backend(self, backend, *, dtype=None) -> "OutlierAugmentedOperator":
        target = resolve_backend(backend)
        precision = normalize_precision(dtype)
        if target is self.backend and precision in (None, self.precision):
            return self
        return OutlierAugmentedOperator(
            self.base.to_backend(target, dtype=dtype),
            outlier_scale=self.outlier_scale,
        )


class RowWeightedOperator(DictionaryOperator):
    """``diag(w)·Ã`` — a measurement-row reweighting of a base operator.

    Used by :func:`solve_huber_irls`: down-weighting a measurement row is
    a diagonal multiply on the *output* side, so the base operator's
    structure (and fast paths) survive untouched.
    """

    def __init__(self, base, row_weights) -> None:
        self.base = as_operator(base)
        self.backend = self.base.backend
        bk = self.backend
        weights = bk.asarray(row_weights, dtype=bk.real_dtype(self.base.precision))
        if tuple(weights.shape) != (self.base.shape[0],):
            raise SolverError(
                f"row_weights must have shape ({self.base.shape[0]},), got {tuple(weights.shape)}"
            )
        self.row_weights = weights
        self.shape = self.base.shape
        self._max_weight = float(bk.to_numpy(weights).max(initial=0.0))

    @property
    def precision(self) -> str:
        return self.base.precision

    @property
    def dtype_name(self) -> str:
        return self.base.dtype_name

    def _expand(self, like):
        return self.row_weights if like.ndim == 1 else self.row_weights[:, None]

    def matvec(self, x):
        product = self.base.matvec(x)
        return self._expand(product) * product

    def rmatvec(self, r):
        return self.base.rmatvec(self._expand(r) * r)

    def to_dense(self):
        return self.row_weights[:, None] * self.base.to_dense()

    def lipschitz(self) -> float:
        # ‖WA‖₂² ≤ ‖W‖₂²·‖A‖₂² = max(w)²·‖AᴴA‖₂ — a valid (tight for
        # uniform weights) upper bound; FISTA only needs an upper bound.
        return self._max_weight**2 * self.base.lipschitz()

    def to_backend(self, backend, *, dtype=None) -> "RowWeightedOperator":
        target = resolve_backend(backend)
        precision = normalize_precision(dtype)
        if target is self.backend and precision in (None, self.precision):
            return self
        host = self.backend.to_numpy(self.row_weights)
        return RowWeightedOperator(
            self.base.to_backend(target, dtype=dtype),
            target.asarray(host),
        )


@dataclass
class RobustSolverResult:
    """Outcome of one outlier-augmented solve.

    Attributes
    ----------
    x:
        The recovered spectrum coefficients — 1-D, or 2-D (one column
        per snapshot) for the MMV variant.
    e:
        The recovered measurement corruption, same leading dimension as
        the measurement; ``Ãx + e`` approximates ``y``.
    outlier_fraction:
        ``‖e‖² / ‖y‖²`` — the fraction of measurement energy the solver
        attributed to corruption.  Near zero on clean links; the
        per-AP trust scoring in :mod:`repro.core.localization` consumes
        this directly.
    objective / iterations / converged:
        As in :class:`~repro.optim.result.SolverResult`, for the
        split-penalty objective ``‖Ãx + e − y‖₂² + κ‖x‖₁ + λ‖e‖₁``.
    """

    x: np.ndarray
    e: np.ndarray
    outlier_fraction: float
    objective: float
    iterations: int
    converged: bool
    history: list[float] = field(default_factory=list)
    convergence: ConvergenceTrace | None = None


def robust_lambda(rhs: np.ndarray, *, fraction: float = 0.5) -> float:
    """λ as a fraction of the largest zero-solution outlier gradient.

    For the identity block the gradient at ``(x, e) = 0`` is ``−2y``, so
    ``λ ≥ 2·max|yᵢ|`` keeps every ``eᵢ`` at zero.  A fraction of that
    critical value admits only the entries that stand far above the rest
    of the measurement — the gross-corruption regime the augmented
    program is built for.
    """
    if not 0 < fraction <= 1:
        raise SolverError(f"fraction must be in (0, 1], got {fraction}")
    peak = float(np.max(np.abs(np.asarray(rhs))))
    if peak == 0.0:
        raise SolverError("measurement is identically zero; lambda is undefined")
    return fraction * 2.0 * peak


def robust_objective(matrix, rhs, x, e, kappa: float, lambda_outlier: float) -> float:
    """``‖Ãx + e − y‖₂² + κ‖x‖₁ + λ‖e‖₁`` (ℓ2,1 row norms in MMV form)."""
    operator = as_operator(matrix)
    bk = operator.backend
    product = operator.matvec(x) + bk.ensure(e, like=operator.matvec(x))
    residual = product - bk.ensure(rhs, like=product)
    data = bk.vdot_real(residual, residual)
    if np.ndim(bk.to_numpy(x)) == 2:
        sparse = bk.sum_float(bk.norms(x, axis=1))
        outlier = bk.sum_float(bk.norms(e, axis=1))
    else:
        sparse = bk.abs_sum(x)
        outlier = bk.abs_sum(e)
    return data + kappa * sparse + lambda_outlier * outlier


def robust_penalty_weights(n: int, m: int, kappa: float, lambda_outlier: float) -> np.ndarray:
    """The ``penalty_weights`` vector realizing κ‖x‖₁ + λ‖e‖₁ at weight κ.

    Length ``n + m``: ones over the dictionary block, ``λ/κ`` over the
    identity block.  Pass it (with an :class:`OutlierAugmentedOperator`)
    to :func:`~repro.optim.batch.solve_batch` to run outlier-augmented
    recovery in lockstep across a whole batch.
    """
    if kappa <= 0 or lambda_outlier <= 0:
        raise SolverError(
            f"kappa and lambda_outlier must be positive, got {kappa}, {lambda_outlier}"
        )
    return np.concatenate([np.ones(n), np.full(m, lambda_outlier / kappa)])


def _augmented_warm_start(augmented, x0, e0, n, m, two_dim_p=None):
    if x0 is None and e0 is None:
        return None
    bk = augmented.backend
    cdtype = bk.complex_dtype(augmented.precision)
    shape = lambda rows: (rows,) if two_dim_p is None else (rows, two_dim_p)  # noqa: E731
    x_part = bk.zeros(shape(n), cdtype) if x0 is None else bk.asarray(x0, dtype=cdtype)
    e_part = (
        bk.zeros(shape(m), cdtype)
        if e0 is None
        else bk.asarray(e0, dtype=cdtype) / augmented.outlier_scale
    )
    return bk.concat([x_part, e_part], axis=0)


def solve_robust_lasso(
    matrix,
    rhs: np.ndarray,
    kappa: float,
    lambda_outlier: float | None = None,
    *,
    max_iterations: int = 200,
    tolerance: float = 1e-6,
    x0: np.ndarray | None = None,
    e0: np.ndarray | None = None,
    lipschitz: float | None = None,
    track_history: bool = False,
    telemetry: ConvergenceTrace | None = None,
) -> RobustSolverResult:
    """Solve ``min ‖y − Ãx − e‖₂² + κ‖x‖₁ + λ‖e‖₁`` by FISTA.

    Parameters
    ----------
    matrix / rhs / kappa:
        As in :func:`~repro.optim.fista.solve_lasso_fista`; κ must be
        strictly positive (the penalty weights carry the ratio λ/κ).
    lambda_outlier:
        The corruption penalty λ > 0; defaults to ``2κ``.  λ prices a
        unit of corruption explained by ``e`` against the κ-priced ℓ1
        cost of explaining it through dictionary atoms, so the useful
        range scales with κ, *not* with the measurement magnitude: an
        overcomplete dictionary reproduces most corruptions at a modest
        ℓ1 cost, and any λ far above κ sends the corruption into the
        spectrum instead of ``e``.  The plain-LASSO limit is still
        reached as λ grows (``λ ≥ 2·max|yᵢ|`` forces ``e = 0`` exactly —
        see :func:`robust_lambda` for that critical value).
    lipschitz:
        Optional precomputed ``‖ÃᴴÃ‖₂`` of the *base* dictionary; the
        augmented constant is exactly ``‖ÃᴴÃ‖₂ + 1``.
    x0 / e0:
        Optional warm starts for the two blocks, in original units.
    """
    if kappa <= 0:
        raise SolverError(f"robust recovery needs kappa > 0, got {kappa}")
    operator = as_operator(matrix)
    if lambda_outlier is None:
        lambda_outlier = 2.0 * kappa
    if lambda_outlier <= 0:
        raise SolverError(f"lambda_outlier must be positive, got {lambda_outlier}")
    augmented = OutlierAugmentedOperator(operator)
    m, n = operator.shape
    z0 = _augmented_warm_start(augmented, x0, e0, n, m)
    result = solve_lasso_fista(
        augmented,
        rhs,
        kappa,
        max_iterations=max_iterations,
        tolerance=tolerance,
        x0=z0,
        lipschitz=None if lipschitz is None else float(lipschitz) + 1.0,
        penalty_weights=robust_penalty_weights(n, m, kappa, lambda_outlier),
        track_history=track_history,
        telemetry=telemetry,
    )
    x, e = augmented.split(result.x)
    bk = augmented.backend
    rhs_energy = float(np.sum(np.abs(np.asarray(bk.to_numpy(bk.ensure(rhs)))) ** 2))
    e_energy = float(np.sum(np.abs(bk.to_numpy(e)) ** 2))
    return RobustSolverResult(
        x=x,
        e=e,
        outlier_fraction=e_energy / rhs_energy if rhs_energy > 0 else 0.0,
        # The change of variables preserves the objective value exactly.
        objective=result.objective,
        iterations=result.iterations,
        converged=result.converged,
        history=result.history,
        convergence=result.convergence,
    )


def solve_robust_mmv(
    matrix,
    rhs: np.ndarray,
    kappa: float,
    lambda_outlier: float | None = None,
    *,
    max_iterations: int = 200,
    tolerance: float = 1e-6,
    x0: np.ndarray | None = None,
    e0: np.ndarray | None = None,
    lipschitz: float | None = None,
    track_history: bool = False,
    telemetry: ConvergenceTrace | None = None,
) -> RobustSolverResult:
    """MMV (ℓ2,1) variant: joint-sparse spectrum, row-sparse corruption.

    The corruption rows are shared across snapshots — the model for a
    persistently bad antenna/subcarrier rather than one glitched packet
    (per-packet glitches are the validation gate's job upstream).
    """
    if kappa <= 0:
        raise SolverError(f"robust recovery needs kappa > 0, got {kappa}")
    operator = as_operator(matrix)
    rhs_host = np.asarray(operator.backend.to_numpy(operator.backend.ensure(rhs)))
    if rhs_host.ndim != 2:
        raise SolverError(f"solve_robust_mmv expects 2-D snapshots, got ndim={rhs_host.ndim}")
    if lambda_outlier is None:
        # Same κ-relative pricing as solve_robust_lasso (the row-sparse
        # critical value — e row i zero iff λ ≥ 2‖Y_{i,:}‖₂ — sits far
        # above the regime where e outcompetes the dictionary atoms).
        lambda_outlier = 2.0 * kappa
    if lambda_outlier <= 0:
        raise SolverError(f"lambda_outlier must be positive, got {lambda_outlier}")
    augmented = OutlierAugmentedOperator(operator)
    m, n = operator.shape
    z0 = _augmented_warm_start(augmented, x0, e0, n, m, two_dim_p=rhs_host.shape[1])
    result = solve_mmv_fista(
        augmented,
        rhs,
        kappa,
        max_iterations=max_iterations,
        tolerance=tolerance,
        x0=z0,
        lipschitz=None if lipschitz is None else float(lipschitz) + 1.0,
        penalty_weights=robust_penalty_weights(n, m, kappa, lambda_outlier),
        track_history=track_history,
        telemetry=telemetry,
    )
    x, e = augmented.split(result.x)
    bk = augmented.backend
    rhs_energy = float(np.sum(np.abs(rhs_host) ** 2))
    e_energy = float(np.sum(np.abs(bk.to_numpy(e)) ** 2))
    return RobustSolverResult(
        x=x,
        e=e,
        outlier_fraction=e_energy / rhs_energy if rhs_energy > 0 else 0.0,
        objective=result.objective,
        iterations=result.iterations,
        converged=result.converged,
        history=result.history,
        convergence=result.convergence,
    )


def solve_huber_irls(
    matrix,
    rhs: np.ndarray,
    kappa: float,
    *,
    delta: float | None = None,
    irls_iterations: int = 3,
    max_iterations: int = 200,
    tolerance: float = 1e-6,
    telemetry: ConvergenceTrace | None = None,
) -> RobustSolverResult:
    """Huber-loss sparse recovery by IRLS over the measurement rows.

    Each pass solves an ordinary LASSO over ``diag(√w)·Ã`` with
    ``√w``-scaled measurements, then recomputes the Huber weights
    ``wᵢ = min(1, δ/|rᵢ|)`` from the residual ``r = Ãx − y`` — the
    residual-side mirror of the coefficient reweighting in
    :func:`~repro.optim.reweighted.solve_reweighted_lasso` (same outer
    pass / inner FISTA structure, warm-started between passes).

    Parameters
    ----------
    delta:
        The Huber corner: residual entries beyond δ are treated as
        outliers and down-weighted.  Defaults per pass to
        ``1.345 · 1.4826 · median|r|`` (the 95%-efficient normal-MAD
        rule), so no noise estimate is needed.
    irls_iterations:
        Outer reweighting passes (the first pass is unweighted).

    The returned ``e = (1 − w)·(y − Ãx)`` is the residual mass the Huber
    loss linearized away — zero wherever ``|r| ≤ δ``, approaching the
    full residual on gross outliers — oriented so ``Ãx + e ≈ y`` and
    ``outlier_fraction`` are comparable with :func:`solve_robust_lasso`.
    """
    if kappa <= 0:
        raise SolverError(f"robust recovery needs kappa > 0, got {kappa}")
    if irls_iterations < 1:
        raise SolverError(f"irls_iterations must be >= 1, got {irls_iterations}")
    operator = as_operator(matrix)
    bk = operator.backend
    cdtype = bk.complex_dtype(operator.precision)
    rhs = bk.asarray(rhs, dtype=cdtype)

    x = None
    result = None
    weights_host = np.ones(operator.shape[0])
    for _ in range(irls_iterations):
        sqrt_w = bk.asarray(np.sqrt(weights_host), dtype=bk.real_dtype(operator.precision))
        weighted = RowWeightedOperator(operator, sqrt_w)
        result = solve_lasso_fista(
            weighted,
            sqrt_w * rhs,
            kappa,
            max_iterations=max_iterations,
            tolerance=tolerance,
            x0=x,
            telemetry=telemetry,
        )
        x = result.x
        residual_host = bk.to_numpy(operator.matvec(x) - rhs)
        magnitudes = np.abs(residual_host)
        corner = delta
        if corner is None:
            scale = 1.4826 * float(np.median(magnitudes))
            corner = 1.345 * scale
        if corner <= 0:
            # Residual already (numerically) zero everywhere: done.
            weights_host = np.ones(operator.shape[0])
            break
        weights_host = np.minimum(1.0, corner / np.maximum(magnitudes, 1e-300))

    residual_host = bk.to_numpy(rhs - operator.matvec(x))
    e_host = (1.0 - weights_host) * residual_host
    rhs_energy = float(np.sum(np.abs(bk.to_numpy(rhs)) ** 2))
    e_energy = float(np.sum(np.abs(e_host) ** 2))
    return RobustSolverResult(
        x=x,
        e=bk.asarray(e_host, dtype=cdtype),
        outlier_fraction=e_energy / rhs_energy if rhs_energy > 0 else 0.0,
        objective=result.objective,
        iterations=result.iterations,
        converged=result.converged,
        history=result.history,
        convergence=result.convergence,
    )
