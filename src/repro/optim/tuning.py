"""Heuristics for choosing the sparsity weight κ.

The paper's Eq. 10 bounds the residual by a noise-tolerance parameter γ
and Eq. 11 folds it into the Lagrangian weight κ.  Neither value is
reported, so we expose the two standard, well-behaved choices and use
them consistently across the core and the baselines' ablations.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import SolverError


def noise_scaled_kappa(matrix: np.ndarray, noise_std: float, *, confidence: float = 1.0) -> float:
    """κ from the universal-threshold rule, κ = c·σ·√(2·log n)·‖A‖_col.

    For i.i.d. complex Gaussian noise of standard deviation ``noise_std``
    per measurement entry, ``max_i |Aᴴn|_i`` concentrates around
    ``σ·√(2 log n)`` times the largest column norm; choosing κ at that
    scale keeps pure-noise atoms out of the solution with high
    probability while barely biasing true paths.

    Parameters
    ----------
    confidence:
        Multiplier ``c``; >1 prunes more aggressively, <1 keeps weaker
        paths.
    """
    if noise_std < 0:
        raise SolverError(f"noise_std must be non-negative, got {noise_std}")
    if matrix.ndim != 2:
        raise SolverError(f"dictionary must be 2-D, got ndim={matrix.ndim}")
    n = matrix.shape[1]
    if n == 0:
        raise SolverError("dictionary has zero columns")
    max_column_norm = float(np.linalg.norm(matrix, axis=0).max())
    return confidence * noise_std * np.sqrt(2.0 * np.log(max(n, 2))) * max_column_norm


def residual_kappa(matrix: np.ndarray, rhs: np.ndarray, *, fraction: float = 0.05) -> float:
    """κ as a fraction of the zero-solution gradient, κ = f·‖2Aᴴy‖_∞.

    ``‖2Aᴴy‖_∞`` is the smallest κ for which x = 0 is the LASSO
    minimizer; any κ below it admits a nonzero solution.  Choosing a
    small fraction of it adapts the sparsity weight to the measurement
    scale without needing a noise estimate — the choice we use when the
    receiver has no SNR side information.
    """
    if not 0 < fraction < 1:
        raise SolverError(f"fraction must be in (0, 1), got {fraction}")
    gradient_at_zero = 2.0 * np.abs(matrix.conj().T @ rhs)
    peak = float(gradient_at_zero.max(initial=0.0))
    if peak == 0.0:
        raise SolverError("measurement is orthogonal to every dictionary atom (all-zero gradient)")
    return fraction * peak
