"""Heuristics for choosing the sparsity weight κ.

The paper's Eq. 10 bounds the residual by a noise-tolerance parameter γ
and Eq. 11 folds it into the Lagrangian weight κ.  Neither value is
reported, so we expose the two standard, well-behaved choices and use
them consistently across the core and the baselines' ablations.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import SolverError
from repro.optim.operators import as_operator


def noise_scaled_kappa(matrix, noise_std: float, *, confidence: float = 1.0) -> float:
    """κ from the universal-threshold rule, κ = c·σ·√(2·log n)·‖A‖_col.

    For i.i.d. complex Gaussian noise of standard deviation ``noise_std``
    per measurement entry, ``max_i |Aᴴn|_i`` concentrates around
    ``σ·√(2 log n)`` times the largest column norm; choosing κ at that
    scale keeps pure-noise atoms out of the solution with high
    probability while barely biasing true paths.

    Parameters
    ----------
    matrix:
        Dictionary — a dense ndarray or any
        :class:`~repro.optim.operators.DictionaryOperator`.
    confidence:
        Multiplier ``c``; >1 prunes more aggressively, <1 keeps weaker
        paths.
    """
    if noise_std < 0:
        raise SolverError(f"noise_std must be non-negative, got {noise_std}")
    operator = as_operator(matrix)
    n = operator.shape[1]
    if n == 0:
        raise SolverError("dictionary has zero columns")
    max_column_norm = operator.backend.max(operator.column_norms())
    return confidence * noise_std * np.sqrt(2.0 * np.log(max(n, 2))) * max_column_norm


def residual_kappa(matrix, rhs: np.ndarray, *, fraction: float = 0.05) -> float:
    """κ as a fraction of the zero-solution gradient, κ = f·‖2Aᴴy‖_∞.

    ``‖2Aᴴy‖_∞`` is the smallest κ for which x = 0 is the LASSO
    minimizer; any κ below it admits a nonzero solution.  Choosing a
    small fraction of it adapts the sparsity weight to the measurement
    scale without needing a noise estimate — the choice we use when the
    receiver has no SNR side information.
    """
    if not 0 < fraction < 1:
        raise SolverError(f"fraction must be in (0, 1), got {fraction}")
    operator = as_operator(matrix)
    bk = operator.backend
    gradient_at_zero = 2.0 * bk.abs(operator.rmatvec(rhs))
    peak = bk.max(gradient_at_zero, initial=0.0)
    if peak == 0.0:
        raise SolverError("measurement is orthogonal to every dictionary atom (all-zero gradient)")
    return fraction * peak


def mmv_residual_kappa(matrix, snapshots: np.ndarray, *, fraction: float = 0.05) -> float:
    """MMV analogue of :func:`residual_kappa` for the ℓ2,1 program.

    For ``min ‖AX − Y‖_F² + κ Σᵢ‖Xᵢ,:‖₂`` the zero solution is optimal
    iff ``κ ≥ max_i 2‖(AᴴY)ᵢ,:‖₂``; κ is chosen as a fraction of that
    critical value, mirroring the single-measurement rule.
    """
    if not 0 < fraction < 1:
        raise SolverError(f"fraction must be in (0, 1), got {fraction}")
    if snapshots.ndim != 2:
        raise SolverError(f"snapshot matrix must be 2-D, got ndim={snapshots.ndim}")
    operator = as_operator(matrix)
    bk = operator.backend
    gradient_rows = 2.0 * bk.norms(operator.rmatvec(snapshots), axis=1)
    peak = bk.max(gradient_rows, initial=0.0)
    if peak == 0.0:
        raise SolverError("snapshots are orthogonal to every dictionary atom (all-zero gradient)")
    return fraction * peak
