"""Common result container for the sparse-recovery solvers."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - annotation-only import
    from repro.obs.convergence import ConvergenceTrace


@dataclass
class SolverResult:
    """Outcome of one sparse-recovery solve.

    Attributes
    ----------
    x:
        The recovered coefficient vector (1-D, complex) or matrix (2-D for
        the MMV solver: one row per dictionary atom, one column per
        snapshot).
    objective:
        Final value of the solver's objective function.
    iterations:
        Number of iterations actually performed.
    converged:
        ``True`` when the stopping tolerance was met before the iteration
        cap; ``False`` when the solver ran out of iterations.  A
        non-converged result is still usable — FISTA/ADMM iterates are
        feasible at every step — which is what paper Fig. 3 exploits when
        it shows spectra after 3/6/9/14 iterations.
    history:
        Per-iteration objective values (empty if tracking was disabled).
    convergence:
        The :class:`~repro.obs.convergence.ConvergenceTrace` the caller
        passed via the solver's ``telemetry=`` hook, filled with
        per-iteration objective / residual / support telemetry; ``None``
        when telemetry was not requested.
    solver:
        Name of the solver that produced ``x`` when the solve ran
        through :func:`~repro.optim.guard.solve_guarded`; empty for a
        direct solver call.
    fallbacks:
        Solvers the guardrail chain tried and rejected (diverged or
        raised) before ``solver`` succeeded; empty when the primary
        solver's result was accepted.
    """

    x: np.ndarray
    objective: float
    iterations: int
    converged: bool
    history: list[float] = field(default_factory=list)
    convergence: "ConvergenceTrace | None" = None
    solver: str = ""
    fallbacks: tuple[str, ...] = ()

    @property
    def support(self) -> np.ndarray:
        """Indices of the nonzero entries (rows for MMV) of ``x``."""
        if self.x.ndim == 1:
            magnitude = np.abs(self.x)
        else:
            magnitude = np.linalg.norm(self.x, axis=1)
        return np.flatnonzero(magnitude > 0)

    def sparsity(self, rtol: float = 1e-3) -> int:
        """Number of entries whose magnitude exceeds ``rtol`` × the peak."""
        if self.x.ndim == 1:
            magnitude = np.abs(self.x)
        else:
            magnitude = np.linalg.norm(self.x, axis=1)
        peak = magnitude.max(initial=0.0)
        if peak == 0.0:
            return 0
        return int(np.count_nonzero(magnitude > rtol * peak))
