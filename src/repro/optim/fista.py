"""FISTA for the complex LASSO.

Solves

    min_x  ‖A x − y‖₂² + κ ‖x‖₁

(the Lagrangian form of the paper's Eq. 9–11) with the accelerated
proximal-gradient method of Beck & Teboulle.  The paper solves this
program with CVX second-order cone solvers; FISTA reaches the same
minimizer because the objective is convex, and its per-iteration cost is
one dictionary multiply each way, which matters for the 90 × (Nθ·Nτ)
joint dictionaries of §III-B.
"""

from __future__ import annotations

import math
from typing import Callable

import numpy as np

from repro.exceptions import SolverError
from repro.obs.convergence import ConvergenceTrace, support_size
from repro.optim.linalg import validate_system
from repro.optim.operators import as_operator
from repro.optim.result import SolverResult


def lasso_objective(
    matrix, rhs: np.ndarray, x: np.ndarray, kappa: float, *, penalty_weights=None
) -> float:
    """The LASSO objective ``‖Ax − y‖₂² + κ‖x‖₁`` (paper Eq. 11).

    With ``penalty_weights`` the ℓ1 term is the weighted
    ``κ·Σⱼ wⱼ|xⱼ|`` — the penalty of the outlier-augmented program in
    :mod:`repro.optim.robust`.
    """
    operator = as_operator(matrix)
    bk = operator.backend
    product = operator.matvec(x)
    residual = product - bk.ensure(rhs, like=product)
    if penalty_weights is None:
        l1 = bk.abs_sum(x)
    else:
        weights = bk.asarray(penalty_weights, dtype=bk.real_dtype(operator.precision))
        l1 = bk.sum_float(weights * bk.abs(x))
    return bk.vdot_real(residual, residual) + kappa * l1


def solve_lasso_fista(
    matrix,
    rhs: np.ndarray,
    kappa: float,
    *,
    max_iterations: int = 200,
    tolerance: float = 1e-6,
    x0: np.ndarray | None = None,
    lipschitz: float | None = None,
    penalty_weights: np.ndarray | None = None,
    track_history: bool = False,
    monotone: bool = False,
    telemetry: ConvergenceTrace | None = None,
    callback: Callable[[int, np.ndarray, float], None] | None = None,
) -> SolverResult:
    """Solve ``min ‖Ax − y‖₂² + κ‖x‖₁`` by FISTA.

    Parameters
    ----------
    matrix:
        The (typically complex) dictionary ``A`` of shape ``(m, n)`` —
        a dense ndarray or any
        :class:`~repro.optim.operators.DictionaryOperator` (e.g. the
        structured :class:`~repro.optim.operators.KroneckerJointOperator`
        for the Eq. 16 joint dictionary).
    rhs:
        The measurement vector ``y`` of shape ``(m,)``.
    kappa:
        Sparsity weight κ ≥ 0.  See :mod:`repro.optim.tuning` for the
        noise-scaled heuristics used by the higher layers.
    max_iterations:
        Iteration cap.  The iterates are feasible at every step, so a
        small cap yields a coarse spectrum (paper Fig. 3) rather than
        garbage.
    tolerance:
        Relative change in the iterate below which we declare
        convergence: ``‖x_{t+1} − x_t‖ ≤ tolerance · max(1, ‖x_t‖)``.
    x0:
        Optional warm start.  Seeding with a previous solution of a
        nearby problem (same dictionary, perturbed measurement or κ)
        reaches the minimizer in far fewer iterations; the minimizer
        itself is unchanged, so warm and cold starts agree to within
        ``tolerance``.
    lipschitz:
        Optional precomputed Lipschitz constant ``‖AᴴA‖₂`` — pass it
        when re-solving with the same dictionary (the grids in
        :mod:`repro.core.steering` cache it).  Operator dictionaries
        that omit it use ``matrix.lipschitz()``.
    penalty_weights:
        Optional per-coefficient ℓ1 weights ``w ≥ 0`` of shape ``(n,)``:
        the penalty becomes ``κ·Σⱼ wⱼ|xⱼ|`` (proximal step threshold
        ``κ·wⱼ/L`` per coordinate).  This is how the outlier-augmented
        program of :mod:`repro.optim.robust` prices its identity block
        at ``λ = κ·w`` without a second solver.
    track_history:
        Record the objective at every iteration (used by the Fig. 3
        experiment and by tests that assert monotone-ish descent).
    monotone:
        Use the MFISTA variant of Beck & Teboulle: a proximal candidate
        that would *increase* the objective is rejected (the previous
        iterate is kept) while the momentum sequence still advances
        through the candidate.  Guarantees a non-increasing objective at
        the cost of one extra objective evaluation per iteration; plain
        FISTA (the default) can overshoot transiently.
    telemetry:
        Optional :class:`~repro.obs.convergence.ConvergenceTrace` that
        receives per-iteration objective, residual norm and support
        size, and is attached to the result as
        :attr:`~repro.optim.result.SolverResult.convergence`.  Costs one
        extra dictionary multiply per iteration; the default (``None``)
        does no telemetry work at all.
    callback:
        Optional per-iteration hook ``callback(iteration, x, objective)``
        invoked after each accepted iterate (same cost note as
        ``telemetry``).

    Notes
    -----
    The gradient of the smooth part ``f(x) = ‖Ax − y‖₂²`` is
    ``∇f = 2 Aᴴ(Ax − y)``, hence its Lipschitz constant is
    ``L = 2‖AᴴA‖₂`` and the proximal step threshold is ``κ / L``.
    """
    validate_system(matrix, rhs)
    if rhs.ndim != 1:
        raise SolverError("solve_lasso_fista expects a 1-D measurement; use solve_mmv_fista for matrices")
    if kappa < 0:
        raise SolverError(f"kappa must be non-negative, got {kappa}")
    if max_iterations < 1:
        raise SolverError(f"max_iterations must be >= 1, got {max_iterations}")

    operator = as_operator(matrix)
    bk = operator.backend
    cdtype = bk.complex_dtype(operator.precision)
    # Cast to the operator's precision so a complex64 dictionary keeps
    # the whole iteration in complex64 (no-op for the default path).
    rhs = bk.asarray(rhs, dtype=cdtype)
    n = operator.shape[1]
    if penalty_weights is not None:
        weights_host = np.asarray(penalty_weights, dtype=np.float64)
        if weights_host.shape != (n,):
            raise SolverError(
                f"penalty_weights must have shape ({n},), got {weights_host.shape}"
            )
        if np.any(weights_host < 0) or not np.all(np.isfinite(weights_host)):
            raise SolverError("penalty_weights must be finite and non-negative")
        penalty_weights = bk.asarray(weights_host, dtype=bk.real_dtype(operator.precision))
    if lipschitz is None:
        lipschitz = 2.0 * operator.lipschitz()
    else:
        lipschitz = 2.0 * float(lipschitz)
    if lipschitz <= 0:
        # A zero dictionary: the minimizer is x = 0.
        x = bk.zeros(n, cdtype)
        return SolverResult(
            x=x,
            objective=lasso_objective(
                operator, rhs, x, kappa, penalty_weights=penalty_weights
            ),
            iterations=0,
            converged=True,
            convergence=telemetry,
        )

    step = 1.0 / lipschitz
    threshold = kappa * step if penalty_weights is None else (kappa * step) * penalty_weights

    x = bk.zeros(n, cdtype) if x0 is None else bk.copy(bk.asarray(x0, dtype=cdtype))
    if tuple(x.shape) != (n,):
        raise SolverError(f"x0 has shape {tuple(x.shape)}, expected ({n},)")
    momentum_point = bk.copy(x)
    t = 1.0
    objective = (
        lasso_objective(operator, rhs, x, kappa, penalty_weights=penalty_weights)
        if monotone
        else None
    )

    history: list[float] = []
    converged = False
    iterations = 0
    for iterations in range(1, max_iterations + 1):
        gradient = 2.0 * operator.rmatvec(operator.matvec(momentum_point) - rhs)
        candidate = bk.soft_threshold(momentum_point - step * gradient, threshold)

        # math.sqrt keeps t a python float — a np.float64 scalar would
        # promote complex64 iterates to complex128 under NEP 50.
        t_next = 0.5 * (1.0 + math.sqrt(1.0 + 4.0 * t * t))
        if monotone:
            # MFISTA: accept the candidate only if it does not increase
            # the objective; the momentum point always moves through the
            # candidate so acceleration is preserved.
            candidate_objective = lasso_objective(
                operator, rhs, candidate, kappa, penalty_weights=penalty_weights
            )
            if candidate_objective <= objective:
                x_next, objective = candidate, candidate_objective
            else:
                x_next = x
            momentum_point = (
                x_next
                + (t / t_next) * (candidate - x_next)
                + ((t - 1.0) / t_next) * (x_next - x)
            )
        else:
            x_next = candidate
            momentum_point = x_next + ((t - 1.0) / t_next) * (x_next - x)

        # Convergence is judged on the proximal candidate: in monotone
        # mode a rejected candidate leaves x unchanged, which must not
        # read as a zero-length (converged) step.
        delta = bk.norm(candidate - x)
        scale = max(1.0, bk.norm(x))
        x, t = x_next, t_next

        if track_history:
            history.append(
                objective
                if monotone
                else lasso_objective(
                    operator, rhs, x, kappa, penalty_weights=penalty_weights
                )
            )
        if telemetry is not None or callback is not None:
            residual_norm = bk.norm(operator.matvec(x) - rhs)
            if monotone:
                current = objective
            elif penalty_weights is None:
                current = residual_norm**2 + kappa * bk.abs_sum(x)
            else:
                current = residual_norm**2 + kappa * bk.sum_float(
                    penalty_weights * bk.abs(x)
                )
            if telemetry is not None:
                telemetry.record(
                    objective=current,
                    residual_norm=residual_norm,
                    support_size=support_size(x),
                )
            if callback is not None:
                callback(iterations, x, current)
        if delta <= tolerance * scale:
            converged = True
            break

    return SolverResult(
        x=x,
        objective=lasso_objective(operator, rhs, x, kappa, penalty_weights=penalty_weights),
        iterations=iterations,
        converged=converged,
        history=history,
        convergence=telemetry,
    )
