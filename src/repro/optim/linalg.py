"""Shared linear-algebra helpers for the sparse solvers."""

from __future__ import annotations

import numpy as np

from repro.exceptions import SolverError


def soft_threshold(x: np.ndarray, threshold) -> np.ndarray:
    """Complex soft-thresholding (proximal operator of ``threshold·‖·‖₁``).

    Shrinks each entry's magnitude by ``threshold`` while preserving its
    phase; entries whose magnitude falls below ``threshold`` become
    exactly zero.  For real input this reduces to the familiar
    ``sign(x)·max(|x|−t, 0)``.  ``threshold`` may be a scalar or an
    array broadcastable against ``x`` (the batched solver passes one
    threshold per problem column).
    """
    if np.any(np.asarray(threshold) < 0):
        raise SolverError(f"soft_threshold requires threshold >= 0, got {threshold}")
    magnitude = np.abs(x)
    scale = np.maximum(magnitude - threshold, 0.0)
    # Avoid 0/0 where the magnitude is zero; those entries stay zero.
    with np.errstate(invalid="ignore", divide="ignore"):
        shrunk = np.where(magnitude > 0, x * (scale / np.where(magnitude > 0, magnitude, 1.0)), 0.0)
    return shrunk


def row_soft_threshold(x: np.ndarray, threshold: float) -> np.ndarray:
    """Row-wise group soft-thresholding (proximal operator of ℓ2,1).

    Each row of ``x`` is treated as one group: its ℓ2 norm is shrunk by
    ``threshold`` and the row is rescaled, which either preserves the
    row's direction or zeroes the row entirely.  This is the operator
    that makes the multi-snapshot (MMV) problem *jointly* sparse — all
    snapshots agree on the active dictionary atoms.
    """
    if x.ndim != 2:
        raise SolverError(f"row_soft_threshold expects a 2-D array, got ndim={x.ndim}")
    if threshold < 0:
        raise SolverError(f"row_soft_threshold requires threshold >= 0, got {threshold}")
    norms = np.linalg.norm(x, axis=1, keepdims=True)
    scale = np.maximum(norms - threshold, 0.0)
    with np.errstate(invalid="ignore", divide="ignore"):
        factors = np.where(norms > 0, scale / np.where(norms > 0, norms, 1.0), 0.0)
    return x * factors


def estimate_lipschitz(matrix, iterations: int = 50, seed: int = 0) -> float:
    """Estimate ``‖AᴴA‖₂`` (the gradient Lipschitz constant) by power iteration.

    A tight upper bound keeps the FISTA step size ``1/L`` as large as
    possible.  Power iteration on ``AᴴA`` converges fast for the
    steering dictionaries used here (their spectrum is heavily
    top-weighted), and we inflate the estimate by 1% for safety.

    Accepts either a 2-D ndarray or a
    :class:`~repro.optim.operators.DictionaryOperator` (duck-typed on
    ``matvec``/``rmatvec`` to keep this module import-free of the
    operator layer); both run the identical iteration, so a structured
    operator yields the same constant as its dense form up to rounding.
    """
    if hasattr(matrix, "matvec"):
        forward, adjoint = matrix.matvec, matrix.rmatvec
    else:
        if matrix.ndim != 2:
            raise SolverError(f"estimate_lipschitz expects a 2-D matrix, got ndim={matrix.ndim}")
        forward = matrix.__matmul__
        adjoint = matrix.conj().T.__matmul__
    rng = np.random.default_rng(seed)
    n = matrix.shape[1]
    v = rng.standard_normal(n) + 1j * rng.standard_normal(n)
    v /= np.linalg.norm(v)
    backend = getattr(matrix, "backend", None)
    if backend is not None and backend.name != "numpy":
        # Same iteration, same seeded start vector, run natively on the
        # operator's backend (a torch/cupy operator cannot multiply a
        # numpy vector).
        v = backend.asarray(v)
        eigenvalue = 0.0
        for _ in range(iterations):
            w = adjoint(forward(v))
            norm = backend.norm(w)
            if norm == 0.0:
                return 0.0
            eigenvalue = norm
            v = w / norm
        return 1.01 * eigenvalue
    eigenvalue = 0.0
    for _ in range(iterations):
        w = adjoint(forward(v))
        norm = np.linalg.norm(w)
        if norm == 0.0:
            return 0.0
        eigenvalue = float(norm)
        v = w / norm
    return 1.01 * eigenvalue


def validate_system(matrix, rhs: np.ndarray) -> None:
    """Check that ``matrix`` (ndarray or operator) and ``rhs`` are consistent."""
    is_operator = hasattr(matrix, "matvec")
    if not is_operator and matrix.ndim != 2:
        raise SolverError(f"dictionary must be 2-D, got ndim={matrix.ndim}")
    if rhs.ndim not in (1, 2):
        raise SolverError(f"measurement must be 1-D or 2-D, got ndim={rhs.ndim}")
    if rhs.shape[0] != matrix.shape[0]:
        raise SolverError(
            "dictionary and measurement are incompatible: "
            f"A is {matrix.shape}, y has leading dimension {rhs.shape[0]}"
        )
    # Structured operators validate their factors at construction; the
    # dense entry check only applies to materialized dictionaries.
    if not is_operator and not np.all(np.isfinite(matrix)):
        raise SolverError("dictionary contains non-finite entries")
    backend = getattr(matrix, "backend", None)
    if backend is not None:
        if not backend.isfinite_all(backend.ensure(rhs)):
            raise SolverError("measurement contains non-finite entries")
    elif not np.all(np.isfinite(rhs)):
        raise SolverError("measurement contains non-finite entries")
