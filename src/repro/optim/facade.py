"""The unified solver entry point, ``repro.optim.solve``.

The per-solver functions (``solve_lasso_fista`` & co.) remain the
stable low-level surface; :func:`solve` is the one-call front door that
picks the solver by name, derives a sensible sparsity weight when none
is given, and accepts dense arrays or
:class:`~repro.optim.operators.DictionaryOperator` dictionaries
uniformly.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import SolverError
from repro.optim.admm import solve_lasso_admm
from repro.optim.fista import solve_lasso_fista
from repro.optim.mmv import solve_mmv_fista
from repro.optim.omp import solve_omp
from repro.optim.operators import as_operator
from repro.optim.result import SolverResult
from repro.optim.reweighted import solve_reweighted_lasso
from repro.optim.sbl import solve_sbl
from repro.optim.tuning import mmv_residual_kappa, residual_kappa

#: method name → (solver, takes κ).  OMP is parameterized by the model
#: order instead of κ; SBL learns per-atom relevance and needs neither.
_METHODS = {
    "fista": (solve_lasso_fista, True),
    "admm": (solve_lasso_admm, True),
    "omp": (solve_omp, False),
    "mmv": (solve_mmv_fista, True),
    "reweighted": (solve_reweighted_lasso, True),
    "sbl": (solve_sbl, False),
}


def solve(
    matrix,
    rhs: np.ndarray,
    method: str = "fista",
    *,
    kappa: float | None = None,
    kappa_fraction: float = 0.05,
    backend=None,
    dtype=None,
    **options,
) -> SolverResult:
    """Sparse recovery with the solver chosen by name.

    Parameters
    ----------
    matrix:
        Dictionary ``A`` — a dense ndarray or any
        :class:`~repro.optim.operators.DictionaryOperator`.
    rhs:
        Measurement vector ``(m,)`` (or snapshot matrix ``(m, p)`` for
        ``method="mmv"`` / ``"sbl"``).
    method:
        ``"fista"`` (default), ``"admm"``, ``"omp"``, ``"mmv"``,
        ``"reweighted"``, or ``"sbl"``.
    kappa:
        Sparsity weight for the ℓ1/ℓ2,1 methods.  Derived from
        ``kappa_fraction`` of the zero-solution gradient when omitted
        (:func:`~repro.optim.tuning.residual_kappa`, or its MMV
        analogue for 2-D measurements).  Rejected by ``"omp"`` (which
        takes ``sparsity=``) and ``"sbl"`` (no weight to tune).
    backend / dtype:
        Array backend to solve on (``"numpy"``/``"torch"``/``"cupy"``,
        a name or :class:`~repro.optim.backend.ArrayBackend` instance)
        and optional precision override (e.g. ``"complex64"``).  When
        both are omitted the dictionary is used as-is — the default
        numpy path is bitwise-unchanged.
    **options:
        Forwarded verbatim to the underlying solver — e.g.
        ``max_iterations``, ``tolerance``, ``x0``, ``lipschitz``,
        ``sparsity`` (OMP), ``rho`` / ``factors`` (ADMM).

    Returns
    -------
    SolverResult
    """
    try:
        solver, takes_kappa = _METHODS[method]
    except KeyError:
        raise SolverError(
            f"unknown method {method!r}; expected one of {sorted(_METHODS)}"
        ) from None

    if backend is not None or dtype is not None:
        matrix = as_operator(matrix, backend=backend, dtype=dtype)

    if not takes_kappa:
        if kappa is not None:
            raise SolverError(f"method {method!r} does not take a kappa weight")
        return solver(matrix, rhs, **options)

    if kappa is None:
        rhs_array = np.asarray(rhs)
        if method == "mmv" or rhs_array.ndim == 2:
            kappa = mmv_residual_kappa(matrix, rhs_array, fraction=kappa_fraction)
        else:
            kappa = residual_kappa(matrix, rhs_array, fraction=kappa_fraction)
    return solver(matrix, rhs, kappa, **options)
