"""Batched sparse recovery: many problems, one stack of factor GEMMs.

The evaluation harness solves the *same* joint dictionary against many
measurements — one per (packet × client) — and the per-problem Python
loop, not the arithmetic, dominates at scale.  :func:`solve_batch`
stacks ``B`` problems into one ``(n, B)`` iterate and runs the existing
FISTA/ADMM/OMP/MMV updates in lockstep: every dictionary product is a
single batched matmul (two factor GEMMs for the Kronecker operator),
the elementwise proximal steps broadcast one threshold per problem
column, and per-problem convergence is tracked with freeze masks so a
column that has converged stops moving while its neighbours iterate on.

Correctness contract:

* ``B == 1`` delegates to the sequential solver outright — on the numpy
  backend a singleton batch is **byte-identical** to the solo solve
  (the golden-spectra suite pins this).
* ``B > 1`` runs the same per-column iteration, but BLAS accumulates
  batched GEMM columns in a different order than per-vector GEMV, so
  results agree with the sequential loop to rounding, not bits.  The
  float64 budget is :data:`~repro.optim.backend.FLOAT64_PARITY_TOLERANCE`
  (1e-12 relative); the float32 ladder is
  :data:`~repro.optim.backend.FLOAT32_TOLERANCES`.  Passing
  ``parity_gate=True`` verifies the batch against a sequential numpy
  float64 reference solve and raises on violation.
* Warm starts carry across consecutive batches: pass the previous
  :class:`BatchSolverResult` (or a ``(B, n)`` array) as ``x0``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Sequence

import numpy as np

from repro.exceptions import SolverError
from repro.optim.backend import (
    FLOAT32_TOLERANCES,
    FLOAT64_PARITY_TOLERANCE,
    ArrayBackend,
    get_backend,
    resolve_backend,
)
from repro.optim.admm import CachedAdmmFactors, solve_lasso_admm
from repro.optim.fista import solve_lasso_fista
from repro.optim.mmv import solve_mmv_fista
from repro.optim.omp import solve_omp
from repro.optim.operators import as_operator
from repro.optim.result import SolverResult
from repro.optim.tuning import mmv_residual_kappa, residual_kappa

#: Methods solve_batch can run, with the options each accepts.
_BATCH_METHODS = {
    "fista": {"max_iterations", "tolerance", "lipschitz", "penalty_weights"},
    "admm": {"rho", "max_iterations", "tolerance", "factors"},
    "omp": {"sparsity", "tolerance"},
    "mmv": {"max_iterations", "tolerance", "lipschitz", "penalty_weights"},
}

#: Columns per lockstep block.  Problems are independent columns, so a
#: big batch is solved block-by-block with identical per-problem
#: results; the block keeps the (n × block) iterate and its temporaries
#: L2-resident on CPU, which measures ~1.5× faster than one monolithic
#: (n × B) sweep at B = 64 on the evaluation grid.
_BLOCK_COLUMNS = 16


@dataclass
class BatchSolverResult:
    """Solutions of a whole batch, kept on the backend that computed them.

    ``x`` has shape ``(B, n)`` (``(B, n, p)`` for MMV) as a
    backend-native array; :meth:`to_numpy` materializes it on the host
    and :meth:`problem` slices one problem out as a standard
    :class:`~repro.optim.result.SolverResult` (handy for feeding the
    next batch's warm start or the spectrum pipeline).
    """

    x: Any
    objectives: tuple[float, ...]
    iterations: tuple[int, ...]
    converged: tuple[bool, ...]
    method: str
    backend_name: str
    dtype_name: str
    kappas: tuple[float, ...] | None = None
    parity: dict | None = None
    backend: ArrayBackend = field(default=None, repr=False)

    @property
    def n_problems(self) -> int:
        return len(self.objectives)

    def to_numpy(self) -> np.ndarray:
        return self.backend.to_numpy(self.x)

    def problem(self, index: int) -> SolverResult:
        return SolverResult(
            x=self.to_numpy()[index],
            objective=self.objectives[index],
            iterations=self.iterations[index],
            converged=self.converged[index],
            solver=self.method,
        )


def solve_batch(
    matrix,
    ys: Sequence,
    method: str = "fista",
    *,
    kappa=None,
    kappa_fraction: float = 0.05,
    backend=None,
    device: str | None = None,
    dtype=None,
    x0=None,
    warm_state=None,
    warm_keys: Sequence[str] | None = None,
    parity_gate: bool = False,
    parity_tolerance: float | None = None,
    **options,
) -> BatchSolverResult:
    """Solve ``B`` sparse-recovery problems against one dictionary.

    Parameters
    ----------
    matrix:
        Dictionary ``A`` — ndarray or
        :class:`~repro.optim.operators.DictionaryOperator`; converted to
        the requested backend/dtype once for the whole batch.
    ys:
        Sequence of ``B`` measurements: 1-D vectors of length ``m``
        (``method`` in ``fista``/``admm``/``omp``) or 2-D ``(m, p)``
        snapshot matrices (``method="mmv"``).  All problems must share
        one shape — a ragged batch is an error, as is an empty one.
    kappa:
        Scalar (shared), a length-``B`` sequence (per problem), or
        ``None`` to derive each problem's κ via
        :func:`~repro.optim.tuning.residual_kappa` exactly as the
        sequential loop would.  Rejected for ``method="omp"``.
    backend / device / dtype:
        Where and how to compute: backend name or instance
        (``"numpy"``/``"torch"``/``"cupy"``), optional device string
        (e.g. ``"cuda:0"``), and optional precision
        (``"complex64"`` for the mixed-precision path).
    x0:
        Warm start carried over from a previous batch: a
        :class:`BatchSolverResult` or an array of shape ``(B, n)``
        (``(B, n, p)`` for MMV).  Supported for ``fista`` and ``mmv``.
    warm_state / warm_keys:
        Keyed cross-batch carry-over: a
        :class:`~repro.optim.warm.WarmStartState` plus one key per
        problem.  Each problem warms from its key's stored solution
        (zeros — a cold start — where the key is missing or the shape
        changed) and writes its solution back after the solve, so
        consecutive batches over an evolving problem population (the
        streaming service's micro-batches) chain warm starts without
        the caller stacking arrays.  Mutually exclusive with ``x0``;
        same method restriction.
    parity_gate:
        Re-solve the batch sequentially on the numpy float64 reference
        and raise :class:`~repro.exceptions.SolverError` if any
        problem's relative ℓ∞ deviation exceeds ``parity_tolerance``
        (default 1e-12 in double precision,
        ``FLOAT32_TOLERANCES["parity_gate"]`` in single).  The report is
        attached as ``result.parity`` either way.
    **options:
        Per-method solver options (``max_iterations``, ``tolerance``,
        ``lipschitz``; ``rho``/``factors`` for ADMM; ``sparsity`` for
        OMP).
    """
    if method not in _BATCH_METHODS:
        raise SolverError(
            f"solve_batch does not support method {method!r}; "
            f"batchable methods: {sorted(_BATCH_METHODS)}"
        )
    unknown = set(options) - _BATCH_METHODS[method]
    if unknown:
        raise SolverError(
            f"method {method!r} does not accept options {sorted(unknown)}; "
            f"allowed: {sorted(_BATCH_METHODS[method])}"
        )

    ys = list(ys)
    n_problems = len(ys)
    if n_problems == 0:
        raise SolverError("solve_batch received an empty batch")
    expected_ndim = 2 if method == "mmv" else 1
    shapes = {np.shape(y) for y in ys}
    if len(shapes) > 1:
        raise SolverError(
            f"solve_batch received a ragged batch: problem shapes {sorted(shapes)}"
        )
    (problem_shape,) = shapes
    if len(problem_shape) != expected_ndim:
        raise SolverError(
            f"method {method!r} expects {expected_ndim}-D measurements, "
            f"got shape {problem_shape}"
        )

    operator = as_operator(matrix, backend=backend, dtype=dtype)
    if device is not None and operator.backend.device != device:
        operator = operator.to_backend(
            resolve_backend(operator.backend.name, device=device), dtype=dtype
        )
    bk = operator.backend
    if problem_shape[0] != operator.shape[0]:
        raise SolverError(
            f"dictionary and batch are incompatible: A is {operator.shape}, "
            f"measurements have leading dimension {problem_shape[0]}"
        )

    kappas = _resolve_kappas(operator, ys, method, kappa, kappa_fraction, n_problems)
    if warm_state is not None:
        x0 = _warm_starts_from_state(
            warm_state, warm_keys, x0, method, n_problems, operator.shape[1], problem_shape
        )
    elif warm_keys is not None:
        raise SolverError("warm_keys requires warm_state")
    warm = _resolve_warm_start(bk, x0, method, n_problems, operator.shape[1], problem_shape)

    if n_problems == 1:
        result = _solve_single(operator, ys[0], method, kappas, warm, options)
    else:
        if method == "admm" and options.get("factors") is None:
            # One factorization serves every block (and every κ).
            options = dict(options)
            options["factors"] = CachedAdmmFactors(
                operator, options.get("rho") or 1.0
            )
        blocks = []
        for start in range(0, n_problems, _BLOCK_COLUMNS):
            stop = min(start + _BLOCK_COLUMNS, n_problems)
            blocks.append(
                _solve_stacked(
                    operator,
                    ys[start:stop],
                    method,
                    kappas[start:stop] if kappas is not None else None,
                    warm[start:stop] if warm is not None else None,
                    options,
                )
            )
        result = blocks[0] if len(blocks) == 1 else _merge_blocks(bk, blocks, kappas)

    if warm_state is not None:
        solutions = result.to_numpy()
        for index, key in enumerate(warm_keys):
            warm_state.put(key, solutions[index])

    if parity_gate:
        result.parity = _run_parity_gate(
            matrix, operator, ys, method, kappas, options, result, parity_tolerance
        )
    return result


def _merge_blocks(bk, blocks, kappas):
    first = blocks[0]
    return BatchSolverResult(
        x=bk.concat([block.x for block in blocks], axis=0),
        objectives=tuple(v for block in blocks for v in block.objectives),
        iterations=tuple(v for block in blocks for v in block.iterations),
        converged=tuple(v for block in blocks for v in block.converged),
        method=first.method,
        backend_name=first.backend_name,
        dtype_name=first.dtype_name,
        kappas=kappas,
        backend=bk,
    )


def _resolve_kappas(operator, ys, method, kappa, kappa_fraction, n_problems):
    if method == "omp":
        if kappa is not None:
            raise SolverError("method 'omp' does not take a kappa weight")
        return None
    if kappa is None:
        derive = mmv_residual_kappa if method == "mmv" else residual_kappa
        return tuple(
            derive(operator, operator.backend.ensure(y), fraction=kappa_fraction)
            for y in ys
        )
    if np.ndim(kappa) == 0:
        return (float(kappa),) * n_problems
    kappas = tuple(float(k) for k in kappa)
    if len(kappas) != n_problems:
        raise SolverError(
            f"kappa sequence has length {len(kappas)}, expected {n_problems}"
        )
    return kappas


def _warm_starts_from_state(warm_state, warm_keys, x0, method, n_problems, n, problem_shape):
    """Stack per-key warm starts out of a WarmStartState into an x0 array.

    Missing keys (and shape-mismatched slots — e.g. a client's snapshot
    window grew since the last batch) contribute a zero column, which is
    exactly the solvers' cold-start iterate, so warm and cold problems
    mix freely inside one batch.
    """
    if x0 is not None:
        raise SolverError("pass either x0 or warm_state, not both")
    if method not in ("fista", "mmv"):
        raise SolverError(f"method {method!r} does not accept a warm start (warm_state)")
    if warm_keys is None or len(warm_keys) != n_problems:
        n_keys = 0 if warm_keys is None else len(warm_keys)
        raise SolverError(
            f"warm_state requires one warm key per problem: got {n_keys} keys "
            f"for {n_problems} problems"
        )
    shape = (n, problem_shape[1]) if method == "mmv" else (n,)
    starts = np.zeros((n_problems, *shape), dtype=complex)
    for index, key in enumerate(warm_keys):
        stored = warm_state.get(str(key), shape)
        if stored is not None:
            starts[index] = stored
    return starts


def _resolve_warm_start(bk, x0, method, n_problems, n, problem_shape):
    if x0 is None:
        return None
    if method not in ("fista", "mmv"):
        raise SolverError(f"method {method!r} does not accept a warm start (x0)")
    if isinstance(x0, BatchSolverResult):
        x0 = x0.backend.to_numpy(x0.x) if x0.backend is not bk else x0.x
    expected = (
        (n_problems, n, problem_shape[1]) if method == "mmv" else (n_problems, n)
    )
    x0 = bk.asarray(x0)
    if tuple(x0.shape) != expected:
        raise SolverError(f"x0 has shape {tuple(x0.shape)}, expected {expected}")
    return x0


def _solve_single(operator, y, method, kappas, warm, options):
    """B == 1: run the sequential solver — byte-identical on numpy."""
    bk = operator.backend
    opts = dict(options)
    if warm is not None:
        opts["x0"] = warm[0]
    if method == "omp":
        result = solve_omp(operator, bk.ensure(y), **opts)
    elif method == "fista":
        result = solve_lasso_fista(operator, bk.ensure(y), kappas[0], **opts)
    elif method == "admm":
        result = solve_lasso_admm(operator, bk.ensure(y), kappas[0], **opts)
    else:
        result = solve_mmv_fista(operator, bk.ensure(y), kappas[0], **opts)
    return BatchSolverResult(
        x=bk.stack([result.x], axis=0),
        objectives=(result.objective,),
        iterations=(result.iterations,),
        converged=(result.converged,),
        method=method,
        backend_name=bk.name,
        dtype_name=bk.dtype_name(result.x),
        kappas=kappas,
        backend=bk,
    )


def _solve_stacked(operator, ys, method, kappas, warm, options):
    bk = operator.backend
    cdtype = bk.complex_dtype(operator.precision)
    if method == "mmv":
        stacked = bk.stack([bk.asarray(y, dtype=cdtype) for y in ys], axis=0)
    else:
        stacked = bk.stack([bk.asarray(y, dtype=cdtype) for y in ys], axis=1)
    if not bk.isfinite_all(stacked):
        raise SolverError("batch contains non-finite measurements")
    if method == "fista":
        return _batched_fista(operator, stacked, kappas, warm, **options)
    if method == "admm":
        return _batched_admm(operator, stacked, kappas, **options)
    if method == "omp":
        return _batched_omp(operator, stacked, **options)
    return _batched_mmv(operator, stacked, kappas, warm, **options)


def _result(operator, X_cols, objectives, iterations, converged, method, kappas):
    """Assemble a BatchSolverResult from the internal (n, B) column layout."""
    bk = operator.backend
    x = bk.moveaxis(X_cols, 0, 1)
    return BatchSolverResult(
        x=x,
        objectives=tuple(float(v) for v in objectives),
        iterations=tuple(int(v) for v in iterations),
        converged=tuple(bool(v) for v in converged),
        method=method,
        backend_name=bk.name,
        dtype_name=bk.dtype_name(x),
        kappas=kappas,
        backend=bk,
    )


def _batched_fista(
    operator,
    Y,
    kappas,
    warm,
    *,
    max_iterations: int = 200,
    tolerance: float = 1e-6,
    lipschitz: float | None = None,
    penalty_weights=None,
):
    bk = operator.backend
    cdtype = bk.complex_dtype(operator.precision)
    rdtype = bk.real_dtype(operator.precision)
    n = operator.shape[1]
    n_problems = tuple(Y.shape)[1]
    kap = np.asarray(kappas, dtype=np.float64)
    if np.any(kap < 0):
        raise SolverError(f"kappa must be non-negative, got {kappas}")
    if max_iterations < 1:
        raise SolverError(f"max_iterations must be >= 1, got {max_iterations}")
    weights = _resolve_penalty_weights(bk, penalty_weights, n, rdtype)

    lipschitz = 2.0 * (operator.lipschitz() if lipschitz is None else float(lipschitz))
    if lipschitz <= 0:
        X = bk.zeros((n, n_problems), cdtype)
        objectives, _ = _lasso_batch_objectives(operator, X, Y, kap, weights)
        return _result(operator, X, objectives, [0] * n_problems, [True] * n_problems,
                       "fista", kappas)
    step = 1.0 / lipschitz
    thresholds = bk.asarray((kap * step).reshape(1, n_problems), dtype=rdtype)
    if weights is not None:
        # Per-coefficient weighted ℓ1: one threshold per (row, problem).
        thresholds = weights.reshape(n, 1) * thresholds

    X = (
        bk.zeros((n, n_problems), cdtype)
        if warm is None
        else bk.moveaxis(bk.asarray(warm, dtype=cdtype), 0, 1)
    )
    X = bk.copy(X)
    momentum = bk.copy(X)
    t = 1.0

    active = np.ones(n_problems, dtype=bool)
    iterations = np.full(n_problems, max_iterations, dtype=int)
    converged = np.zeros(n_problems, dtype=bool)
    check = tolerance > 0
    for it in range(1, max_iterations + 1):
        raw_gradient = operator.rmatvec(operator.matvec(momentum) - Y)
        candidate = bk.prox_gradient_step(momentum, raw_gradient, 2.0 * step, thresholds)
        # math.sqrt keeps the momentum coefficient a python float — a
        # np.float64 scalar would promote complex64 iterates to
        # complex128 under NEP 50 on the (out-of-place) freeze path.
        t_next = 0.5 * (1.0 + math.sqrt(1.0 + 4.0 * t * t))
        coefficient = (t - 1.0) / t_next

        if check:
            delta = bk.to_numpy(bk.norms(candidate - X, axis=0))
            scale = np.maximum(1.0, bk.to_numpy(bk.norms(X, axis=0)))

        if active.all():
            momentum = bk.momentum_combine(candidate, X, coefficient)
            X = candidate
        else:
            # Freeze converged columns: their iterate (and momentum) stop
            # moving, preserving per-problem equivalence with solo solves.
            momentum_next = candidate + coefficient * (candidate - X)
            mask = bk.asarray(active.reshape(1, n_problems))
            X = bk.where(mask, candidate, X)
            momentum = bk.where(mask, momentum_next, momentum)
        t = t_next

        if check:
            newly = active & (delta <= tolerance * scale)
            if newly.any():
                iterations[newly] = it
                converged[newly] = True
                active &= ~newly
                if not active.any():
                    break

    objectives, _ = _lasso_batch_objectives(operator, X, Y, kap, weights)
    return _result(operator, X, objectives, iterations, converged, "fista", kappas)


def _resolve_penalty_weights(bk, penalty_weights, n, rdtype):
    """Validate and re-home per-coefficient ℓ1/ℓ2,1 weights (or None)."""
    if penalty_weights is None:
        return None
    weights_host = np.asarray(penalty_weights, dtype=np.float64)
    if weights_host.shape != (n,):
        raise SolverError(
            f"penalty_weights must have shape ({n},), got {weights_host.shape}"
        )
    if np.any(weights_host < 0) or not np.all(np.isfinite(weights_host)):
        raise SolverError("penalty_weights must be finite and non-negative")
    return bk.asarray(weights_host, dtype=rdtype)


def _batched_admm(
    operator,
    Y,
    kappas,
    *,
    rho: float | None = None,
    max_iterations: int = 500,
    tolerance: float = 1e-6,
    factors: CachedAdmmFactors | None = None,
):
    bk = operator.backend
    cdtype = bk.complex_dtype(operator.precision)
    rdtype = bk.real_dtype(operator.precision)
    kap = np.asarray(kappas, dtype=np.float64)
    if np.any(kap < 0):
        raise SolverError(f"kappa must be non-negative, got {kappas}")

    if rho is None:
        rho = factors.rho if factors is not None else 1.0
    if factors is None:
        factors = CachedAdmmFactors(operator, rho)
    elif not factors.matches(operator) or factors.rho != rho:
        raise SolverError(
            "provided CachedAdmmFactors were built for a different "
            "(matrix, rho, backend/device/dtype)"
        )
    dense = factors.matrix
    n = tuple(dense.shape)[1]
    n_problems = tuple(Y.shape)[1]

    scale_row_np = np.where(kap > 0, kap, 1.0).reshape(1, n_problems)
    scale_row = bk.asarray(scale_row_np, dtype=rdtype)
    thresholds = bk.asarray(
        np.where(kap > 0, 0.5 / rho, 0.0).reshape(1, n_problems), dtype=rdtype
    )
    scaled_Y = Y / scale_row
    atb = bk.conj_transpose(dense) @ scaled_Y

    X = bk.zeros((n, n_problems), cdtype)
    Z = bk.zeros((n, n_problems), cdtype)
    U = bk.zeros((n, n_problems), cdtype)

    active = np.ones(n_problems, dtype=bool)
    iterations = np.full(n_problems, max_iterations, dtype=int)
    converged = np.zeros(n_problems, dtype=bool)
    check = tolerance > 0
    for it in range(1, max_iterations + 1):
        X_next = factors.solve(atb + rho * (Z - U))
        Z_prev = Z
        Z_next = bk.soft_threshold(X_next + U, thresholds)
        U_next = U + X_next - Z_next

        if check:
            primal = bk.to_numpy(bk.norms(X_next - Z_next, axis=0))
            dual = rho * bk.to_numpy(bk.norms(Z_next - Z_prev, axis=0))
            scale = np.maximum(1.0, bk.to_numpy(bk.norms(Z_next, axis=0)))

        if active.all():
            X, Z, U = X_next, Z_next, U_next
        else:
            mask = bk.asarray(active.reshape(1, n_problems))
            X = bk.where(mask, X_next, X)
            Z = bk.where(mask, Z_next, Z)
            U = bk.where(mask, U_next, U)

        if check:
            newly = active & (primal <= tolerance * scale) & (dual <= tolerance * scale)
            if newly.any():
                iterations[newly] = it
                converged[newly] = True
                active &= ~newly
                if not active.any():
                    break

    X_out = scale_row * Z
    objectives, _ = _lasso_batch_objectives(operator, X_out, Y, kap)
    return _result(operator, X_out, objectives, iterations, converged, "admm", kappas)


def _batched_omp(operator, Y, *, sparsity: int, tolerance: float = 0.0):
    bk = operator.backend
    cdtype = bk.complex_dtype(operator.precision)
    m, n = operator.shape
    n_problems = tuple(Y.shape)[1]
    if sparsity < 1:
        raise SolverError(f"sparsity must be >= 1, got {sparsity}")
    sparsity = min(sparsity, m, n)

    column_norms = operator.column_norms()
    norms_col = column_norms.reshape(-1, 1)
    usable_col = norms_col > 0

    residuals = bk.copy(Y)
    supports: list[list[int]] = [[] for _ in range(n_problems)]
    coefficients: list = [bk.zeros(0, cdtype) for _ in range(n_problems)]
    active = np.ones(n_problems, dtype=bool)
    iterations = np.zeros(n_problems, dtype=int)

    for step_index in range(1, sparsity + 1):
        # One batched adjoint GEMM scores every problem's atoms at once;
        # the greedy selection + least-squares refit stay per-problem.
        correlations = bk.abs(operator.rmatvec(residuals))
        with bk.errstate():
            correlations = bk.where(
                usable_col,
                correlations / bk.where(usable_col, norms_col, 1.0),
                -1.0,
            )
        for b in np.nonzero(active)[0]:
            column = correlations[:, b]
            column[supports[b]] = -1.0
            best = bk.argmax(column)
            iterations[b] = step_index
            if float(column[best]) <= 0:
                active[b] = False
                continue
            supports[b].append(best)
            submatrix = operator.columns(supports[b])
            coefficients[b] = bk.lstsq(submatrix, Y[:, b])
            residuals[:, b] = Y[:, b] - submatrix @ coefficients[b]
            if bk.norm(residuals[:, b]) <= tolerance:
                active[b] = False
        if not active.any():
            break

    X = bk.zeros((n, n_problems), cdtype)
    for b in range(n_problems):
        X[supports[b], b] = coefficients[b]
    objectives = [bk.norm(residuals[:, b]) ** 2 for b in range(n_problems)]
    return _result(
        operator, X, objectives, iterations, [True] * n_problems, "omp", None
    )


def _batched_mmv(
    operator,
    Ys,
    kappas,
    warm,
    *,
    max_iterations: int = 200,
    tolerance: float = 1e-6,
    lipschitz: float | None = None,
    penalty_weights=None,
):
    bk = operator.backend
    cdtype = bk.complex_dtype(operator.precision)
    rdtype = bk.real_dtype(operator.precision)
    n = operator.shape[1]
    n_problems, _, n_snapshots = tuple(Ys.shape)
    if n_snapshots == 0:
        raise SolverError("snapshot matrices have zero columns")
    kap = np.asarray(kappas, dtype=np.float64)
    if np.any(kap < 0):
        raise SolverError(f"kappa must be non-negative, got {kappas}")
    weights = _resolve_penalty_weights(bk, penalty_weights, n, rdtype)

    lipschitz = 2.0 * (operator.lipschitz() if lipschitz is None else float(lipschitz))
    if lipschitz <= 0:
        X = bk.zeros((n_problems, n, n_snapshots), cdtype)
        objectives = _mmv_batch_objectives(operator, X, Ys, kap, weights)
        return BatchSolverResult(
            x=X, objectives=tuple(objectives), iterations=(0,) * n_problems,
            converged=(True,) * n_problems, method="mmv", backend_name=bk.name,
            dtype_name=bk.dtype_name(X), kappas=kappas, backend=bk,
        )
    step = 1.0 / lipschitz
    thresholds = bk.asarray((kap * step).reshape(n_problems, 1, 1), dtype=rdtype)
    if weights is not None:
        # Per-row weighted ℓ2,1: one threshold per (problem, row).
        thresholds = thresholds * weights.reshape(1, n, 1)

    X = (
        bk.zeros((n_problems, n, n_snapshots), cdtype)
        if warm is None
        else bk.copy(bk.asarray(warm, dtype=cdtype))
    )
    momentum = bk.copy(X)
    t = 1.0

    active = np.ones(n_problems, dtype=bool)
    iterations = np.full(n_problems, max_iterations, dtype=int)
    converged = np.zeros(n_problems, dtype=bool)
    check = tolerance > 0
    for it in range(1, max_iterations + 1):
        gradient = 2.0 * operator.rmatmul_batch(operator.matmul_batch(momentum) - Ys)
        point = momentum - step * gradient
        row_norms = bk.norms(point, axis=2, keepdims=True)
        shrunk = bk.maximum(row_norms - thresholds, 0.0)
        with bk.errstate():
            factors = bk.where(
                row_norms > 0, shrunk / bk.where(row_norms > 0, row_norms, 1.0), 0.0
            )
        candidate = point * factors
        t_next = 0.5 * (1.0 + math.sqrt(1.0 + 4.0 * t * t))
        momentum_next = candidate + ((t - 1.0) / t_next) * (candidate - X)

        if check:
            delta = bk.to_numpy(bk.norms(candidate - X, axis=(1, 2)))
            scale = np.maximum(1.0, bk.to_numpy(bk.norms(X, axis=(1, 2))))

        if active.all():
            X, momentum = candidate, momentum_next
        else:
            mask = bk.asarray(active.reshape(n_problems, 1, 1))
            X = bk.where(mask, candidate, X)
            momentum = bk.where(mask, momentum_next, momentum)
        t = t_next

        if check:
            newly = active & (delta <= tolerance * scale)
            if newly.any():
                iterations[newly] = it
                converged[newly] = True
                active &= ~newly
                if not active.any():
                    break

    objectives = _mmv_batch_objectives(operator, X, Ys, kap, weights)
    return BatchSolverResult(
        x=X,
        objectives=tuple(float(v) for v in objectives),
        iterations=tuple(int(v) for v in iterations),
        converged=tuple(bool(v) for v in converged),
        method="mmv",
        backend_name=bk.name,
        dtype_name=bk.dtype_name(X),
        kappas=kappas,
        backend=bk,
    )


def _lasso_batch_objectives(operator, X_cols, Y, kap, penalty_weights=None):
    bk = operator.backend
    residual = operator.matvec(X_cols) - Y
    data = bk.to_numpy(bk.norms(residual, axis=0)).astype(np.float64) ** 2
    magnitudes = bk.abs(X_cols)
    if penalty_weights is not None:
        magnitudes = penalty_weights.reshape(tuple(X_cols.shape)[0], 1) * magnitudes
    l1 = bk.to_numpy(bk.sum(magnitudes, axis=0)).astype(np.float64)
    objectives = data + kap * l1
    return objectives, data


def _mmv_batch_objectives(operator, X, Ys, kap, penalty_weights=None):
    bk = operator.backend
    residual = operator.matmul_batch(X) - Ys
    data = bk.to_numpy(bk.norms(residual, axis=(1, 2))).astype(np.float64) ** 2
    row_norms = bk.norms(X, axis=2)
    if penalty_weights is not None:
        row_norms = penalty_weights.reshape(1, tuple(X.shape)[1]) * row_norms
    row_sums = bk.to_numpy(bk.sum(row_norms, axis=1)).astype(np.float64)
    return data + kap * row_sums


def _run_parity_gate(
    matrix, operator, ys, method, kappas, options, result, tolerance
):
    """Verify the batch against a sequential numpy float64 reference."""
    precision = "single" if result.dtype_name in ("complex64", "float32") else "double"
    if tolerance is None:
        tolerance = (
            FLOAT64_PARITY_TOLERANCE
            if precision == "double"
            else FLOAT32_TOLERANCES["parity_gate"]
        )
    numpy_backend = get_backend("numpy")
    source = as_operator(matrix)
    reference = source.to_backend(numpy_backend, dtype="complex128")

    opts = {
        key: value
        for key, value in options.items()
        if key not in ("factors",)  # factors are backend-bound; rebuild
    }
    batch = result.to_numpy()
    worst = 0.0
    for index, y in enumerate(ys):
        y = np.asarray(y)
        if method == "omp":
            ref = solve_omp(reference, y, **opts)
        elif method == "fista":
            ref = solve_lasso_fista(reference, y, kappas[index], **opts)
        elif method == "admm":
            ref = solve_lasso_admm(reference, y, kappas[index], **opts)
        else:
            ref = solve_mmv_fista(reference, y, kappas[index], **opts)
        deviation = float(np.abs(batch[index] - ref.x).max())
        scale = max(1.0, float(np.abs(ref.x).max()))
        worst = max(worst, deviation / scale)

    report = {
        "max_relative_deviation": worst,
        "tolerance": float(tolerance),
        "reference": "numpy/complex128 sequential",
        "n_problems": len(ys),
        "precision": precision,
        "passed": worst <= tolerance,
    }
    if worst > tolerance:
        raise SolverError(
            f"solve_batch parity gate failed: max relative deviation {worst:.3e} "
            f"exceeds tolerance {tolerance:.1e} against the numpy float64 reference"
        )
    return report
